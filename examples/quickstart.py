#!/usr/bin/env python
"""Quickstart: measure one tuned 10GbE flow, the paper's headline test.

Builds two simulated Dell PE2650s back to back (Fig. 2a), applies the
full §3.3 optimization stack (MTU 8160, MMRBC 4096, uniprocessor
kernel, 256 KB windows) and runs an NTTCP-style transfer.  Expected
output: ~4.1 Gb/s — the paper's 4.11 Gb/s result.

Run:  python examples/quickstart.py
"""

from repro import BackToBack, Environment, TcpConnection, TuningConfig
from repro.tools.nttcp import nttcp_run


def main() -> None:
    env = Environment()
    config = TuningConfig.fully_tuned(mtu=8160)
    print(f"configuration: {config.describe()}")

    testbed = BackToBack.create(env, config)
    conn = TcpConnection(env, testbed.a, testbed.b)

    result = nttcp_run(env, conn, payload=8108, count=2048)

    print(f"payload        : {result.payload} bytes x {result.count} writes")
    print(f"goodput        : {result.goodput_gbps:.2f} Gb/s "
          f"(paper: 4.11 Gb/s)")
    print(f"receiver load  : {result.receiver_load:.2f}")
    print(f"sender load    : {result.sender_load:.2f}")
    print(f"retransmissions: {result.retransmissions}")

    # the same transfer under the stock configuration, for contrast
    env2 = Environment()
    stock = BackToBack.create(env2, TuningConfig.stock(mtu=1500))
    conn2 = TcpConnection(env2, stock.a, stock.b)
    baseline = nttcp_run(env2, conn2, payload=1448, count=2048)
    print(f"\nstock 1500-MTU baseline: {baseline.goodput_gbps:.2f} Gb/s "
          f"(paper: 1.8 Gb/s)")
    print(f"tuning speedup         : "
          f"{result.goodput_bps / baseline.goodput_bps:.1f}x")


if __name__ == "__main__":
    main()
