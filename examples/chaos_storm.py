#!/usr/bin/env python
"""Chaos storm: the "one loss event ruins the record run" experiment.

The §5 record run pushed 2×10^7 packets Sunnyvale -> Geneva without a
single loss.  This demo shows why it *had* to be lossless, in three
acts:

1. **back-of-envelope** — Table 1's arithmetic: halve a BDP-sized Reno
   window at 2.38 Gb/s / 180 ms RTT and the 1-MSS-per-RTT regrowth
   takes ~55 min with per-segment ACKs, ~1.8 h with delayed ACKs —
   the paper's "~1.5 hours".
2. **fluid model** — force exactly one loss mid-run and score the
   goodput series with the chaos analyzer; the measured time-to-recover
   lands on the analytic value.
3. **packet-level DES** — arm a declarative :class:`FaultPlan` (a loss
   burst on the bottleneck OC-48) against the scaled WAN testbed and
   read the injector's per-fault scorecard.  Per seed, the outcome is
   bit-identical across heap/calendar schedulers and train on/off.

Run:  python examples/chaos_storm.py
"""

from repro.analysis.resilience import wan_loss_report
from repro.chaos import FaultPlan, FaultSpec, chaos_session
from repro.config import TuningConfig
from repro.core.wanrecord import WanRecordRun
from repro.net.topology import build_wan_path
from repro.sim.engine import Environment
from repro.tcp.analytic import recovery_time_s
from repro.tcp.connection import TcpConnection

#: Scaled-down DES cross-check (full-distance packet-level runs of the
#: recovery tail would take simulated hours for no extra fidelity).
DES_SCALE = 0.05
DES_DURATION_S = 3.0


def act_one() -> None:
    print("=" * 72)
    print("Act 1: the back-of-envelope (Table 1)")
    print("=" * 72)
    rate, rtt = 2.38e9, 0.180
    for mss, label in ((1460, "standard 1500B MTU"),
                       (8948, "jumbo 9000B MTU")):
        t = recovery_time_s(rate, rtt, mss)
        print(f"  {label:<20}: {t / 60:6.1f} min per-segment ACKs, "
              f"{2 * t / 3600:5.2f} h delayed ACKs")
    print("  paper: a single loss would have taken TCP Reno ~1.5 hours "
          "to recover from -> the record needed a loss-free path.\n")


def act_two() -> None:
    print("=" * 72)
    print("Act 2: fluid model, one forced loss, analyzer scorecard")
    print("=" * 72)
    report = wan_loss_report()
    print(report.text)
    measured = report.data["time_to_recover_s"]
    analytic = report.data["analytic_recovery_s"]
    print(f"\n  measured/analytic ratio: {measured / analytic:.2f} "
          f"(piecewise fluid vs closed form)\n")
    assert report.data["recovered"], "fluid run never recovered"
    assert 0.5 <= measured / analytic <= 1.5, (
        "measured recovery strayed from the Table 1 arithmetic")


def act_three() -> None:
    print("=" * 72)
    print("Act 3: packet-level DES under a declarative FaultPlan")
    print("=" * 72)
    run = WanRecordRun()
    buf = max(65536, int(run.bdp_buffer_bytes(truesize_aware=True)
                         * DES_SCALE))
    plan = FaultPlan(name="oc48-loss-burst", seed=42, faults=(
        FaultSpec(kind="loss_burst", target="link:wan.fwd.oc48*",
                  start_s=DES_DURATION_S / 2, duration_s=0.05,
                  probability=0.5, label="bottleneck burst"),))
    print(f"  plan: {plan.name}, seed {plan.seed}, fingerprint "
          f"{plan.fingerprint()[:12]}")
    with chaos_session(plan) as session:
        env = Environment()
        config = TuningConfig.wan_tuned(buf=buf)
        testbed = build_wan_path(env, config,
                                 bottleneck_queue_frames=run.queue_frames)
        for path in (testbed.forward, testbed.reverse):
            path.oc192.propagation_s *= DES_SCALE
            path.oc48.propagation_s *= DES_SCALE
        conn = TcpConnection(env, testbed.sunnyvale, testbed.geneva)
        stop = {"flag": False}

        def source():
            while not stop["flag"]:
                yield from conn.write(262144)

        env.process(source(), name="storm.src")
        env.run(until=DES_DURATION_S)
        stop["flag"] = True
        injector = session.injector_for(env)
        assert injector is not None, "plan did not attach to the DES run"
        for row in injector.summary():
            print(f"  fault #{row['index']} {row['kind']} on "
                  f"{row['matched']}: {row['drops']} drops over "
                  f"{row['frames']} frames, fired={row['fired']}, "
                  f"recovered={row['recovered']}")
            assert row["fired"] and row["recovered"], "window never ran"
            assert row["matched"], "plan matched no component"
        delivered = conn.receiver.bytes_delivered
        rtx = conn.sender.retransmitted
        print(f"  delivered {delivered / 1e6:.1f} MB, "
              f"{rtx} retransmissions, env.now={env.now:.3f}s")
        assert delivered > 0
    print()


def main() -> None:
    act_one()
    act_two()
    act_three()
    print("chaos storm complete: clean paths break records, "
          "chaotic ones measure resilience.")


if __name__ == "__main__":
    main()
