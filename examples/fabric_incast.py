#!/usr/bin/env python
"""Cluster-scale incast on a fat-tree: the hybrid fluid+DES fast path.

The paper's testbeds stop at a handful of hosts; its title promises
"Networks of Workstations, Clusters, and Grids".  This example runs the
classic incast workload — N senders converging on one server — on a
generated k=8 fat-tree (128 hosts), keeping 8 foreground flows at full
packet fidelity while the remaining population advances in the
vectorised fluid model (see docs/FABRICS.md).

A 256-flow incast finishes in well under a minute; the same workload
entirely in the packet DES would need every background segment as an
event.  Used by CI as the fabric smoke test.

Run:  python examples/fabric_incast.py [n_flows]
"""

import sys

from repro.net.fabric import build_fat_tree
from repro.net.hybrid import FabricSimulation, incast_pairs


def main() -> None:
    n_flows = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    topo = build_fat_tree(8)
    print(f"fabric: {topo.name} — {len(topo.hosts)} hosts, "
          f"{len(topo.switches)} switches, {topo.n_links} directed links")

    pairs = incast_pairs(topo, n_flows)
    sim = FabricSimulation(topo, pairs, n_foreground=8, mode="auto")
    print(f"incast: {n_flows} flows -> {pairs[0][1]}  "
          f"(mode={sim.mode}, coupling tick "
          f"{sim.coupling_tick() * 1e6:.0f} us)")

    result = sim.run(duration_s=0.1)
    print(f"\naggregate goodput : {result.aggregate_goodput_gbps:7.3f} Gb/s")
    print(f"  foreground ({result.n_foreground} DES flows) : "
          f"{result.foreground_goodput_bps / 1e9:7.3f} Gb/s")
    print(f"  background ({result.n_background} fluid flows): "
          f"{result.background_goodput_bps / 1e9:7.3f} Gb/s")
    print(f"foreground drops  : {result.foreground_drops} "
          f"({result.coupled_drops} from background pressure)")
    print(f"fluid loss events : {result.fluid_losses}")
    print(f"DES events        : {result.events_scheduled:,} "
          f"({result.coupler_ticks} coupling ticks)")
    print(f"wall clock        : {result.wall_s:.2f} s for "
          f"{result.duration_s:.2f} simulated seconds")

    if result.mode == "hybrid":
        # the server's edge downlink is the incast bottleneck; the two
        # populations must share it, not double-count it
        assert result.aggregate_goodput_bps < 11e9
    print("\nOK: hybrid incast completed.")


if __name__ == "__main__":
    main()
