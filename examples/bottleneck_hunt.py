#!/usr/bin/env python
"""The §3.5.2 bottleneck hunt: where do the other 4 Gb/s go?

The PE2650's PCI-X bus moves 8.5 Gb/s, yet tuned TCP peaks at ~4.1.
The paper eliminates suspects one by one; this example re-runs every
probe and prints the verdicts, then uses MAGNET to profile where a
packet's time actually goes.

Run:  python examples/bottleneck_hunt.py
"""

from repro.analysis.tables import format_kv, format_table
from repro.config import TuningConfig
from repro.core.bottleneck import BottleneckStudy
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.magnet import Magnet
from repro.tools.nttcp import nttcp_run


def main() -> None:
    study = BottleneckStudy(n_clients=6, duration_s=0.02)

    print("probe 1: receive path vs transmit path (multi-flow "
          "aggregation through the switch)")
    rx = study.receive_path()
    tx = study.transmit_path()
    print(f"  aggregate into the adapter : {rx.aggregate_gbps:.2f} Gb/s")
    print(f"  aggregate out of the adapter: {tx.aggregate_gbps:.2f} Gb/s")
    asym = abs(rx.aggregate_bps - tx.aggregate_bps) / rx.aggregate_bps
    print(f"  verdict: statistically equal ({asym * 100:.0f}% apart) — "
          "the receive path is NOT the bottleneck\n")

    print("probe 2: two adapters on independent PCI-X buses")
    dual = study.dual_adapters()
    print(f"  dual-adapter aggregate: {dual.aggregate_gbps:.2f} Gb/s "
          f"(single: {rx.aggregate_gbps:.2f})")
    print("  verdict: no gain — the PCI-X bus and the adapter are "
          "ruled out\n")

    print("probe 3: memory bandwidth (STREAM)")
    rows = [{"host": name, "STREAM copy (Gb/s)": round(r.copy_gbps, 1)}
            for name, r in study.stream_comparison().items()]
    print(format_table(rows))
    print("  verdict: the PE4600 has ~50% more memory bandwidth and no "
          "more network\n  throughput — memory bandwidth is ruled out\n")

    print("probe 4: the kernel packet generator (single copy, no stack)")
    pktgen = study.pktgen_ceiling(packets=2048)
    single = study.single_flow()
    print(format_kv({
        "pktgen rate (Gb/s)": pktgen.rate_gbps,
        "pktgen packets/s": pktgen.packets_per_sec,
        "tuned TCP single flow (Gb/s)": single / 1e9,
        "TCP / pktgen": single / pktgen.rate_bps,
    }))
    print("  verdict: TCP delivers ~75% of the single-copy ceiling; the "
          "8.5 - 5.5 = 3 Gb/s gap\n  is the host software's data "
          "movement — the paper's conclusion\n")

    print("MAGNET: per-packet path profile of one tuned flow")
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.fully_tuned(8160))
    conn = TcpConnection(env, bb.a, bb.b)
    magnet = Magnet(bb.a, bb.b)
    magnet.start()
    nttcp_run(env, conn, payload=8108, count=512)
    magnet.stop()
    prof = magnet.profile("tcp.tx.segment", "tcp.rx.deliver")
    print(format_kv({
        "packets profiled": prof.samples,
        "mean tx->deliver (us)": prof.mean_us,
        "p50 (us)": prof.p50_s * 1e6,
        "p99 (us)": prof.p99_s * 1e6,
    }))
    hist = magnet.path_histogram()
    print("\ninstrumentation points hit:")
    for point in sorted(hist):
        print(f"  {point:24s} {hist[point]}")


if __name__ == "__main__":
    main()
