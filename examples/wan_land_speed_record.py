#!/usr/bin/env python
"""The §4 WAN experiment: breaking the Internet2 Land Speed Record.

Reproduces the Sunnyvale -> Geneva run: the OC-192 + OC-48 path
(RTT 180 ms), hosts tuned with the paper's literal sysctl recipe, and
the socket buffer sized so the flow-control window caps the congestion
window at the bandwidth-delay product — "the network approaches
congestion but avoids it altogether".

Run:  python examples/wan_land_speed_record.py
"""

from repro.config import TuningConfig
from repro.core.landspeed import LSR_2002, LSR_2003
from repro.core.wanrecord import PATH_KM, WanRecordRun
from repro.oskernel.sysctl import SysctlTable
from repro.analysis.tables import format_table

#: The paper's own host-tuning recipe (Section 4.1), verbatim shape.
PAPER_RECIPE = """
echo "4096 87380 128388607" > /proc/sys/net/ipv4/tcp_rmem
echo "4096 65530 128388607" > /proc/sys/net/ipv4/tcp_wmem
echo 128388607 > /proc/sys/net/core/wmem_max
echo 128388607 > /proc/sys/net/core/rmem_max
/sbin/ifconfig eth1 txqueuelen 10000
/sbin/ifconfig eth1 mtu 9000
"""


def main() -> None:
    # 1. host tuning through the /proc interface, like the paper
    sysctl = SysctlTable()
    sysctl.run_script(PAPER_RECIPE)
    host_config = sysctl.apply(TuningConfig.wan_tuned(buf=1 << 25))
    print("host tuning applied:", host_config.describe(),
          f"txqueuelen={host_config.txqueuelen}\n")

    run = WanRecordRun()
    print(f"path: Sunnyvale -> Geneva, {PATH_KM:.0f} km, RTT 180 ms")
    print(f"bottleneck: OC-48 POS, TCP-payload capacity "
          f"{run.bottleneck_goodput_bps / 1e9:.3f} Gb/s")
    print(f"bandwidth-delay product: {run.bdp_bytes / 1e6:.1f} MB "
          f"-> tuned buffer {run.bdp_buffer_bytes() / 1e6:.1f} MB\n")

    # 2. the record run (one simulated hour, fluid engine)
    outcome = run.run_fluid(duration_s=3600.0)
    print(f"sustained throughput : {outcome.throughput_gbps:.2f} Gb/s "
          f"(paper: 2.38)")
    print(f"payload efficiency   : {outcome.payload_efficiency * 100:.1f}% "
          f"(paper: ~99%)")
    print(f"terabyte transfer    : {outcome.terabyte_time_s / 60:.1f} min "
          f"(paper: under an hour)")
    print(f"congestion losses    : {outcome.losses}")
    print(f"LSR metric           : {outcome.lsr_metric:.4g} m*b/s "
          f"(paper: {LSR_2003.metric:.4g})")
    print(f"vs previous record   : {outcome.beats_previous_record:.2f}x "
          f"({LSR_2002.throughput_bps / 1e6:.0f} Mb/s over "
          f"{LSR_2002.distance_km:.0f} km)\n")

    # 3. why the buffer size is the whole game
    print("buffer sweep (the §4 tuning story):")
    rows = []
    for o in run.buffer_sweep(duration_s=600.0):
        rows.append({
            "buffer": o.label,
            "MB": round(o.buffer_bytes / 1e6, 1),
            "Gb/s": round(o.throughput_gbps, 3),
            "losses": o.losses,
            "TB time (min)": round(o.terabyte_time_s / 60, 1),
        })
    print(format_table(rows))
    print("\nundersized buffers starve the pipe (window/RTT); oversized "
          "buffers let the\ncongestion window overrun the bottleneck "
          "queue — each loss then costs the\nAIMD recovery times of "
          "Table 1 (hours at these bandwidth-delay products).")

    # 4. packet-level cross-check at a scaled distance
    des = run.run_des_scaled(scale=0.05, duration_s=3.0)
    print(f"\npacket-level cross-check (5% distance): "
          f"{des.throughput_gbps:.2f} Gb/s, {des.losses} losses")


if __name__ == "__main__":
    main()
