#!/usr/bin/env python
"""§3.5.4: put the 10GbE numbers in perspective vs GbE/Myrinet/QsNet.

Measures our simulated 10GbE (throughput via a tuned NTTCP run, latency
via NetPipe), then recomputes the paper's comparison percentages against
the published numbers for Gigabit Ethernet, Myrinet (GM and IP) and
QsNet (Elan3 and IP).  Also prints the §5 projections (OS-bypass, CSA)
to show where the paper believed the technology was headed.

Run:  python examples/interconnect_comparison.py
"""

from repro.analysis.tables import format_table
from repro.config import TuningConfig
from repro.core.comparison import InterconnectComparison
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.netpipe import netpipe_latency
from repro.tools.nttcp import nttcp_run


def measure_throughput(cfg, payload, count=1024):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    return nttcp_run(env, conn, payload, count).goodput_bps


def measure_latency(cfg):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    fwd = TcpConnection(env, bb.a, bb.b)
    bwd = TcpConnection(env, bb.b, bb.a)
    return netpipe_latency(env, fwd, bwd, payload=1, iterations=6).latency_s


def main() -> None:
    print("measuring our 10GbE/TCP (tuned PE2650 pair)...")
    throughput = measure_throughput(TuningConfig.fully_tuned(8160), 8108)
    latency = measure_latency(TuningConfig(
        mtu=1500, mmrbc=4096, smp_kernel=False))
    print(f"  {throughput / 1e9:.2f} Gb/s, {latency * 1e6:.1f} us "
          "(paper: 4.11 Gb/s, 19 us)\n")

    comp = InterconnectComparison(throughput, latency)
    print(format_table(comp.rows(), title="§3.5.4 comparison "
                       "(advantage = ours/theirs - 1; latency ratio = "
                       "ours/theirs, <1 means we are faster)"))

    print("\nreading the table like the paper does:")
    print(f"  vs GbE      : {comp.throughput_advantage('GbE/TCP') * 100:.0f}%"
          " better throughput (paper: 'over 300%')")
    print(f"  vs Myrinet  : "
          f"{comp.throughput_advantage('Myrinet/IP') * 100:.0f}% better "
          "than its TCP layer (paper: 'over 120%')")
    print(f"  vs QsNet    : "
          f"{comp.throughput_advantage('QsNet/IP') * 100:.0f}% better "
          "than its TCP layer (paper: 'over 80%')")
    print(f"  latency     : {comp.latency_ratio('Myrinet/GM'):.1f}x "
          "slower than Myrinet/GM, "
          f"{comp.latency_ratio('QsNet/Elan3'):.1f}x slower than "
          "QsNet/Elan3 — the 'Achilles heel'")

    # §5 projections
    print("\n§5 projections (what OS-bypass would do):")
    ob_cfg = TuningConfig.os_bypass_projection(9000)
    ob_thr = measure_throughput(ob_cfg, 8948, count=1536)
    ob_lat = measure_latency(TuningConfig.os_bypass_projection(1500))
    csa_thr = measure_throughput(ob_cfg.replace(csa=True), 8948,
                                 count=1536)
    print(f"  OS-bypass over PCI-X : {ob_thr / 1e9:.2f} Gb/s, "
          f"{ob_lat * 1e6:.1f} us (paper: 'approaching 8 Gb/s, below "
          "10 us')")
    print(f"  ... + CSA (no I/O bus): {csa_thr / 1e9:.2f} Gb/s — "
          "wire-limited")


if __name__ == "__main__":
    main()
