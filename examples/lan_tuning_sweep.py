#!/usr/bin/env python
"""The LAN/SAN case study: walk the §3.3 optimization ladder.

Reproduces the narrative of the paper's Section 3.3 end to end:

1. stock TCP at 1500 and 9000 bytes MTU (Fig. 3, with the marked dip),
2. + PCI-X burst size 512 -> 4096,
3. + uniprocessor kernel,
4. + oversized 256 KB windows (Fig. 4, dip eliminated),
5. non-standard MTUs 8160 / 16000 (Fig. 5, > 4 Gb/s).

Run:  python examples/lan_tuning_sweep.py [--full]

``--full`` uses paper-scale averaging (slower).
"""

import argparse

from repro.analysis.figures import Figure, Series
from repro.analysis.tables import format_table
from repro.core.casestudy import CaseStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale averaging (slow)")
    args = parser.parse_args()

    study = CaseStudy(write_count=4096 if args.full else 512,
                      points=20 if args.full else 9)

    print("running the cumulative optimization ladder "
          "(this simulates dozens of NTTCP sweeps)...\n")
    results = study.run_ladder(mtus=(1500, 9000))

    rows = []
    for step in results:
        for mtu, curve in step.curves.items():
            rows.append({
                "optimization step": step.step.name,
                "mtu": mtu,
                "peak (Gb/s)": round(curve.peak_gbps, 2),
                "avg (Gb/s)": round(curve.average_gbps, 2),
                "paper peak": step.paper_peak(mtu) or "-",
                "rx load": round(curve.mean_receiver_load, 2),
            })
    print(format_table(rows, title="Section 3.3 ladder, measured vs paper"))

    # Fig. 3 reproduction: the stock curves with the marked dip
    stock = results[0]
    fig3 = Figure(title="Figure 3 (reproduced): stock TCP",
                  xlabel="payload (bytes)", ylabel="Gb/s")
    for mtu, curve in stock.curves.items():
        fig3.add(Series(f"{mtu} MTU", curve.payloads, curve.goodputs_gbps))
    print("\n" + fig3.render())
    dip = stock.curves[9000].dip(7436, 8948)
    print(f"\nstock 9000-MTU dip in [7436, 8948]: {dip * 100:.0f}% "
          "(the paper's 'marked dip')")

    windowed = results[-1]
    dip_fixed = windowed.curves[9000].dip(7436, 8948)
    print(f"after oversized windows           : {dip_fixed * 100:.0f}% "
          "(paper: eliminated)")

    # Fig. 5: non-standard MTUs
    print("\nnon-standard MTUs (Fig. 5):")
    curves = study.run_mtu_tuning(mtus=(8160, 16000))
    for mtu, curve in curves.items():
        print(f"  MTU {mtu:>5}: peak {curve.peak_gbps:.2f} Gb/s, "
              f"avg {curve.average_gbps:.2f} Gb/s")
    print("  (paper: 4.11 Gb/s peak at 8160 — a frame fits one 8 KB "
          "allocator block)")


if __name__ == "__main__":
    main()
