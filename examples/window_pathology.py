#!/usr/bin/env python
"""§3.5.1 forensics: why large MTUs magnify TCP's window problems.

Walks through the paper's analysis with live evidence from the
simulator:

1. the expected vs actual advertised window (tcpdump on the ACK path),
2. the MSS-alignment arithmetic (Fig. 8) and the sender/receiver MSS
   mismatch worked example,
3. the throughput dip it causes in the stock configuration — and the
   oversized-window band-aid the paper criticises but uses.

Run:  python examples/window_pathology.py
"""

from repro.analysis.tables import format_kv, format_table
from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.analytic import (
    bandwidth_delay_product,
    mss_aligned_window,
    sender_receiver_mismatch,
    window_efficiency,
)
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run
from repro.tools.tcpdump import Tcpdump
from repro.units import Gbps, us


def main() -> None:
    # --- 1. expected vs observed advertised window -----------------------
    bdp = bandwidth_delay_product(Gbps(10), 2 * us(19))
    print(f"ideal window at 10 Gb/s x 19 us latency: {bdp / 1024:.1f} KB "
          "(the paper's ~48 KB)")

    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    dump = Tcpdump(env, bb.links[1])   # tap the ACK path
    nttcp_run(env, conn, payload=8948, count=512)
    windows = dump.advertised_windows()
    steady = windows[len(windows) // 4:]
    mss = conn.receiver.align_mss
    print(f"\ntcpdump on the ACK path ({len(windows)} ACKs captured):")
    print(f"  alignment MSS            : {mss} bytes")
    print(f"  advertised windows seen  : min {min(steady)}, "
          f"max {max(steady)} bytes")
    print(f"  all MSS-aligned?         : "
          f"{all(w % mss == 0 for w in windows)}")
    print(f"  windows below 'expected' 48 KB: "
          f"{sum(w < 48 * 1024 for w in steady)}/{len(steady)} "
          "(the paper: 'significantly smaller than the expected value')")

    # --- 2. the arithmetic (Fig. 8 + the worked example) ------------------
    ideal = 26 * 1024
    print(f"\nFig. 8 arithmetic: ideal window {ideal} B, MSS 8960")
    print(format_kv({
        "best MSS-aligned window": mss_aligned_window(ideal, 8960),
        "efficiency": window_efficiency(ideal, 8960),
    }))
    m = sender_receiver_mismatch()
    print("\nworked example (sender MSS 8960, receiver MSS 8948, "
          "33000 B socket memory):")
    print(format_kv({
        "advertised window": m.advertised_window,
        "loss at the receiver": f"{m.advertised_loss * 100:.0f}%",
        "sender-usable window": m.usable_window,
        "total loss": f"{m.usable_loss * 100:.0f}%  (paper: 'nearly 50%')",
    }))

    # --- 3. the dip, and the band-aid -------------------------------------
    print("\nthroughput across the dip band (stock vs 256 KB windows):")
    rows = []
    for payload in (4474, 7436, 8948, 16384):
        vals = {"payload": payload}
        for label, cfg in (("stock (Gb/s)", TuningConfig.stock(9000)),
                           ("256KB windows (Gb/s)",
                            TuningConfig.oversized_windows(9000))):
            env = Environment()
            bb = BackToBack.create(env, cfg)
            conn = TcpConnection(env, bb.a, bb.b)
            vals[label] = round(
                nttcp_run(env, conn, payload, 384).goodput_gbps, 2)
        rows.append(vals)
    print(format_table(rows))
    print("\nthe paper's verdict: oversizing buffers is 'a poor band-aid "
          "solution in general' —\nthe real fixes are fractional-MSS "
          "window increments and better receive-side MSS\nestimates "
          "(§3.5.1's bullet list).")


if __name__ == "__main__":
    main()
