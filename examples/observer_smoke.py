#!/usr/bin/env python
"""Observer smoke: live stream -> record -> replay, end to end.

CI runs this (the ``observer-smoke`` job) to prove the whole
observability loop works with nothing but the standard library:

1. start an :class:`~repro.serve.ObserverServer` on an ephemeral port
   and attach a raw SSE reader to ``GET /events``;
2. run a short back-to-back transfer under a chaotic
   :class:`~repro.chaos.FaultPlan` with a live
   :class:`~repro.telemetry.TelemetryBus` and a
   :class:`~repro.telemetry.RunRecorder` persisting the stream into a
   ``.reprorun`` bundle;
3. assert the SSE client saw at least one ``metrics`` and one ``chaos``
   event (plus traces and heartbeats) *while the run executed*;
4. reload the bundle and assert replay identity: every recorded event
   comes back, in sequence order, bit-identical to what was streamed.

Run:  PYTHONPATH=src python examples/observer_smoke.py
"""

import http.client
import json
import pathlib
import sys
import tempfile
import threading
import time

from repro.chaos import FaultPlan, FaultSpec, chaos_session
from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.serve import ObserverServer
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection
from repro.telemetry import (RunRecorder, TelemetryBus, load_bundle,
                             telemetry_session)
from repro.tools.nttcp import nttcp_run

PAYLOAD = 8948
COUNT = 512


class SseReader(threading.Thread):
    """Minimal SSE client: collects ``data:`` payloads off /events."""

    def __init__(self, port: int):
        super().__init__(daemon=True)
        self.port = port
        self.events = []
        self.done = threading.Event()

    def run(self) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=30)
        conn.request("GET", "/events")
        resp = conn.getresponse()
        buf = b""
        while not self.done.is_set():
            chunk = resp.read1(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n\n" in buf:
                frame, buf = buf.split(b"\n\n", 1)
                for line in frame.split(b"\n"):
                    if line.startswith(b"data: "):
                        self.events.append(json.loads(line[6:]))
        conn.close()


def http_get(port: int, path: str) -> bytes:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request("GET", path)
    resp = conn.getresponse()
    body = resp.read()
    conn.close()
    assert resp.status == 200, f"GET {path} -> {resp.status}"
    return body


def main() -> int:
    bundle_path = pathlib.Path(tempfile.mkdtemp()) / "smoke.reprorun"
    plan = FaultPlan(name="observer-smoke", seed=7, faults=(
        FaultSpec(kind="loss_burst", target="link:*", start_s=1e-4,
                  duration_s=2e-4, probability=0.3),
    ))

    bus = TelemetryBus()
    with ObserverServer(bus=bus, meta={"experiments": "smoke"}) as server:
        print(f"observer: {server.url}")
        assert http_get(server.port, "/healthz").strip() == b"ok"
        assert b"repro observer" in http_get(server.port, "/")
        meta = json.loads(http_get(server.port, "/meta"))
        assert meta["mode"] == "live", meta

        reader = SseReader(server.port)
        reader.start()
        time.sleep(0.2)  # let the subscription attach before the run

        recorder = RunRecorder(bus, bundle_path)
        with telemetry_session(trace=True, bus=bus):
            bus.publish_meta("run_start", experiment="smoke")
            with chaos_session(plan):
                env = Environment()
                link = BackToBack.create(
                    env, TuningConfig.oversized_windows(9000))
                conn = TcpConnection(env, link.a, link.b)
                nttcp_run(env, conn, payload=PAYLOAD, count=COUNT)
            bus.publish_meta("run_end", experiment="smoke")
        bundle = recorder.close()

        deadline = time.time() + 30
        while (len(reader.events) < bundle.event_count
               and time.time() < deadline):
            time.sleep(0.1)
        reader.done.set()
        reader.join(timeout=10)

    kinds = {}
    for ev in reader.events:
        kinds[ev["kind"]] = kinds.get(ev["kind"], 0) + 1
    print(f"streamed {len(reader.events)} events over SSE: "
          + ", ".join(f"{k}:{n}" for k, n in sorted(kinds.items())))
    assert kinds.get("metrics", 0) >= 1, "no metrics events over SSE"
    assert kinds.get("chaos", 0) >= 1, "no chaos events over SSE"
    assert kinds.get("trace", 0) >= 1, "no trace events over SSE"
    assert kinds.get("heartbeat", 0) >= 1, "no heartbeats over SSE"

    # Replay identity: the bundle re-drives a consumer with the exact
    # event sequence the live client saw.
    loaded = load_bundle(bundle_path)
    replayed = []
    count = loaded.replay(replayed.append)
    assert count == loaded.event_count == bundle.event_count
    assert len(reader.events) == count, \
        f"SSE saw {len(reader.events)} events, bundle has {count}"
    assert replayed == reader.events, "replayed stream != streamed events"
    summary = loaded.summary()
    assert summary["chaos_events"] >= 1
    print(f"bundle {bundle_path}: {count} events replayed bit-identically "
          f"({summary['chaos_events']} chaos events)")

    # Replay serving: the same bundle over the dashboard endpoints.
    with ObserverServer(bundle=loaded) as server:
        meta = json.loads(http_get(server.port, "/meta"))
        assert meta["mode"] == "replay", meta
        events = json.loads(http_get(server.port, "/bundle"))
        assert len(events) == count
    print("observer smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
