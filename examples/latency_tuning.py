#!/usr/bin/env python
"""Latency study (Figs. 6-7): interrupt coalescing and the switch hop.

Measures NetPipe-style ping-pong latency versus payload size in four
configurations: {back-to-back, through the FastIron 1500} x
{5 µs coalescing, coalescing off}.  Paper numbers: 19 / 25 µs base with
coalescing, 14 µs back-to-back without — "we trivially shave off an
additional 5 µs by simply turning off interrupt coalescing."

Run:  python examples/latency_tuning.py
"""

from repro.analysis.figures import Figure, Series
from repro.core.latencyreport import DEFAULT_LATENCY_PAYLOADS, LatencyStudy


def main() -> None:
    study = LatencyStudy(iterations=6)
    payloads = DEFAULT_LATENCY_PAYLOADS[::2]

    print("measuring ping-pong latencies (four configurations)...\n")
    curves = [
        study.measure(5.0, False, payloads),
        study.measure(5.0, True, payloads),
        study.measure(0.0, False, payloads),
        study.measure(0.0, True, payloads),
    ]

    fig = Figure(title="Figures 6-7 (reproduced): end-to-end latency",
                 xlabel="payload (bytes)", ylabel="latency (us)")
    for curve in curves:
        fig.add(Series(curve.label, curve.payloads, curve.latencies_us))
    print(fig.render())

    print("\nbase (1-byte) latencies:")
    paper = {("back-to-back", 5.0): 19.0, ("switch", 5.0): 25.0,
             ("back-to-back", 0.0): 14.0, ("switch", 0.0): 20.0}
    for curve in curves:
        where = "switch" if curve.through_switch else "back-to-back"
        ref = paper.get((where, curve.coalescing_us))
        ref_s = f"(paper: {ref:.0f})" if ref else ""
        print(f"  {curve.label:34s} {curve.base_latency_us:5.1f} us {ref_s}")

    b2b_on = curves[0]
    b2b_off = curves[2]
    print(f"\ncoalescing cost: "
          f"{b2b_on.base_latency_us - b2b_off.base_latency_us:.1f} us "
          "(paper: 5 us — the configured interrupt delay)")
    print(f"switch hop cost: "
          f"{curves[1].base_latency_us - b2b_on.base_latency_us:.1f} us "
          "(paper: ~6 us store-and-forward penalty)")
    print(f"growth 1B -> {payloads[-1]}B back-to-back: "
          f"{b2b_on.growth_fraction * 100:.0f}% (paper: ~20%)")


if __name__ == "__main__":
    main()
