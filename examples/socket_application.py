#!/usr/bin/env python
"""Writing an application against the simulated stack: the sockets idiom.

The paper's pitch for 10GbE against Myrinet/QsNet is that applications
keep their sockets code.  This example honours that: a tiny
client/server "file transfer" written with send/recv against the
simulated network, run under three tuning states to show what the
application experiences without changing a line of application code.

Run:  python examples/socket_application.py
"""

from repro import BackToBack, Environment, TuningConfig, connect
from repro.units import MB


FILE_BYTES = 64 * MB(1)


def transfer(config: TuningConfig, label: str) -> None:
    env = Environment()
    testbed = BackToBack.create(env, config)
    tx, rx = connect(env, testbed.a, testbed.b)
    stats = {}

    def client():
        # the whole application: push the file through the socket
        yield from tx.sendall(FILE_BYTES, chunk=256 * 1024)

    def server():
        t0 = env.now
        yield from rx.recv_exactly(FILE_BYTES)
        stats["elapsed"] = env.now - t0

    env.process(client(), name="client")
    done = env.process(server(), name="server")
    env.run(until=done)
    rate = FILE_BYTES * 8 / stats["elapsed"] / 1e9
    print(f"  {label:34s} {FILE_BYTES // MB(1):>4d} MB in "
          f"{stats['elapsed'] * 1e3:7.1f} ms  ->  {rate:5.2f} Gb/s")


def main() -> None:
    print("same application, three host tuning states "
          "(no application changes):\n")
    transfer(TuningConfig.stock(1500), "stock, 1500-byte MTU")
    transfer(TuningConfig.fully_tuned(8160), "fully tuned (the paper's 4.11)")
    transfer(TuningConfig.os_bypass_projection(9000).replace(csa=True),
             "§5 projection (OS-bypass + CSA)")
    print("\nThe application above is plain sockets code — the paper's "
          "argument for\ncommodity 10GbE over interconnects that require "
          "rewriting to GM/Elan3 APIs.")


if __name__ == "__main__":
    main()
