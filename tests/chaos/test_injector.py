"""Unit tests for the chaos injector: windows, targets, activation."""

import os

import pytest

from repro.chaos import (ChaosSession, FaultPlan, FaultSpec, chaos_session)
from repro.chaos import hooks
from repro.config import TuningConfig
from repro.errors import ChaosError
from repro.net.ethernet import EthernetLink
from repro.net.topology import BackToBack
from repro.net.wanpath import PosCircuit, Router
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.telemetry import telemetry_session
from repro.telemetry.points import CATALOG
from repro.tools.nttcp import nttcp_run
from repro.units import Gbps


class Collector:
    def __init__(self, env):
        self.env = env
        self.frames = []

    def receive_frame(self, skb):
        self.frames.append((skb.seq, skb.kind, self.env.now))


def make_skb(seq, kind="data"):
    return SkBuff(payload=1000, headers=52, kind=kind, seq=seq,
                  end_seq=seq + 1000)


def single_fault_plan(seed=0, **spec_overrides):
    spec = dict(kind="link_flap", target="link:lab.*", start_s=1.0,
                duration_s=1.0)
    spec.update(spec_overrides)
    return FaultPlan(name="unit", seed=seed, faults=(FaultSpec(**spec),))


def build_link(env, name="lab.link"):
    link = EthernetLink(env, Gbps(10), 0.0, 9000, name=name)
    sink = Collector(env)
    link.connect(sink)
    return link, sink


def transmit_at(env, link, times, kind="data"):
    for i, t in enumerate(times):
        env.schedule_call_at(t, link.transmit, make_skb(i * 1000, kind))


# -- window semantics ------------------------------------------------------------

def test_link_flap_drops_only_inside_window():
    plan = single_fault_plan()  # window [1.0, 2.0)
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [0.5, 1.5, 2.5])
        env.run()
        row = session.injector_for(env).summary()[0]
    assert [seq for seq, _, _ in sink.frames] == [0, 2000]
    assert row["matched"] == ["lab.link"]
    assert row["fired"] and row["recovered"]
    assert row["frames"] == 1 and row["drops"] == 1


def test_window_open_inclusive_close_exclusive():
    """A frame at the exact opening instant is faulted; at the closing
    instant it is not — the injector's events are scheduled up-front so
    they win (time, seq) ties against later-scheduled deliveries."""
    plan = single_fault_plan()
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        injector = session.injector_for(env)

        def deliver(seq):
            injector._taps[id(link)].receive_frame(make_skb(seq))

        env.schedule_call_at(1.0, deliver, 0)     # exactly at open: faulted
        env.schedule_call_at(2.0, deliver, 1000)  # exactly at close: clean
        env.run()
    assert [seq for seq, _, _ in sink.frames] == [1000]


def test_frame_kind_filter_skips_mismatches():
    plan = single_fault_plan(kinds=("data",))
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.2, 1.4], kind="ack")
        env.run()
        row = session.injector_for(env).summary()[0]
    assert len(sink.frames) == 2
    assert row["frames"] == 0 and row["drops"] == 0


def test_loss_burst_probability_is_seed_deterministic():
    times = [1.0 + i * 1e-4 for i in range(40)]

    def run(seed):
        plan = single_fault_plan(seed=seed, kind="loss_burst",
                                 probability=0.5, duration_s=1.0)
        with chaos_session(plan) as session:
            env = Environment()
            link, sink = build_link(env)
            transmit_at(env, link, times)
            env.run()
            row = session.injector_for(env).summary()[0]
        return [seq for seq, _, _ in sink.frames], row["drops"]

    delivered_a, drops_a = run(seed=7)
    delivered_b, drops_b = run(seed=7)
    assert delivered_a == delivered_b and drops_a == drops_b
    assert 0 < drops_a < len(times)  # p=0.5 over 40 frames: partial loss


def test_corruption_accounted_separately_from_drops():
    plan = single_fault_plan(kind="corruption", duration_s=1.0)
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.2, 1.4])
        env.run()
        row = session.injector_for(env).summary()[0]
    assert not sink.frames
    assert row["corrupts"] == 2 and row["drops"] == 0


def test_duplicate_delivers_stale_copy():
    plan = single_fault_plan(kind="duplicate")
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.2, 1.4])
        env.run()
        row = session.injector_for(env).summary()[0]
    seqs = [seq for seq, _, _ in sink.frames]
    assert seqs == [0, 0, 1000, 1000]
    assert row["dups"] == 2


def test_reorder_window_lets_later_frames_overtake():
    plan = single_fault_plan(kind="reorder_window", start_s=1.0,
                             duration_s=0.15, delay_s=0.5)
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.1, 1.2, 1.3])  # only 1.1 is in-window
        env.run()
        row = session.injector_for(env).summary()[0]
    assert [seq for seq, _, _ in sink.frames] == [1000, 2000, 0]
    assert row["holds"] == 1


def test_unmatched_fault_is_a_noop():
    plan = single_fault_plan(target="link:no.such.component")
    with chaos_session(plan) as session:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.2])
        env.run()
        injector = session.injector_for(env)
    assert len(sink.frames) == 1
    assert injector.unmatched == [0]
    row = injector.summary()[0]
    assert row["matched"] == [] and not row["fired"]


def test_buffer_degrade_shrinks_then_restores_capacity():
    plan = FaultPlan(name="unit", faults=(
        FaultSpec(kind="buffer_degrade", target="router:lab.rtr",
                  start_s=1.0, duration_s=1.0, factor=0.01),))
    with chaos_session(plan) as session:
        env = Environment()
        circuit = PosCircuit(env, 2.5e9, 0.0, name="lab.pos")
        circuit.connect(Collector(env))
        router = Router(env, circuit, name="lab.rtr", queue_frames=8)
        for i in range(6):  # burst inside the window at capacity 1
            env.schedule_call_at(1.5, router.receive_frame, make_skb(i * 1000))
        env.run()
        row = session.injector_for(env).summary()[0]
    assert row["fired"] and row["recovered"]
    assert router.queue.capacity == 8  # restored at window close
    assert router.drops.total > 0     # degraded queue shed the burst


# -- full-stack faults (NIC / CPU) -----------------------------------------------

def _transfer(plan, count=16):
    cm = chaos_session(plan) if plan is not None else None
    session = cm.__enter__() if cm is not None else None
    try:
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        result = nttcp_run(env, conn, payload=conn.mss, count=count)
        row = (session.injector_for(env).summary()[0]
               if session is not None else None)
    finally:
        if cm is not None:
            cm.__exit__(None, None, None)
    return result, env.now, row


def test_nic_stall_parks_frames_until_recovery():
    plan = FaultPlan(name="unit", faults=(
        FaultSpec(kind="nic_stall", target="nic:hostB.eth0",
                  start_s=0.0, duration_s=0.01, kinds=("*",)),))
    result, now, row = _transfer(plan)
    assert row["fired"] and row["recovered"]
    assert row["holds"] > 0
    assert result.bytes_delivered > 0
    assert now > 0.01  # nothing could complete before the stall lifted


def test_nic_reset_drops_ingress_and_tcp_recovers():
    plan = FaultPlan(name="unit", faults=(
        FaultSpec(kind="nic_reset", target="nic:hostB.eth0",
                  start_s=0.0, duration_s=0.005),))
    result, _, row = _transfer(plan)
    assert row["fired"] and row["recovered"]
    assert row["drops"] > 0
    assert result.bytes_delivered > 0  # retransmissions made it whole


def test_cpu_contention_slows_the_transfer():
    clean, now_clean, _ = _transfer(None)
    plan = FaultPlan(name="unit", faults=(
        FaultSpec(kind="cpu_contention", target="cpu:hostA.cpu",
                  start_s=0.0, duration_s=0.01, factor=0.9),))
    contended, now_chaos, row = _transfer(plan)
    # The window outlives the transfer (the run stops when the last byte
    # lands), so only the firing is observable here.
    assert row["fired"]
    assert contended.bytes_delivered == clean.bytes_delivered
    assert now_chaos > now_clean


# -- activation surfaces ---------------------------------------------------------

def test_nested_chaos_session_rejected():
    with chaos_session(FaultPlan()):
        with pytest.raises(ChaosError):
            with chaos_session(FaultPlan()):
                pass  # pragma: no cover


def test_chaos_session_accepts_dict_and_path(tmp_path):
    plan = single_fault_plan()
    with chaos_session(plan.to_dict()) as session:
        assert session.plan == plan
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    with chaos_session(path) as session:
        assert session.plan == plan


def test_session_requires_a_plan():
    with pytest.raises(ChaosError):
        ChaosSession("not a plan")


def test_empty_plan_attaches_no_injector():
    with chaos_session(FaultPlan()) as session:
        env = Environment()
        assert session.injector_for(env) is None


def test_env_var_arms_a_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(single_fault_plan().to_json())
    os.environ[hooks.CHAOS_ENV] = str(path)
    try:
        env = Environment()
        link, sink = build_link(env)
        transmit_at(env, link, [1.5])
        env.run()
    finally:
        del os.environ[hooks.CHAOS_ENV]
        hooks._ENV_SESSIONS.pop(str(path), None)
    assert sink.frames == []  # flap window swallowed the frame


# -- telemetry -------------------------------------------------------------------

def test_chaos_points_posted_and_cataloged():
    plan = single_fault_plan(kind="loss_burst", probability=1.0)
    with telemetry_session(trace=True) as ts:
        with chaos_session(plan) as session:
            env = Environment()
            link, _ = build_link(env)
            transmit_at(env, link, [1.5])
            env.run()
            assert session.injector_for(env).summary()[0]["drops"] == 1
    posted = {point for _, _, point, _, _ in ts.events
              if point.startswith("chaos.")}
    assert {"chaos.fault_armed", "chaos.fault_fired",
            "chaos.fault_recovered", "chaos.frame_drop"} <= posted
    assert posted <= set(CATALOG)
