"""Unit tests for the recovery analyzer and scorecard."""

import pytest

from repro.chaos import (FaultSpec, FaultWindow, analyze_goodput,
                         count_retransmits, cwnd_trough,
                         enrich_with_telemetry, render_scorecard)
from repro.errors import ChaosError


def vee_series():
    """Steady 10 Gb/s, a trough to 2 at t=10, linear climb back by t=20."""
    times = list(range(0, 31))
    rates = []
    for t in times:
        if t < 10:
            rates.append(10e9)
        elif t < 20:
            rates.append(2e9 + (t - 10) * 0.8e9)
        else:
            rates.append(10e9)
    return times, rates


def test_vee_recovery_quantities():
    times, rates = vee_series()
    rec, = analyze_goodput(times, rates, [(10.0, 11.0)],
                           recovered_fraction=0.95)
    assert rec.baseline_bps == pytest.approx(10e9)
    assert rec.trough_bps == pytest.approx(2e9)
    assert rec.recovered
    assert rec.time_to_recover_s == pytest.approx(10.0)
    assert rec.trough_fraction == pytest.approx(0.2)
    # Shortfall integral of the linear climb: sum of (10-rate)*1s steps.
    expected_lost = sum(10e9 - r for r in rates[10:20])
    assert rec.goodput_lost_bits == pytest.approx(expected_lost)
    assert rec.recovery_slope_bps_per_s == pytest.approx(0.8e9)
    assert 0 < rec.score < 100


def test_unrecovered_series_scores_lower():
    times = list(range(0, 21))
    rates = [10e9] * 10 + [1e9] * 11  # drops and never comes back
    rec, = analyze_goodput(times, rates, [(10.0, 11.0)])
    assert not rec.recovered
    assert rec.time_to_recover_s == pytest.approx(10.0)  # runs to horizon
    times2, rates2 = vee_series()
    healthy, = analyze_goodput(times2, rates2, [(10.0, 11.0)])
    assert rec.score < healthy.score


def test_fault_after_series_is_perfect_score():
    times, rates = vee_series()
    rec, = analyze_goodput(times, rates, [(1000.0, 1001.0)])
    assert rec.recovered and rec.score == 100
    assert rec.goodput_lost_bits == 0.0


def test_fault_descriptions_normalized():
    times, rates = vee_series()
    window = FaultWindow(start_s=10.0, end_s=11.0, kind="loss_burst")
    spec = FaultSpec(kind="loss_burst", target="link:x", start_s=10.0,
                     duration_s=1.0)
    row = {"index": 3, "kind": "loss_burst", "target": "x",
           "label": "from summary()", "start_s": 10.0, "duration_s": 1.0}
    recs = analyze_goodput(times, rates, [window, spec, row, (10.0, 11.0)])
    assert len(recs) == 4
    assert len({r.time_to_recover_s for r in recs}) == 1
    assert recs[2].index == 3 and recs[2].label == "from summary()"
    with pytest.raises(ChaosError):
        analyze_goodput(times, rates, [object()])


def test_series_validation():
    with pytest.raises(ChaosError):
        analyze_goodput([0, 1], [1.0], [(0.0, 1.0)])
    with pytest.raises(ChaosError):
        analyze_goodput([0], [1.0], [(0.0, 1.0)])
    with pytest.raises(ChaosError):
        analyze_goodput([0, 1], [1.0, 1.0], [(0.0, 1.0)],
                        recovered_fraction=0.0)


def test_telemetry_enrichment():
    events = [
        ("tcp", 10.5, "tcp.tx.retransmit", 1, {}),
        ("tcp", 11.5, "tcp.tx.retransmit", 2, {}),
        ("tcp", 50.0, "tcp.tx.retransmit", 3, {}),   # outside the window
        ("tcp", 10.6, "tcp.cwnd.update", 1, {"cwnd": 18.0}),
        ("tcp", 11.0, "tcp.cwnd.update", 1, {"cwnd": 3.0}),
        ("tcp", 12.0, "tcp.cwnd.update", 1, {"cwnd": 7.0}),
    ]
    assert count_retransmits(events, 10.0, 20.0) == 2
    assert cwnd_trough(events, 10.0, 20.0) == 3.0
    assert cwnd_trough(events, 100.0) is None
    times, rates = vee_series()
    recs = analyze_goodput(times, rates, [(10.0, 11.0)])
    enriched, = enrich_with_telemetry(recs, events)
    assert enriched.retransmits == 2
    assert enriched.cwnd_trough == 3.0


def test_render_scorecard_smoke():
    times, rates = vee_series()
    recs = analyze_goodput(times, rates, [(10.0, 11.0)])
    recs = enrich_with_telemetry(recs, [])
    text = render_scorecard(recs, title="Unit scorecard")
    assert "Unit scorecard" in text
    assert "baseline" in text and "score" in text
    assert "10.00 Gb/s" in text
