"""The result cache must never alias chaotic and clean runs."""

from repro.cache import ResultCache, stable_key
from repro.chaos import FaultPlan, FaultSpec, chaos_session


def make_plan(probability=0.5):
    return FaultPlan(name="cache", seed=3, faults=(
        FaultSpec(kind="loss_burst", target="link:xover.*", start_s=0.0,
                  duration_s=1.0, probability=probability),))


def test_no_plan_and_empty_plan_share_keys():
    clean = stable_key("cfg", 1500)
    with chaos_session(FaultPlan()):
        assert stable_key("cfg", 1500) == clean


def test_different_plans_produce_different_keys():
    clean = stable_key("cfg", 1500)
    with chaos_session(make_plan(probability=0.5)):
        key_a = stable_key("cfg", 1500)
    with chaos_session(make_plan(probability=0.6)):
        key_b = stable_key("cfg", 1500)
    assert len({clean, key_a, key_b}) == 3


def test_equal_plans_share_keys():
    with chaos_session(make_plan()):
        key_a = stable_key("cfg", 1500)
    with chaos_session(make_plan()):  # rebuilt, equal content
        key_b = stable_key("cfg", 1500)
    assert key_a == key_b


def test_result_cache_misses_across_plans(tmp_path):
    """Two identical configurations under different fault plans must not
    see each other's cached results."""
    cache = ResultCache(tmp_path / "cache")
    with chaos_session(make_plan(probability=0.5)):
        cache.put(cache.key("point", 9000), {"goodput": 1.0})
    with chaos_session(make_plan(probability=0.9)):
        hit, _ = cache.get(cache.key("point", 9000))
        assert not hit  # different plan: recompute
    with chaos_session(make_plan(probability=0.5)):
        hit, value = cache.get(cache.key("point", 9000))
        assert hit and value == {"goodput": 1.0}  # same plan: reuse
    hit, _ = cache.get(cache.key("point", 9000))
    assert not hit  # chaos-off must not see chaotic results either
