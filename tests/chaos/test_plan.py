"""Unit tests for the declarative fault-plan model."""

import pytest

from repro.chaos.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.errors import ChaosError


def make_spec(**overrides):
    base = dict(kind="loss_burst", target="link:xover.*", start_s=1.0,
                duration_s=0.5, probability=0.5, label="test")
    base.update(overrides)
    return FaultSpec(**base)


def make_plan(**overrides):
    base = dict(name="demo", seed=7, faults=(make_spec(),))
    base.update(overrides)
    return FaultPlan(**base)


# -- validation ------------------------------------------------------------------

def test_every_documented_kind_constructs():
    for kind in FAULT_KINDS:
        spec = FaultSpec(kind=kind, target="*", start_s=0.0, duration_s=1.0)
        assert spec.kind == kind


@pytest.mark.parametrize("overrides", [
    {"kind": "meteor_strike"},
    {"target": ""},
    {"target": "quantum:*"},           # unknown category prefix
    {"target": "cpu:hostA.cpu"},       # loss_burst cannot target a CPU
    {"start_s": -1.0},
    {"duration_s": 0.0},
    {"duration_s": -2.0},
    {"probability": 1.5},
    {"probability": -0.1},
    {"delay_s": -1e-6},
    {"factor": 0.0},
    {"factor": -1.0},
    {"kinds": ()},
])
def test_invalid_specs_rejected(overrides):
    with pytest.raises(ChaosError):
        make_spec(**overrides)


def test_kind_category_pairing_enforced():
    FaultSpec(kind="buffer_degrade", target="router:wan.*",
              start_s=0.0, duration_s=1.0)
    with pytest.raises(ChaosError):
        FaultSpec(kind="buffer_degrade", target="link:wan.*",
                  start_s=0.0, duration_s=1.0)


def test_plan_rejects_bad_members():
    with pytest.raises(ChaosError):
        FaultPlan(seed="not-an-int")
    with pytest.raises(ChaosError):
        FaultPlan(seed=True)
    with pytest.raises(ChaosError):
        FaultPlan(faults=({"kind": "loss_burst"},))


# -- derived fields --------------------------------------------------------------

def test_window_and_target_accessors():
    spec = make_spec(start_s=2.0, duration_s=0.25)
    assert spec.end_s == 2.25
    assert spec.category == "link"
    assert spec.name_glob == "xover.*"
    bare = make_spec(target="xover.fwd")
    assert bare.category == ""
    assert bare.name_glob == "xover.fwd"


def test_frame_kind_matching():
    assert make_spec(kinds=("data",)).matches_frame_kind("data")
    assert not make_spec(kinds=("data",)).matches_frame_kind("ack")
    assert make_spec(kinds=("*",)).matches_frame_kind("ack")


def test_kinds_coerced_to_tuple():
    spec = make_spec(kinds=["data", "ack"])
    assert spec.kinds == ("data", "ack")


def test_plan_is_empty():
    assert FaultPlan().is_empty
    assert not make_plan().is_empty


def test_with_faults_replaces():
    plan = make_plan()
    emptied = plan.with_faults(())
    assert emptied.is_empty
    assert emptied.name == plan.name and emptied.seed == plan.seed


# -- serialization ---------------------------------------------------------------

def test_dict_round_trip():
    plan = make_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_json_round_trip():
    plan = make_plan(faults=(make_spec(), make_spec(kind="reorder_window",
                                                    delay_s=1e-3)))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_from_dict_string_kinds_coerced():
    data = make_spec().to_dict()
    data["kinds"] = "ack"
    assert FaultSpec.from_dict(data).kinds == ("ack",)


def test_unknown_fields_rejected():
    spec_data = make_spec().to_dict()
    spec_data["blast_radius"] = 9000
    with pytest.raises(ChaosError):
        FaultSpec.from_dict(spec_data)
    plan_data = make_plan().to_dict()
    plan_data["severity"] = "extreme"
    with pytest.raises(ChaosError):
        FaultPlan.from_dict(plan_data)


def test_non_dict_inputs_rejected():
    with pytest.raises(ChaosError):
        FaultSpec.from_dict(["kind", "loss_burst"])
    with pytest.raises(ChaosError):
        FaultPlan.from_dict("loss everywhere")
    with pytest.raises(ChaosError):
        FaultPlan.from_dict({"faults": "all of them"})


def test_invalid_json_reported():
    with pytest.raises(ChaosError):
        FaultPlan.from_json("{not json")


def test_load_from_file(tmp_path):
    path = tmp_path / "plan.json"
    plan = make_plan()
    path.write_text(plan.to_json())
    assert FaultPlan.load(path) == plan


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(ChaosError):
        FaultPlan.load(tmp_path / "nope.json")


# -- fingerprint -----------------------------------------------------------------

def test_fingerprint_stable_across_construction_routes(tmp_path):
    plan = make_plan()
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert plan.fingerprint() == FaultPlan.load(path).fingerprint()
    assert plan.fingerprint() == FaultPlan.from_dict(
        plan.to_dict()).fingerprint()


def test_fingerprint_sensitive_to_every_field():
    base = make_plan()
    variants = [
        make_plan(name="other"),
        make_plan(seed=8),
        make_plan(faults=()),
        make_plan(faults=(make_spec(probability=0.51),)),
        make_plan(faults=(make_spec(start_s=1.0001),)),
        make_plan(faults=(make_spec(kinds=("*",)),)),
        make_plan(faults=(make_spec(), make_spec())),
    ]
    fingerprints = {base.fingerprint()} | {v.fingerprint() for v in variants}
    assert len(fingerprints) == len(variants) + 1
