"""Unit tests for the copy-cost engine."""

import pytest

from repro.errors import ConfigError
from repro.oskernel.copyengine import CopyEngine
from repro.units import Gbps


def test_copy_time_at_stream_rate():
    eng = CopyEngine(stream_copy_bps=Gbps(8))
    # 1 byte at 8 Gb/s = 1 ns
    assert eng.copy_time(1) == pytest.approx(1e-9)
    assert eng.copy_time(1000) == pytest.approx(1e-6)


def test_checksum_cheaper_than_copy():
    eng = CopyEngine(stream_copy_bps=Gbps(8))
    assert eng.checksum_time(4096) < eng.copy_time(4096)


def test_default_read_rate_derived():
    eng = CopyEngine(stream_copy_bps=Gbps(8))
    assert eng.read_bps == pytest.approx(Gbps(8) * 1.6)


def test_explicit_read_rate_respected():
    eng = CopyEngine(stream_copy_bps=Gbps(8), read_bps=Gbps(20))
    assert eng.checksum_time(1000) == pytest.approx(8e3 / Gbps(20))


def test_offload_removes_checksum_pass():
    eng = CopyEngine(stream_copy_bps=Gbps(8))
    with_offload = eng.rx_byte_time(8192, checksum_offload=True)
    without = eng.rx_byte_time(8192, checksum_offload=False)
    assert without > with_offload
    assert without - with_offload == pytest.approx(eng.checksum_time(8192))


def test_tx_symmetric_behaviour():
    eng = CopyEngine(stream_copy_bps=Gbps(8))
    assert eng.tx_byte_time(1000, True) == pytest.approx(eng.copy_time(1000))
    assert eng.tx_byte_time(1000, False) > eng.tx_byte_time(1000, True)


def test_invalid_rate_rejected():
    with pytest.raises(ConfigError):
        CopyEngine(stream_copy_bps=0)
