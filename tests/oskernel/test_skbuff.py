"""Unit tests for SkBuff sizing."""

import pytest

from repro.oskernel.skbuff import (
    ETH_HEADER,
    ETH_OVERHEAD_WIRE,
    IP_HEADER,
    SkBuff,
    TCP_HEADER,
    TCP_TIMESTAMP_OPT,
    ip_tcp_header_bytes,
)


def make(payload=1448, headers=52, **kw):
    return SkBuff(payload=payload, headers=headers, **kw)


def test_frame_and_wire_bytes():
    skb = make(payload=1448, headers=52)
    assert skb.frame_bytes == 1448 + 52 + ETH_HEADER
    assert skb.wire_bytes == skb.frame_bytes + ETH_OVERHEAD_WIRE


def test_truesize_block_boundaries():
    # 8160-MTU frame fits 8 KB; 9000-MTU frame needs 16 KB
    skb_8160 = make(payload=8160 - 52, headers=52)
    assert skb_8160.truesize == 8192
    skb_9000 = make(payload=9000 - 52, headers=52)
    assert skb_9000.truesize == 16384


def test_unique_increasing_idents():
    a, b = make(), make()
    assert b.ident > a.ident


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        SkBuff(payload=-1)
    with pytest.raises(ValueError):
        SkBuff(payload=10, headers=-1)


def test_copy_for_retransmit_preserves_tcp_identity():
    skb = make(payload=1000, headers=52)
    skb.seq, skb.end_seq, skb.conn = 5000, 6000, "c1"
    clone = skb.copy_for_retransmit()
    assert clone.seq == 5000 and clone.end_seq == 6000
    assert clone.conn == "c1"
    assert clone.ident != skb.ident
    assert clone.meta["retransmit"] is True


def test_header_bytes_with_timestamps():
    assert ip_tcp_header_bytes(False) == IP_HEADER + TCP_HEADER
    assert ip_tcp_header_bytes(True) == IP_HEADER + TCP_HEADER + TCP_TIMESTAMP_OPT


def test_ack_frame_is_small_on_the_wire():
    ack = SkBuff(payload=0, headers=52, kind="ack", ack=12345)
    assert ack.frame_bytes == 52 + ETH_HEADER
    assert ack.truesize == 256  # minimum block
