"""Unit tests for SMP/UP kernel configuration."""

import pytest

from repro.config import TuningConfig
from repro.oskernel.kernelcfg import (
    KernelConfig,
    NAPI_RX_DISCOUNT,
    SMP_IRQ_TAX,
    SMP_PER_PACKET_TAX,
)


def test_from_tuning():
    smp = KernelConfig.from_tuning(TuningConfig.stock())
    assert smp.smp and not smp.napi
    up = KernelConfig.from_tuning(TuningConfig.uniprocessor())
    assert not up.smp


def test_smp_taxes_applied():
    smp = KernelConfig(smp=True, napi=False)
    assert smp.per_packet_tax == SMP_PER_PACKET_TAX > 1.0
    assert smp.irq_tax == SMP_IRQ_TAX > 1.0


def test_up_is_tax_free():
    up = KernelConfig(smp=False, napi=False)
    assert up.per_packet_tax == 1.0
    assert up.irq_tax == 1.0


def test_old_api_gets_no_batch_discount():
    old = KernelConfig(smp=False, napi=False)
    assert old.rx_batch_cost_factor(1) == 1.0
    assert old.rx_batch_cost_factor(8) == 1.0


def test_napi_discounts_batches():
    napi = KernelConfig(smp=False, napi=True)
    assert napi.rx_batch_cost_factor(1) == 1.0
    f4 = napi.rx_batch_cost_factor(4)
    assert f4 < 1.0
    # first frame full price, rest discounted
    expected = (1 + 3 * NAPI_RX_DISCOUNT) / 4
    assert f4 == pytest.approx(expected)


def test_napi_discount_monotone_in_batch():
    napi = KernelConfig(smp=False, napi=True)
    factors = [napi.rx_batch_cost_factor(b) for b in (1, 2, 4, 8, 16)]
    assert factors == sorted(factors, reverse=True)


def test_invalid_batch_rejected():
    with pytest.raises(ValueError):
        KernelConfig(smp=False, napi=True).rx_batch_cost_factor(0)


def test_describe():
    assert KernelConfig(smp=True, napi=False).describe() == "SMP"
    assert KernelConfig(smp=False, napi=True).describe() == "UP+NAPI"
