"""Unit tests for the /proc/sys emulation."""

import pytest

from repro.config import TuningConfig
from repro.errors import SysctlError
from repro.oskernel.sysctl import SysctlTable


def test_rmem_triplet_uses_max():
    t = SysctlTable()
    t.write("net/ipv4/tcp_rmem", "4096 87380 33554432")
    cfg = t.apply(TuningConfig.stock())
    assert cfg.tcp_rmem == 33554432


def test_single_value_accepted():
    t = SysctlTable()
    t.write("net/core/wmem_max", "8388608")
    assert t.apply(TuningConfig.stock()).tcp_wmem == 8388608


def test_proc_sys_prefix_and_dots_normalized():
    t = SysctlTable()
    t.write("/proc/sys/net/ipv4/tcp_rmem", "1048576")
    t.write("net.ipv4.tcp_wmem", "2097152")
    cfg = t.apply(TuningConfig.stock())
    assert cfg.tcp_rmem == 1048576
    assert cfg.tcp_wmem == 2097152


def test_boolean_sysctls():
    t = SysctlTable()
    t.write("net/ipv4/tcp_timestamps", "0")
    t.write("net/ipv4/tcp_window_scaling", "1")
    cfg = t.apply(TuningConfig.stock())
    assert cfg.tcp_timestamps is False
    assert cfg.window_scaling is True


def test_boolean_rejects_other_values():
    t = SysctlTable()
    with pytest.raises(SysctlError):
        t.write("net/ipv4/tcp_timestamps", "2")


def test_unknown_key_rejected():
    with pytest.raises(SysctlError):
        SysctlTable().write("net/ipv4/no_such_thing", "1")


def test_non_integer_rejected():
    with pytest.raises(SysctlError):
        SysctlTable().write("net/core/rmem_max", "lots")


def test_non_positive_buffer_rejected():
    with pytest.raises(SysctlError):
        SysctlTable().write("net/ipv4/tcp_rmem", "0")


def test_read_back_raw_value():
    t = SysctlTable()
    t.write("net/core/rmem_max", "1048576")
    assert t.read("net/core/rmem_max") == "1048576"
    with pytest.raises(SysctlError):
        t.read("net/ipv4/tcp_rmem")


def test_apply_without_writes_is_identity():
    cfg = TuningConfig.stock()
    assert SysctlTable().apply(cfg) is cfg


def test_run_script_paper_recipe():
    """The exact §4 recipe shape (values from the paper's listing)."""
    script = """
    echo "4096 87380 128388607" > /proc/sys/net/ipv4/tcp_rmem
    echo "4096 65530 128388607" > /proc/sys/net/ipv4/tcp_wmem
    echo 128388607 > /proc/sys/net/core/wmem_max
    echo 128388607 > /proc/sys/net/core/rmem_max
    /sbin/ifconfig eth1 txqueuelen 10000
    /sbin/ifconfig eth1 mtu 9000
    """
    t = SysctlTable()
    t.run_script(script)
    cfg = t.apply(TuningConfig.stock(9000))
    assert cfg.tcp_rmem == 128388607
    assert cfg.tcp_wmem == 128388607


def test_run_script_skips_comments_and_blanks():
    t = SysctlTable()
    t.run_script("# comment\n\necho 1048576 > /proc/sys/net/core/rmem_max\n")
    assert t.apply(TuningConfig.stock()).tcp_rmem == 1048576


def test_run_script_echo_without_target_rejected():
    with pytest.raises(SysctlError):
        SysctlTable().run_script("echo 42\n")
