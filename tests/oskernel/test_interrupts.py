"""Tests for interrupt moderation (fixed and adaptive)."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.net.topology import BackToBack
from repro.oskernel.interrupts import InterruptModerator
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.netpipe import netpipe_latency
from repro.tools.nttcp import nttcp_run
from repro.units import us


class TestModeratorPolicy:
    def test_fixed_policy_returns_base_delay(self):
        mod = InterruptModerator(base_delay_s=us(5), adaptive=False)
        assert mod.arming_delay_s() == us(5)
        mod.note_arrival(0.0)
        mod.note_arrival(us(1))
        assert mod.arming_delay_s() == us(5)

    def test_adaptive_quiet_link_interrupts_immediately(self):
        mod = InterruptModerator(base_delay_s=us(5), adaptive=True)
        assert mod.arming_delay_s() == 0.0       # no history yet
        mod.note_arrival(0.0)
        mod.note_arrival(0.001)                   # 1 ms gap: idle
        assert mod.arming_delay_s() == 0.0

    def test_adaptive_busy_link_batches(self):
        mod = InterruptModerator(base_delay_s=us(5), adaptive=True)
        t = 0.0
        for _ in range(50):
            mod.note_arrival(t)
            t += us(2)                            # 500k pps
        delay = mod.arming_delay_s()
        assert 0 < delay <= mod.max_delay_s
        assert delay == pytest.approx(3 * us(2), rel=0.1)

    def test_adaptive_delay_capped(self):
        mod = InterruptModerator(base_delay_s=us(5), adaptive=True,
                                 max_delay_s=us(10))
        t = 0.0
        for _ in range(50):
            mod.note_arrival(t)
            t += us(8)
        assert mod.arming_delay_s() == us(10)

    def test_rate_estimate(self):
        mod = InterruptModerator(base_delay_s=0, adaptive=True)
        t = 0.0
        for _ in range(100):
            mod.note_arrival(t)
            t += us(10)
        assert mod.estimated_rate_pps == pytest.approx(1e5, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            InterruptModerator(base_delay_s=-1)
        with pytest.raises(ConfigError):
            InterruptModerator(base_delay_s=0, max_delay_s=-1)


class TestAdaptiveEndToEnd:
    def test_low_latency_without_giving_up_coalescing(self):
        """Adaptive moderation matches the coalescing-off latency
        (Fig. 7's 14 µs) on an idle link..."""
        cfg = TuningConfig(mtu=1500, mmrbc=4096, smp_kernel=False,
                           adaptive_coalescing=True)
        env = Environment()
        bb = BackToBack.create(env, cfg)
        fwd = TcpConnection(env, bb.a, bb.b)
        bwd = TcpConnection(env, bb.b, bb.a)
        lat = netpipe_latency(env, fwd, bwd, payload=1, iterations=4)
        assert lat.latency_us == pytest.approx(14.0, abs=1.5)

    def test_batching_survives_under_load(self):
        """...while a saturated link still amortises interrupts."""
        cfg = TuningConfig.oversized_windows(1500).replace(
            adaptive_coalescing=True)
        env = Environment()
        bb = BackToBack.create(env, cfg)
        conn = TcpConnection(env, bb.a, bb.b)
        nttcp_run(env, conn, payload=1448, count=512)
        nic = bb.b.nic
        assert nic.interrupts.total < nic.rx_frames.total * 0.9
