"""Unit tests for the power-of-two sk_buff allocator."""

import pytest

from repro.errors import AllocationError
from repro.oskernel.allocator import (
    BuddyAllocator,
    MAX_BLOCK,
    MIN_BLOCK,
    PAGE_SIZE,
    block_order,
    block_size_for,
)


class TestBlockSizeFor:
    def test_paper_mtu_arithmetic(self):
        # the §3.3 story: 8160-byte MTU frames fit an 8 KB block,
        # 9000-byte frames need 16 KB (wasting ~7 KB)
        assert block_size_for(8160 + 18) == 8192
        assert block_size_for(9000 + 18) == 16384
        assert block_size_for(16000 + 18) == 16384
        assert block_size_for(1500 + 18) == 2048

    def test_exact_power_of_two_fits(self):
        assert block_size_for(8192) == 8192
        assert block_size_for(8193) == 16384

    def test_minimum_block(self):
        assert block_size_for(1) == MIN_BLOCK

    def test_invalid_sizes(self):
        with pytest.raises(AllocationError):
            block_size_for(0)
        with pytest.raises(AllocationError):
            block_size_for(-5)
        with pytest.raises(AllocationError):
            block_size_for(MAX_BLOCK + 1)


class TestBlockOrder:
    def test_suborder_pages(self):
        assert block_order(256) == 0
        assert block_order(PAGE_SIZE) == 0

    def test_orders(self):
        assert block_order(8192) == 1
        assert block_order(16384) == 2
        assert block_order(32768) == 3


class TestBuddyAllocator:
    def test_alloc_free_accounting(self):
        alloc = BuddyAllocator()
        h = alloc.alloc(9018)
        assert h.block == 16384
        assert h.waste == 16384 - 9018
        assert alloc.outstanding_bytes == 16384
        alloc.free(h)
        assert alloc.outstanding_bytes == 0
        assert alloc.stats.live == 0

    def test_double_free_rejected(self):
        alloc = BuddyAllocator()
        h = alloc.alloc(100)
        alloc.free(h)
        with pytest.raises(AllocationError):
            alloc.free(h)

    def test_cost_grows_with_order(self):
        alloc = BuddyAllocator()
        c_small = alloc.alloc_cost(1518)     # order 0
        c_8k = alloc.alloc_cost(8178)        # order 1
        c_16k = alloc.alloc_cost(9018)       # order 2
        assert c_small < c_8k < c_16k

    def test_9000_and_16000_mtu_cost_the_same(self):
        # both land in 16 KB blocks: same allocator stress
        alloc = BuddyAllocator()
        assert alloc.alloc_cost(9018) == alloc.alloc_cost(16018)

    def test_waste_fraction(self):
        alloc = BuddyAllocator()
        alloc.alloc(9018)
        frac = alloc.stats.waste_fraction
        assert frac == pytest.approx(1 - 9018 / 16384)

    def test_waste_fraction_empty(self):
        assert BuddyAllocator().stats.waste_fraction == 0.0

    def test_by_block_histogram(self):
        alloc = BuddyAllocator()
        for _ in range(3):
            alloc.alloc(9018)
        alloc.alloc(1518)
        assert alloc.stats.by_block == {16384: 3, 2048: 1}

    def test_negative_costs_rejected(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(base_cost_s=-1e-9)
        with pytest.raises(AllocationError):
            BuddyAllocator(order_penalty_s=-1e-9)
