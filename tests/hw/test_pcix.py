"""Unit tests for the PCI-X bus model."""

import pytest

from repro.errors import ConfigError
from repro.sim import Environment
from repro.hw.pcix import PciXBus


@pytest.fixture
def bus():
    return PciXBus(Environment(), clock_mhz=133)


def test_peak_bandwidth(bus):
    # 133 MHz x 64 bit = 8.512 Gb/s (the paper rounds to 8.5)
    assert bus.peak_bps == pytest.approx(8.512e9)


def test_invalid_clock():
    with pytest.raises(ConfigError):
        PciXBus(Environment(), clock_mhz=90)


def test_transfer_time_includes_burst_overhead(bus):
    t_512 = bus.transfer_time(9018, mmrbc=512)
    t_4096 = bus.transfer_time(9018, mmrbc=4096)
    assert t_4096 < t_512
    # data time is identical; difference is pure burst count
    bursts_512 = -(-9018 // 512)
    bursts_4096 = -(-9018 // 4096)
    expected_delta = (bursts_512 - bursts_4096) * bus.burst_overhead_s
    assert t_512 - t_4096 == pytest.approx(expected_delta)


def test_effective_bandwidth_brackets_paper(bus):
    """Calibration targets: MMRBC 512 caps 9018-byte frames near
    2.8 Gb/s (stock Fig. 3 peak region); 4096 lifts it well above the
    observed 3.6-4.1 Gb/s host limits."""
    eff_512 = bus.effective_bps(9018, 512)
    eff_4096 = bus.effective_bps(9018, 4096)
    assert 2.5e9 < eff_512 < 3.1e9
    assert eff_4096 > 6.0e9


def test_small_frames_less_sensitive_to_mmrbc(bus):
    """§3.3: raising the burst size is 'marginal' for 1500-byte MTUs."""
    gain_1500 = (bus.effective_bps(1518, 4096) / bus.effective_bps(1518, 512))
    gain_9000 = (bus.effective_bps(9018, 4096) / bus.effective_bps(9018, 512))
    assert gain_9000 > gain_1500


def test_invalid_transfer_args(bus):
    with pytest.raises(ConfigError):
        bus.transfer_time(100, mmrbc=777)
    with pytest.raises(ConfigError):
        bus.transfer_time(0, mmrbc=512)


def test_dma_serializes_on_the_bus():
    env = Environment()
    bus = PciXBus(env, clock_mhz=133)
    done = []

    def xfer(tag):
        yield from bus.dma(4096, 4096)
        done.append((tag, env.now))

    env.process(xfer("a"))
    env.process(xfer("b"))
    env.run()
    t = bus.transfer_time(4096, 4096)
    assert done[0] == ("a", pytest.approx(t))
    assert done[1] == ("b", pytest.approx(2 * t))
    assert bus.bytes_moved == 8192


def test_utilization_tracks_busy_fraction():
    env = Environment()
    bus = PciXBus(env, clock_mhz=133)

    def xfer():
        yield from bus.dma(8192, 4096)

    env.process(xfer())
    env.run()
    busy = bus.transfer_time(8192, 4096)
    env.run(until=2 * busy)
    assert bus.utilization() == pytest.approx(0.5, rel=0.01)
