"""Unit tests for the adapter and host models."""

import pytest

from repro.config import TuningConfig
from repro.errors import TopologyError
from repro.hw.host import Host
from repro.hw.nic import RX_RING_FRAMES, TenGigAdapter
from repro.hw.presets import PE2650
from repro.net.ethernet import EthernetLink
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.units import Gbps, us


class Collector:
    """Terminal sink for frames."""

    def __init__(self):
        self.frames = []

    def receive_frame(self, skb):
        self.frames.append(skb)


def make_host_pair(config=None):
    env = Environment()
    cfg = config or TuningConfig.stock(9000)
    a = Host(env, PE2650, cfg, name="A")
    b = Host(env, PE2650, cfg, name="B")
    nic_a = TenGigAdapter(env, a, address="A.eth0")
    nic_b = TenGigAdapter(env, b, address="B.eth0")
    ab = EthernetLink(env, Gbps(10), 10.0, cfg.mtu, name="ab")
    nic_a.set_egress(ab)
    ab.connect(nic_b)
    return env, a, b, nic_a, nic_b


def test_send_without_egress_rejected():
    env = Environment()
    host = Host(env, PE2650, TuningConfig.stock())
    nic = TenGigAdapter(env, host, address="X.eth0")
    with pytest.raises(TopologyError):
        nic.send(SkBuff(payload=100, headers=52))


def test_frame_travels_host_to_host():
    env, a, b, nic_a, nic_b = make_host_pair()
    got = []
    b.register_handler("c1", lambda skb, batch: got.append((skb, env.now)))
    skb = SkBuff(payload=1000, headers=52, conn="c1", meta={"dst": "B.eth0"})
    nic_a.send(skb)
    env.run()
    assert len(got) == 1
    delivered, t = got[0]
    assert delivered.ident == skb.ident
    assert t > 0


def test_interrupt_coalescing_batches_frames():
    cfg = TuningConfig.stock(9000).replace(interrupt_coalescing_us=5.0)
    env, a, b, nic_a, nic_b = make_host_pair(cfg)
    batches = []
    b.register_handler("c1", lambda skb, batch: batches.append(batch))
    for _ in range(4):
        nic_a.send(SkBuff(payload=64, headers=52, conn="c1",
                          meta={"dst": "B.eth0"}))
    env.run()
    assert sum(1 for _ in batches) == 4
    # at least one interrupt served more than one frame
    assert max(batches) >= 2
    assert nic_b.interrupts.total < 4


def test_no_coalescing_one_interrupt_per_frame():
    cfg = TuningConfig.stock(9000).replace(interrupt_coalescing_us=0.0)
    env, a, b, nic_a, nic_b = make_host_pair(cfg)
    b.register_handler("c1", lambda skb, batch: None)
    for _ in range(4):
        nic_a.send(SkBuff(payload=64, headers=52, conn="c1",
                          meta={"dst": "B.eth0"}))
    env.run()
    assert nic_b.interrupts.total == 4


def test_txqueue_overflow_drops_nonblocking_sends():
    cfg = TuningConfig.stock(9000).replace(txqueuelen=2)
    env, a, b, nic_a, nic_b = make_host_pair(cfg)
    b.register_handler("c1", lambda skb, batch: None)
    accepted = sum(
        nic_a.send(SkBuff(payload=8000, headers=52, conn="c1",
                          meta={"dst": "B.eth0"}))
        for _ in range(10))
    assert accepted < 10
    assert nic_a.tx_drops.total == 10 - accepted
    env.run()


def test_blocking_enqueue_applies_backpressure():
    cfg = TuningConfig.stock(9000).replace(txqueuelen=2)
    env, a, b, nic_a, nic_b = make_host_pair(cfg)
    b.register_handler("c1", lambda skb, batch: None)
    sent = []

    def producer():
        for i in range(6):
            skb = SkBuff(payload=8000, headers=52, conn="c1",
                         meta={"dst": "B.eth0"})
            yield nic_a.enqueue(skb)
            sent.append(i)

    env.process(producer())
    env.run()
    assert sent == list(range(6))          # all eventually accepted
    assert nic_a.tx_drops.total == 0       # none dropped


def test_tso_resegments_super_frames():
    cfg = TuningConfig.stock(9000).replace(tso=True)
    env, a, b, nic_a, nic_b = make_host_pair(cfg)
    got = []
    b.register_handler("c1", lambda skb, batch: got.append(skb))
    super_skb = SkBuff(payload=30000, headers=52, kind="data",
                       seq=0, end_seq=30000, conn="c1",
                       meta={"dst": "B.eth0"})
    nic_a.send(super_skb)
    env.run()
    assert len(got) == 4  # ceil(30000 / 8948)
    assert sum(f.payload for f in got) == 30000
    assert [f.seq for f in got] == sorted(f.seq for f in got)
    assert all(f.payload + f.headers <= cfg.mtu for f in got)


def test_host_requires_handler():
    env, a, b, nic_a, nic_b = make_host_pair()
    nic_a.send(SkBuff(payload=100, headers=52, conn="mystery",
                      meta={"dst": "B.eth0"}))
    with pytest.raises(Exception):
        env.run()


def test_default_handler_catches_unregistered():
    env, a, b, nic_a, nic_b = make_host_pair()
    got = []
    b.set_default_handler(lambda skb, batch: got.append(skb))
    nic_a.send(SkBuff(payload=100, headers=52, conn="mystery",
                      meta={"dst": "B.eth0"}))
    env.run()
    assert len(got) == 1


def test_dual_bus_adapters_are_independent():
    env = Environment()
    host = Host(env, PE2650, TuningConfig.stock())
    nic1 = TenGigAdapter(env, host, address="H.eth0")
    nic2 = TenGigAdapter(env, host, address="H.eth1", own_bus=True)
    assert nic1.pcix is host.pcix
    assert nic2.pcix is not host.pcix
    assert host.nic is nic1


def test_host_without_adapter_raises():
    env = Environment()
    host = Host(env, PE2650, TuningConfig.stock())
    with pytest.raises(TopologyError):
        host.nic
