"""Unit tests for chipsets, host specs and the memory subsystem."""

import pytest

from repro.errors import ConfigError
from repro.hw.chipset import CHIPSETS, Chipset
from repro.hw.memory import MemorySubsystem
from repro.hw.presets import (
    GBE_HOST,
    HostSpec,
    INTEL_E7505,
    ITANIUM2,
    PE2650,
    PE4600,
    WAN_HOST,
)
from repro.units import Gbps


class TestChipsets:
    def test_paper_theoretical_numbers(self):
        # §3.1: PE2650 = 25.6 / 25.6 / 8.5 Gb/s (CPU/mem/PCI-X)
        gcle = CHIPSETS["GC-LE"]
        assert gcle.cpu_bw_bps == Gbps(25.6)
        assert gcle.mem_bw_bps == Gbps(25.6)
        assert gcle.pcix_bw_bps == Gbps(8.5)
        # PE4600 = 25.6 / 51.2 / 6.4
        gche = CHIPSETS["GC-HE"]
        assert gche.mem_bw_bps == Gbps(51.2)
        assert gche.pcix_bw_bps == Gbps(6.4)
        # E7505 = 34 / 25.6 / 6.4
        e = CHIPSETS["E7505"]
        assert e.cpu_bw_bps == Gbps(34.0)

    def test_stream_figures(self):
        # §3.5.2: PE4600 STREAM = 12.8 Gb/s, ~50% above PE2650;
        # E7505 within a few percent of the PE2650
        pe4600 = CHIPSETS["GC-HE"].stream_copy_bps
        pe2650 = CHIPSETS["GC-LE"].stream_copy_bps
        e7505 = CHIPSETS["E7505"].stream_copy_bps
        assert pe4600 == pytest.approx(Gbps(12.8))
        assert pe4600 / pe2650 == pytest.approx(1.5, rel=0.05)
        assert abs(e7505 - pe2650) / pe2650 < 0.05

    def test_invalid_chipset_fields(self):
        with pytest.raises(ConfigError):
            Chipset("bad", 0, 1, 1, 0.5)
        with pytest.raises(ConfigError):
            Chipset("bad", 1, 1, 1, 1.5)


class TestHostSpecs:
    def test_pe2650(self):
        assert PE2650.cpu_ghz == 2.2
        assert PE2650.fsb_mhz == 400
        assert PE2650.pcix_mhz == 133
        assert PE2650.pcix_peak_bps == pytest.approx(Gbps(8.512), rel=0.01)

    def test_pe4600_slower_bus(self):
        assert PE4600.pcix_mhz == 100
        assert PE4600.pcix_peak_bps == pytest.approx(Gbps(6.4))

    def test_e7505_faster_fsb(self):
        assert INTEL_E7505.fsb_mhz == 533
        assert INTEL_E7505.cpu_ghz == 2.66

    def test_itanium_parallel_rx(self):
        assert ITANIUM2.parallel_rx_cpus == 4
        assert PE2650.parallel_rx_cpus == 1

    def test_wan_host(self):
        assert WAN_HOST.cpu_ghz == 2.4
        assert WAN_HOST.memory_gb == 2

    def test_invalid_specs(self):
        with pytest.raises(ConfigError):
            HostSpec("x", cpu_ghz=0, n_cpus=1, fsb_mhz=400,
                     chipset="GC-LE", pcix_mhz=133)
        with pytest.raises(ConfigError):
            HostSpec("x", cpu_ghz=1, n_cpus=1, fsb_mhz=400,
                     chipset="NOPE", pcix_mhz=133)
        with pytest.raises(ConfigError):
            HostSpec("x", cpu_ghz=1, n_cpus=1, fsb_mhz=400,
                     chipset="GC-LE", pcix_mhz=90)
        with pytest.raises(ConfigError):
            HostSpec("x", cpu_ghz=1, n_cpus=1, fsb_mhz=400,
                     chipset="GC-LE", pcix_mhz=133, parallel_rx_cpus=2)


class TestMemorySubsystem:
    def test_stream_benchmark_matches_chipset(self):
        mem = MemorySubsystem(PE2650)
        assert mem.stream_benchmark() == PE2650.stream_copy_bps

    def test_fsb_touch_scales_with_clock(self):
        t_400 = MemorySubsystem(PE2650).fsb_touch_time(1000)
        t_533 = MemorySubsystem(INTEL_E7505).fsb_touch_time(1000)
        assert t_533 < t_400
        assert t_400 / t_533 == pytest.approx(533 / 400, rel=0.01)

    def test_fsb_touch_negative_rejected(self):
        with pytest.raises(ConfigError):
            MemorySubsystem(PE2650).fsb_touch_time(-1)

    def test_copy_engine_priced_from_stream(self):
        eng = MemorySubsystem(PE2650).copy_engine()
        assert eng.stream_copy_bps == PE2650.stream_copy_bps
