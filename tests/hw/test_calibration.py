"""Unit tests for the cost model: the calibration contract."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.hw.calibration import Calibration, CostModel
from repro.hw.presets import INTEL_E7505, PE2650


def cm(config=None, spec=PE2650):
    return CostModel(spec, config or TuningConfig.fully_tuned(9000))


class TestScaling:
    def test_per_packet_scales_inverse_with_clock(self):
        cfg = TuningConfig.uniprocessor(9000)
        slow = CostModel(PE2650, cfg)       # 2.2 GHz
        fast = CostModel(INTEL_E7505, cfg)  # 2.66 GHz
        assert fast.tx_syscall_s() < slow.tx_syscall_s()
        ratio = slow.tx_syscall_s() / fast.tx_syscall_s()
        assert ratio == pytest.approx(2.66 / 2.2, rel=0.01)

    def test_smp_taxes_per_packet_costs(self):
        smp = cm(TuningConfig.with_pcix_burst(9000))
        up = cm(TuningConfig.uniprocessor(9000))
        assert smp.tx_syscall_s() > up.tx_syscall_s()
        assert smp.rx_segment_s(8948) > up.rx_segment_s(8948)

    def test_timestamps_add_cost_and_disabled_removes_it(self):
        with_ts = cm(TuningConfig.uniprocessor(9000))
        without = cm(TuningConfig.uniprocessor(9000).replace(
            tcp_timestamps=False))
        assert with_ts.tx_segment_s(8948) > without.tx_segment_s(8948)
        assert with_ts.rx_segment_s(8948) > without.rx_segment_s(8948)

    def test_checksum_offload_saves_rx_time(self):
        offload = cm(TuningConfig.uniprocessor(9000))
        no_offload = cm(TuningConfig.uniprocessor(9000).replace(
            checksum_offload=False))
        assert no_offload.rx_segment_s(8948) > offload.rx_segment_s(8948)

    def test_napi_discounts_batched_rx(self):
        napi = cm(TuningConfig.uniprocessor(9000).replace(napi=True))
        assert napi.rx_segment_s(8948, batch=8) < napi.rx_segment_s(8948,
                                                                    batch=1)

    def test_allocator_order_penalty_visible(self):
        model = cm(TuningConfig.fully_tuned(9000))
        # 9000-MTU frames land in order-2 blocks; 8160 in order-1
        assert model.alloc_cost_s(9018) > model.alloc_cost_s(8178)


class TestCapacities:
    """The analytic ceilings the DES approaches (paper peaks)."""

    def test_tuned_capacities_bracket_paper_peaks(self):
        cases = [
            (1500, 1448, 2.47),
            (8160, 8108, 4.11),
            (9000, 8948, 3.90),
        ]
        for mtu, mss, paper in cases:
            model = cm(TuningConfig.fully_tuned(mtu))
            got = model.rx_capacity_bps(mss) / 1e9
            assert got == pytest.approx(paper, rel=0.08), (mtu, got)

    def test_mtu16000_capacity_above_8160(self):
        c16 = cm(TuningConfig.fully_tuned(16000)).rx_capacity_bps(15948)
        c81 = cm(TuningConfig.fully_tuned(8160)).rx_capacity_bps(8108)
        assert c16 > c81

    def test_tx_cheaper_than_rx(self):
        model = cm(TuningConfig.fully_tuned(9000))
        assert model.tx_capacity_bps(8948) > model.rx_capacity_bps(8948)

    def test_e7505_beats_pe2650(self):
        cfg = TuningConfig(mtu=9000, mmrbc=4096, tcp_timestamps=False)
        e = CostModel(INTEL_E7505, cfg).rx_capacity_bps(8948)
        p = CostModel(PE2650, TuningConfig.fully_tuned(9000)
                      ).rx_capacity_bps(8948)
        assert e > p


class TestCalibrationValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigError):
            Calibration(rx_irq_usghz=-1.0)

    def test_pktgen_cost_not_smp_taxed(self):
        smp = cm(TuningConfig.stock(9000))
        up = cm(TuningConfig.uniprocessor(9000))
        assert smp.pktgen_loop_s() == up.pktgen_loop_s()

    def test_frame_bytes_accounts_for_timestamps(self):
        with_ts = cm(TuningConfig.fully_tuned(9000))
        without = cm(TuningConfig.fully_tuned(9000).replace(
            tcp_timestamps=False))
        assert with_ts.frame_bytes(1000) == without.frame_bytes(1000) + 12
