"""Property-based tests (hypothesis) for the protocol arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oskernel.allocator import (
    MAX_BLOCK,
    BuddyAllocator,
    block_order,
    block_size_for,
)
from repro.tcp.analytic import recovery_time_s
from repro.tcp.congestion import RenoCongestion
from repro.tcp.window import (
    ReceiveWindow,
    sws_aligned,
    window_from_space,
    window_scale_for,
    wire_window,
)

sizes = st.integers(min_value=1, max_value=MAX_BLOCK)
mss_values = st.integers(min_value=88, max_value=15960)
windows = st.integers(min_value=0, max_value=1 << 27)


class TestAllocatorProperties:
    @given(sizes)
    def test_block_holds_request_and_is_power_of_two(self, n):
        block = block_size_for(n)
        assert block >= n
        assert block & (block - 1) == 0

    @given(sizes)
    def test_block_is_minimal(self, n):
        block = block_size_for(n)
        assert block // 2 < max(n, 256)

    @given(sizes)
    def test_order_consistent_with_pages(self, n):
        block = block_size_for(n)
        order = block_order(block)
        assert (1 << order) * 4096 >= block

    @given(st.lists(sizes, min_size=1, max_size=50))
    def test_alloc_free_conservation(self, requests):
        alloc = BuddyAllocator()
        handles = [alloc.alloc(n) for n in requests]
        assert alloc.outstanding_bytes == sum(h.block for h in handles)
        for h in handles:
            alloc.free(h)
        assert alloc.outstanding_bytes == 0
        assert alloc.stats.live == 0


class TestWindowProperties:
    @given(windows, mss_values)
    def test_sws_aligned_is_mss_multiple_and_bounded(self, avail, mss):
        aligned = sws_aligned(avail, mss)
        assert aligned % mss == 0
        assert 0 <= aligned <= max(avail, 0)
        assert avail - aligned < mss or avail < 0

    @given(windows)
    def test_window_from_space_bounds(self, space):
        w = window_from_space(space)
        assert 0 <= w <= max(space, 0)
        if space >= 4:
            assert w >= space // 2  # reservation is at most a quarter

    @given(windows, st.integers(min_value=0, max_value=14))
    def test_wire_window_roundtrip_loss_bounded(self, w, scale):
        wired = wire_window(w, scale)
        assert wired <= w or wired <= (65535 << scale)
        assert w - wired < (1 << scale) or wired == (65535 << scale) >> scale << scale

    @given(st.integers(min_value=4096, max_value=1 << 28))
    def test_scale_makes_usable_window_representable(self, rmem):
        scale = window_scale_for(rmem)
        usable = window_from_space(rmem)
        if scale < 14:
            assert (usable >> scale) <= 65535

    @given(st.integers(min_value=16384, max_value=1 << 22),
           mss_values,
           st.lists(st.integers(min_value=256, max_value=16384),
                    min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_receive_window_never_negative_never_retreats(
            self, rmem, mss, charges):
        win = ReceiveWindow(rmem=rmem, align_mss=mss)
        previous_right = win.rcv_nxt + win.current
        for truesize in charges:
            win.charge(truesize)
            adv = win.advertise()
            assert adv >= 0
            right = win.rcv_nxt + adv
            assert right >= previous_right
            previous_right = right


class TestCongestionProperties:
    @given(st.lists(st.sampled_from(["ack", "dup", "timeout"]),
                    min_size=0, max_size=200))
    def test_cwnd_always_at_least_one_segment(self, events):
        cc = RenoCongestion(mss=1448)
        for ev in events:
            if ev == "ack":
                cc.on_ack(1)
            elif ev == "dup":
                cc.on_dupack()
            else:
                cc.on_timeout()
            assert cc.cwnd_segments >= 1
            assert cc.cwnd_bytes == cc.cwnd_segments * 1448

    @given(st.integers(min_value=1, max_value=1000))
    def test_slow_start_growth_is_monotone(self, acks):
        cc = RenoCongestion(mss=1448)
        last = cc.cwnd
        for _ in range(min(acks, 50)):
            cc.on_ack(1)
            assert cc.cwnd >= last
            last = cc.cwnd


class TestRecoveryTimeProperties:
    @given(st.floats(min_value=1e8, max_value=1e11),
           st.floats(min_value=1e-4, max_value=1.0),
           mss_values)
    def test_recovery_monotone_in_rtt_and_antitone_in_mss(
            self, bw, rtt, mss):
        t = recovery_time_s(bw, rtt, mss)
        assert t >= 0
        assert recovery_time_s(bw, rtt * 2, mss) > t
        assert recovery_time_s(bw, rtt, mss * 2) < t or t == 0
