"""Property-based tests for the fabric generators and hybrid routing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fabric import build_fat_tree, build_torus3d

arities = st.sampled_from([2, 4, 6, 8])
dims = st.integers(min_value=1, max_value=4)


class TestFatTreeProperties:
    @given(arities)
    @settings(max_examples=4, deadline=None)
    def test_counts_follow_the_formulas(self, k):
        topo = build_fat_tree(k)
        assert len(topo.hosts) == k ** 3 // 4
        assert len(topo.switches) == k * k + (k // 2) ** 2
        assert topo.n_links == 3 * k ** 3 // 2

    @given(arities, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_routes_are_shortest_paths(self, k, seed):
        topo = build_fat_tree(k)
        hosts = topo.hosts
        src = hosts[seed % len(hosts)]
        dst = hosts[(seed * 7 + 1) % len(hosts)]
        if src == dst:
            return
        route = topo.route(src, dst, flow_id=seed)
        assert len(route) == topo.path_hops(src, dst)
        assert len(route) in (2, 4, 6)

    @given(arities, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_routing_is_deterministic_across_instances(self, k, fid):
        a, b = build_fat_tree(k), build_fat_tree(k)
        src, dst = a.hosts[0], a.hosts[-1]
        assert a.route(src, dst, flow_id=fid) == b.route(src, dst,
                                                         flow_id=fid)


class TestTorusProperties:
    @given(dims, dims, dims)
    @settings(max_examples=30, deadline=None)
    def test_counts_follow_the_formulas(self, nx, ny, nz):
        n = nx * ny * nz
        if n < 2:
            return
        topo = build_torus3d(nx, ny, nz)
        assert len(topo.hosts) == n
        assert topo.switches == []
        # directed links per dimension: ring (2 per node) when >= 3,
        # a single duplex pair per node pair when exactly 2, none at 1
        expected = sum(2 * n if s >= 3 else (n if s == 2 else 0)
                       for s in (nx, ny, nz))
        assert topo.n_links == expected

    @given(dims, dims, dims, st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_routes_are_shortest_and_deterministic(self, nx, ny, nz, seed):
        if nx * ny * nz < 2:
            return
        topo = build_torus3d(nx, ny, nz)
        hosts = topo.hosts
        src = hosts[seed % len(hosts)]
        dst = hosts[(seed * 13 + 1) % len(hosts)]
        if src == dst:
            return
        route = topo.route(src, dst, flow_id=seed)
        assert len(route) == topo.path_hops(src, dst)
        # max hop distance in a wraparound torus: sum of floor(s/2)
        assert len(route) <= nx // 2 + ny // 2 + nz // 2
        assert route == topo.route(src, dst, flow_id=seed)
