"""Property-based determinism contracts for the chaos engine.

Two guarantees, the load-bearing ones from docs/RESILIENCE.md:

1. A seeded ``(plan, seed)`` pair produces bit-identical outcomes across
   the event-queue backends (``REPRO_SCHEDULER=heap|calendar``) and the
   data paths (``REPRO_TRAIN=0|1``) — fault injection composes with
   every performance knob without perturbing determinism.
2. The empty plan is a true no-op: a run under it is byte-identical to
   a run with chaos off entirely, down to the engine's event sequence
   counter.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import stable_key
from repro.chaos import FaultPlan, FaultSpec, chaos_session
from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.net.train import TRAIN_ENV
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run

MTU = 9000
COUNT = 16


def _run_transfer(scheduler, batched, plan):
    """One nttcp transfer under ``plan``; returns a full-state tuple."""
    saved = os.environ.get(TRAIN_ENV)
    os.environ[TRAIN_ENV] = "1" if batched else "0"
    try:
        with chaos_session(plan) as session:
            env = Environment(scheduler=scheduler)
            bb = BackToBack.create(env, TuningConfig.oversized_windows(MTU))
            conn = TcpConnection(env, bb.a, bb.b)
            result = nttcp_run(env, conn, payload=conn.mss, count=COUNT)
            injector = session.injector_for(env)
            rows = tuple(
                (row["kind"], tuple(row["matched"]), row["fired"],
                 row["recovered"], row["frames"], row["drops"],
                 row["holds"], row["dups"], row["corrupts"])
                for row in injector.summary()) if injector else ()
    finally:
        if saved is None:
            del os.environ[TRAIN_ENV]
        else:
            os.environ[TRAIN_ENV] = saved
    return result, env.now, rows


def _run_clean(scheduler, batched):
    """The same transfer with no chaos machinery active at all."""
    saved = os.environ.get(TRAIN_ENV)
    os.environ[TRAIN_ENV] = "1" if batched else "0"
    try:
        env = Environment(scheduler=scheduler)
        bb = BackToBack.create(env, TuningConfig.oversized_windows(MTU))
        conn = TcpConnection(env, bb.a, bb.b)
        result = nttcp_run(env, conn, payload=conn.mss, count=COUNT)
    finally:
        if saved is None:
            del os.environ[TRAIN_ENV]
        else:
            os.environ[TRAIN_ENV] = saved
    return result, env.now, env.events_scheduled


# Windows quantized so some land mid-transfer (drops + retransmissions)
# and some after it (pure no-ops) — both must stay deterministic.
start_grid = st.integers(min_value=0, max_value=8).map(lambda n: n * 2.5e-5)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       probability=st.sampled_from([0.25, 0.5, 1.0]),
       start_s=start_grid)
@settings(max_examples=6, deadline=None)
def test_plan_outcome_identical_across_schedulers_and_data_paths(
        seed, probability, start_s):
    plan = FaultPlan(name="prop", seed=seed, faults=(
        FaultSpec(kind="loss_burst", target="link:xover.fwd",
                  start_s=start_s, duration_s=1e-4,
                  probability=probability),
        FaultSpec(kind="reorder_window", target="link:xover.rev",
                  start_s=start_s, duration_s=5e-5, delay_s=4e-5,
                  probability=0.5, kinds=("ack",)),
    ))
    hashes = {
        stable_key(_run_transfer(scheduler, batched, plan))
        for scheduler in ("heap", "calendar")
        for batched in (False, True)
    }
    assert len(hashes) == 1  # one outcome, four engine configurations


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=4, deadline=None)
def test_seed_changes_draws_but_not_determinism(seed):
    plan = FaultPlan(name="prop", seed=seed, faults=(
        FaultSpec(kind="loss_burst", target="link:xover.fwd",
                  start_s=0.0, duration_s=1e-3, probability=0.5),))
    first = _run_transfer("heap", True, plan)
    second = _run_transfer("heap", True, plan)
    assert stable_key(first) == stable_key(second)


def test_empty_plan_byte_identical_to_chaos_off():
    for scheduler in ("heap", "calendar"):
        for batched in (False, True):
            clean = _run_clean(scheduler, batched)
            saved = os.environ.get(TRAIN_ENV)
            os.environ[TRAIN_ENV] = "1" if batched else "0"
            try:
                with chaos_session(FaultPlan()):
                    env = Environment(scheduler=scheduler)
                    bb = BackToBack.create(
                        env, TuningConfig.oversized_windows(MTU))
                    conn = TcpConnection(env, bb.a, bb.b)
                    result = nttcp_run(env, conn, payload=conn.mss,
                                       count=COUNT)
            finally:
                if saved is None:
                    del os.environ[TRAIN_ENV]
                else:
                    os.environ[TRAIN_ENV] = saved
            # Identical down to the engine's event sequence counter: the
            # empty plan scheduled nothing and wrapped nothing.
            assert (result, env.now, env.events_scheduled) == clean
