"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=60)


class TestEventOrdering:
    @given(delays)
    def test_events_fire_in_time_order(self, ds):
        env = Environment()
        fired = []
        for d in ds:
            env.schedule_call(d, fired.append, d)
        env.run()
        assert fired == sorted(ds)
        assert env.now == max(ds)

    @given(delays)
    def test_equal_times_fifo(self, ds):
        env = Environment()
        fired = []
        for i, d in enumerate(ds):
            env.schedule_call(round(d, 0), fired.append, (round(d, 0), i))
        env.run()
        # among equal times, insertion order preserved
        for t in {x for x, _ in fired}:
            indices = [i for x, i in fired if x == t]
            assert indices == sorted(indices)


class TestResourceProperties:
    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.floats(min_value=0.01, max_value=5.0),
                    min_size=1, max_size=25))
    @settings(max_examples=40)
    def test_resource_conserves_work(self, capacity, holds):
        """Total busy time equals the sum of hold times, and the
        makespan is bounded by the list-scheduling bound."""
        env = Environment()
        res = Resource(env, capacity=capacity)

        def worker(hold):
            req = res.request()
            yield req
            yield env.timeout(hold)
            res.release(req)

        for h in holds:
            env.process(worker(h))
        env.run()
        assert res.busy_time == sum(holds) or abs(
            res.busy_time - sum(holds)) < 1e-9
        lower = max(max(holds), sum(holds) / capacity)
        assert env.now >= lower - 1e-9
        assert env.now <= sum(holds) + 1e-9

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=100))
    def test_store_is_fifo_and_lossless(self, items):
        env = Environment()
        store = Store(env)
        out = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                out.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == items
