"""Property-based determinism contracts for the event-queue backends
and the train-batched data path.

Three guarantees, each exercised over randomized inputs:

1. Same-time FIFO: events scheduled for the same instant fire in
   insertion order, on the heap *and* the calendar queue.
2. Backend equivalence: an identical workload produces a bit-identical
   firing sequence (times compared with ``==`` on the floats, no
   tolerance) under ``scheduler="heap"`` and ``scheduler="calendar"``.
3. Data-path equivalence: a full TCP transfer produces bit-identical
   results with segment-train batching on and off (``REPRO_TRAIN``) —
   batching is a pure performance knob.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.net.train import TRAIN_ENV
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run

# Delays quantized to a coarse grid so same-time collisions are common
# (the interesting case for FIFO ordering), plus exact sub-bucket
# offsets to land several distinct times inside one calendar bucket.
delay_grid = st.integers(min_value=0, max_value=40).map(lambda n: n * 2.5e-6)
delay_lists = st.lists(delay_grid, min_size=1, max_size=80)


def _record_workload(env, delays):
    """Schedule a two-level workload; return the firing log.

    Each top-level call re-schedules a child at a derived delay, so the
    backends are also compared on events *inserted while draining* (the
    calendar's ready-window insort path).
    """
    log = []

    def child(tag):
        log.append((env.now, "child", tag))

    def fire(tag, delay):
        log.append((env.now, "fire", tag))
        env.schedule_call(delay / 2.0, child, tag)

    for i, d in enumerate(delays):
        env.schedule_call(d, fire, i, d)
    env.run()
    return log


class TestSameTimeFifo:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    @given(ds=delay_lists)
    @settings(max_examples=50, deadline=None)
    def test_equal_times_fire_in_insertion_order(self, scheduler, ds):
        env = Environment(scheduler=scheduler)
        fired = []
        for i, d in enumerate(ds):
            env.schedule_call(d, fired.append, (d, i))
        env.run()
        assert [d for d, _ in fired] == sorted(ds)
        for t in {d for d, _ in fired}:
            indices = [i for d, i in fired if d == t]
            assert indices == sorted(indices)


class TestBackendEquivalence:
    @given(ds=delay_lists)
    @settings(max_examples=50, deadline=None)
    def test_heap_and_calendar_fire_identically(self, ds):
        log_heap = _record_workload(Environment(scheduler="heap"), ds)
        log_cal = _record_workload(Environment(scheduler="calendar"), ds)
        assert log_heap == log_cal  # floats compared exactly


def _run_transfer(batched, mtu, count):
    """One nttcp transfer with train batching forced on or off."""
    saved = os.environ.get(TRAIN_ENV)
    os.environ[TRAIN_ENV] = "1" if batched else "0"
    try:
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(mtu))
        conn = TcpConnection(env, bb.a, bb.b)
        result = nttcp_run(env, conn, payload=conn.mss, count=count)
    finally:
        if saved is None:
            del os.environ[TRAIN_ENV]
        else:
            os.environ[TRAIN_ENV] = saved
    return result, env.now


class TestTrainBatchingEquivalence:
    @given(mtu=st.sampled_from([1500, 8160, 9000, 16000]),
           count=st.integers(min_value=4, max_value=48))
    @settings(max_examples=15, deadline=None)
    def test_transfer_bit_identical_on_vs_off(self, mtu, count):
        res_on, now_on = _run_transfer(True, mtu, count)
        res_off, now_off = _run_transfer(False, mtu, count)
        # Every field bit-identical: byte counts, elapsed time, goodput,
        # CPU loads, retransmissions — and the final simulation clock.
        assert res_on == res_off
        assert now_on == now_off
