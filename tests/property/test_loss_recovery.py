"""Property-based fault injection: TCP delivers everything, exactly once.

Hypothesis drives deterministic loss/duplication/reordering patterns
through the full stack; the invariant is the one TCP promises the
application: every byte arrives, in order, exactly once, regardless of
what the network did.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TuningConfig
from repro.chaos import DuplicateTap, LossTap, ReorderTap
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection

SEGMENTS = 48
PAYLOAD = 8948

fault_indices = st.sets(st.integers(min_value=0, max_value=SEGMENTS - 1),
                        max_size=6)


def run_with_tap(make_tap):
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    make_tap(env, bb.links[0])
    total = PAYLOAD * SEGMENTS

    def app():
        yield from conn.send_stream(PAYLOAD, SEGMENTS)
        yield from conn.wait_delivered(total, poll_s=1e-3)

    env.run(until=env.process(app()))
    return conn


@given(fault_indices)
@settings(max_examples=20, deadline=None)
def test_losses_recovered_exactly_once(drops):
    conn = run_with_tap(lambda env, link: LossTap(env, link, drops))
    assert conn.receiver.bytes_delivered == PAYLOAD * SEGMENTS
    assert conn.receiver.rcv_nxt == PAYLOAD * SEGMENTS
    if drops:
        assert conn.sender.retransmitted >= 1


@given(fault_indices)
@settings(max_examples=15, deadline=None)
def test_duplicates_discarded(dups):
    conn = run_with_tap(lambda env, link: DuplicateTap(env, link, dups))
    assert conn.receiver.bytes_delivered == PAYLOAD * SEGMENTS


@given(fault_indices)
@settings(max_examples=15, deadline=None)
def test_reordering_tolerated(holds):
    conn = run_with_tap(
        lambda env, link: ReorderTap(env, link, holds, delay_s=80e-6))
    assert conn.receiver.bytes_delivered == PAYLOAD * SEGMENTS


@given(st.sets(st.integers(min_value=0, max_value=SEGMENTS - 1),
               max_size=3),
       st.sets(st.integers(min_value=0, max_value=40), max_size=3))
@settings(max_examples=10, deadline=None)
def test_data_loss_plus_ack_loss(data_drops, ack_drops):
    """Simultaneous forward-path and ACK-path loss."""
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    LossTap(env, bb.links[0], data_drops, kinds=("data",))
    LossTap(env, bb.links[1], ack_drops, kinds=("ack",))
    total = PAYLOAD * SEGMENTS

    def app():
        yield from conn.send_stream(PAYLOAD, SEGMENTS)
        yield from conn.wait_delivered(total, poll_s=1e-3)

    env.run(until=env.process(app()))
    assert conn.receiver.bytes_delivered == total
