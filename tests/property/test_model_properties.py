"""Property-based tests for the cost and fluid models."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TuningConfig, VALID_MMRBC
from repro.hw.calibration import CostModel
from repro.hw.presets import GBE_HOST, INTEL_E7505, ITANIUM2, PE2650, PE4600
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.units import Gbps

specs = st.sampled_from([PE2650, PE4600, INTEL_E7505, ITANIUM2, GBE_HOST])
payloads = st.integers(min_value=1, max_value=15948)
mtus = st.sampled_from([1500, 4000, 8160, 9000, 16000])


class TestCostModelProperties:
    @given(specs, mtus, payloads)
    @settings(max_examples=60)
    def test_costs_positive_and_monotone_in_payload(self, spec, mtu, p):
        cfg = TuningConfig.fully_tuned(mtu)
        cm = CostModel(spec, cfg)
        p = min(p, mtu - 64)
        if p < 1:
            return
        rx = cm.rx_segment_s(p)
        tx = cm.tx_segment_s(p)
        assert rx > 0 and tx > 0
        assert cm.rx_segment_s(p + 1) >= rx - 1e-12
        assert cm.tx_segment_s(p + 1) >= tx - 1e-12

    @given(mtus, payloads)
    @settings(max_examples=40)
    def test_smp_never_cheaper_than_up(self, mtu, p):
        p = min(p, mtu - 64)
        if p < 1:
            return
        up = CostModel(PE2650, TuningConfig.fully_tuned(mtu))
        smp = CostModel(PE2650, TuningConfig.fully_tuned(mtu).replace(
            smp_kernel=True))
        assert smp.rx_segment_s(p) >= up.rx_segment_s(p)
        assert smp.rx_irq_s() >= up.rx_irq_s()

    @given(st.sampled_from(VALID_MMRBC), st.sampled_from(VALID_MMRBC),
           st.integers(min_value=64, max_value=16018))
    def test_pcix_bigger_bursts_never_slower(self, m1, m2, nbytes):
        from repro.hw.pcix import PciXBus
        from repro.sim import Environment
        bus = PciXBus(Environment(), 133)
        small, large = min(m1, m2), max(m1, m2)
        assert bus.transfer_time(nbytes, large) <= \
            bus.transfer_time(nbytes, small)

    @given(specs)
    def test_capacity_ordering_rx_below_tx(self, spec):
        cm = CostModel(spec, TuningConfig.fully_tuned(9000))
        assert cm.rx_capacity_bps(8948) <= cm.tx_capacity_bps(8948)


class TestFluidProperties:
    rates = st.floats(min_value=1e8, max_value=1e10)
    rtts = st.floats(min_value=1e-3, max_value=0.5)
    buffers = st.floats(min_value=0.05, max_value=4.0)

    @given(rates, rtts, buffers)
    @settings(max_examples=40, deadline=None)
    def test_throughput_never_exceeds_bottleneck(self, rate, rtt, bufx):
        bdp = rate * rtt / 8.0
        p = FluidParams(bottleneck_bps=rate, base_rtt_s=rtt, mss=8948,
                        max_window_bytes=max(8948.0, bufx * bdp))
        result = simulate_fluid(p, duration_s=rtt * 200)
        assert result.throughput_bps.max() <= rate * 1.001
        assert (result.queue_packets >= 0).all()
        assert (result.window_segments >= 0).all()

    @given(rates, rtts)
    @settings(max_examples=30, deadline=None)
    def test_bdp_window_achieves_capacity(self, rate, rtt):
        bdp = rate * rtt / 8.0
        p = FluidParams(bottleneck_bps=rate, base_rtt_s=rtt, mss=8948,
                        max_window_bytes=max(2 * 8948.0, bdp),
                        queue_packets=10**6)
        result = simulate_fluid(p, duration_s=rtt * 600,
                                warmup_s=rtt * 300)
        floor = min(rate, max(2 * 8948.0, bdp) * 8.0 / rtt)
        assert result.mean_throughput_bps >= floor * 0.8

    @given(buffers)
    @settings(max_examples=20, deadline=None)
    def test_mean_bounded_by_peak(self, bufx):
        bdp = Gbps(2.38) * 0.18 / 8.0
        p = FluidParams(bottleneck_bps=Gbps(2.38), base_rtt_s=0.18,
                        mss=8948, max_window_bytes=max(8948.0, bufx * bdp))
        result = simulate_fluid(p, duration_s=120.0)
        assert result.mean_throughput_bps <= result.throughput_bps.max() + 1e-6
