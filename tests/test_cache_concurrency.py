"""Multi-process stress test: concurrent writers on one sharded cache.

Several worker processes hammer the same cache directory through
independent :class:`ResultCache` handles.  The contract under test:

* no corruption — every entry written by anyone reads back valid;
* no lost entries — a fresh handle sees the union of all writes;
* exact accounting — each worker's hit/miss/store/error counters match
  what its access pattern predicts (misses only where a miss was
  scripted, zero errors anywhere).

The shared-key phase has every worker racing ``put()`` on the *same*
keys with the *same* value — any winner's ``os.replace`` publishes
identical bytes, so readers must never observe a torn or invalid file.
"""

import multiprocessing

from repro.cache import ResultCache

WORKERS = 4
PRIVATE_KEYS = 12
SHARED_KEYS = 8


def _stress_worker(cache_dir, worker_id, shared_keys, queue):
    """One writer process: scripted private phase, racy shared phase."""
    try:
        cache = ResultCache(cache_dir)
        # -- private phase: every outcome is predictable -----------------
        for j in range(PRIVATE_KEYS):
            key = cache.key("private", worker_id, j)
            hit, _ = cache.get(key)            # scripted miss
            assert not hit
            assert cache.put(key, ("value", worker_id, j))
            hit, value = cache.get(key)        # scripted hit
            assert hit and value == ("value", worker_id, j)
        # -- shared phase: all workers race identical writes -------------
        for key in shared_keys:
            cache.put(key, ("shared", key))
            hit, value = cache.get(key)
            assert hit and value == ("shared", key)
        queue.put((worker_id, cache.hits, cache.misses, cache.stores,
                   cache.errors))
    except BaseException as exc:  # surface assertion text to the parent
        queue.put((worker_id, "error", repr(exc)))


def test_concurrent_writers_exact_accounting(tmp_path):
    cache_dir = tmp_path / "c"
    probe = ResultCache(cache_dir)
    shared_keys = [probe.key("shared", j) for j in range(SHARED_KEYS)]
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs = [ctx.Process(target=_stress_worker,
                         args=(cache_dir, i, shared_keys, queue))
             for i in range(WORKERS)]
    for p in procs:
        p.start()
    reports = [queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    assert len(reports) == WORKERS

    # exact per-worker accounting
    for report in sorted(reports):
        assert report[1] != "error", report
        worker_id, hits, misses, stores, errors = report
        assert errors == 0
        assert misses == PRIVATE_KEYS            # only the scripted misses
        assert stores == PRIVATE_KEYS + SHARED_KEYS
        # private hits are exact; every shared read back must also hit
        assert hits == PRIVATE_KEYS + SHARED_KEYS

    # no lost entries: a fresh handle sees the union of all writes
    fresh = ResultCache(cache_dir)
    stats = fresh.stats()
    expected = WORKERS * PRIVATE_KEYS + SHARED_KEYS
    assert stats.entries == expected
    assert len(fresh.keys()) == expected

    # no corruption: every single entry reads back valid
    for i in range(WORKERS):
        for j in range(PRIVATE_KEYS):
            key = fresh.key("private", i, j)
            assert fresh.get(key) == (True, ("value", i, j))
    for key in shared_keys:
        assert fresh.get(key) == (True, ("shared", key))
    assert fresh.errors == 0

    # no temp-file litter from the atomic-publish dance
    assert not list(cache_dir.rglob("*.tmp"))


def _index_racer(cache_dir, worker_id, keys, queue):
    """Interleave puts and invalidates on overlapping keys."""
    try:
        cache = ResultCache(cache_dir)
        for r in range(3):
            for key in keys:
                cache.put(key, (worker_id, r))
                if (worker_id + r) % 2:
                    cache.invalidate(key)
        queue.put((worker_id, cache.errors))
    except BaseException as exc:
        queue.put((worker_id, repr(exc)))


def test_interleaved_put_invalidate_never_corrupts_index(tmp_path):
    """Churning writers + removers leave a loadable, consistent index."""
    cache_dir = tmp_path / "c"
    probe = ResultCache(cache_dir)
    keys = [probe.key("churn", j) for j in range(6)]
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs = [ctx.Process(target=_index_racer,
                         args=(cache_dir, i, keys, queue))
             for i in range(3)]
    for p in procs:
        p.start()
    reports = [queue.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    for _, errors in reports:
        assert errors == 0
    # a fresh handle loads every (possibly interleaved) index cleanly
    # and its view matches the files actually on disk
    fresh = ResultCache(cache_dir)
    # an index record may outlive a racing remove (advisory by design);
    # a get() reconciles each such record, so afterwards the index view
    # converges exactly onto the surviving files
    for key in keys:
        hit, value = fresh.get(key)
        if hit:  # value shape: (worker_id, round)
            assert isinstance(value, tuple) and len(value) == 2
    assert set(fresh.keys()) == {k for k in keys
                                 if (cache_dir / k[:2] / f"{k}.pkl").exists()}
    assert fresh.errors == 0
