"""Shared test helpers.

``assert_bit_identical`` is the determinism-parity comparator: it walks
arbitrarily nested experiment outputs and requires *exact* value
equality — float bit patterns, numpy dtype/shape/bytes, dataclass
fields — without requiring pickle-byte equality (pickle's internal
memo structure differs between objects that crossed a process boundary
and objects that never left, even when every value is identical).
"""

import dataclasses
import struct

import numpy as np


def assert_bit_identical(a, b, path="value"):
    """Require ``a`` and ``b`` to be exactly (bit-for-bit) equal values."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key sets differ"
        for k in a:
            assert_bit_identical(a[k], b[k], f"{path}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: lengths differ"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_bit_identical(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape \
            and a.tobytes() == b.tobytes(), f"{path}: arrays differ"
    elif isinstance(a, float):
        assert struct.pack("<d", a) == struct.pack("<d", b), \
            f"{path}: {a!r} != {b!r} (bitwise)"
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for f in dataclasses.fields(a):
            assert_bit_identical(getattr(a, f.name), getattr(b, f.name),
                                 f"{path}.{f.name}")
    elif hasattr(a, "__dict__") and not isinstance(a, type):
        assert vars(a).keys() == vars(b).keys(), f"{path}: attrs differ"
        for k in vars(a):
            assert_bit_identical(vars(a)[k], vars(b)[k], f"{path}.{k}")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"
