"""Unit tests for repro.units."""

import pytest

from repro import units


def test_rate_helpers():
    assert units.Kbps(1) == 1e3
    assert units.Mbps(1) == 1e6
    assert units.Gbps(10) == 1e10
    assert units.bits_per_sec(42.0) == 42.0


def test_rate_conversions_roundtrip():
    assert units.to_Gbps(units.Gbps(2.38)) == pytest.approx(2.38)
    assert units.to_Mbps(units.Mbps(923)) == pytest.approx(923)


def test_size_helpers_binary():
    assert units.KB(64) == 65536
    assert units.MB(1) == 1048576
    assert units.GB(1) == 1073741824


def test_time_helpers():
    assert units.ns(1) == 1e-9
    assert units.us(19) == pytest.approx(19e-6)
    assert units.ms(180) == pytest.approx(0.18)
    assert units.seconds(2.0) == 2.0
    assert units.to_us(19e-6) == pytest.approx(19.0)
    assert units.to_ms(0.18) == pytest.approx(180.0)


def test_transfer_time():
    # 1250 bytes at 10 Gb/s = 1 microsecond
    assert units.transfer_time(1250, units.Gbps(10)) == pytest.approx(1e-6)


def test_transfer_time_zero_bytes():
    assert units.transfer_time(0, units.Gbps(1)) == 0.0


def test_transfer_time_invalid_rate():
    with pytest.raises(ValueError):
        units.transfer_time(100, 0)
    with pytest.raises(ValueError):
        units.transfer_time(100, -1)


def test_transfer_time_negative_size():
    with pytest.raises(ValueError):
        units.transfer_time(-1, units.Gbps(1))


def test_bytes_per_sec():
    assert units.bytes_per_sec(units.Gbps(8)) == 1e9
