"""Tests for the §3.5.3/§5 offload extensions: header splitting,
OS-bypass and CSA."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.hw.calibration import CostModel
from repro.hw.csa import MchLink
from repro.hw.presets import PE2650
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.netpipe import netpipe_latency
from repro.tools.nttcp import nttcp_run


def measure(cfg, payload, count=384):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    return nttcp_run(env, conn, payload, count)


class TestConfig:
    def test_bypass_plus_splitting_rejected(self):
        with pytest.raises(ConfigError):
            TuningConfig(os_bypass=True, header_splitting=True)

    def test_named_constructors(self):
        hs = TuningConfig.with_header_splitting()
        assert hs.header_splitting and hs.mtu == 8160
        ob = TuningConfig.os_bypass_projection()
        assert ob.os_bypass and ob.interrupt_coalescing_us == 0.0


class TestCostModel:
    def test_os_bypass_costs_near_zero(self):
        cm = CostModel(PE2650, TuningConfig.os_bypass_projection(9000))
        base = CostModel(PE2650, TuningConfig.fully_tuned(9000))
        assert cm.rx_irq_s() == 0.0
        assert cm.rx_wake_s() == 0.0
        assert cm.tx_syscall_s() == 0.0
        assert cm.rx_segment_s(8948) < base.rx_segment_s(8948) / 5

    def test_header_splitting_cuts_rx_byte_cost(self):
        hs = CostModel(PE2650, TuningConfig.with_header_splitting(8160))
        base = CostModel(PE2650, TuningConfig.fully_tuned(8160))
        assert hs.rx_segment_s(8108) < base.rx_segment_s(8108)
        # tx side unchanged: the engine only helps receive
        assert hs.tx_segment_s(8108) == pytest.approx(
            base.tx_segment_s(8108))

    def test_rx_truesize_reduced_under_offloads(self):
        from repro.oskernel.skbuff import SkBuff
        skb = SkBuff(payload=8948, headers=64)
        base = CostModel(PE2650, TuningConfig.fully_tuned(9000))
        hs = CostModel(PE2650, TuningConfig.with_header_splitting(9000))
        assert base.rx_truesize(skb) == 16384
        assert hs.rx_truesize(skb) == 256


class TestMchLink:
    def test_no_burst_sensitivity(self):
        env = Environment()
        link = MchLink(env)
        assert link.transfer_time(9018, 512) == link.transfer_time(9018, 4096)

    def test_faster_than_pcix(self):
        from repro.hw.pcix import PciXBus
        env = Environment()
        mch = MchLink(env)
        pcix = PciXBus(env, 133)
        assert mch.transfer_time(9018) < pcix.transfer_time(9018, 4096)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ConfigError):
            MchLink(env, link_bps=0)
        with pytest.raises(ConfigError):
            MchLink(env).transfer_time(0)

    def test_dma_serializes(self):
        env = Environment()
        link = MchLink(env)
        done = []

        def xfer():
            yield from link.dma(8192)
            done.append(env.now)

        env.process(xfer())
        env.process(xfer())
        env.run()
        assert done[1] == pytest.approx(2 * link.transfer_time(8192))


class TestEndToEnd:
    def test_header_splitting_beats_tuned_tcp(self):
        tcp = measure(TuningConfig.fully_tuned(8160), 8108)
        hs = measure(TuningConfig.with_header_splitting(8160), 8108)
        assert hs.goodput_bps > tcp.goodput_bps * 1.15
        assert hs.receiver_load < tcp.receiver_load * 0.8

    def test_os_bypass_near_zero_load(self):
        ob = measure(TuningConfig.os_bypass_projection(9000), 8948)
        assert ob.receiver_load < 0.1
        assert ob.goodput_gbps > 4.5

    def test_os_bypass_latency_below_10us(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.os_bypass_projection(1500))
        fwd = TcpConnection(env, bb.a, bb.b)
        bwd = TcpConnection(env, bb.b, bb.a)
        lat = netpipe_latency(env, fwd, bwd, payload=1, iterations=4)
        assert lat.latency_us < 10.0

    def test_csa_removes_mmrbc_sensitivity(self):
        """With the adapter on the MCH, the MMRBC register is moot."""
        small = measure(TuningConfig.os_bypass_projection(9000).replace(
            csa=True, mmrbc=512), 8948)
        large = measure(TuningConfig.os_bypass_projection(9000).replace(
            csa=True, mmrbc=4096), 8948)
        assert small.goodput_bps == pytest.approx(large.goodput_bps,
                                                  rel=0.02)

    def test_csa_plus_bypass_approaches_wire_speed(self):
        out = measure(TuningConfig.os_bypass_projection(9000).replace(
            csa=True), 8948, count=768)
        assert out.goodput_gbps > 8.0
