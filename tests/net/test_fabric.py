"""Fabric topology generators and deterministic ECMP routing."""

import pytest

from repro.errors import TopologyError
from repro.net.fabric import (FabricLinkSpec, FabricTopology, build_fat_tree,
                              build_torus3d)


class TestFatTree:
    def test_k4_counts(self):
        topo = build_fat_tree(4)
        assert len(topo.hosts) == 16          # k^3/4
        assert len(topo.switches) == 20       # k^2 pod + (k/2)^2 core
        assert topo.n_links == 96             # 3k^3/2 directed
        assert topo.n_nodes == 36

    def test_rejects_odd_or_small_arity(self):
        for k in (1, 3, 5, 0, -2):
            with pytest.raises(TopologyError):
                build_fat_tree(k)

    def test_hop_counts(self):
        topo = build_fat_tree(4)
        # same edge switch: host -> edge -> host
        assert topo.path_hops("host0.0.0", "host0.0.1") == 2
        # same pod, different edge: via aggregation
        assert topo.path_hops("host0.0.0", "host0.1.0") == 4
        # different pod: via core
        assert topo.path_hops("host0.0.0", "host3.1.1") == 6

    def test_route_follows_links(self):
        topo = build_fat_tree(4)
        route = topo.route("host0.0.0", "host3.1.1", flow_id=7)
        assert len(route) == 6
        node = "host0.0.0"
        for idx in route:
            spec = topo.links[idx]
            assert spec.src == node
            node = spec.dst
        assert node == "host3.1.1"

    def test_ecmp_spreads_flows_over_cores(self):
        topo = build_fat_tree(8)
        cores = set()
        for fid in range(64):
            for n in topo.route_nodes("host0.0.0", "host7.3.3", flow_id=fid):
                if n.startswith("core"):
                    cores.add(n)
        # 16 equal-cost cores serve this pod pair; 64 flows must not
        # all collapse onto one of them
        assert len(cores) > 4


class TestTorus:
    def test_4x4x4_counts(self):
        topo = build_torus3d(4, 4, 4)
        n = 64
        assert len(topo.hosts) == n
        assert topo.switches == []
        assert topo.n_links == 3 * 2 * n      # 2 directed per dim per node

    def test_size2_dim_dedupes_wraparound(self):
        topo = build_torus3d(2, 1, 1)
        assert topo.n_links == 2              # one duplex pair, not two

    def test_rejects_bad_dimensions(self):
        with pytest.raises(TopologyError):
            build_torus3d(0, 4, 4)
        with pytest.raises(TopologyError):
            build_torus3d(1, 1, 1)

    def test_wraparound_shortens_paths(self):
        topo = build_torus3d(4, 1, 1)
        # 0 -> 3 is one hop backwards around the ring, not three forward
        assert topo.path_hops("t0.0.0", "t3.0.0") == 1


class TestRoutingDeterminism:
    def test_same_flow_same_path_across_rebuilds(self):
        # CRC-32 tie-breaks are stable across topology instances (and
        # across processes — unlike hash(), which is salted per run)
        a = build_fat_tree(4)
        b = build_fat_tree(4)
        for fid in range(16):
            assert a.route("host0.0.0", "host2.1.0", flow_id=fid) == \
                b.route("host0.0.0", "host2.1.0", flow_id=fid)

    def test_route_is_repeatable(self):
        topo = build_torus3d(3, 3, 3)
        r1 = topo.route("t0.0.0", "t2.2.2", flow_id=3)
        r2 = topo.route("t0.0.0", "t2.2.2", flow_id=3)
        assert r1 == r2

    def test_route_to_self_rejected(self):
        topo = build_fat_tree(4)
        with pytest.raises(TopologyError):
            topo.route("host0.0.0", "host0.0.0")


class TestTopologyConstruction:
    def test_duplicate_node_and_link_rejected(self):
        topo = FabricTopology(name="t")
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(TopologyError):
            topo.add_node("a")
        topo.add_link("a", "b")
        with pytest.raises(TopologyError):
            topo.add_link("a", "b")

    def test_unknown_node_rejected(self):
        topo = FabricTopology(name="t")
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "nowhere")
        with pytest.raises(TopologyError):
            topo.link_id("a", "nowhere")

    def test_link_spec_validation(self):
        with pytest.raises(TopologyError):
            FabricLinkSpec("a", "b", rate_bps=0, delay_s=0, queue_packets=8)
        with pytest.raises(TopologyError):
            FabricLinkSpec("a", "b", rate_bps=1e9, delay_s=-1,
                           queue_packets=8)
        with pytest.raises(TopologyError):
            FabricLinkSpec("a", "b", rate_bps=1e9, delay_s=0,
                           queue_packets=0)

    def test_unreachable_destination(self):
        topo = FabricTopology(name="t")
        topo.add_node("a", host=True)
        topo.add_node("b", host=True)
        with pytest.raises(TopologyError):
            topo.path_hops("a", "b")
        with pytest.raises(TopologyError):
            topo.route("a", "b")
