"""Unit tests for the store-and-forward switch."""

import pytest

from repro.errors import TopologyError
from repro.net.ethernet import EthernetLink
from repro.net.switch import FASTIRON_1500, Switch, SwitchModel
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.units import Gbps, us


class Collector:
    def __init__(self, env):
        self.env = env
        self.frames = []
        self.times = []

    def receive_frame(self, skb):
        self.frames.append(skb)
        self.times.append(self.env.now)


def build(env, model=FASTIRON_1500):
    switch = Switch(env, model=model)
    sink_a = Collector(env)
    sink_b = Collector(env)
    down_a = EthernetLink(env, Gbps(10), 0.0, 9000, name="sw2a")
    down_b = EthernetLink(env, Gbps(10), 0.0, 9000, name="sw2b")
    down_a.connect(sink_a)
    down_b.connect(sink_b)
    switch.add_port("pA", down_a)
    switch.add_port("pB", down_b)
    switch.learn("A", "pA")
    switch.learn("B", "pB")
    return switch, sink_a, sink_b


def test_forwards_by_destination():
    env = Environment()
    switch, sink_a, sink_b = build(env)
    switch.receive_frame(SkBuff(payload=100, headers=52, meta={"dst": "B"}))
    switch.receive_frame(SkBuff(payload=100, headers=52, meta={"dst": "A"}))
    env.run()
    assert len(sink_a.frames) == 1
    assert len(sink_b.frames) == 1


def test_forwarding_latency_applied():
    env = Environment()
    switch, _, sink_b = build(env)
    skb = SkBuff(payload=1, headers=52, meta={"dst": "B"})
    switch.receive_frame(skb)
    env.run()
    assert sink_b.times[0] >= FASTIRON_1500.forwarding_latency_s


def test_unknown_destination_raises():
    env = Environment()
    switch, _, _ = build(env)
    with pytest.raises(TopologyError):
        switch.receive_frame(SkBuff(payload=1, headers=52, meta={"dst": "Z"}))


def test_missing_dst_raises():
    env = Environment()
    switch, _, _ = build(env)
    with pytest.raises(Exception):
        switch.receive_frame(SkBuff(payload=1, headers=52))


def test_duplicate_port_rejected():
    env = Environment()
    switch, _, _ = build(env)
    with pytest.raises(TopologyError):
        switch.add_port("pA", EthernetLink(env, Gbps(10)))


def test_learn_unknown_port_rejected():
    env = Environment()
    switch, _, _ = build(env)
    with pytest.raises(TopologyError):
        switch.learn("C", "nope")


def test_output_queue_drop_tail():
    env = Environment()
    model = SwitchModel(name="tiny", forwarding_latency_s=us(100),
                        backplane_bps=Gbps(480), port_queue_frames=2)
    switch, _, sink_b = build(env, model)
    for _ in range(10):
        switch.receive_frame(SkBuff(payload=8948, headers=52,
                                    meta={"dst": "B"}))
    env.run()
    assert switch.total_drops() > 0
    assert len(sink_b.frames) + switch.total_drops() == 10


def test_aggregation_serializes_on_one_port():
    """Frames from many sources to one port leave back-to-back at the
    egress line rate — the multi-flow aggregation behaviour."""
    env = Environment()
    switch, _, sink_b = build(env)
    for _ in range(5):
        switch.receive_frame(SkBuff(payload=8948, headers=52,
                                    meta={"dst": "B"}))
    env.run()
    gaps = [t2 - t1 for t1, t2 in zip(sink_b.times, sink_b.times[1:])]
    wire = SkBuff(payload=8948, headers=52).wire_bytes * 8 / 1e10
    for gap in gaps:
        assert gap >= wire * 0.99


def test_invalid_model_rejected():
    with pytest.raises(TopologyError):
        SwitchModel(name="bad", forwarding_latency_s=-1,
                    backplane_bps=Gbps(1), port_queue_frames=8)
    with pytest.raises(TopologyError):
        SwitchModel(name="bad", forwarding_latency_s=0,
                    backplane_bps=0, port_queue_frames=8)
    with pytest.raises(TopologyError):
        SwitchModel(name="bad", forwarding_latency_s=0,
                    backplane_bps=Gbps(1), port_queue_frames=0)
