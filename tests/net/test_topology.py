"""Unit tests for the topology builders."""

import pytest

from repro.config import TuningConfig
from repro.errors import TopologyError
from repro.hw.presets import INTEL_E7505, ITANIUM2
from repro.net.topology import (
    BackToBack,
    MultiFlow,
    ThroughSwitch,
    build_wan_path,
)
from repro.sim import Environment
from repro.units import Gbps


def test_back_to_back_wiring():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock(9000))
    assert bb.a.nic.egress.sink is bb.b.nic
    assert bb.b.nic.egress.sink is bb.a.nic


def test_back_to_back_asymmetric_hosts():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock(9000),
                           spec_b=INTEL_E7505,
                           config_b=TuningConfig.with_pcix_burst(9000))
    assert bb.a.spec.name == "PE2650"
    assert bb.b.spec.name == "IntelE7505"
    assert bb.b.config.mmrbc == 4096


def test_through_switch_wiring():
    env = Environment()
    ts = ThroughSwitch.create(env, TuningConfig.stock(1500))
    assert ts.a.nic.egress.sink is ts.switch
    # switch knows both hosts
    ts.switch.port("pA")
    ts.switch.port("pB")


def test_multiflow_builds_clients_and_ports():
    env = Environment()
    mf = MultiFlow.create(env, TuningConfig.stock(9000), n_clients=3)
    assert len(mf.clients) == 3
    assert len(mf.server_adapters) == 1
    for i in range(3):
        mf.switch.port(f"c{i}")


def test_multiflow_dual_adapters_independent_buses():
    env = Environment()
    mf = MultiFlow.create(env, TuningConfig.stock(9000), n_clients=2,
                          n_server_adapters=2)
    a0, a1 = mf.server_adapters
    assert a0.pcix is not a1.pcix


def test_multiflow_gbe_vs_10gbe_clients():
    env = Environment()
    gbe = MultiFlow.create(env, TuningConfig.stock(9000), n_clients=1)
    assert gbe.clients[0].nic.rate_bps == Gbps(1)
    env2 = Environment()
    tengbe = MultiFlow.create(env2, TuningConfig.stock(9000), n_clients=1,
                              server_spec=ITANIUM2,
                              client_rate_bps=Gbps(10))
    assert tengbe.clients[0].nic.rate_bps == Gbps(10)


def test_multiflow_validation():
    env = Environment()
    with pytest.raises(TopologyError):
        MultiFlow.create(env, TuningConfig.stock(), n_clients=0)
    with pytest.raises(TopologyError):
        MultiFlow.create(env, TuningConfig.stock(), n_clients=1,
                         n_server_adapters=3)


def test_wan_testbed_rtt():
    env = Environment()
    tb = build_wan_path(env, TuningConfig.wan_tuned(buf=1 << 25))
    # 180 ms RTT by construction (paper's measured value)
    assert tb.rtt_s == pytest.approx(0.180, rel=0.02)
    assert tb.sunnyvale.name == "sunnyvale"
    assert tb.forward.bottleneck_bps < tb.forward.oc192.payload_bps
