"""Unit tests for the fault-injection taps (now part of repro.chaos)."""

import os

import pytest

from repro.cache import stable_key
from repro.chaos import DuplicateTap, LossTap, ReorderTap
from repro.config import TuningConfig
from repro.errors import TopologyError
from repro.net.ethernet import EthernetLink
from repro.net.topology import BackToBack
from repro.net.train import TRAIN_ENV
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run
from repro.units import Gbps


class Collector:
    def __init__(self, env):
        self.env = env
        self.frames = []

    def receive_frame(self, skb):
        self.frames.append((skb.ident, skb.seq, self.env.now))


def make_link(env):
    link = EthernetLink(env, Gbps(10), 0.0, 9000)
    sink = Collector(env)
    link.connect(sink)
    return link, sink


def send(env, link, n, kind="data"):
    frames = []
    for i in range(n):
        skb = SkBuff(payload=1000, headers=52, kind=kind, seq=i * 1000,
                     end_seq=(i + 1) * 1000)
        frames.append(skb)
        link.transmit(skb)
    env.run()
    return frames


def test_loss_tap_drops_selected_indices():
    env = Environment()
    link, sink = make_link(env)
    tap = LossTap(env, link, drops={1, 3})
    frames = send(env, link, 5)
    delivered = [ident for ident, _, _ in sink.frames]
    assert frames[1].ident not in delivered
    assert frames[3].ident not in delivered
    assert len(delivered) == 3
    assert len(tap.dropped) == 2


def test_loss_tap_ignores_other_kinds():
    env = Environment()
    link, sink = make_link(env)
    LossTap(env, link, drops={0}, kinds=("data",))
    send(env, link, 2, kind="ack")
    assert len(sink.frames) == 2


def test_duplicate_tap_delivers_twice():
    env = Environment()
    link, sink = make_link(env)
    DuplicateTap(env, link, duplicates={0})
    send(env, link, 2)
    assert len(sink.frames) == 3
    seqs = [seq for _, seq, _ in sink.frames]
    assert seqs.count(0) == 2


def test_reorder_tap_lets_later_frames_overtake():
    env = Environment()
    link, sink = make_link(env)
    ReorderTap(env, link, holds={0}, delay_s=1e-3)
    frames = send(env, link, 3)
    order = [ident for ident, _, _ in sink.frames]
    assert order[-1] == frames[0].ident  # held frame arrives last
    assert len(order) == 3


def test_tap_requires_connected_link():
    env = Environment()
    link = EthernetLink(env, Gbps(10))
    with pytest.raises(TopologyError):
        LossTap(env, link, drops={0})


def test_reorder_tap_negative_delay_rejected():
    env = Environment()
    link, _ = make_link(env)
    with pytest.raises(TopologyError):
        ReorderTap(env, link, holds={0}, delay_s=-1.0)


def test_legacy_import_path_warns_and_aliases():
    """repro.net.faults still works, with a deprecation pointer at the
    chaos subsystem — and serves the very same classes."""
    import repro.net.faults as legacy

    for name, cls in (("LossTap", LossTap), ("DuplicateTap", DuplicateTap),
                      ("ReorderTap", ReorderTap)):
        with pytest.warns(DeprecationWarning, match="repro.chaos"):
            assert getattr(legacy, name) is cls


def _lossy_transfer(batched, drops):
    """A TCP transfer through a LossTap with train batching forced."""
    saved = os.environ.get(TRAIN_ENV)
    os.environ[TRAIN_ENV] = "1" if batched else "0"
    try:
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        tap = LossTap(env, bb.links[0], drops)
        result = nttcp_run(env, conn, payload=conn.mss, count=24)
    finally:
        if saved is None:
            del os.environ[TRAIN_ENV]
        else:
            os.environ[TRAIN_ENV] = saved
    return stable_key(result, env.now, sorted(tap.drops), len(tap.dropped))


@pytest.mark.parametrize("drops", [set(), {0}, {2, 5}, {1, 2, 3, 11}])
def test_loss_recovery_hashes_identical_train_on_vs_off(drops):
    """Regression for the segment-train data path: dropping frames out
    of an in-flight train must split it exactly like legacy per-frame
    delivery, so the whole transfer hashes bit-identically."""
    assert _lossy_transfer(True, drops) == _lossy_transfer(False, drops)
