"""Unit tests for POS circuits, routers and the WAN path."""

import pytest

from repro.errors import LinkError, TopologyError
from repro.net.wanpath import (
    OC192_BPS,
    OC48_BPS,
    POS_OVERHEAD,
    PosCircuit,
    Router,
    SONET_PAYLOAD_FRACTION,
    WanPath,
)
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment


class Collector:
    def __init__(self, env):
        self.env = env
        self.frames = []
        self.times = []

    def receive_frame(self, skb):
        self.frames.append(skb)
        self.times.append(self.env.now)


def test_sonet_overhead_reduces_payload_rate():
    env = Environment()
    oc48 = PosCircuit(env, OC48_BPS, 0.0)
    assert oc48.payload_bps == pytest.approx(OC48_BPS * SONET_PAYLOAD_FRACTION)
    assert oc48.payload_bps / 1e9 == pytest.approx(2.396, rel=0.01)


def test_serialization_includes_ppp_overhead():
    env = Environment()
    oc48 = PosCircuit(env, OC48_BPS, 0.0)
    skb = SkBuff(payload=8948, headers=52)
    expected = (8948 + 52 + POS_OVERHEAD) * 8 / oc48.payload_bps
    assert oc48.serialization_time(skb) == pytest.approx(expected)


def test_propagation_dominates_long_circuits():
    env = Environment()
    circuit = PosCircuit(env, OC192_BPS, 13000.0)
    sink = Collector(env)
    circuit.connect(sink)
    circuit.transmit(SkBuff(payload=100, headers=52))
    env.run()
    assert sink.times[0] == pytest.approx(13000e3 / 2e8, rel=0.01)


def test_unconnected_transmit_rejected():
    env = Environment()
    circuit = PosCircuit(env, OC48_BPS, 10.0)
    with pytest.raises(LinkError):
        circuit.transmit(SkBuff(payload=1, headers=52))


def test_router_droptail():
    env = Environment()
    oc48 = PosCircuit(env, OC48_BPS, 0.0)
    oc48.connect(Collector(env))
    router = Router(env, oc48, queue_frames=4, forwarding_latency_s=0.0)
    for _ in range(20):
        router.receive_frame(SkBuff(payload=8948, headers=52))
    env.run()
    assert router.drops.total > 0
    assert router.forwarded.total + router.drops.total == 20


def test_router_invalid_queue():
    env = Environment()
    with pytest.raises(TopologyError):
        Router(env, egress=None, queue_frames=0)


def test_wanpath_end_to_end():
    env = Environment()
    path = WanPath(env)
    sink = Collector(env)
    path.connect(sink)
    path.head.receive_frame(SkBuff(payload=8948, headers=52))
    env.run()
    assert len(sink.frames) == 1
    # 18000 km at 2e8 m/s = 90 ms one way
    assert sink.times[0] == pytest.approx(0.090, rel=0.02)
    assert path.propagation_s == pytest.approx(0.090, rel=0.01)


def test_wanpath_bottleneck_is_oc48():
    env = Environment()
    path = WanPath(env)
    assert path.bottleneck_bps == pytest.approx(
        OC48_BPS * SONET_PAYLOAD_FRACTION)


def test_wanpath_congestion_drops_counted():
    env = Environment()
    path = WanPath(env, bottleneck_queue_frames=2)
    path.connect(Collector(env))
    for _ in range(50):
        path.head.receive_frame(SkBuff(payload=8948, headers=52))
    env.run()
    assert path.drops > 0
