"""Unit tests for Ethernet links."""

import pytest

from repro.errors import LinkError
from repro.net.ethernet import EthernetLink, FIBRE_M_PER_S, wire_time
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.units import Gbps


class Collector:
    def __init__(self, env=None):
        self.frames = []
        self.times = []
        self.env = env

    def receive_frame(self, skb):
        self.frames.append(skb)
        if self.env is not None:
            self.times.append(self.env.now)


def test_wire_time_includes_preamble_and_ifg():
    skb = SkBuff(payload=1448, headers=52)
    # 1448+52+18 frame + 20 preamble/IFG = 1538 bytes on the wire
    assert wire_time(skb, Gbps(10)) == pytest.approx(1538 * 8 / 1e10)


def test_delivery_after_serialization_and_propagation():
    env = Environment()
    link = EthernetLink(env, Gbps(10), length_m=200.0, mtu=9000)
    sink = Collector(env)
    link.connect(sink)
    skb = SkBuff(payload=8948, headers=52)
    link.transmit(skb)
    env.run()
    expected = wire_time(skb, Gbps(10)) + 200.0 / FIBRE_M_PER_S
    assert sink.times[0] == pytest.approx(expected)


def test_fifo_serialization():
    env = Environment()
    link = EthernetLink(env, Gbps(10), length_m=0.0, mtu=9000)
    sink = Collector(env)
    link.connect(sink)
    first = SkBuff(payload=8948, headers=52)
    second = SkBuff(payload=100, headers=52)
    link.transmit(first)
    link.transmit(second)
    env.run()
    assert [f.ident for f in sink.frames] == [first.ident, second.ident]
    # second waits for the first's serialization
    assert sink.times[1] == pytest.approx(
        wire_time(first, Gbps(10)) + wire_time(second, Gbps(10)))


def test_oversized_frame_rejected():
    env = Environment()
    link = EthernetLink(env, Gbps(10), mtu=1500)
    link.connect(Collector())
    with pytest.raises(LinkError):
        link.transmit(SkBuff(payload=8948, headers=52))


def test_unconnected_transmit_rejected():
    env = Environment()
    link = EthernetLink(env, Gbps(10))
    with pytest.raises(LinkError):
        link.transmit(SkBuff(payload=100, headers=52))


def test_invalid_construction():
    env = Environment()
    with pytest.raises(LinkError):
        EthernetLink(env, rate_bps=0)
    with pytest.raises(LinkError):
        EthernetLink(env, rate_bps=Gbps(10), length_m=-5)


def test_counters_accumulate():
    env = Environment()
    link = EthernetLink(env, Gbps(10), mtu=9000)
    link.connect(Collector())
    for _ in range(3):
        link.transmit(SkBuff(payload=1000, headers=52))
    env.run()
    assert link.frames.total == 3
    assert link.bytes.total == 3 * SkBuff(payload=1000, headers=52).wire_bytes


def test_gbe_rate_slows_serialization():
    env = Environment()
    fast = EthernetLink(env, Gbps(10), mtu=9000)
    slow = EthernetLink(env, Gbps(1), mtu=9000)
    skb = SkBuff(payload=8948, headers=52)
    assert wire_time(skb, slow.rate_bps) == pytest.approx(
        10 * wire_time(skb, fast.rate_bps))
