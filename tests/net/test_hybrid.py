"""Hybrid fluid+DES fabric simulation: fidelity, knobs, couplings."""

import pytest

from repro.errors import ProtocolError
from repro.net.coupling import QueueCoupling
from repro.net.fabric import build_fat_tree, build_torus3d
from repro.net.hybrid import (FabricSimulation, HYBRID_ENV, HYBRID_TICK_ENV,
                              alltoall_pairs, bisection_pairs,
                              hybrid_enabled, hybrid_tick_override,
                              incast_pairs)


class TestWorkloadGenerators:
    def test_incast_targets_one_server(self):
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 40)
        assert len(pairs) == 40
        assert {dst for _, dst in pairs} == {topo.hosts[0]}
        assert topo.hosts[0] not in {src for src, _ in pairs}

    def test_alltoall_spreads_sources(self):
        topo = build_fat_tree(4)
        pairs = alltoall_pairs(topo, 16)
        assert len({src for src, _ in pairs}) == 16  # every host sends
        assert all(src != dst for src, dst in pairs)

    def test_alltoall_covers_all_ordered_pairs(self):
        topo = build_torus3d(2, 2, 1)
        n_hosts = len(topo.hosts)
        pairs = alltoall_pairs(topo, n_hosts * (n_hosts - 1))
        assert len(set(pairs)) == n_hosts * (n_hosts - 1)

    def test_bisection_crosses_the_cut(self):
        topo = build_torus3d(4, 2, 2)
        half = set(topo.hosts[:8])
        for src, dst in bisection_pairs(topo, 32):
            assert (src in half) != (dst in half)

    def test_generators_validate(self):
        topo = build_fat_tree(4)
        with pytest.raises(ProtocolError):
            incast_pairs(topo, 0)
        with pytest.raises(ProtocolError):
            alltoall_pairs(topo, -1)


class TestHybridKnobs:
    def test_hybrid_enabled_default_and_off(self, monkeypatch):
        monkeypatch.delenv(HYBRID_ENV, raising=False)
        assert hybrid_enabled()
        for off in ("0", "off", "false", "NO"):
            monkeypatch.setenv(HYBRID_ENV, off)
            assert not hybrid_enabled()
        monkeypatch.setenv(HYBRID_ENV, "1")
        assert hybrid_enabled()

    def test_auto_mode_respects_knob(self, monkeypatch):
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 16)
        monkeypatch.delenv(HYBRID_ENV, raising=False)
        assert FabricSimulation(topo, pairs, n_foreground=4).mode == "hybrid"
        monkeypatch.setenv(HYBRID_ENV, "0")
        assert FabricSimulation(topo, pairs, n_foreground=4).mode == "des"

    def test_tick_override(self, monkeypatch):
        monkeypatch.setenv(HYBRID_TICK_ENV, "0.00025")
        assert hybrid_tick_override() == 0.00025
        topo = build_fat_tree(4)
        sim = FabricSimulation(topo, incast_pairs(topo, 16))
        assert sim.coupling_tick() == 0.00025
        monkeypatch.setenv(HYBRID_TICK_ENV, "bogus")
        with pytest.raises(ProtocolError):
            hybrid_tick_override()
        monkeypatch.setenv(HYBRID_TICK_ENV, "-1")
        with pytest.raises(ProtocolError):
            hybrid_tick_override()

    def test_simulation_validates(self):
        topo = build_fat_tree(4)
        with pytest.raises(ProtocolError):
            FabricSimulation(topo, [])
        with pytest.raises(ProtocolError):
            FabricSimulation(topo, incast_pairs(topo, 4), n_foreground=0)
        with pytest.raises(ProtocolError):
            FabricSimulation(topo, incast_pairs(topo, 4), mode="quantum")
        sim = FabricSimulation(topo, incast_pairs(topo, 4))
        with pytest.raises(ProtocolError):
            sim.run(duration_s=0.0)
        with pytest.raises(ProtocolError):
            sim.run(duration_s=0.1, warmup_fraction=1.0)


class TestHybridFidelity:
    def test_empty_background_is_bit_identical_to_des(self):
        # The core determinism contract: with no background flows the
        # hybrid machinery must not exist at all — same event count,
        # same per-flow goodput, bit for bit.
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 6)
        des = FabricSimulation(topo, pairs, n_foreground=6,
                               mode="des").run(duration_s=0.02)
        hyb = FabricSimulation(topo, pairs, n_foreground=6,
                               mode="hybrid").run(duration_s=0.02)
        assert hyb.mode == "hybrid" and hyb.n_background == 0
        assert hyb.events_scheduled == des.events_scheduled
        assert hyb.per_flow_foreground_bps == des.per_flow_foreground_bps
        assert hyb.aggregate_goodput_bps == des.aggregate_goodput_bps
        assert hyb.coupler_ticks == 0 and hyb.fluid_losses == 0

    def test_hybrid_within_5pct_of_des_on_validation_fabric(self):
        # The ISSUE's validation envelope: <= 8 foreground + <= 32
        # background flows, aggregate goodput within 5% of all-DES.
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 32)
        des = FabricSimulation(topo, pairs, n_foreground=8,
                               mode="des").run(duration_s=0.05)
        hyb = FabricSimulation(topo, pairs, n_foreground=8,
                               mode="hybrid").run(duration_s=0.05)
        assert hyb.n_background == 24
        assert hyb.coupler_ticks > 0
        rel = abs(hyb.aggregate_goodput_bps - des.aggregate_goodput_bps) \
            / des.aggregate_goodput_bps
        assert rel <= 0.05, f"hybrid {rel:.2%} off all-DES"

    def test_hybrid_run_is_reproducible(self):
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 24)
        a = FabricSimulation(topo, pairs, mode="hybrid",
                             seed=7).run(duration_s=0.02)
        b = FabricSimulation(topo, pairs, mode="hybrid",
                             seed=7).run(duration_s=0.02)
        assert a.aggregate_goodput_bps == b.aggregate_goodput_bps
        assert a.events_scheduled == b.events_scheduled
        assert a.coupled_drops == b.coupled_drops

    def test_background_shares_the_bottleneck(self):
        # With background flows on, the foreground must give up part of
        # the incast bottleneck, and the fluid side must carry traffic.
        topo = build_fat_tree(4)
        pairs = incast_pairs(topo, 32)
        solo = FabricSimulation(topo, pairs[:8], mode="des") \
            .run(duration_s=0.05)
        hyb = FabricSimulation(topo, pairs, n_foreground=8,
                               mode="hybrid").run(duration_s=0.05)
        assert hyb.background_goodput_bps > 0
        assert hyb.foreground_goodput_bps < solo.aggregate_goodput_bps


class TestQueueCoupling:
    def test_admit_is_free_with_no_background(self):
        c = QueueCoupling("q", seed=1)
        assert all(c.admit() for _ in range(100))
        assert c.coupled_drops == 0
        assert c.service_scale() == 1.0

    def test_set_background_smooths_and_clips(self):
        c = QueueCoupling("q", ema_alpha=0.5)
        c.set_background(2.0, 2.0)            # clipped to 0.95
        assert c.background_utilization == pytest.approx(0.475)
        c.set_background(0.95, 0.95)
        assert c.background_utilization == pytest.approx(0.7125)
        assert c.background_drop_prob <= 0.95

    def test_full_drop_pressure_drops_everything(self):
        c = QueueCoupling("q", ema_alpha=1.0)
        c.set_background(0.5, 0.95)
        dropped = sum(0 if c.admit() else 1 for _ in range(200))
        assert dropped > 150
        assert c.coupled_drops == dropped

    def test_foreground_accounting_drains(self):
        c = QueueCoupling("q")
        for _ in range(10):
            c.record_service(9000)
        assert c.take_foreground_pps(0.1) == pytest.approx(100.0)
        assert c.take_foreground_pps(0.1) == 0.0  # drained

    def test_seeded_streams_are_reproducible(self):
        a = QueueCoupling("q", seed=42, ema_alpha=1.0)
        b = QueueCoupling("q", seed=42, ema_alpha=1.0)
        a.set_background(0.0, 0.5)
        b.set_background(0.0, 0.5)
        assert [a.admit() for _ in range(64)] == \
            [b.admit() for _ in range(64)]


class TestSharedQueueHooks:
    def test_switch_port_coupling(self):
        from repro.net.ethernet import EthernetLink
        from repro.net.switch import Switch
        from repro.oskernel.skbuff import SkBuff
        from repro.sim.engine import Environment

        env = Environment()
        sw = Switch(env)
        delivered = []

        class Sink:
            def receive_frame(self, skb):
                delivered.append(skb)

        link = EthernetLink(env, rate_bps=1e10, length_m=1, mtu=9000)
        link.connect(Sink())
        port = sw.add_port("p1", link)
        sw.learn("dst", "p1")

        coupling = QueueCoupling("sw.p1", ema_alpha=1.0)
        port.couple(coupling)
        coupling.set_background(0.2, 0.0)     # no drops, but coupled
        for i in range(10):
            sw.receive_frame(SkBuff(payload=1024, headers=40,
                                    meta={"dst": "dst"}))
        env.run()
        assert len(delivered) == 10
        # every forwarded frame was reported back as cross traffic
        assert coupling.foreground_packets == 10
        assert coupling.foreground_bytes > 0

    def test_switch_port_coupled_drops(self):
        from repro.net.ethernet import EthernetLink
        from repro.net.switch import Switch
        from repro.oskernel.skbuff import SkBuff
        from repro.sim.engine import Environment

        env = Environment()
        sw = Switch(env)
        link = EthernetLink(env, rate_bps=1e10, length_m=1, mtu=9000)

        class Sink:
            def receive_frame(self, skb):
                pass

        link.connect(Sink())
        port = sw.add_port("p1", link)
        sw.learn("dst", "p1")
        coupling = QueueCoupling("sw.p1", ema_alpha=1.0)
        port.couple(coupling)
        coupling.set_background(0.0, 0.95)    # heavy background pressure
        for _ in range(100):
            sw.receive_frame(SkBuff(payload=1024, headers=40,
                                    meta={"dst": "dst"}))
        env.run()
        assert coupling.coupled_drops > 50
        assert int(port.drops.total) == coupling.coupled_drops

    def test_router_coupling(self):
        from repro.net.wanpath import OC48_BPS, PosCircuit, Router
        from repro.oskernel.skbuff import SkBuff
        from repro.sim.engine import Environment

        env = Environment()
        circuit = PosCircuit(env, OC48_BPS, 10.0)
        delivered = []

        class Sink:
            def receive_frame(self, skb):
                delivered.append(skb)

        circuit.connect(Sink())
        router = Router(env, circuit)
        coupling = QueueCoupling("router", ema_alpha=1.0)
        router.couple(coupling)
        for _ in range(8):
            router.receive_frame(SkBuff(payload=1024, headers=40))
        env.run()
        assert len(delivered) == 8
        assert coupling.foreground_packets == 8
