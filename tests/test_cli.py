"""Tests for the ``python -m repro`` command line."""

import pathlib

import pytest

from repro.__main__ import main
from repro.analysis.experiments import experiment_ids


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == experiment_ids()


def test_no_args_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_fast_experiments(capsys, tmp_path):
    assert main(["fig8", "tab1", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "=== fig8" in out and "=== tab1" in out
    assert (tmp_path / "fig8.txt").exists()
    assert "Geneva-Sunnyvale" in (tmp_path / "tab1.txt").read_text()
