"""Tests for the ``python -m repro`` command line."""

import pathlib

import pytest

from repro.__main__ import main
from repro.analysis.experiments import experiment_ids


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == experiment_ids()


def test_no_args_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_fast_experiments(capsys, tmp_path):
    assert main(["fig8", "tab1", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "=== fig8" in out and "=== tab1" in out
    assert (tmp_path / "fig8.txt").exists()
    assert "Geneva-Sunnyvale" in (tmp_path / "tab1.txt").read_text()


def test_telemetry_flags(capsys, tmp_path):
    """--metrics/--trace/--trace-jsonl/--timeline/--profile end to end."""
    import json

    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    timeline = tmp_path / "timeline.json"
    assert main(["pktgen", "--metrics", "--profile",
                 "--trace", str(trace),
                 "--trace-jsonl", str(jsonl),
                 "--timeline", str(timeline)]) == 0
    out = capsys.readouterr().out
    assert "Metrics (pktgen)" in out
    assert "Engine profile" in out
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"]
    # tracks carry the experiment prefix
    names = [r["args"]["name"] for r in doc["traceEvents"] if r["ph"] == "M"]
    assert names and all(n.startswith("pktgen/") for n in names)
    lines = jsonl.read_text().strip().splitlines()
    assert lines and json.loads(lines[0])["point"]
    assert json.loads(timeline.read_text())["format"] == "repro-timeline-v1"


def test_metrics_table_identical_serial_vs_parallel(capsys):
    """The acceptance criterion: merged metrics don't depend on --jobs."""

    def metrics_text(jobs):
        assert main(["pktgen", "--metrics", "--jobs", jobs]) == 0
        out = capsys.readouterr().out
        return out[out.index("Metrics (pktgen)"):]

    assert metrics_text("1") == metrics_text("2")
