"""Unit tests for the on-disk result cache."""

import pytest

from repro.cache import (
    ResultCache,
    active_cache,
    cache_context,
    code_fingerprint,
    default_cache_dir,
    stable_key,
)
from repro.config import TuningConfig
from repro.hw.presets import INTEL_E7505, PE2650


class TestStableKey:
    def test_deterministic(self):
        cfg = TuningConfig.stock(9000)
        assert stable_key("ns", cfg, 42) == stable_key("ns", cfg, 42)

    def test_any_config_field_changes_key(self):
        base = TuningConfig.fully_tuned(8160)
        seen = {stable_key(base)}
        for change in ({"mtu": 9000}, {"mmrbc": 512},
                       {"smp_kernel": True}, {"tcp_rmem": 65536},
                       {"interrupt_coalescing_us": 0.0},
                       {"tcp_timestamps": False}, {"tso": True},
                       {"txqueuelen": 5000}, {"sack": True}):
            key = stable_key(base.replace(**change))
            assert key not in seen, change
            seen.add(key)

    def test_topology_inputs_change_key(self):
        cfg = TuningConfig.stock()
        assert stable_key(cfg, PE2650) != stable_key(cfg, INTEL_E7505)
        assert stable_key("a", cfg) != stable_key("b", cfg)

    def test_float_bits_matter_but_int_is_not_float(self):
        assert stable_key(1) != stable_key(1.0)
        assert stable_key(0.1) == stable_key(0.1)

    def test_nested_structures(self):
        assert stable_key({"a": [1, (2, 3)]}) == stable_key({"a": [1, [2, 3]]})
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x", 1)
        assert cache.get(key) == (False, None)
        assert cache.put(key, {"v": [1.5, "two"]})
        assert cache.get(key) == (True, {"v": [1.5, "two"]})

    def test_corrupted_entry_recomputed_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, "payload")
        victim = cache._file(key)
        victim.write_bytes(b"not a cache entry at all")
        hit, value = cache.get(key)
        assert (hit, value) == (False, None)
        assert not victim.exists()  # bad entry dropped
        assert cache.errors == 1
        cache.put(key, "payload")  # recompute path works again
        assert cache.get(key) == (True, "payload")

    def test_truncated_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, list(range(1000)))
        blob = cache._file(key).read_bytes()
        cache._file(key).write_bytes(blob[:len(blob) // 2])
        assert cache.get(key) == (False, None)
        assert cache.errors == 1

    def test_unpicklable_value_is_skipped_silently(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        assert not cache.put(key, lambda: None)
        assert cache.errors == 1
        assert cache.get(key) == (False, None)

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = [cache.key(i) for i in range(3)]
        for k in keys:
            cache.put(k, k)
        assert cache.invalidate(keys[0])
        assert not cache.invalidate(keys[0])
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.get(key)
        cache.put(key, "v")
        cache.get(key)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.size_bytes > 0
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.hit_rate == 0.5


class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert active_cache() is None

    def test_env_enables_default_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = active_cache()
        assert cache is not None
        assert cache.path == tmp_path / "c"

    def test_context_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        with cache_context(False):
            assert active_cache() is None
        mine = ResultCache(tmp_path / "mine")
        with cache_context(mine):
            assert active_cache() is mine

    def test_none_context_inherits(self, tmp_path):
        mine = ResultCache(tmp_path / "mine")
        with cache_context(mine):
            with cache_context(None):
                assert active_cache() is mine

    def test_bad_argument_rejected(self):
        with pytest.raises(TypeError):
            with cache_context("yes please"):
                pass

    def test_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == ".repro-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "deadbeef")
        assert code_fingerprint() == "deadbeef"


class TestShardedLayout:
    def test_entries_land_in_key_prefix_shards(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = [cache.key(i) for i in range(8)]
        for k in keys:
            cache.put(k, k)
        for k in keys:
            assert cache._file(k) == tmp_path / "c" / k[:2] / f"{k}.pkl"
            assert cache._file(k).is_file()
        # nothing at the flat v1 location
        assert not list((tmp_path / "c").glob("*.pkl"))

    def test_format_marker_written(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key("x"), 1)
        assert (tmp_path / "c" / "CACHE_FORMAT").read_text().strip() == "2"

    def test_keys_enumeration(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = sorted(cache.key(i) for i in range(5))
        for k in keys:
            cache.put(k, k)
        assert cache.keys() == keys

    def test_second_handle_sees_stored_entries(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        key = a.key("x")
        a.put(key, "value")
        b = ResultCache(tmp_path / "c")
        assert b.get(key) == (True, "value")
        assert b.stats().entries == 1


class TestV1Migration:
    def _write_v1(self, cache, key, value):
        """Write an entry exactly where the v1 flat layout kept it."""
        import hashlib as _h
        import pickle as _p
        payload = _p.dumps(value, protocol=_p.HIGHEST_PROTOCOL)
        blob = (b"RPROCACHE1\n"
                + _h.sha256(payload).hexdigest().encode() + payload)
        cache.path.mkdir(parents=True, exist_ok=True)
        (cache.path / f"{key}.pkl").write_bytes(blob)

    def test_flat_entries_migrated_without_recompute(self, tmp_path):
        old = ResultCache(tmp_path / "c")
        keys = [old.key(i) for i in range(4)]
        for k in keys:
            self._write_v1(old, k, f"v1:{k}")
        cache = ResultCache(tmp_path / "c")
        for k in keys:
            assert cache.get(k) == (True, f"v1:{k}")  # hits, not misses
        assert cache.misses == 0
        # entries physically moved into their shards
        for k in keys:
            assert cache._file(k).is_file()
            assert not (tmp_path / "c" / f"{k}.pkl").exists()
        assert cache.stats().entries == len(keys)

    def test_concurrent_legacy_writer_adopted(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache.key("warmup"), 0)  # migration already ran
        key = cache.key("late")
        self._write_v1(cache, key, "legacy")  # old process writes flat
        assert cache.get(key) == (True, "legacy")
        assert cache._file(key).is_file()  # adopted into its shard

    def test_migration_is_idempotent(self, tmp_path):
        old = ResultCache(tmp_path / "c")
        key = old.key("x")
        self._write_v1(old, key, "v")
        a = ResultCache(tmp_path / "c")
        assert a.get(key) == (True, "v")
        b = ResultCache(tmp_path / "c")  # second open: nothing left to move
        assert b.get(key) == (True, "v")
        assert b.stats().entries == 1


class TestEviction:
    def test_lru_eviction_order(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_bytes=10_000_000,
                            hot_entries=0)
        blob = "x" * 1000
        keys = [cache.key(i) for i in range(5)]
        now = [1000.0]

        def clock():
            now[0] += 1.0
            return now[0]

        import repro.cache.store as store_mod
        orig = store_mod.time.time
        store_mod.time.time = clock
        try:
            for k in keys:
                cache.put(k, blob)
            # touch keys[0] so keys[1] becomes the LRU victim
            assert cache.get(keys[0])[0]
            cache.max_bytes = cache.stats().size_bytes - 1
            cache._evict_to_cap()
        finally:
            store_mod.time.time = orig
        assert cache.evictions == 1
        assert cache.get(keys[1]) == (False, None)   # LRU evicted
        assert cache.get(keys[0])[0]                  # refreshed survivor
        for k in keys[2:]:
            assert cache.get(k)[0]

    def test_put_evicts_down_to_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_bytes=3000, hot_entries=0)
        keys = [cache.key(i) for i in range(6)]
        for k in keys:
            cache.put(k, "y" * 900)  # ~1 KB each, cap fits ~3
        stats = cache.stats()
        assert stats.size_bytes <= 3000
        assert stats.evictions >= 3
        # the newest entry is always protected from its own eviction pass
        assert cache.get(keys[-1])[0]

    def test_no_cap_means_no_eviction(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        cache = ResultCache(tmp_path / "c")
        for i in range(10):
            cache.put(cache.key(i), "z" * 2000)
        assert cache.evictions == 0
        assert cache.stats().entries == 10

    def test_env_cap_parsed(self, monkeypatch):
        from repro.cache import cache_max_bytes
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert cache_max_bytes() == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        assert cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert cache_max_bytes() is None


class TestHotTier:
    def test_repeat_reads_skip_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, {"v": 1})
        assert cache.get(key)[0]          # disk read, populates hot tier
        cache._file(key).unlink()         # remove the backing file
        assert cache.get(key) == (True, {"v": 1})  # still answered
        assert cache.hot_hits == 1

    def test_put_does_not_populate_hot_tier(self, tmp_path):
        # Corruption detection depends on reads going to disk after a
        # put: the first get must validate the file, not trust memory.
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, "value")
        cache._file(key).write_bytes(b"garbage")
        assert cache.get(key) == (False, None)
        assert cache.errors == 1

    def test_bounded_by_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c", hot_entries=2)
        keys = [cache.key(i) for i in range(3)]
        for k in keys:
            cache.put(k, k)
            assert cache.get(k)[0]
        assert cache.hot_hits == 0
        # the last two reads are still hot; the first was evicted
        for k in reversed(keys):
            assert cache.get(k)[0]
        assert cache.hot_hits == 2

    def test_disabled_with_zero_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c", hot_entries=0)
        key = cache.key("x")
        cache.put(key, "v")
        assert cache.get(key)[0]
        assert cache.get(key)[0]
        assert cache.hot_hits == 0

    def test_invalidate_purges_hot_tier(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, "v")
        assert cache.get(key)[0]
        assert cache.invalidate(key)
        assert cache.get(key) == (False, None)


class TestIndexReconciliation:
    def test_missing_index_rebuilt_from_scan(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        keys = [a.key(i) for i in range(4)]
        for k in keys:
            a.put(k, k)
        for index in (tmp_path / "c").glob("*/index.jsonl"):
            index.unlink()
        b = ResultCache(tmp_path / "c")
        assert b.stats().entries == len(keys)
        for k in keys:
            assert b.get(k) == (True, k)

    def test_dangling_index_record_reconciled(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        key = a.key("x")
        a.put(key, "v")
        a._file(key).unlink()  # file gone, index record remains
        b = ResultCache(tmp_path / "c")
        assert b.get(key) == (False, None)
        assert b.stats().entries == 0  # record dropped on reconcile

    def test_unindexed_file_adopted_on_read(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        key = a.key("x")
        a.put(key, "v")
        b = ResultCache(tmp_path / "c")
        b._load_all_shards()  # load indexes first...
        import shutil
        shard_dir = a._file(key).parent
        extra = a.key("y")
        a.put(extra, "w")  # ...then another process stores an entry
        b.reload()
        assert b.get(extra) == (True, "w")
        assert b.stats().entries == 2

    def test_torn_index_tail_skipped(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        key = a.key("x")
        a.put(key, "v")
        index = a._file(key).parent / "index.jsonl"
        with index.open("ab") as fh:
            fh.write(b'{"k": "half-written')  # crashed writer's tail
        b = ResultCache(tmp_path / "c")
        assert b.get(key) == (True, "v")
        assert b.stats().entries == 1

    def test_index_compaction_bounds_file(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        shard_dir = cache._file(key).parent
        for _ in range(60):  # 60 upserts + 60 tombstones for one key
            cache.put(key, "v")
            cache.invalidate(key)
        cache.put(key, "v")
        fresh = ResultCache(tmp_path / "c")
        assert fresh.get(key) == (True, "v")
        # load() compacted: the on-disk index shrank to ~the live set
        lines = (shard_dir / "index.jsonl").read_bytes().splitlines()
        assert len(lines) <= 17

    def test_reload_picks_up_concurrent_writer(self, tmp_path):
        a = ResultCache(tmp_path / "c")
        b = ResultCache(tmp_path / "c")
        key = a.key("x")
        b.stats()  # b loads (empty) indexes
        a.put(key, "v")
        b.reload()
        assert b.stats().entries == 1
        assert b.get(key) == (True, "v")
