"""Unit tests for the on-disk result cache."""

import pytest

from repro.cache import (
    ResultCache,
    active_cache,
    cache_context,
    code_fingerprint,
    default_cache_dir,
    stable_key,
)
from repro.config import TuningConfig
from repro.hw.presets import INTEL_E7505, PE2650


class TestStableKey:
    def test_deterministic(self):
        cfg = TuningConfig.stock(9000)
        assert stable_key("ns", cfg, 42) == stable_key("ns", cfg, 42)

    def test_any_config_field_changes_key(self):
        base = TuningConfig.fully_tuned(8160)
        seen = {stable_key(base)}
        for change in ({"mtu": 9000}, {"mmrbc": 512},
                       {"smp_kernel": True}, {"tcp_rmem": 65536},
                       {"interrupt_coalescing_us": 0.0},
                       {"tcp_timestamps": False}, {"tso": True},
                       {"txqueuelen": 5000}, {"sack": True}):
            key = stable_key(base.replace(**change))
            assert key not in seen, change
            seen.add(key)

    def test_topology_inputs_change_key(self):
        cfg = TuningConfig.stock()
        assert stable_key(cfg, PE2650) != stable_key(cfg, INTEL_E7505)
        assert stable_key("a", cfg) != stable_key("b", cfg)

    def test_float_bits_matter_but_int_is_not_float(self):
        assert stable_key(1) != stable_key(1.0)
        assert stable_key(0.1) == stable_key(0.1)

    def test_nested_structures(self):
        assert stable_key({"a": [1, (2, 3)]}) == stable_key({"a": [1, [2, 3]]})
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x", 1)
        assert cache.get(key) == (False, None)
        assert cache.put(key, {"v": [1.5, "two"]})
        assert cache.get(key) == (True, {"v": [1.5, "two"]})

    def test_corrupted_entry_recomputed_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, "payload")
        victim = cache._file(key)
        victim.write_bytes(b"not a cache entry at all")
        hit, value = cache.get(key)
        assert (hit, value) == (False, None)
        assert not victim.exists()  # bad entry dropped
        assert cache.errors == 1
        cache.put(key, "payload")  # recompute path works again
        assert cache.get(key) == (True, "payload")

    def test_truncated_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.put(key, list(range(1000)))
        blob = cache._file(key).read_bytes()
        cache._file(key).write_bytes(blob[:len(blob) // 2])
        assert cache.get(key) == (False, None)
        assert cache.errors == 1

    def test_unpicklable_value_is_skipped_silently(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        assert not cache.put(key, lambda: None)
        assert cache.errors == 1
        assert cache.get(key) == (False, None)

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = [cache.key(i) for i in range(3)]
        for k in keys:
            cache.put(k, k)
        assert cache.invalidate(keys[0])
        assert not cache.invalidate(keys[0])
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("x")
        cache.get(key)
        cache.put(key, "v")
        cache.get(key)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.size_bytes > 0
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.hit_rate == 0.5


class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert active_cache() is None

    def test_env_enables_default_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = active_cache()
        assert cache is not None
        assert cache.path == tmp_path / "c"

    def test_context_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        with cache_context(False):
            assert active_cache() is None
        mine = ResultCache(tmp_path / "mine")
        with cache_context(mine):
            assert active_cache() is mine

    def test_none_context_inherits(self, tmp_path):
        mine = ResultCache(tmp_path / "mine")
        with cache_context(mine):
            with cache_context(None):
                assert active_cache() is mine

    def test_bad_argument_rejected(self):
        with pytest.raises(TypeError):
            with cache_context("yes please"):
                pass

    def test_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == ".repro-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "deadbeef")
        assert code_fingerprint() == "deadbeef"
