"""Tests for the socket-style façade."""

import pytest

from repro.config import TuningConfig
from repro.errors import ProtocolError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.sockets import SimSocket, connect


def pair(cfg=None):
    env = Environment()
    bb = BackToBack.create(env, cfg or TuningConfig.oversized_windows(9000))
    tx, rx = connect(env, bb.a, bb.b)
    return env, tx, rx


def test_sendall_recv_exactly_roundtrip():
    env, tx, rx = pair()
    n = 512 * 1024
    received = {}

    def client():
        yield from tx.sendall(n)

    def server():
        got = yield from rx.recv_exactly(n)
        received["n"] = got

    env.process(client())
    done = env.process(server())
    env.run(until=done)
    assert received["n"] == n


def test_recv_returns_partial_like_bsd():
    env, tx, rx = pair()
    got = {}

    def client():
        yield from tx.send(1000)

    def server():
        got["n"] = yield from rx.recv(10**9)

    env.process(client())
    done = env.process(server())
    env.run(until=done)
    assert 0 < got["n"] <= 1000


def test_recv_cursor_advances_not_rereads():
    env, tx, rx = pair()
    counts = []

    def client():
        yield from tx.sendall(30000)

    def server():
        counts.append((yield from rx.recv_exactly(10000)))
        counts.append((yield from rx.recv_exactly(20000)))

    env.process(client())
    done = env.process(server())
    env.run(until=done)
    assert counts == [10000, 20000]


def test_role_enforcement():
    env, tx, rx = pair()
    with pytest.raises(ProtocolError):
        list(tx.recv(10))
    with pytest.raises(ProtocolError):
        list(rx.send(10))


def test_closed_socket_rejected():
    env, tx, rx = pair()
    tx.close()
    with pytest.raises(ProtocolError):
        list(tx.send(10))


def test_invalid_sizes():
    env, tx, rx = pair()
    with pytest.raises(ProtocolError):
        list(tx.sendall(0))
    with pytest.raises(ProtocolError):
        list(rx.recv(0))


def test_invalid_role():
    env, tx, _ = pair()
    with pytest.raises(ProtocolError):
        SimSocket(tx.connection, "duplex")


def test_bytes_outstanding_views():
    env, tx, rx = pair()

    def client():
        yield from tx.sendall(100000)

    env.run(until=env.process(client()))
    env.run(until=env.now + 0.01)
    assert tx.bytes_outstanding == 0            # everything acked
    assert rx.bytes_outstanding == 100000       # nothing consumed yet
