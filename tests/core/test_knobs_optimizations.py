"""Tests for the knob registry and the optimization ladder."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.core.knobs import KNOBS, knob
from repro.core.optimizations import LAN_OPTIMIZATION_LADDER
from repro.units import KB


def test_every_paper_knob_registered():
    expected = {"mtu", "mmrbc", "smp_kernel", "tcp_rmem", "tcp_wmem",
                "interrupt_coalescing_us", "tcp_timestamps",
                "window_scaling", "txqueuelen", "tso", "napi",
                "checksum_offload"}
    assert expected <= set(KNOBS)


def test_knobs_document_paper_sections():
    for k in KNOBS.values():
        assert k.paper_section
        assert len(k.description) > 20


def test_knob_apply_produces_validated_config():
    cfg = knob("mtu").apply(TuningConfig.stock(), 9000)
    assert cfg.mtu == 9000
    with pytest.raises(ConfigError):
        knob("mmrbc").apply(TuningConfig.stock(), 777)


def test_unknown_knob():
    with pytest.raises(ConfigError):
        knob("warp_factor")


def test_ladder_is_cumulative():
    cfg = TuningConfig.stock(9000)
    for step in LAN_OPTIMIZATION_LADDER:
        cfg = step.transform(cfg)
    assert cfg.mmrbc == 4096
    assert cfg.smp_kernel is False
    assert cfg.tcp_rmem == KB(256)


def test_ladder_order_matches_paper():
    names = [s.name for s in LAN_OPTIMIZATION_LADDER]
    assert names[0] == "stock TCP"
    assert "PCI-X" in names[1]
    assert "uniprocessor" in names[2]
    assert "window" in names[3].lower()


def test_ladder_paper_peaks_recorded():
    stock = LAN_OPTIMIZATION_LADDER[0]
    assert stock.paper_peaks_gbps[1500] == 1.8
    assert stock.paper_peaks_gbps[9000] == 2.7
    final = LAN_OPTIMIZATION_LADDER[-1]
    assert final.paper_peaks_gbps[8160] == 4.11
