"""Tests for the case-study driver (scaled-down sweeps)."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.core.casestudy import CaseStudy, SweepCurve


@pytest.fixture(scope="module")
def study():
    return CaseStudy(write_count=256, points=6)


@pytest.fixture(scope="module")
def stock_9000(study):
    return study.sweep(TuningConfig.stock(9000))


def test_sweep_produces_points(study, stock_9000):
    assert len(stock_9000.points) >= 6
    assert stock_9000.label == "9000MTU,SMP,512PCI,64kbuf"


def test_curve_statistics(stock_9000):
    assert 0 < stock_9000.average_gbps <= stock_9000.peak_gbps
    assert 0 <= stock_9000.mean_receiver_load <= 1.0


def test_payload_grid_includes_mss_neighbourhood(stock_9000):
    payloads = set(stock_9000.payloads.tolist())
    assert 8948 in payloads
    assert 7436 in payloads


def test_dip_requires_split(stock_9000):
    with pytest.raises(MeasurementError):
        stock_9000.dip(0, 10**9)


def test_empty_curve_raises():
    curve = SweepCurve(label="x", config=TuningConfig.stock())
    with pytest.raises(MeasurementError):
        curve.peak_gbps


def test_ladder_improves_9000_peak(study):
    results = study.run_ladder(mtus=(9000,))
    peaks = [r.curves[9000].peak_gbps for r in results]
    # stock < burst-tuned, and the final windowed step is the best
    assert peaks[0] < peaks[1]
    assert peaks[-1] == max(peaks)
    assert peaks[-1] > peaks[0] * 1.3


def test_ladder_tracks_paper_peaks(study):
    results = study.run_ladder(mtus=(9000,))
    for r in results:
        paper = r.paper_peak(9000)
        if paper is not None:
            # within 35% of the paper's number at this scale
            assert r.peak(9000) == pytest.approx(paper, rel=0.35)


def test_mtu_tuning_curves(study):
    curves = study.run_mtu_tuning(mtus=(8160,))
    assert curves[8160].peak_gbps > 3.5
