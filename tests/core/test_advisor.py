"""Tests for the tuning advisor."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.core.advisor import TuningAdvisor
from repro.hw.presets import INTEL_E7505, PE2650
from repro.units import KB


@pytest.fixture(scope="module")
def advice():
    return TuningAdvisor(PE2650).advise("lan-throughput")


def test_lan_throughput_reaches_the_papers_config(advice):
    cfg = advice.config
    assert cfg.mmrbc == 4096
    assert cfg.smp_kernel is False
    assert cfg.tcp_rmem == KB(256)
    assert cfg.mtu in (8160, 16000)
    assert advice.predicted_gbps > 3.8


def test_every_accepted_step_improves(advice):
    last = None
    for step in advice.steps:
        if step.accepted:
            if last is not None:
                assert step.predicted_gbps > last
            last = step.predicted_gbps


def test_explain_is_readable(advice):
    text = advice.explain()
    assert "recommended:" in text
    assert "§3.3" in text or "3.3" in text
    assert text.count("\n") >= 3


def test_lan_latency_disables_coalescing():
    advice = TuningAdvisor(PE2650).advise("lan-latency")
    assert advice.config.interrupt_coalescing_us == 0.0
    assert advice.config.mtu == 1500


def test_wan_recipe_shape():
    advice = TuningAdvisor(PE2650).advise("wan-throughput")
    assert advice.config.txqueuelen == 10000
    assert advice.config.mtu == 9000
    assert advice.config.window_scaling


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError):
        TuningAdvisor(PE2650).advise("quantum")


def test_custom_start_config_respected():
    start = TuningConfig.stock(1500)
    advice = TuningAdvisor(PE2650).advise("lan-throughput", start=start)
    # the advisor should still discover the jumbo/allocator move
    assert advice.config.mtu >= 8160


def test_platform_sensitivity():
    pe = TuningAdvisor(PE2650).advise("lan-throughput")
    e7505 = TuningAdvisor(INTEL_E7505).advise("lan-throughput")
    assert e7505.predicted_gbps > pe.predicted_gbps  # faster FSB wins
