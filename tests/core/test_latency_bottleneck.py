"""Tests for the latency study and the bottleneck decomposition."""

import pytest

from repro.core.bottleneck import BottleneckStudy
from repro.core.latencyreport import LatencyStudy


@pytest.fixture(scope="module")
def latency():
    return LatencyStudy(iterations=4)


class TestLatencyStudy:
    def test_back_to_back_base_near_19us(self, latency):
        curve = latency.measure(5.0, False, payloads=(1,))
        assert curve.base_latency_us == pytest.approx(19.0, abs=1.5)

    def test_switch_adds_about_6us(self, latency):
        b2b = latency.measure(5.0, False, payloads=(1,))
        sw = latency.measure(5.0, True, payloads=(1,))
        extra = sw.base_latency_us - b2b.base_latency_us
        assert extra == pytest.approx(6.0, abs=1.5)

    def test_coalescing_off_reaches_14us(self, latency):
        off = latency.measure(0.0, False, payloads=(1,))
        assert off.base_latency_us == pytest.approx(14.0, abs=1.5)

    def test_latency_grows_with_payload(self, latency):
        curve = latency.measure(5.0, False, payloads=(1, 512, 1024))
        lat = curve.latencies_us
        assert lat[0] < lat[1] < lat[2]
        # paper: ~20% growth over the range; allow 10-45%
        assert 0.10 < curve.growth_fraction < 0.45


class TestBottleneckStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return BottleneckStudy(n_clients=4, duration_s=0.008)

    def test_rx_tx_statistically_equal(self, study):
        rx = study.receive_path()
        tx = study.transmit_path()
        assert abs(rx.aggregate_bps - tx.aggregate_bps) \
            / max(rx.aggregate_bps, tx.aggregate_bps) < 0.15

    def test_dual_adapter_no_better(self, study):
        one = study.receive_path()
        two = study.dual_adapters()
        assert two.aggregate_bps < one.aggregate_bps * 1.15

    def test_pktgen_vs_tcp_ratio(self, study):
        pkt = study.pktgen_ceiling(packets=512)
        tcp = study.single_flow(payload=8108)
        ratio = tcp / pkt.rate_bps
        # paper: TCP is about 75% of the single-copy generator
        assert 0.6 < ratio < 0.9

    def test_memory_bandwidth_ruled_out(self, study):
        stream = study.stream_comparison()
        assert stream["PE4600"].copy_bps > stream["PE2650"].copy_bps * 1.4

    def test_full_report(self, study):
        report = study.run()
        assert report.paths_symmetric or abs(
            report.rx_aggregate.aggregate_bps
            - report.tx_aggregate.aggregate_bps) < 0.15 * \
            report.rx_aggregate.aggregate_bps
        assert report.bus_ruled_out
        assert 0.5 < report.tcp_fraction_of_pktgen < 1.0
