"""The environment-knob registry and its cache-key contract.

The headline property: a non-default result-affecting knob
(``REPRO_HYBRID=0`` forcing all-DES fabric paths) must change
``stable_key`` so hybrid and forced-DES results can never alias in the
cache — while leaving keys byte-identical at defaults so every
pre-existing cache entry stays valid.
"""

import pytest

from repro.cache import stable_key
from repro.core.knobs import (ENV_KNOBS, ambient_key_material, env_knob,
                              env_raw, env_value, parse_on_flag,
                              parse_truthy_flag)
from repro.errors import ConfigError


def test_registry_covers_the_runtime_switches():
    expected = {
        "REPRO_TRAIN", "REPRO_SCHEDULER", "REPRO_JOBS",
        "REPRO_POOL_PERSIST", "REPRO_POOL_CHUNK", "REPRO_CACHE",
        "REPRO_CACHE_DIR", "REPRO_CACHE_MAX_BYTES",
        "REPRO_CACHE_HOT_ENTRIES", "REPRO_CACHE_HOT_BYTES",
        "REPRO_CODE_FINGERPRINT", "REPRO_CHAOS", "REPRO_HYBRID",
        "REPRO_HYBRID_TICK", "REPRO_STREAM_TICK", "REPRO_SERVE_HOLD",
    }
    assert set(ENV_KNOBS) == expected


def test_every_knob_declares_a_consistent_key_route():
    for name, knob in ENV_KNOBS.items():
        if knob.affects_results:
            assert knob.keyed_via != "none", name
        else:
            assert knob.keyed_via == "none", name
        assert knob.description, name


def test_unknown_knob_is_a_config_error():
    with pytest.raises(ConfigError, match="REPRO_NOPE"):
        env_knob("REPRO_NOPE")
    with pytest.raises(ConfigError):
        env_value("REPRO_NOPE")
    with pytest.raises(ConfigError):
        env_raw("REPRO_NOPE")


def test_flag_parsers():
    assert parse_on_flag(None) is True
    assert parse_on_flag("1") is True
    for off in ("0", "off", "OFF", "false", "no"):
        assert parse_on_flag(off) is False, off
    assert parse_truthy_flag(None) is False
    assert parse_truthy_flag("0") is False
    for on in ("1", "true", "YES", "on"):
        assert parse_truthy_flag(on) is True, on


def test_env_value_parses_and_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_TRAIN", raising=False)
    assert env_value("REPRO_TRAIN") is True
    monkeypatch.setenv("REPRO_TRAIN", "off")
    assert env_value("REPRO_TRAIN") is False
    monkeypatch.setenv("REPRO_POOL_CHUNK", "7")
    assert env_value("REPRO_POOL_CHUNK") == 7
    monkeypatch.setenv("REPRO_POOL_CHUNK", "junk")  # historic leniency
    assert env_value("REPRO_POOL_CHUNK") is None


# ---------------------------------------------------------------------------
# Ambient key material -> stable_key
# ---------------------------------------------------------------------------

@pytest.fixture
def ambient_defaults(monkeypatch):
    for name in ("REPRO_HYBRID", "REPRO_HYBRID_TICK"):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


def test_ambient_material_empty_at_defaults(ambient_defaults):
    assert ambient_key_material() == {}


def test_ambient_material_ignores_default_equivalent_values(
        ambient_defaults):
    # "1" parses to True == the default, so it must stay out of keys:
    # explicitly asking for the default is not a different experiment.
    ambient_defaults.setenv("REPRO_HYBRID", "1")
    assert ambient_key_material() == {}


def test_ambient_material_captures_non_defaults(ambient_defaults):
    ambient_defaults.setenv("REPRO_HYBRID", "0")
    ambient_defaults.setenv("REPRO_HYBRID_TICK", "0.002")
    assert ambient_key_material() == {"REPRO_HYBRID": "0",
                                      "REPRO_HYBRID_TICK": "0.002"}


def test_ambient_material_keeps_garbage_verbatim(ambient_defaults):
    # Key derivation must never crash; an unparseable value still keys
    # differently from the default, which is the conservative choice.
    ambient_defaults.setenv("REPRO_HYBRID_TICK", "not-a-float")
    assert ambient_key_material() == {"REPRO_HYBRID_TICK": "not-a-float"}


def test_stable_key_distinguishes_hybrid_modes(ambient_defaults):
    # The bug this registry exists to prevent: REPRO_HYBRID=0 changes
    # fabric results, so it must change cache keys too.
    default_key = stable_key("fabric-point", 42)
    ambient_defaults.setenv("REPRO_HYBRID", "0")
    forced_des_key = stable_key("fabric-point", 42)
    assert default_key != forced_des_key
    # Restoring defaults restores the original key (cache stays warm).
    ambient_defaults.delenv("REPRO_HYBRID")
    assert stable_key("fabric-point", 42) == default_key
