"""Tests for the interconnect comparison, LSR metric and WAN record."""

import pytest

from repro.errors import MeasurementError
from repro.core.comparison import INTERCONNECTS, InterconnectComparison
from repro.core.landspeed import (
    LSR_2002,
    LSR_2003,
    land_speed_record_metric,
)
from repro.core.wanrecord import WanRecordRun
from repro.units import Gbps, us


class TestComparison:
    def test_paper_arithmetic_with_paper_numbers(self):
        """Feeding the paper's own 4.11 Gb/s / 19 µs reproduces its
        'over 300% / 120% / 80% better' claims."""
        comp = InterconnectComparison(Gbps(4.11), us(19))
        assert comp.throughput_advantage("GbE/TCP") > 3.0
        assert comp.throughput_advantage("Myrinet/GM") > 1.0
        assert comp.throughput_advantage("QsNet/IP") > 0.8
        # latency: ~40% better than GbE, ~2x faster than the IP layers
        assert comp.latency_advantage("GbE/TCP") == pytest.approx(0.40,
                                                                  abs=0.03)
        assert comp.latency_ratio("Myrinet/IP") < 0.7
        # but slower than the native APIs
        assert comp.latency_ratio("Myrinet/GM") > 1.5
        assert comp.latency_ratio("QsNet/Elan3") > 2.0

    def test_conclusion_best_case_12us(self):
        """Conclusion: 12 µs best case = 1.7x slower than Myrinet/GM,
        2.4x slower than QsNet/Elan3."""
        comp = InterconnectComparison(Gbps(4.11), us(12))
        assert comp.latency_ratio("Myrinet/GM") == pytest.approx(1.85,
                                                                 rel=0.15)
        assert comp.latency_ratio("QsNet/Elan3") == pytest.approx(2.4,
                                                                  rel=0.1)

    def test_rows_cover_all_peers(self):
        comp = InterconnectComparison(Gbps(4.0), us(19))
        rows = comp.rows()
        assert {r["interconnect"] for r in rows} == set(INTERCONNECTS)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            InterconnectComparison(0, us(19))
        comp = InterconnectComparison(Gbps(4), us(19))
        with pytest.raises(MeasurementError):
            comp.throughput_advantage("Carrier pigeon")


class TestLandSpeed:
    def test_metric_of_the_2003_record(self):
        assert LSR_2003.metric == pytest.approx(2.38e9 * 10037e3)
        assert LSR_2003.metric == pytest.approx(2.3888e16, rel=0.001)

    def test_record_beats_previous_by_2_4x(self):
        assert LSR_2003.metric / LSR_2002.metric == pytest.approx(2.36,
                                                                  rel=0.02)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            land_speed_record_metric(0, 100)


class TestWanRecord:
    @pytest.fixture(scope="class")
    def run(self):
        return WanRecordRun()

    def test_bottleneck_goodput_is_2_38(self, run):
        assert run.bottleneck_goodput_bps / 1e9 == pytest.approx(2.38,
                                                                 abs=0.01)

    def test_bdp_around_54MB(self, run):
        assert run.bdp_bytes / 1e6 == pytest.approx(53.5, rel=0.02)

    def test_tuned_fluid_run_matches_paper(self, run):
        out = run.run_fluid(duration_s=300.0)
        assert out.throughput_gbps == pytest.approx(2.38, abs=0.02)
        assert out.losses == 0
        assert out.payload_efficiency > 0.98
        assert out.terabyte_under_an_hour
        assert out.beats_previous_record > 2.0

    def test_small_buffer_underperforms(self, run):
        out = run.run_fluid(buffer_bytes=4 * 1024 * 1024,
                            duration_s=120.0, label="4MB")
        assert out.throughput_gbps < 0.3

    def test_oversized_buffer_loses_to_congestion(self, run):
        tuned = run.run_fluid(duration_s=240.0)
        over = run.run_fluid(buffer_bytes=3 * run.bdp_buffer_bytes(),
                             duration_s=240.0, label="3x")
        assert over.losses >= 1
        assert over.throughput_bps < tuned.throughput_bps

    def test_buffer_sweep_peaks_at_bdp(self, run):
        sweep = run.buffer_sweep(factors=(0.25, 1.0, 3.0),
                                 duration_s=120.0)
        gbps = [o.throughput_gbps for o in sweep]
        assert gbps[1] == max(gbps)

    def test_des_crosscheck_reaches_bottleneck(self, run):
        out = run.run_des_scaled(scale=0.02, duration_s=1.5)
        assert out.throughput_gbps == pytest.approx(2.38, rel=0.08)
        assert out.losses == 0

    def test_validation(self, run):
        with pytest.raises(MeasurementError):
            run.run_fluid(buffer_bytes=0)
        with pytest.raises(MeasurementError):
            run.run_des_scaled(scale=0)
