"""Observer server: routes, SSE framing, live and replay modes."""

import http.client
import json
import threading
import time

import pytest

from repro.errors import MeasurementError
from repro.serve import DASHBOARD_PATH, ObserverServer
from repro.telemetry import RunRecorder, TelemetryBus


def get(port, path, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", path)
    resp = conn.getresponse()
    body = resp.read()
    conn.close()
    return resp.status, resp.getheader("Content-Type"), body


@pytest.fixture()
def live():
    bus = TelemetryBus()
    with ObserverServer(bus=bus, meta={"experiments": "t"}) as server:
        yield bus, server


@pytest.fixture()
def replay(tmp_path):
    bus = TelemetryBus()
    rec = RunRecorder(bus, tmp_path / "run.reprorun")
    bus.publish_meta("run_start", experiment="t")
    for i in range(5):
        bus.publish("trace", {"track": "hostA", "time": i * 0.25,
                              "point": "tcp.tx.segment", "subject": i,
                              "detail": {}})
    bus.publish_meta("run_end", experiment="t")
    bundle = rec.close()
    with ObserverServer(bundle=bundle) as server:
        yield bundle, server


class TestConstruction:
    def test_requires_bus_or_bundle(self):
        with pytest.raises(MeasurementError, match="bus.*or.*bundle"):
            ObserverServer()

    def test_dashboard_file_exists(self):
        html = DASHBOARD_PATH.read_text(encoding="utf-8")
        assert "repro observer" in html
        assert "EventSource" in html       # live mode wiring
        assert "/bundle" in html           # replay scrubber wiring

    def test_ephemeral_port_resolved(self, live):
        _, server = live
        assert server.port != 0
        assert str(server.port) in server.url

    def test_double_start_rejected(self, live):
        _, server = live
        with pytest.raises(MeasurementError, match="already started"):
            server.start()

    def test_stop_is_idempotent(self):
        bus = TelemetryBus()
        server = ObserverServer(bus=bus).start()
        server.stop()
        server.stop()


class TestRoutes:
    def test_dashboard_served_at_root(self, live):
        _, server = live
        status, ctype, body = get(server.port, "/")
        assert status == 200 and "text/html" in ctype
        assert b"repro observer" in body

    def test_healthz(self, live):
        _, server = live
        assert get(server.port, "/healthz")[::2] == (200, b"ok\n")

    def test_meta_live(self, live):
        bus, server = live
        status, _, body = get(server.port, "/meta")
        meta = json.loads(body)
        assert status == 200
        assert meta["mode"] == "live"
        assert meta["meta"] == {"experiments": "t"}
        assert "last_seq" in meta and "bundle" not in meta

    def test_unknown_path_404(self, live):
        _, server = live
        assert get(server.port, "/nope")[0] == 404

    def test_bundle_404_in_live_mode(self, live):
        _, server = live
        assert get(server.port, "/bundle")[0] == 404

    def test_non_get_rejected(self, live):
        _, server = live
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        conn.request("POST", "/", body="{}")
        assert conn.getresponse().status == 405
        conn.close()


class TestReplayMode:
    def test_meta_reports_bundle(self, replay):
        bundle, server = replay
        meta = json.loads(get(server.port, "/meta")[2])
        assert meta["mode"] == "replay"
        assert meta["bundle"]["event_count"] == bundle.event_count

    def test_bundle_endpoint_returns_all_events(self, replay):
        bundle, server = replay
        events = json.loads(get(server.port, "/bundle")[2])
        assert len(events) == bundle.event_count
        assert events == bundle.events()

    def test_sse_replay_streams_then_ends(self, replay):
        bundle, server = replay
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        conn.request("GET", "/events")
        resp = conn.getresponse()
        assert "text/event-stream" in resp.getheader("Content-Type")
        body = resp.read().decode("utf-8")  # server closes after "end"
        conn.close()
        frames = [f for f in body.split("\n\n") if f]
        datas = [json.loads(line[len("data: "):])
                 for f in frames for line in f.split("\n")
                 if line.startswith("data: ") and "event: end" not in f]
        assert len(datas) == bundle.event_count
        assert [d["seq"] for d in datas] == list(range(1, 8))
        assert "event: end" in body


class TestLiveSse:
    def test_events_stream_with_id_framing(self, live):
        bus, server = live
        received = []
        got_two = threading.Event()

        def reader():
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=15)
            conn.request("GET", "/events")
            resp = conn.getresponse()
            buf = b""
            while not got_two.is_set():
                chunk = resp.read1(65536)
                if not chunk:
                    break
                buf += chunk
                while b"\n\n" in buf:
                    frame, buf = buf.split(b"\n\n", 1)
                    entry = {}
                    for line in frame.split(b"\n"):
                        if line.startswith(b"id: "):
                            entry["id"] = int(line[4:])
                        elif line.startswith(b"data: "):
                            entry["data"] = json.loads(line[6:])
                    if entry:
                        received.append(entry)
                if len(received) >= 2:
                    got_two.set()
            conn.close()

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        deadline = time.time() + 10
        while not bus.has_consumers and time.time() < deadline:
            time.sleep(0.02)
        assert bus.has_consumers, "SSE subscription never attached"
        bus.publish("trace", {"point": "a", "time": 0.0})
        bus.publish("heartbeat", {"time": 1.0})
        assert got_two.wait(timeout=10), "SSE events not delivered"
        t.join(timeout=10)
        assert received[0]["id"] == received[0]["data"]["seq"] == 1
        assert received[1]["data"]["kind"] == "heartbeat"

    def test_subscription_detached_after_disconnect(self, live):
        bus, server = live
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        conn.request("GET", "/events")
        conn.getresponse()
        deadline = time.time() + 10
        while not bus.has_consumers and time.time() < deadline:
            time.sleep(0.02)
        assert bus.has_consumers
        conn.close()
        # the server notices on its next write attempt
        deadline = time.time() + 10
        while bus.has_consumers and time.time() < deadline:
            bus.publish("trace", {"i": 0})
            time.sleep(0.05)
        assert not bus.has_consumers
