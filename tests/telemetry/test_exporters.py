"""Exporters: JSONL round-trip, Chrome trace schema, timeline series."""

import json

import pytest

from repro.telemetry.exporters import (
    chrome_trace_dict,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.timeline import build_timelines, write_timeline

EVENTS = [
    ("fig3/hostA", 0.001, "tcp.tx.segment", "skb1",
     {"seq": 0, "len": 8948, "conn": "conn1"}),
    ("fig3/hostA", 0.0015, "tcp.cwnd.update", "conn1",
     {"conn": "conn1", "cwnd": 4, "ssthresh": -1, "phase": "slowstart"}),
    ("fig3/hostB", 0.002, "tcp.rx.ack", "skb2",
     {"ack": 8948, "win": 65536, "conn": "conn1"}),
    ("fig3/hostB", 0.0019, "tcp.rx.deliver", "skb1",
     {"seq": 0, "len": 8948, "nbytes": 8948, "conn": "conn1"}),
    ("fig3/sw0", 0.0012, "switch.enqueue", "skb1", {"port": 1, "qlen": 1}),
]


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "events.jsonl"
        n = write_jsonl(EVENTS, path)
        assert n == len(EVENTS)
        assert read_jsonl(path) == EVENTS

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(EVENTS, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(EVENTS)
        for line in lines:
            rec = json.loads(line)
            assert set(rec) == {"track", "time", "point", "subject", "detail"}

    def test_detail_key_order_survives_round_trip(self, tmp_path):
        """Record keys are sorted on disk, but the parsed detail dict
        must iterate in the original insertion order — downstream
        consumers (timelines, the dashboard) index by key, and the
        tuples must compare equal to the originals."""
        detail = {"zeta": 1, "alpha": 2, "mid": 3}
        events = [("t", 0.5, "tcp.tx.segment", "s", dict(detail))]
        path = tmp_path / "order.jsonl"
        write_jsonl(events, path)
        (back,) = read_jsonl(path)
        assert back == events[0]
        assert json.loads(path.read_text())["detail"] == detail

    def test_float_precision_is_exact(self, tmp_path):
        """Times and float details round-trip bit-exactly (json uses
        repr, which is shortest-round-trip in Python 3)."""
        tricky = [0.1, 1 / 3, 1e-9, 123456789.123456789, 2**53 - 1.0,
                  3.636363636363636e-07, 5e-324]
        events = [("t", t, "tcp.rx.deliver", "s", {"v": t, "neg": -t})
                  for t in tricky]
        path = tmp_path / "floats.jsonl"
        write_jsonl(events, path)
        back = read_jsonl(path)
        for (orig, got) in zip(events, back):
            assert got[1] == orig[1]
            assert got[4]["v"].hex() == orig[4]["v"].hex()
            assert got[4]["neg"].hex() == orig[4]["neg"].hex()

    def test_int_float_distinction_preserved(self, tmp_path):
        events = [("t", 0.0, "tcp.tx.segment", "s",
                   {"count": 3, "ratio": 3.0})]
        path = tmp_path / "types.jsonl"
        write_jsonl(events, path)
        (back,) = read_jsonl(path)
        assert isinstance(back[4]["count"], int)
        assert isinstance(back[4]["ratio"], float)

    def test_unicode_and_null_subjects(self, tmp_path):
        events = [("t", 0.0, "tcp.tx.segment", None, {"note": "héllo\n→"}),
                  ("t", 0.1, "tcp.tx.segment", "π", {})]
        path = tmp_path / "uni.jsonl"
        write_jsonl(events, path)
        assert read_jsonl(path) == events

    def test_session_dropped_counts_survive_export(self, tmp_path):
        """Trace-ring overruns recorded by a session are not part of the
        jsonl event stream — they ride the session payload — but the
        events that *did* survive the ring round-trip losslessly."""
        from repro.sim.trace import TraceBuffer
        from repro.telemetry import register_trace, telemetry_session
        with telemetry_session(trace=True) as session:
            buf = TraceBuffer(max_events=3)
            register_trace("tiny", buf)
            for i in range(8):
                buf.post(float(i), "tcp.tx.segment", f"s{i}", len=i)
            payload = session.export_payload()
        assert payload["trace_dropped"] == {"tiny": 5}
        path = tmp_path / "dropped.jsonl"
        assert write_jsonl(payload["events"], path) == 3
        assert read_jsonl(path) == payload["events"]
        assert [e[4]["len"] for e in read_jsonl(path)] == [5, 6, 7]


#: Minimal JSON schema for the Chrome trace_event "JSON object format":
#: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid"],
                "properties": {
                    "ph": {"enum": ["M", "i", "C"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number"},
                    "args": {"type": "object"},
                },
                "allOf": [
                    {
                        "if": {"properties": {"ph": {"const": "i"}}},
                        "then": {"required": ["ts", "name", "cat", "s"]},
                    },
                    {
                        "if": {"properties": {"ph": {"const": "C"}}},
                        "then": {"required": ["ts", "name", "args"]},
                    },
                ],
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


class TestChromeTrace:
    def test_document_matches_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        doc = chrome_trace_dict(EVENTS)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)

    def test_one_thread_name_record_per_track(self):
        doc = chrome_trace_dict(EVENTS)
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        assert sorted(r["args"]["name"] for r in meta) == \
            ["fig3/hostA", "fig3/hostB", "fig3/sw0"]
        assert len({r["tid"] for r in meta}) == 3

    def test_tids_deterministic_by_sorted_track(self):
        a = chrome_trace_dict(EVENTS)
        b = chrome_trace_dict(list(reversed(EVENTS)))
        tids_a = {r["args"]["name"]: r["tid"]
                  for r in a["traceEvents"] if r["ph"] == "M"}
        tids_b = {r["args"]["name"]: r["tid"]
                  for r in b["traceEvents"] if r["ph"] == "M"}
        assert tids_a == tids_b

    def test_instants_carry_layer_category_and_microseconds(self):
        doc = chrome_trace_dict(EVENTS)
        seg = [r for r in doc["traceEvents"]
               if r["ph"] == "i" and r["name"] == "tcp.tx.segment"][0]
        assert seg["cat"] == "tcp"
        assert seg["ts"] == pytest.approx(1000.0)  # 0.001 s -> 1000 us
        assert seg["args"]["seq"] == 0
        assert seg["args"]["subject"] == "skb1"

    def test_cwnd_updates_emit_counter_samples(self):
        doc = chrome_trace_dict(EVENTS)
        counters = [r for r in doc["traceEvents"] if r["ph"] == "C"]
        assert len(counters) == 1
        (c,) = counters
        assert c["name"] == "cwnd conn1"
        assert c["args"] == {"cwnd": 4, "ssthresh": -1}

    def test_write_returns_record_count_and_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(EVENTS, path)
        doc = json.loads(path.read_text())
        assert n == len(doc["traceEvents"])
        # 3 metadata + 5 instants + 1 counter
        assert n == 9


class TestTimeline:
    def test_series_grouped_by_connection(self):
        doc = build_timelines(EVENTS)
        assert doc["format"] == "repro-timeline-v1"
        assert list(doc["connections"]) == ["conn1"]
        conn = doc["connections"]["conn1"]
        assert conn["segments"] == [[0.001, 0, 8948]]
        assert conn["acks"] == [[0.002, 8948]]
        assert conn["deliveries"] == [[0.0019, 8948]]
        assert conn["cwnd"] == [[0.0015, 4, -1]]
        assert conn["retransmits"] == []

    def test_non_tcp_points_ignored(self):
        doc = build_timelines(EVENTS)
        for rows in doc["connections"]["conn1"].values():
            for row in rows:
                assert row[0] != 0.0012  # the switch event

    def test_rows_sorted_by_time(self):
        events = [
            ("t", 2.0, "tcp.tx.segment", "b", {"seq": 10, "len": 1,
                                               "conn": "c"}),
            ("t", 1.0, "tcp.tx.segment", "a", {"seq": 0, "len": 1,
                                               "conn": "c"}),
        ]
        rows = build_timelines(events)["connections"]["c"]["segments"]
        assert [r[0] for r in rows] == [1.0, 2.0]

    def test_conn_label_falls_back_to_subject_then_track(self):
        events = [
            ("trackX", 0.0, "tcp.rx.ack", "conn9", {"ack": 1}),
            ("trackY", 0.0, "tcp.rx.ack", 123, {"ack": 2}),
        ]
        doc = build_timelines(events)
        assert set(doc["connections"]) == {"conn9", "trackY"}

    def test_write_returns_connection_count(self, tmp_path):
        path = tmp_path / "timeline.json"
        assert write_timeline(EVENTS, path) == 1
        doc = json.loads(path.read_text())
        assert doc["connections"]["conn1"]["segments"]
