"""Exporters: JSONL round-trip, Chrome trace schema, timeline series."""

import json

import pytest

from repro.telemetry.exporters import (
    chrome_trace_dict,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.timeline import build_timelines, write_timeline

EVENTS = [
    ("fig3/hostA", 0.001, "tcp.tx.segment", "skb1",
     {"seq": 0, "len": 8948, "conn": "conn1"}),
    ("fig3/hostA", 0.0015, "tcp.cwnd.update", "conn1",
     {"conn": "conn1", "cwnd": 4, "ssthresh": -1, "phase": "slowstart"}),
    ("fig3/hostB", 0.002, "tcp.rx.ack", "skb2",
     {"ack": 8948, "win": 65536, "conn": "conn1"}),
    ("fig3/hostB", 0.0019, "tcp.rx.deliver", "skb1",
     {"seq": 0, "len": 8948, "nbytes": 8948, "conn": "conn1"}),
    ("fig3/sw0", 0.0012, "switch.enqueue", "skb1", {"port": 1, "qlen": 1}),
]


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "events.jsonl"
        n = write_jsonl(EVENTS, path)
        assert n == len(EVENTS)
        assert read_jsonl(path) == EVENTS

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(EVENTS, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(EVENTS)
        for line in lines:
            rec = json.loads(line)
            assert set(rec) == {"track", "time", "point", "subject", "detail"}


#: Minimal JSON schema for the Chrome trace_event "JSON object format":
#: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid"],
                "properties": {
                    "ph": {"enum": ["M", "i", "C"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number"},
                    "args": {"type": "object"},
                },
                "allOf": [
                    {
                        "if": {"properties": {"ph": {"const": "i"}}},
                        "then": {"required": ["ts", "name", "cat", "s"]},
                    },
                    {
                        "if": {"properties": {"ph": {"const": "C"}}},
                        "then": {"required": ["ts", "name", "args"]},
                    },
                ],
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}


class TestChromeTrace:
    def test_document_matches_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        doc = chrome_trace_dict(EVENTS)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)

    def test_one_thread_name_record_per_track(self):
        doc = chrome_trace_dict(EVENTS)
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        assert sorted(r["args"]["name"] for r in meta) == \
            ["fig3/hostA", "fig3/hostB", "fig3/sw0"]
        assert len({r["tid"] for r in meta}) == 3

    def test_tids_deterministic_by_sorted_track(self):
        a = chrome_trace_dict(EVENTS)
        b = chrome_trace_dict(list(reversed(EVENTS)))
        tids_a = {r["args"]["name"]: r["tid"]
                  for r in a["traceEvents"] if r["ph"] == "M"}
        tids_b = {r["args"]["name"]: r["tid"]
                  for r in b["traceEvents"] if r["ph"] == "M"}
        assert tids_a == tids_b

    def test_instants_carry_layer_category_and_microseconds(self):
        doc = chrome_trace_dict(EVENTS)
        seg = [r for r in doc["traceEvents"]
               if r["ph"] == "i" and r["name"] == "tcp.tx.segment"][0]
        assert seg["cat"] == "tcp"
        assert seg["ts"] == pytest.approx(1000.0)  # 0.001 s -> 1000 us
        assert seg["args"]["seq"] == 0
        assert seg["args"]["subject"] == "skb1"

    def test_cwnd_updates_emit_counter_samples(self):
        doc = chrome_trace_dict(EVENTS)
        counters = [r for r in doc["traceEvents"] if r["ph"] == "C"]
        assert len(counters) == 1
        (c,) = counters
        assert c["name"] == "cwnd conn1"
        assert c["args"] == {"cwnd": 4, "ssthresh": -1}

    def test_write_returns_record_count_and_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(EVENTS, path)
        doc = json.loads(path.read_text())
        assert n == len(doc["traceEvents"])
        # 3 metadata + 5 instants + 1 counter
        assert n == 9


class TestTimeline:
    def test_series_grouped_by_connection(self):
        doc = build_timelines(EVENTS)
        assert doc["format"] == "repro-timeline-v1"
        assert list(doc["connections"]) == ["conn1"]
        conn = doc["connections"]["conn1"]
        assert conn["segments"] == [[0.001, 0, 8948]]
        assert conn["acks"] == [[0.002, 8948]]
        assert conn["deliveries"] == [[0.0019, 8948]]
        assert conn["cwnd"] == [[0.0015, 4, -1]]
        assert conn["retransmits"] == []

    def test_non_tcp_points_ignored(self):
        doc = build_timelines(EVENTS)
        for rows in doc["connections"]["conn1"].values():
            for row in rows:
                assert row[0] != 0.0012  # the switch event

    def test_rows_sorted_by_time(self):
        events = [
            ("t", 2.0, "tcp.tx.segment", "b", {"seq": 10, "len": 1,
                                               "conn": "c"}),
            ("t", 1.0, "tcp.tx.segment", "a", {"seq": 0, "len": 1,
                                               "conn": "c"}),
        ]
        rows = build_timelines(events)["connections"]["c"]["segments"]
        assert [r[0] for r in rows] == [1.0, 2.0]

    def test_conn_label_falls_back_to_subject_then_track(self):
        events = [
            ("trackX", 0.0, "tcp.rx.ack", "conn9", {"ack": 1}),
            ("trackY", 0.0, "tcp.rx.ack", 123, {"ack": 2}),
        ]
        doc = build_timelines(events)
        assert set(doc["connections"]) == {"conn9", "trackY"}

    def test_write_returns_connection_count(self, tmp_path):
        path = tmp_path / "timeline.json"
        assert write_timeline(EVENTS, path) == 1
        doc = json.loads(path.read_text())
        assert doc["connections"]["conn1"]["segments"]
