"""Telemetry session: activation, track adoption, scrubbing, absorption."""

import pytest

from repro.errors import MeasurementError
from repro.sim.trace import TraceBuffer
from repro.telemetry.points import CATALOG, layer_of
from repro.telemetry.session import (
    TelemetrySession,
    active_metrics,
    active_session,
    nested_session,
    register_trace,
    telemetry_session,
)


class TestActivation:
    def test_no_session_by_default(self):
        assert active_session() is None
        assert active_metrics() is None

    def test_context_manager_activates_and_clears(self):
        with telemetry_session() as session:
            assert active_session() is session
            assert active_metrics() is session.registry
        assert active_session() is None

    def test_double_activation_rejected(self):
        with telemetry_session():
            with pytest.raises(MeasurementError, match="already active"):
                with telemetry_session():
                    pass

    def test_metrics_off_hides_registry(self):
        with telemetry_session(metrics=False):
            assert active_session() is not None
            assert active_metrics() is None

    def test_nested_session_swaps_and_restores(self):
        with telemetry_session() as outer:
            with nested_session() as inner:
                assert active_session() is inner
                assert inner is not outer
            assert active_session() is outer


class TestTracks:
    def test_register_enables_buffer_when_tracing(self):
        buf = TraceBuffer()
        with telemetry_session(trace=True):
            register_trace("hostA", buf)
            assert buf.enabled

    def test_register_leaves_buffer_off_without_tracing(self):
        buf = TraceBuffer()
        with telemetry_session(trace=False):
            register_trace("hostA", buf)
            assert not buf.enabled

    def test_register_without_session_is_noop(self):
        register_trace("hostA", TraceBuffer())  # must not raise

    def test_duplicate_track_names_get_suffixes(self):
        session = TelemetrySession(trace=True)
        assert session.add_track("sw", TraceBuffer()) == "sw"
        assert session.add_track("sw", TraceBuffer()) == "sw#2"
        assert session.add_track("sw", TraceBuffer()) == "sw#3"


class _Conn:
    name = "conn7"


class _Opaque:
    pass


class TestCollection:
    def _session_with_events(self):
        session = TelemetrySession(trace=True)
        buf = TraceBuffer()
        session.add_track("hostA", buf)
        buf.post(1.5, "tcp.tx.segment", _Conn(), seq=10, conn=_Conn(),
                 skb=_Opaque())
        return session, buf

    def test_collect_scrubs_objects_to_labels(self):
        session, _ = self._session_with_events()
        session.collect_local()
        (track, time, point, subject, detail), = session.events
        assert (track, time, point) == ("hostA", 1.5, "tcp.tx.segment")
        assert subject == "conn7"
        assert detail["conn"] == "conn7"
        assert detail["skb"] == "_Opaque"  # no name/ident: type name
        assert detail["seq"] == 10

    def test_collect_drains_buffers(self):
        session, buf = self._session_with_events()
        session.collect_local()
        session.collect_local()
        assert len(session.events) == 1
        assert len(buf) == 0

    def test_export_payload_shape(self):
        session, _ = self._session_with_events()
        session.registry.counter("c").inc()
        payload = session.export_payload()
        assert set(payload) == {"events", "metrics", "profile",
                                "trace_dropped", "streamed"}
        assert len(payload["events"]) == 1
        assert payload["metrics"][0]["name"] == "c"
        assert payload["profile"] is None

    def test_absorb_prefixes_tracks_and_merges_metrics(self):
        worker, _ = self._session_with_events()
        worker.registry.counter("c").inc(2)
        parent = TelemetrySession(trace=True)
        parent.registry.counter("c").inc(1)
        parent.absorb(worker.export_payload(), prefix="pt[0]/")
        assert parent.events[0][0] == "pt[0]/hostA"
        assert parent.registry.counter("c").value == 3


class TestAbsorbMultiWorker:
    """Parent-side aggregation of several prefixed worker payloads —
    the shape a parallel sweep produces."""

    def _worker_payload(self, host, n_events, drop_all_but=None):
        session = TelemetrySession(trace=True)
        buf = (TraceBuffer() if drop_all_but is None
               else TraceBuffer(max_events=drop_all_but))
        session.add_track(host, buf)
        for i in range(n_events):
            buf.post(i * 0.25, "tcp.tx.segment", f"skb{i}", seq=i)
        session.registry.counter("tcp.tx.segments", host=host).inc(n_events)
        return session.export_payload()

    def test_events_keep_worker_order_under_prefixes(self):
        parent = TelemetrySession(trace=True)
        for i, host in enumerate(("hostA", "hostB")):
            parent.absorb(self._worker_payload(host, 3), prefix=f"pt[{i}]/")
        tracks = [ev[0] for ev in parent.events]
        assert tracks == ["pt[0]/hostA"] * 3 + ["pt[1]/hostB"] * 3
        assert [ev[4]["seq"] for ev in parent.events] == [0, 1, 2, 0, 1, 2]

    def test_metrics_merge_across_workers(self):
        parent = TelemetrySession(trace=True)
        parent.absorb(self._worker_payload("hostA", 4), prefix="pt[0]/")
        parent.absorb(self._worker_payload("hostA", 2), prefix="pt[1]/")
        # same (name, labels) series: counters add across workers
        assert parent.registry.counter(
            "tcp.tx.segments", host="hostA").value == 6

    def test_trace_dropped_accumulates_under_prefixed_tracks(self):
        parent = TelemetrySession(trace=True)
        parent.absorb(self._worker_payload("hostA", 8, drop_all_but=3),
                      prefix="pt[0]/")
        parent.absorb(self._worker_payload("hostA", 6, drop_all_but=3),
                      prefix="pt[1]/")
        assert parent.trace_dropped == {"pt[0]/hostA": 5, "pt[1]/hostA": 3}
        gauges = {e["labels"]["track"]: e["data"]["value"]
                  for e in parent.registry.snapshot()
                  if e["name"] == "telemetry.trace_dropped"}
        assert gauges == {"pt[0]/hostA": 5, "pt[1]/hostA": 3}

    def test_absorbed_payload_round_trips_through_reexport(self):
        """A mid-tier session can absorb workers and re-export for its
        own parent without losing events or drop counts."""
        mid = TelemetrySession(trace=True)
        mid.absorb(self._worker_payload("hostA", 2, drop_all_but=1),
                   prefix="pt[0]/")
        payload = mid.export_payload()
        top = TelemetrySession(trace=True)
        top.absorb(payload, prefix="w0/")
        assert [ev[0] for ev in top.events] == ["w0/pt[0]/hostA"]
        assert top.trace_dropped == {"w0/pt[0]/hostA": 1}


class TestCatalog:
    def test_at_least_25_points(self):
        assert len(CATALOG) >= 25

    def test_keys_match_entry_names(self):
        for name, point in CATALOG.items():
            assert point.name == name
            assert point.layer in {"hw", "oskernel", "tcp", "net", "sim",
                                   "chaos", "cache", "pool"}
            assert point.description

    def test_layer_of_cataloged_point(self):
        assert layer_of("tcp.tx.segment") == "tcp"
        assert layer_of("pcix.dma") == "hw"
        assert layer_of("switch.drop") == "net"

    def test_layer_of_uncataloged_falls_back_to_prefix(self):
        assert layer_of("tcp.something.new") == "tcp"
        assert layer_of("totally.unknown") == "totally"
