"""Streaming layer: bus semantics, heartbeat tap, recorder bundles."""

import gzip
import json
import os

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.net.topology import BackToBack
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection
from repro.telemetry import (
    BUNDLE_FORMAT,
    RunRecorder,
    TelemetryBus,
    diff_snapshots,
    load_bundle,
    telemetry_session,
)
from repro.telemetry.stream import (
    DEFAULT_STREAM_TICK_S,
    STREAM_TICK_ENV,
    stream_tick_s,
)
from repro.tools.nttcp import nttcp_run


def run_transfer(count=64, payload=8948):
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    nttcp_run(env, conn, payload=payload, count=count)
    return env


class TestBus:
    def test_publish_without_consumers_is_a_noop(self):
        bus = TelemetryBus()
        assert bus.publish("trace", {"x": 1}) is None
        assert bus.last_seq == 0
        assert bus.published == 0
        assert not bus.has_consumers
        assert not bus.streaming

    def test_publish_stamps_seq_and_kind(self):
        bus = TelemetryBus()
        sub = bus.subscribe("t")
        ev1 = bus.publish("trace", {"point": "a"})
        ev2 = bus.publish("heartbeat", {"time": 1.0})
        assert ev1 == {"seq": 1, "kind": "trace", "point": "a"}
        assert ev2["seq"] == 2 and ev2["kind"] == "heartbeat"
        assert sub.drain() == [ev1, ev2]

    def test_publish_does_not_mutate_caller_payload(self):
        bus = TelemetryBus()
        bus.subscribe()
        payload = {"point": "a"}
        bus.publish("trace", payload)
        assert payload == {"point": "a"}

    def test_ring_sheds_oldest_and_counts_drops(self):
        bus = TelemetryBus()
        sub = bus.subscribe("slow", max_pending=3)
        for i in range(10):
            bus.publish("trace", {"i": i})
        assert sub.dropped == 7
        assert sub.delivered == 10
        assert [ev["i"] for ev in sub.drain()] == [7, 8, 9]
        assert sub.pending() == 0

    def test_drain_limit_and_fifo_order(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        for i in range(5):
            bus.publish("trace", {"i": i})
        assert [ev["i"] for ev in sub.drain(2)] == [0, 1]
        assert [ev["i"] for ev in sub.drain()] == [2, 3, 4]

    def test_closed_subscription_stops_receiving(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish("trace", {"i": 0})
        sub.close()
        bus.publish("trace", {"i": 1})
        assert [ev["i"] for ev in sub.drain()] == [0]
        assert not bus.has_consumers

    def test_sink_sees_every_event_synchronously(self):
        bus = TelemetryBus()
        seen = []
        bus.add_sink(seen.append)
        bus.publish("meta", {"event": "x"})
        bus.remove_sink(seen.append)
        bus.publish("meta", {"event": "y"})
        assert [ev["event"] for ev in seen] == ["x"]

    def test_invalid_ring_bound_rejected(self):
        bus = TelemetryBus()
        with pytest.raises(MeasurementError, match="max_pending"):
            bus.subscribe(max_pending=0)

    def test_publish_trace_and_meta_shapes(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish_trace("hostA", 1e-3, "tcp.tx.segment", "c1", {"len": 1})
        bus.publish_meta("run_start", experiment="fig3")
        trace, meta = sub.drain()
        assert trace["kind"] == "trace" and trace["track"] == "hostA"
        assert trace["point"] == "tcp.tx.segment"
        assert meta["kind"] == "meta" and meta["experiment"] == "fig3"


class TestDiffSnapshots:
    def test_empty_old_returns_everything(self):
        new = [{"name": "a", "labels": {}, "data": {"value": 1}}]
        assert diff_snapshots([], new) == new

    def test_unchanged_series_elided(self):
        snap = [{"name": "a", "labels": {"h": "x"}, "data": {"value": 1}}]
        assert diff_snapshots(snap, [dict(snap[0])]) == []

    def test_changed_and_new_series_returned(self):
        old = [{"name": "a", "labels": {}, "data": {"value": 1}},
               {"name": "b", "labels": {}, "data": {"value": 5}}]
        new = [{"name": "a", "labels": {}, "data": {"value": 2}},
               {"name": "b", "labels": {}, "data": {"value": 5}},
               {"name": "c", "labels": {}, "data": {"value": 0}}]
        changed = diff_snapshots(old, new)
        assert [e["name"] for e in changed] == ["a", "c"]


class TestStreamTick:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(STREAM_TICK_ENV, raising=False)
        assert stream_tick_s() == DEFAULT_STREAM_TICK_S

    def test_override(self, monkeypatch):
        monkeypatch.setenv(STREAM_TICK_ENV, "0.5")
        assert stream_tick_s() == 0.5

    @pytest.mark.parametrize("bad", ["zero", "-1", "0"])
    def test_invalid_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(STREAM_TICK_ENV, bad)
        with pytest.raises(MeasurementError):
            stream_tick_s()


class TestLiveSession:
    def test_no_consumer_run_is_bit_identical(self):
        """An attached but unobserved bus must not perturb the run."""
        with telemetry_session(trace=True) as plain:
            env_plain = run_transfer()
        with telemetry_session(trace=True, bus=TelemetryBus()) as bussed:
            env_bussed = run_transfer()
        assert env_plain.events_scheduled == env_bussed.events_scheduled
        # subjects/conn labels carry process-global connection idents,
        # so compare everything else
        strip = lambda evs: [
            (tr, t, p, {k: v for k, v in d.items() if k != "conn"})
            for tr, t, p, _, d in evs]
        assert strip(plain.events) == strip(bussed.events)

    def test_live_run_streams_all_event_kinds(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        with telemetry_session(trace=True, bus=bus) as session:
            run_transfer()
        events = sub.drain()
        kinds = {ev["kind"] for ev in events}
        assert {"trace", "metrics", "heartbeat"} <= kinds
        traces = [ev for ev in events if ev["kind"] == "trace"]
        assert len(traces) == len(session.events)

    def test_streamed_traces_match_collected_events(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        with telemetry_session(trace=True, bus=bus) as session:
            run_transfer()
        streamed = [(ev["track"], ev["time"], ev["point"], ev["subject"],
                     ev["detail"]) for ev in sub.drain()
                    if ev["kind"] == "trace"]
        assert streamed == session.events

    def test_serial_nested_sessions_do_not_double_publish(self):
        """The absorb path must skip events the nested session already
        streamed live (the ``streamed`` prefix count)."""
        bus = TelemetryBus()
        sub = bus.subscribe()
        from repro.telemetry import nested_session
        with telemetry_session(trace=True, bus=bus) as outer:
            with nested_session(trace=True) as inner:
                run_transfer()
                payload = inner.export_payload()
            outer.absorb(payload, prefix="w0/")
        traces = [ev for ev in sub.drain() if ev["kind"] == "trace"]
        assert len(traces) == len(payload["events"])

    def test_worker_payload_published_by_parent(self):
        """A payload with ``streamed == 0`` (forked worker) is published
        at absorb time, under the worker prefix."""
        with telemetry_session(trace=True) as produced:
            run_transfer()
            payload = produced.export_payload()
        assert payload["streamed"] == 0
        bus = TelemetryBus()
        sub = bus.subscribe()
        with telemetry_session(trace=True, bus=bus) as parent:
            parent.absorb(payload, prefix="w0/")
        traces = [ev for ev in sub.drain() if ev["kind"] == "trace"]
        assert len(traces) == len(payload["events"])
        assert all(ev["track"].startswith("w0/") for ev in traces)

    def test_heartbeats_carry_engine_progress(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        with telemetry_session(trace=True, bus=bus):
            run_transfer()
        beats = [ev for ev in sub.drain() if ev["kind"] == "heartbeat"]
        assert beats
        assert beats[-1]["events_scheduled"] > 0
        assert beats[-1]["scheduler"] in ("heap", "calendar")
        times = [b["time"] for b in beats]
        assert times == sorted(times)

    def test_trace_dropped_surfaces_as_live_metric(self):
        """Satellite: ring overruns become a ``telemetry.trace_dropped``
        gauge instead of hiding until final export."""
        from repro.sim.trace import TraceBuffer
        from repro.telemetry import register_trace
        with telemetry_session(trace=True) as session:
            buf = TraceBuffer(max_events=4)
            register_trace("tiny", buf)
            for i in range(10):
                buf.post(float(i), "tcp.tx.segment", i)
            session.collect_local()
            for i in range(3):
                buf.post(float(i), "tcp.tx.segment", i)
            buf.post(3.0, "tcp.tx.segment", 3)
            buf.post(4.0, "tcp.tx.segment", 4)
            session.collect_local()
        assert session.trace_dropped["tiny"] == 6 + 1
        snap = {(e["name"], e["labels"].get("track")): e["data"]["value"]
                for e in session.registry.snapshot()
                if e["name"] == "telemetry.trace_dropped"}
        assert snap[("telemetry.trace_dropped", "tiny")] == 7


class TestChaosStreaming:
    def test_chaos_lifecycle_published(self):
        from repro.chaos import FaultPlan, FaultSpec, chaos_session
        plan = FaultPlan(name="t", seed=3, faults=(
            FaultSpec(kind="loss_burst", target="link:*", start_s=1e-4,
                      duration_s=2e-4, probability=0.3),
        ))
        bus = TelemetryBus()
        sub = bus.subscribe()
        with telemetry_session(trace=True, bus=bus):
            with chaos_session(plan):
                run_transfer(count=256)
        chaos = [ev for ev in sub.drain() if ev["kind"] == "chaos"]
        by_event = {ev["event"] for ev in chaos}
        assert {"plan_armed", "armed", "fired", "recovered"} <= by_event
        fired = next(ev for ev in chaos if ev["event"] == "fired")
        assert fired["fault_kind"] == "loss_burst"
        assert fired["time"] >= 1e-4


class TestRecorder:
    def _record(self, tmp_path, n=5, **kwargs):
        bus = TelemetryBus()
        rec = RunRecorder(bus, tmp_path / "run.reprorun", **kwargs)
        for i in range(n):
            bus.publish("trace", {"i": i, "time": i * 0.125})
        return bus, rec

    def test_roundtrip_preserves_events_exactly(self, tmp_path):
        bus, rec = self._record(tmp_path)
        bus.publish("meta", {"event": "run_end", "ratio": 1 / 3})
        bundle = rec.close()
        events = bundle.events()
        assert len(events) == 6 == bundle.event_count
        assert [ev["seq"] for ev in events] == list(range(1, 7))
        assert events[-1]["ratio"] == 1 / 3  # float fidelity via repr

    def test_segment_rotation(self, tmp_path):
        bus, rec = self._record(tmp_path, n=10, segment_events=4)
        bundle = rec.close()
        segs = bundle.manifest["segments"]
        assert [s["events"] for s in segs] == [4, 4, 2]
        assert segs[0]["first_seq"] == 1 and segs[0]["last_seq"] == 4
        assert segs[-1]["last_seq"] == 10
        assert [ev["seq"] for ev in bundle.events()] == list(range(1, 11))

    def test_refuses_existing_path_without_overwrite(self, tmp_path):
        bus, rec = self._record(tmp_path)
        rec.close()
        with pytest.raises(MeasurementError, match="exists"):
            RunRecorder(bus, tmp_path / "run.reprorun")
        RunRecorder(bus, tmp_path / "run.reprorun", overwrite=True).close()

    def test_close_detaches_from_bus(self, tmp_path):
        bus, rec = self._record(tmp_path, n=2)
        bundle = rec.close()
        bus.publish("trace", {"late": True})
        assert bundle.event_count == 2
        assert load_bundle(bundle.path).event_count == 2

    def test_context_manager(self, tmp_path):
        bus = TelemetryBus()
        with RunRecorder(bus, tmp_path / "cm.reprorun") as rec:
            bus.publish("meta", {"event": "x"})
        assert load_bundle(tmp_path / "cm.reprorun").event_count == 1
        assert rec.event_count == 1

    def test_invalid_segment_bound_rejected(self, tmp_path):
        with pytest.raises(MeasurementError, match="segment_events"):
            RunRecorder(TelemetryBus(), tmp_path / "x.reprorun",
                        segment_events=0)

    def test_replay_is_deterministic(self, tmp_path):
        bus, rec = self._record(tmp_path, n=7)
        bundle = rec.close()
        first, second = [], []
        assert bundle.replay(first.append) == 7
        assert bundle.replay(second.append) == 7
        assert first == second

    def test_replay_onto_bus_restamps_seq(self, tmp_path):
        bus, rec = self._record(tmp_path, n=3)
        bundle = rec.close()
        target = TelemetryBus()
        sub = target.subscribe()
        assert bundle.replay_onto(target) == 3
        replayed = sub.drain()
        assert [ev["seq"] for ev in replayed] == [1, 2, 3]
        assert [ev["i"] for ev in replayed] == [0, 1, 2]

    def test_summary_counts(self, tmp_path):
        bus = TelemetryBus()
        rec = RunRecorder(bus, tmp_path / "run.reprorun")
        bus.publish_meta("run_start", experiment="fig3")
        bus.publish_trace("hostA", 0.25, "tcp.tx.segment", "c", {})
        bus.publish("chaos", {"event": "fired", "time": 0.5})
        summary = rec.close().summary()
        assert summary["kinds"] == {"meta": 1, "trace": 1, "chaos": 1}
        assert summary["trace_points"] == {"tcp.tx.segment": 1}
        assert summary["chaos_events"] == 1
        assert summary["experiments"] == ["fig3"]
        assert summary["first_time"] == 0.25
        assert summary["last_time"] == 0.5


class TestLoadBundleValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(MeasurementError, match="manifest"):
            load_bundle(tmp_path)

    def test_unknown_format_tag(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "reprorun-v999", "event_count": 0,
                        "segments": []}))
        with pytest.raises(MeasurementError, match="format"):
            load_bundle(tmp_path)

    def test_missing_segment_file(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "format": BUNDLE_FORMAT, "event_count": 1,
            "segments": [{"file": "segment-00000.jsonl.gz", "events": 1,
                          "first_seq": 1, "last_seq": 1}]}))
        with pytest.raises(MeasurementError, match="missing segment"):
            load_bundle(tmp_path)

    def test_segments_are_gzip_jsonl(self, tmp_path):
        bus = TelemetryBus()
        rec = RunRecorder(bus, tmp_path / "run.reprorun")
        bus.publish("trace", {"i": 1})
        rec.close()
        seg = tmp_path / "run.reprorun" / "segment-00000.jsonl.gz"
        with gzip.open(seg, "rt", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert json.loads(lines[0]) == {"seq": 1, "kind": "trace", "i": 1}


class TestForkSafety:
    def test_recorder_pid_guard(self, tmp_path):
        """Simulate a forked worker by faking the recorded pid."""
        bus = TelemetryBus()
        rec = RunRecorder(bus, tmp_path / "run.reprorun")
        bus.publish("trace", {"i": 0})
        rec._pid = os.getpid() + 1  # pretend we are a fork child
        bus._pid = os.getpid() + 1
        assert bus.publish("trace", {"i": 1}) is None
        assert not bus.streaming
        rec._pid = os.getpid()
        bus._pid = os.getpid()
        bundle = rec.close()
        assert bundle.event_count == 1
