"""Docs/catalog sync: the generated tables must match the code."""

import pathlib

from repro.telemetry.points import (
    CATALOG,
    LAYER_TITLES,
    catalog_by_layer,
    render_catalog_markdown,
)

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"
BEGIN = "<!-- BEGIN GENERATED CATALOG (python scripts/gen_catalog.py) -->\n"
END = "<!-- END GENERATED CATALOG -->"


class TestRenderer:
    def test_every_point_rendered_exactly_once(self):
        text = render_catalog_markdown()
        for name in CATALOG:
            assert text.count(f"| `{name}` |") == 1

    def test_layer_counts_in_headings(self):
        text = render_catalog_markdown()
        grouped = catalog_by_layer()
        for layer, title in LAYER_TITLES:
            assert f"#### {title} ({len(grouped[layer])})" in text

    def test_every_layer_has_a_title(self):
        known = {layer for layer, _ in LAYER_TITLES}
        assert {p.layer for p in CATALOG.values()} <= known

    def test_descriptions_collapse_to_single_lines(self):
        for line in render_catalog_markdown().splitlines():
            if line.startswith("| `"):
                assert line.count("|") == 3  # point | description | end


class TestDocSync:
    def test_markers_present(self):
        text = DOC.read_text(encoding="utf-8")
        assert BEGIN in text and END in text

    def test_docs_match_generated_catalog(self):
        """docs/OBSERVABILITY.md embeds exactly render_catalog_markdown()
        between the markers — run ``python scripts/gen_catalog.py`` when
        this fails."""
        text = DOC.read_text(encoding="utf-8")
        start = text.index(BEGIN) + len(BEGIN)
        end = text.index(END)
        assert text[start:end] == render_catalog_markdown(), (
            "docs/OBSERVABILITY.md catalog drifted from "
            "repro.telemetry.points; regenerate with "
            "`python scripts/gen_catalog.py`")
