"""Metrics registry: label identity, kinds, snapshots, merge semantics."""

import pytest

from repro.errors import MeasurementError
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_metrics_table,
    merge_snapshots,
)


class TestLabelIdentity:
    def test_same_name_and_labels_is_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("nic.tx", nic="eth0")
        b = reg.counter("nic.tx", nic="eth0")
        assert a is b

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", host="a", port=1)
        b = reg.counter("x", port=1, host="a")
        assert a is b

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        assert reg.counter("x", port=1) is reg.counter("x", port="1")

    def test_different_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x", host="a")
        b = reg.counter("x", host="b")
        assert a is not b
        assert len(reg) == 2

    def test_no_labels_is_its_own_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is not reg.counter("x", host="a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", host="a")
        with pytest.raises(MeasurementError, match="already registered"):
            reg.gauge("x", host="a")


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = MetricsRegistry().counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5


class TestGauge:
    def test_set_tracks_min_max(self):
        g = MetricsRegistry().gauge("g")
        for v in (5.0, 2.0, 9.0):
            g.set(v)
        assert g.value == 9.0 and g.max == 9.0 and g.min == 2.0

    def test_set_max_only_raises_the_high_water_mark(self):
        g = MetricsRegistry().gauge("g")
        g.set_max(4.0)
        g.set_max(2.0)
        assert g.max == 4.0 and g.value == 4.0


class TestHistogram:
    def test_observe_lands_in_first_fitting_bucket(self):
        h = MetricsRegistry().histogram("h", buckets=(1, 4, 16))
        for v in (1, 3, 16, 100):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last is the overflow bucket
        assert h.count == 4 and h.sum == 120
        assert h.mean == 30.0

    def test_default_buckets_power_of_two(self):
        h = MetricsRegistry().histogram("h")
        assert h.buckets == DEFAULT_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MeasurementError, match="sorted"):
            MetricsRegistry().histogram("h", buckets=(4, 1))

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestSnapshotAndMerge:
    def _worker(self, base):
        reg = MetricsRegistry()
        reg.counter("pkts", host="a").inc(base)
        g = reg.gauge("depth", host="a")
        g.set(base)
        g.set(base / 2)
        reg.histogram("batch", buckets=(2, 8), host="a").observe(base)
        return reg

    def test_snapshot_is_sorted_and_picklable_shape(self):
        reg = self._worker(4)
        snap = reg.snapshot()
        assert [e["name"] for e in snap] == ["batch", "depth", "pkts"]
        for entry in snap:
            assert set(entry) == {"kind", "name", "labels", "data"}
            assert isinstance(entry["labels"], dict)

    def test_counters_add(self):
        combined = merge_snapshots([self._worker(3).snapshot(),
                                    self._worker(5).snapshot()])
        pkts = [e for e in combined if e["name"] == "pkts"][0]
        assert pkts["data"]["value"] == 8

    def test_gauges_keep_running_extremes_and_last_value(self):
        combined = merge_snapshots([self._worker(10).snapshot(),
                                    self._worker(4).snapshot()])
        depth = [e for e in combined if e["name"] == "depth"][0]
        assert depth["data"]["max"] == 10
        assert depth["data"]["min"] == 2
        assert depth["data"]["value"] == 2  # last worker's last set()

    def test_histograms_add_bucket_wise(self):
        combined = merge_snapshots([self._worker(1).snapshot(),
                                    self._worker(100).snapshot()])
        batch = [e for e in combined if e["name"] == "batch"][0]
        assert batch["data"]["counts"] == [1, 0, 1]
        assert batch["data"]["count"] == 2

    def test_histogram_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 3)).observe(1)
        b_snap = b.snapshot()
        with pytest.raises(MeasurementError, match="buckets"):
            a.merge_snapshot(b_snap)

    def test_merge_creates_missing_series(self):
        target = MetricsRegistry()
        target.merge_snapshot(self._worker(2).snapshot())
        assert len(target) == 3

    def test_merge_is_deterministic_for_fixed_order(self):
        snaps = [self._worker(n).snapshot() for n in (1, 2, 3)]
        assert merge_snapshots(snaps) == merge_snapshots(snaps)


class TestFormatTable:
    def test_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("pkts", host="a").inc(7)
        reg.gauge("depth", host="a").set(3)
        reg.histogram("batch", host="a").observe(4)
        text = format_metrics_table(reg, title="T")
        assert text.splitlines()[0] == "T"
        assert "pkts" in text and "7" in text
        assert "last=3 max=3" in text
        assert "n=1 mean=4" in text
        assert "host=a" in text

    def test_accepts_a_snapshot_too(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert format_metrics_table(reg.snapshot()) == \
            format_metrics_table(reg)

    def test_untouched_gauge_renders_dashes_not_inf(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        assert "inf" not in format_metrics_table(reg)

    def test_empty_registry(self):
        assert "no series" in format_metrics_table(MetricsRegistry())
