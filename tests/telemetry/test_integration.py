"""End-to-end telemetry: live points, profiling, sweep-worker parity.

The contract tested here is the whole reason the telemetry stack exists:

* every point posted by a real simulation is in the catalog, and at
  least 25 distinct points fire across the hw/oskernel/tcp/net layers;
* engine self-profiling attributes events and wall-clock to components;
* a parallel sweep merges to the *identical* metrics a serial sweep
  produces (events match in shape; idents differ across processes).
"""

from collections import Counter as TallyCounter

from repro.config import TuningConfig
from repro.net.topology import BackToBack, ThroughSwitch, build_wan_path
from repro.net.train import train_batching_enabled
from repro.sim import Environment
from repro.sim.runner import SweepRunner
from repro.tcp.connection import TcpConnection
from repro.telemetry.points import CATALOG
from repro.telemetry.profiling import EngineProfiler, component_of
from repro.telemetry.session import telemetry_session


def _stream(env, conn, payload, count):
    def app():
        yield from conn.send_stream(payload, count)
        yield from conn.wait_delivered(payload * count)

    env.run(until=env.process(app()))


def _lossy_back_to_back():
    """Fig 2(a) with one dropped segment: exercises the recovery points."""
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    inner = bb.links[0].sink
    counter = {"n": 0}

    def dropping_receive(skb):
        if skb.kind == "data" and not skb.meta.get("retransmit"):
            counter["n"] += 1
            if counter["n"] == 20:
                return  # one-time loss
        inner.receive_frame(skb)

    bb.links[0].connect(
        type("Tap", (), {"receive_frame": staticmethod(dropping_receive)})())
    _stream(env, conn, 8948, 96)
    return conn


def _through_switch():
    env = Environment()
    ts = ThroughSwitch.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, ts.a, ts.b)
    _stream(env, conn, 8948, 32)
    return conn


def _wan():
    env = Environment()
    tb = build_wan_path(env, TuningConfig.wan_tuned(buf=1 << 21))
    for p in (tb.forward, tb.reverse):
        p.oc192.propagation_s *= 0.01
        p.oc48.propagation_s *= 0.01
    conn = TcpConnection(env, tb.sunnyvale, tb.geneva)
    _stream(env, conn, 8948, 64)
    return conn


class TestLivePoints:
    def test_25_plus_cataloged_points_fire_across_all_layers(self):
        with telemetry_session(metrics=True, trace=True) as session:
            _lossy_back_to_back()
            _through_switch()
            wan_conn = _wan()
        points = TallyCounter(point for _, _, point, _, _ in session.events)
        uncataloged = set(points) - set(CATALOG)
        assert not uncataloged, f"posted points missing from CATALOG: " \
                                f"{sorted(uncataloged)}"
        assert len(points) >= 25, sorted(points)
        layers = {CATALOG[p].layer for p in points}
        assert layers == {"hw", "oskernel", "tcp", "net"}
        # the recovery path fired
        assert points["tcp.tx.retransmit"] >= 1
        assert points["tcp.rx.ooo"] >= 1
        # the network devices fired
        assert points["switch.forward"] >= 32
        assert points["wan.forward"] >= 64
        assert points["pos.tx"] >= 64
        # metrics agree with the model's own statistics where they overlap
        reg = session.registry
        sent = reg.counter("tcp.tx.segments", host="sunnyvale").value
        assert sent == wan_conn.sender.segments_sent

    def test_tracks_follow_component_names(self):
        with telemetry_session(metrics=False, trace=True) as session:
            _through_switch()
        tracks = {track for track, *_ in session.events}
        assert "hostA" in tracks and "hostB" in tracks
        assert "fastiron" in tracks


class TestEngineProfiling:
    def test_profile_attributes_events_and_components(self):
        with telemetry_session(metrics=False, profile=True) as session:
            env = Environment()
            bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
            conn = TcpConnection(env, bb.a, bb.b)
            _stream(env, conn, 8948, 32)
        prof = session.profile
        assert prof.events_total > 0
        assert prof.heap_hwm >= 1
        assert prof.wall_time_s > 0
        assert sum(prof.event_counts.values()) == prof.events_total
        # host-instance prefixes are stripped: all senders aggregate
        assert "tcp.pump" in prof.callback_counts
        assert not any(key.startswith("hostA.") for key in prof.callback_counts)
        table = prof.render_table()
        assert "Engine profile" in table
        assert "wall-clock by component" in table

    def test_component_of_strips_instances(self):
        assert component_of("hostA.tcp.pump") == "tcp.pump"
        assert component_of("oc192#17") == "oc192"
        assert component_of("pktgen") == "pktgen"

    def test_profiles_merge_additively(self):
        a, b = EngineProfiler(), EngineProfiler()
        a.event_counts["Timeout"] = 3
        a.events_total = 3
        a.heap_hwm = 5
        b.event_counts["Timeout"] = 2
        b.events_total = 2
        b.heap_hwm = 9
        a.merge(b)
        assert a.event_counts["Timeout"] == 5
        assert a.events_total == 5
        assert a.heap_hwm == 9

    def test_disabled_profiling_attaches_nothing(self):
        env = Environment()
        assert env._profiler is None


class TestPerfCounterPoints:
    """The PR-3 performance counters publish through the session."""

    def test_tx_train_frames_counter_matches_nic(self):
        with telemetry_session(metrics=True) as session:
            env = Environment()
            bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
            conn = TcpConnection(env, bb.a, bb.b)
            _stream(env, conn, 8948, 64)
        nic = bb.a.adapters[0]
        counter = session.registry.counter("nic.tx_train_frames",
                                           nic=nic.name)
        assert counter.value == nic.tx_train_frames.total
        if train_batching_enabled():
            # every data frame rode a train, and bursts formed
            assert counter.value >= 64
            assert nic.mean_train_size() > 1.0

    def test_calendar_resizes_counter_published(self):
        with telemetry_session(metrics=True) as session:
            env = Environment(scheduler="calendar")
            # ~250 events per 10us bucket forces width rebuilds
            for i in range(20_000):
                env.schedule_call(i * 4e-8, lambda: None)
            env.run()
        assert env.calendar_resizes >= 1
        counter = session.registry.counter("engine.calendar_resizes")
        assert counter.value == env.calendar_resizes

    def test_counters_silent_without_session(self):
        env = Environment(scheduler="calendar")
        for i in range(20_000):
            env.schedule_call(i * 4e-8, lambda: None)
        env.run()  # no registry attached: resizes still tracked locally
        assert env.calendar_resizes >= 1


def _sweep_point(task):
    """Module-level worker (pickled into pool processes)."""
    payload, count = task
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    _stream(env, conn, payload, count)
    return conn.receiver.bytes_delivered


class TestSweepParity:
    TASKS = [(8948, 8), (8948, 16), (1448, 8)]

    def _run(self, jobs):
        with telemetry_session(metrics=True, trace=True) as session:
            results = SweepRunner(jobs).map(_sweep_point, self.TASKS)
        return results, session.registry.snapshot(), session.events

    def test_parallel_metrics_identical_to_serial(self):
        r_serial, m_serial, e_serial = self._run(1)
        r_par, m_par, e_par = self._run(2)
        assert r_serial == r_par
        # the acceptance criterion: merged *simulation* metrics are
        # bit-identical.  Dispatch-harness counters (pool.*) describe how
        # the sweep was scheduled and intentionally vary with job count,
        # like wall-clock — they are outside the parity contract.
        def sim_metrics(snapshot):
            return [m for m in snapshot if not m["name"].startswith("pool.")]
        assert sim_metrics(m_serial) == sim_metrics(m_par)
        # ...and the parallel run does record its dispatch traffic
        assert any(m["name"] == "pool.tasks_dispatched" and
                   m["data"]["value"] == len(self.TASKS) for m in m_par)
        # events match in shape: same per-track point tallies.  (Subject
        # idents come from process-global counters, so the raw tuples
        # differ between one process and a forked pool.)
        def shape(events):
            return TallyCounter((track, point)
                                for track, _, point, _, _ in events)
        assert shape(e_serial) == shape(e_par)

    def test_worker_events_prefixed_by_task_index(self):
        _, _, events = self._run(2)
        prefixes = {track.split("/")[0] for track, *_ in events}
        assert len(prefixes) == len(self.TASKS)
        assert all("[" in p and p.endswith("]") for p in prefixes)
