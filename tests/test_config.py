"""Unit tests for TuningConfig."""

import pytest

from repro.config import MAX_ADAPTER_MTU, TuningConfig, VALID_MMRBC
from repro.errors import ConfigError
from repro.units import KB


def test_defaults_match_stock_pe2650():
    cfg = TuningConfig()
    assert cfg.mtu == 1500
    assert cfg.mmrbc == 512
    assert cfg.smp_kernel is True
    assert cfg.tcp_rmem == KB(64)
    assert cfg.interrupt_coalescing_us == 5.0
    assert cfg.tcp_timestamps is True


@pytest.mark.parametrize("mtu", [100, 0, -1, MAX_ADAPTER_MTU + 1])
def test_invalid_mtu_rejected(mtu):
    with pytest.raises(ConfigError):
        TuningConfig(mtu=mtu)


@pytest.mark.parametrize("mtu", [576, 1500, 8160, 9000, 16000])
def test_valid_mtus_accepted(mtu):
    assert TuningConfig(mtu=mtu).mtu == mtu


@pytest.mark.parametrize("mmrbc", [0, 100, 513, 8192])
def test_invalid_mmrbc_rejected(mmrbc):
    with pytest.raises(ConfigError):
        TuningConfig(mmrbc=mmrbc)


@pytest.mark.parametrize("mmrbc", VALID_MMRBC)
def test_valid_mmrbc_accepted(mmrbc):
    assert TuningConfig(mmrbc=mmrbc).mmrbc == mmrbc


def test_tiny_socket_buffers_rejected():
    with pytest.raises(ConfigError):
        TuningConfig(tcp_rmem=1024)
    with pytest.raises(ConfigError):
        TuningConfig(tcp_wmem=100)


def test_negative_coalescing_rejected():
    with pytest.raises(ConfigError):
        TuningConfig(interrupt_coalescing_us=-1.0)


def test_txqueuelen_must_be_positive():
    with pytest.raises(ConfigError):
        TuningConfig(txqueuelen=0)


def test_replace_creates_validated_copy():
    cfg = TuningConfig()
    jumbo = cfg.replace(mtu=9000)
    assert jumbo.mtu == 9000
    assert cfg.mtu == 1500  # original untouched
    with pytest.raises(ConfigError):
        cfg.replace(mmrbc=777)


def test_describe_matches_paper_legend_style():
    cfg = TuningConfig(mtu=9000, mmrbc=512)
    assert cfg.describe() == "9000MTU,SMP,512PCI,64kbuf"
    up = TuningConfig.oversized_windows(9000)
    assert up.describe() == "9000MTU,UP,4096PCI,256kbuf"


def test_named_ladder_configs():
    assert TuningConfig.stock(9000).mmrbc == 512
    assert TuningConfig.with_pcix_burst().mmrbc == 4096
    assert TuningConfig.uniprocessor().smp_kernel is False
    big = TuningConfig.oversized_windows()
    assert big.tcp_rmem == KB(256) and big.tcp_wmem == KB(256)
    tuned = TuningConfig.fully_tuned()
    assert tuned.mtu == 8160 and not tuned.smp_kernel


def test_low_latency_disables_coalescing():
    assert TuningConfig.low_latency().interrupt_coalescing_us == 0.0


def test_wan_tuned_sets_paper_recipe():
    cfg = TuningConfig.wan_tuned(buf=32 * 1024 * 1024)
    assert cfg.mtu == 9000
    assert cfg.txqueuelen == 10000
    assert cfg.window_scaling
    assert cfg.tcp_rmem == 32 * 1024 * 1024


def test_as_dict_roundtrip():
    cfg = TuningConfig.fully_tuned()
    d = cfg.as_dict()
    assert d["mtu"] == 8160
    assert TuningConfig(**d) == cfg
