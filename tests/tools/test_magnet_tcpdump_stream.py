"""Tests for MAGNET, tcpdump and STREAM tools."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.presets import PE2650, PE4600
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.magnet import Magnet
from repro.tools.stream_bench import stream_bench
from repro.tools.tcpdump import Tcpdump


def run_traffic(with_magnet=False, with_tcpdump=False):
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    magnet = Magnet(bb.a, bb.b) if with_magnet else None
    if magnet:
        magnet.start()
    dump = Tcpdump(env, bb.links[1]) if with_tcpdump else None

    def app():
        yield from conn.send_stream(8948, 64)
        yield from conn.wait_delivered(8948 * 64)

    env.run(until=env.process(app()))
    return env, conn, magnet, dump


class TestMagnet:
    def test_requires_hosts(self):
        with pytest.raises(MeasurementError):
            Magnet()

    def test_path_histogram_counts_instrumentation_points(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        hist = magnet.path_histogram()
        assert hist.get("tcp.tx.segment") == 64
        assert hist.get("tcp.rx.deliver") == 64
        assert "host.rx.dispatch" in hist

    def test_profile_tx_to_deliver(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        prof = magnet.profile("tcp.tx.segment", "tcp.rx.deliver")
        assert prof.samples == 64
        # one-way data-path latency: tens of microseconds
        assert 10 < prof.mean_us < 500
        assert prof.p50_s <= prof.p99_s

    def test_profile_without_matches_raises(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        with pytest.raises(MeasurementError):
            magnet.profile("tcp.tx.segment", "no.such.point")

    def test_disabled_magnet_records_nothing(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        magnet.clear()
        magnet.stop()
        assert magnet.path_histogram() == {}


class TestTcpdump:
    def test_captures_acks_with_windows(self):
        _, conn, _, dump = run_traffic(with_tcpdump=True)
        acks = dump.acks()
        assert len(acks) == conn.receiver.acks_sent
        windows = dump.advertised_windows()
        assert all(w >= 0 for w in windows)
        # §3.5.1 evidence: advertised windows are MSS-multiples
        mss = conn.receiver.align_mss
        assert all(w % mss == 0 for w in windows)

    def test_data_capture_on_forward_link(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        dump = Tcpdump(env, bb.links[0])

        def app():
            yield from conn.send_stream(8948, 32)
            yield from conn.wait_delivered(8948 * 32)

        env.run(until=env.process(app()))
        assert len(dump.data()) == 32
        assert "data" in dump.data()[0].summary()

    def test_attach_before_connect_rejected(self):
        env = Environment()
        from repro.net.ethernet import EthernetLink
        from repro.units import Gbps
        link = EthernetLink(env, Gbps(10))
        with pytest.raises(ValueError):
            Tcpdump(env, link)


class TestStream:
    def test_pe4600_beats_pe2650_by_half(self):
        r2650 = stream_bench(PE2650)
        r4600 = stream_bench(PE4600)
        assert r4600.copy_gbps == pytest.approx(12.8)
        assert r4600.copy_bps / r2650.copy_bps == pytest.approx(1.5, rel=0.05)

    def test_efficiency_below_one(self):
        assert 0 < stream_bench(PE2650).efficiency < 1
