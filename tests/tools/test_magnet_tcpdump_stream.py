"""Tests for MAGNET, tcpdump and STREAM tools."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.presets import PE2650, PE4600
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.magnet import Magnet
from repro.tools.stream_bench import stream_bench
from repro.tools.tcpdump import Tcpdump


def run_traffic(with_magnet=False, with_tcpdump=False):
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    magnet = Magnet(bb.a, bb.b) if with_magnet else None
    if magnet:
        magnet.start()
    dump = Tcpdump(env, bb.links[1]) if with_tcpdump else None

    def app():
        yield from conn.send_stream(8948, 64)
        yield from conn.wait_delivered(8948 * 64)

    env.run(until=env.process(app()))
    return env, conn, magnet, dump


class TestMagnet:
    def test_requires_hosts(self):
        with pytest.raises(MeasurementError):
            Magnet()

    def test_path_histogram_counts_instrumentation_points(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        hist = magnet.path_histogram()
        assert hist.get("tcp.tx.segment") == 64
        assert hist.get("tcp.rx.deliver") == 64
        assert "host.rx.dispatch" in hist

    def test_profile_tx_to_deliver(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        prof = magnet.profile("tcp.tx.segment", "tcp.rx.deliver")
        assert prof.samples == 64
        # one-way data-path latency: tens of microseconds
        assert 10 < prof.mean_us < 500
        assert prof.p50_s <= prof.p99_s

    def test_profile_without_matches_raises(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        with pytest.raises(MeasurementError):
            magnet.profile("tcp.tx.segment", "no.such.point")

    def test_disabled_magnet_records_nothing(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        magnet.clear()
        magnet.stop()
        assert magnet.path_histogram() == {}

    def test_clean_path_has_no_requeues_or_unmatched(self):
        _, conn, magnet, _ = run_traffic(with_magnet=True)
        prof = magnet.profile("tcp.tx.segment", "tcp.rx.deliver")
        assert prof.requeued == 0
        assert prof.unmatched == 0

    def test_profile_counts_requeued_and_unmatched_exactly(self):
        _, _, magnet, _ = run_traffic(with_magnet=True)
        host = magnet.hosts[0]
        magnet.clear()
        buf = host.trace
        buf.post(0.0, "src", 1)
        buf.post(1.0, "src", 2)
        buf.post(2.0, "src", 1)   # subject 1 re-enters: a retransmission
        buf.post(5.0, "dst", 1)   # completes against its FIRST entry
        # subject 2 never reaches dst
        prof = magnet.profile("src", "dst")
        assert prof.samples == 1
        assert prof.requeued == 1
        assert prof.unmatched == 1
        assert prof.mean_s == 5.0  # 5.0 - 0.0, not 5.0 - 2.0

    def test_lost_frames_show_up_as_unmatched(self):
        """A real loss: the dropped original never reaches the delivery
        point (its retransmission is a fresh frame id), and the profile
        reports it instead of silently ignoring it."""
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        magnet = Magnet(bb.a, bb.b)
        magnet.start()
        inner = bb.links[0].sink
        counter = {"n": 0}

        def dropping_receive(skb):
            if skb.kind == "data" and not skb.meta.get("retransmit"):
                counter["n"] += 1
                if counter["n"] == 20:
                    return  # one-time drop
            inner.receive_frame(skb)

        tap = type("Tap", (), {})()
        tap.receive_frame = dropping_receive
        bb.links[0].connect(tap)

        def app():
            yield from conn.send_stream(8948, 96)
            yield from conn.wait_delivered(8948 * 96)

        env.run(until=env.process(app()))
        assert conn.sender.retransmitted >= 1
        assert magnet.path_histogram().get("tcp.tx.retransmit", 0) >= 1
        # the dropped original entered tcp.tx.segment but its frame id
        # never reached tcp.rx.deliver (the clone delivered instead)
        prof = magnet.profile("tcp.tx.segment", "tcp.rx.deliver")
        assert prof.samples == 95   # 96 sent, one original lost
        assert prof.unmatched == 1  # ...and accounted for, not dropped


class TestTcpdump:
    def test_captures_acks_with_windows(self):
        _, conn, _, dump = run_traffic(with_tcpdump=True)
        acks = dump.acks()
        assert len(acks) == conn.receiver.acks_sent
        windows = dump.advertised_windows()
        assert all(w >= 0 for w in windows)
        # §3.5.1 evidence: advertised windows are MSS-multiples
        mss = conn.receiver.align_mss
        assert all(w % mss == 0 for w in windows)

    def test_data_capture_on_forward_link(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        dump = Tcpdump(env, bb.links[0])

        def app():
            yield from conn.send_stream(8948, 32)
            yield from conn.wait_delivered(8948 * 32)

        env.run(until=env.process(app()))
        assert len(dump.data()) == 32
        assert "data" in dump.data()[0].summary()

    def test_attach_before_connect_rejected(self):
        env = Environment()
        from repro.net.ethernet import EthernetLink
        from repro.units import Gbps
        link = EthernetLink(env, Gbps(10))
        with pytest.raises(ValueError):
            Tcpdump(env, link)


class TestStream:
    def test_pe4600_beats_pe2650_by_half(self):
        r2650 = stream_bench(PE2650)
        r4600 = stream_bench(PE4600)
        assert r4600.copy_gbps == pytest.approx(12.8)
        assert r4600.copy_bps / r2650.copy_bps == pytest.approx(1.5, rel=0.05)

    def test_efficiency_below_one(self):
        assert 0 < stream_bench(PE2650).efficiency < 1
