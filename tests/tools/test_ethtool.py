"""Tests for the ethtool/setpci front end."""

import pytest

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.tools.ethtool import Ethtool


def test_coalescing_rx_usecs():
    et = Ethtool()
    et.run("ethtool -C eth1 rx-usecs 0")
    cfg = et.apply(TuningConfig.stock())
    assert cfg.interrupt_coalescing_us == 0.0


def test_adaptive_rx():
    et = Ethtool()
    et.run("ethtool -C eth1 adaptive-rx on")
    assert et.apply(TuningConfig.stock()).adaptive_coalescing is True


def test_offload_flags():
    et = Ethtool()
    et.run("ethtool -K eth1 tso on")
    et.run("ethtool -K eth1 rx off")
    cfg = et.apply(TuningConfig.stock())
    assert cfg.tso is True
    assert cfg.checksum_offload is False


def test_setpci_mmrbc_encoding():
    """e6.b bits 2-3 encode the burst size: 0x2e -> field 3 -> 4096."""
    et = Ethtool()
    et.run("setpci -d 8086:1048 e6.b=2e")
    assert et.apply(TuningConfig.stock()).mmrbc == 4096
    et2 = Ethtool()
    et2.run("setpci e6.b=22")   # field 0 -> 512
    assert et2.apply(TuningConfig.stock(9000)).mmrbc == 512


def test_full_paper_recipe():
    et = Ethtool()
    for line in ("setpci -d 8086:1048 e6.b=2e",
                 "ethtool -C eth1 rx-usecs 5"):
        et.run(line)
    cfg = et.apply(TuningConfig.stock(9000))
    assert cfg.mmrbc == 4096
    assert cfg.interrupt_coalescing_us == 5.0
    assert len(et.history) == 2


def test_apply_without_commands_is_identity():
    cfg = TuningConfig.stock()
    assert Ethtool().apply(cfg) is cfg


@pytest.mark.parametrize("bad", [
    "",
    "iptables -F",
    "ethtool -C eth1 rx-usecs",          # missing value
    "ethtool -C eth1 tx-usecs 5",        # unsupported key
    "ethtool -K eth1 gro maybe",         # bad on/off
    "ethtool -X eth1 equal 4",           # unsupported mode
    "setpci -d 8086:1048 e4.w=ffff",     # unmodelled register
    "setpci e6.b=zz",                    # bad hex
])
def test_invalid_commands_rejected(bad):
    with pytest.raises(ConfigError):
        Ethtool().run(bad)
