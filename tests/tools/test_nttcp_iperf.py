"""Tests for the NTTCP and Iperf tools."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.iperf import iperf_run
from repro.tools.nttcp import default_payloads, nttcp_run, nttcp_sweep


def fresh(cfg=None):
    env = Environment()
    bb = BackToBack.create(env, cfg or TuningConfig.oversized_windows(9000))
    return env, TcpConnection(env, bb.a, bb.b)


def test_nttcp_measures_goodput():
    env, conn = fresh()
    r = nttcp_run(env, conn, payload=8948, count=128)
    assert r.bytes_delivered == 8948 * 128
    assert 1e9 < r.goodput_bps < 8.5e9
    assert r.goodput_gbps == pytest.approx(r.goodput_bps / 1e9)
    assert r.goodput_mbps == pytest.approx(r.goodput_bps / 1e6)
    assert r.retransmissions == 0


def test_nttcp_reports_cpu_load():
    env, conn = fresh()
    r = nttcp_run(env, conn, payload=8948, count=128)
    assert 0.0 < r.receiver_load <= 1.0
    assert 0.0 < r.sender_load <= 1.0


def test_nttcp_load_higher_for_small_mtu():
    """§3.3: CPU load ~0.9 at 1500-byte MTU vs ~0.4 at 9000 — the
    stock 9000 configuration is bus/window-limited, so the CPU idles,
    while 1500 is per-packet CPU-bound."""
    env1, conn1 = fresh(TuningConfig.stock(1500))
    small = nttcp_run(env1, conn1, payload=1448, count=256)
    env2, conn2 = fresh(TuningConfig.stock(9000))
    big = nttcp_run(env2, conn2, payload=8948, count=256)
    assert small.receiver_load > 0.8
    assert big.receiver_load < small.receiver_load - 0.1


def test_nttcp_invalid_args():
    env, conn = fresh()
    with pytest.raises(MeasurementError):
        nttcp_run(env, conn, payload=0, count=10)
    with pytest.raises(MeasurementError):
        nttcp_run(env, conn, payload=100, count=0)


def test_nttcp_sequential_runs_on_one_connection():
    env, conn = fresh()
    r1 = nttcp_run(env, conn, payload=8948, count=64)
    r2 = nttcp_run(env, conn, payload=8948, count=64)
    assert r2.bytes_delivered == 8948 * 64


def test_default_payloads_cover_dip_region():
    grid = default_payloads(mss=8948)
    assert 128 in grid and 16384 in grid
    assert 8948 in grid       # the MSS itself
    assert 7436 in grid       # mss - 1512: the paper's dip edge
    assert grid == sorted(grid)


def test_default_payloads_validation():
    with pytest.raises(MeasurementError):
        default_payloads(mss=8948, points=2)


def test_nttcp_sweep_fresh_topology_per_point():
    def make():
        return fresh(TuningConfig.oversized_windows(9000))

    results = nttcp_sweep(make, payloads=(4474, 8948), count=64)
    assert [r.payload for r in results] == [4474, 8948]
    assert all(r.goodput_bps > 0 for r in results)


def test_iperf_agrees_with_nttcp_within_tolerance():
    """§3.2: 'Typically, the performance difference between the two is
    within 2-3%' — we allow 10% for the scaled-down runs."""
    env, conn = fresh()
    n = nttcp_run(env, conn, payload=8948, count=256)
    env2, conn2 = fresh()
    i = iperf_run(env2, conn2, duration_s=0.004, write_size=8948,
                  warmup_s=0.002)
    assert i.goodput_bps == pytest.approx(n.goodput_bps, rel=0.10)


def test_iperf_invalid_args():
    env, conn = fresh()
    with pytest.raises(MeasurementError):
        iperf_run(env, conn, duration_s=0)
    with pytest.raises(MeasurementError):
        iperf_run(env, conn, duration_s=1, write_size=0)
