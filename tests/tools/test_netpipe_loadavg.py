"""Tests for NetPipe and the loadavg sampler."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.loadavg import LoadSampler
from repro.tools.netpipe import netpipe_latency, netpipe_sweep


def make_pair(coalescing_us=5.0):
    env = Environment()
    cfg = TuningConfig(mtu=1500, mmrbc=4096, smp_kernel=False,
                       interrupt_coalescing_us=coalescing_us)
    bb = BackToBack.create(env, cfg)
    return env, TcpConnection(env, bb.a, bb.b), TcpConnection(env, bb.b, bb.a)


def test_single_byte_latency_near_paper():
    env, fwd, bwd = make_pair()
    r = netpipe_latency(env, fwd, bwd, payload=1, iterations=5)
    assert r.latency_us == pytest.approx(19.0, abs=1.5)


def test_latency_grows_with_payload():
    env, fwd, bwd = make_pair()
    small = netpipe_latency(env, fwd, bwd, payload=1, iterations=4)
    env2, fwd2, bwd2 = make_pair()
    large = netpipe_latency(env2, fwd2, bwd2, payload=1024, iterations=4)
    assert large.latency_s > small.latency_s


def test_coalescing_off_saves_five_microseconds():
    env, fwd, bwd = make_pair(5.0)
    on = netpipe_latency(env, fwd, bwd, payload=1, iterations=4)
    env2, fwd2, bwd2 = make_pair(0.0)
    off = netpipe_latency(env2, fwd2, bwd2, payload=1, iterations=4)
    assert on.latency_us - off.latency_us == pytest.approx(5.0, abs=1.0)


def test_rtt_is_twice_latency():
    env, fwd, bwd = make_pair()
    r = netpipe_latency(env, fwd, bwd, payload=1, iterations=4)
    assert r.rtt_s == pytest.approx(2 * r.latency_s)


def test_invalid_args():
    env, fwd, bwd = make_pair()
    with pytest.raises(MeasurementError):
        netpipe_latency(env, fwd, bwd, payload=0)
    with pytest.raises(MeasurementError):
        netpipe_latency(env, fwd, bwd, payload=1, iterations=0)


def test_sweep_produces_monotone_ish_curve():
    results = netpipe_sweep(make_pair, payloads=(1, 256, 1024),
                            iterations=4)
    lats = [r.latency_us for r in results]
    assert lats[0] < lats[-1]


def test_load_sampler_records_busy_host():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    sampler = LoadSampler(env, bb.b, interval_s=0.002)
    sampler.start()

    def app():
        yield from conn.send_stream(8948, 256)
        yield from conn.wait_delivered(8948 * 256)

    env.run(until=env.process(app()))
    sampler.stop()
    assert len(sampler.samples) >= 2
    assert 0.05 < sampler.mean_load() <= 1.0


def test_load_sampler_idle_host_is_zero():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock())
    sampler = LoadSampler(env, bb.a, interval_s=0.001)
    sampler.start()
    env.run(until=0.005)
    sampler.stop()
    assert sampler.mean_load() == pytest.approx(0.0, abs=1e-9)


def test_load_sampler_validation():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock())
    with pytest.raises(MeasurementError):
        LoadSampler(env, bb.a, interval_s=0)
    s = LoadSampler(env, bb.a)
    with pytest.raises(MeasurementError):
        s.mean_load()
