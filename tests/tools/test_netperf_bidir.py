"""Tests for netperf and bidirectional NTTCP."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.netperf import netperf_tcp_rr, netperf_tcp_stream
from repro.tools.nttcp import nttcp_bidirectional, nttcp_run


def fresh_pair(cfg=None):
    env = Environment()
    bb = BackToBack.create(env, cfg or TuningConfig.oversized_windows(9000))
    return (env, TcpConnection(env, bb.a, bb.b),
            TcpConnection(env, bb.b, bb.a))


class TestNetperf:
    def test_tcp_stream_corresponds_to_nttcp(self):
        """§3.2: netperf results correspond to NTTCP/Iperf."""
        env, fwd, _ = fresh_pair()
        stream = netperf_tcp_stream(env, fwd, duration_s=0.004,
                                    send_size=8948)
        env2, fwd2, _ = fresh_pair()
        nttcp = nttcp_run(env2, fwd2, payload=8948, count=256)
        assert stream.throughput_bps == pytest.approx(nttcp.goodput_bps,
                                                      rel=0.10)

    def test_tcp_rr_matches_rtt(self):
        cfg = TuningConfig(mtu=1500, mmrbc=4096, smp_kernel=False)
        env, fwd, bwd = fresh_pair(cfg)
        rr = netperf_tcp_rr(env, fwd, bwd, transactions=5)
        # ~38 us RTT -> ~26k transactions/s
        assert rr.mean_rtt_s == pytest.approx(38e-6, rel=0.1)
        assert rr.transactions_per_sec == pytest.approx(1 / rr.mean_rtt_s)

    def test_tcp_rr_asymmetric_sizes(self):
        cfg = TuningConfig(mtu=1500, mmrbc=4096, smp_kernel=False)
        env, fwd, bwd = fresh_pair(cfg)
        rr = netperf_tcp_rr(env, fwd, bwd, request_bytes=64,
                            response_bytes=1024, transactions=5)
        assert rr.request_bytes == 64 and rr.response_bytes == 1024
        env2, fwd2, bwd2 = fresh_pair(cfg)
        small = netperf_tcp_rr(env2, fwd2, bwd2, transactions=5)
        assert rr.mean_rtt_s > small.mean_rtt_s

    def test_validation(self):
        env, fwd, bwd = fresh_pair()
        with pytest.raises(MeasurementError):
            netperf_tcp_rr(env, fwd, bwd, request_bytes=0)
        with pytest.raises(MeasurementError):
            netperf_tcp_rr(env, fwd, bwd, transactions=0)


class TestBidirectional:
    def test_both_directions_complete(self):
        env, fwd, bwd = fresh_pair()
        result = nttcp_bidirectional(env, fwd, bwd, payload=8948,
                                     count=128)
        assert result.forward.bytes_delivered == 8948 * 128
        assert result.backward.bytes_delivered == 8948 * 128

    def test_aggregate_exceeds_unidirectional(self):
        """Full-duplex: two opposing flows beat one flow's goodput
        (they contend on host CPUs, not the wire)."""
        env, fwd, bwd = fresh_pair()
        bidir = nttcp_bidirectional(env, fwd, bwd, payload=8948,
                                    count=192)
        env2, fwd2, _ = fresh_pair()
        uni = nttcp_run(env2, fwd2, payload=8948, count=192)
        assert bidir.aggregate_bps > uni.goodput_bps * 1.15

    def test_per_direction_slower_than_unidirectional(self):
        """...but each direction pays for sharing its hosts."""
        env, fwd, bwd = fresh_pair()
        bidir = nttcp_bidirectional(env, fwd, bwd, payload=8948,
                                    count=192)
        env2, fwd2, _ = fresh_pair()
        uni = nttcp_run(env2, fwd2, payload=8948, count=192)
        assert bidir.forward.goodput_bps < uni.goodput_bps

    def test_validation(self):
        env, fwd, bwd = fresh_pair()
        with pytest.raises(MeasurementError):
            nttcp_bidirectional(env, fwd, bwd, payload=0, count=5)
