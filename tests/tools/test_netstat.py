"""Tests for the netstat-style snapshots."""

import pytest

from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.netstat import (
    diff_snapshots,
    snapshot_connection,
    snapshot_host,
)
from repro.tools.nttcp import nttcp_run


@pytest.fixture(scope="module")
def run():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    before = snapshot_host(bb.b)
    nttcp_run(env, conn, 8948, 128)
    return env, bb, conn, before


def test_host_snapshot_counts_traffic(run):
    env, bb, conn, before = run
    snap = snapshot_host(bb.b)
    assert snap["host"] == "hostB"
    assert snap["hostB.eth0.rx_frames"] >= 128
    assert snap["hostB.eth0.tx_frames"] > 0          # ACKs
    assert snap["pcix_bytes"] > 128 * 8948
    assert 0 <= snap["pcix_utilization"] <= 1


def test_connection_snapshot_consistent(run):
    env, bb, conn, before = run
    snap = snapshot_connection(conn)
    assert snap["bytes_delivered"] == 128 * 8948
    assert snap["snd_una"] == snap["rcv_nxt"] == 128 * 8948
    assert snap["bytes_in_flight"] == 0
    assert snap["segments_sent"] == 128
    assert snap["retransmitted"] == 0
    assert snap["srtt_us"] is not None and snap["srtt_us"] > 0
    assert snap["advertised_window"] % conn.receiver.align_mss == 0


def test_diff_snapshots(run):
    env, bb, conn, before = run
    after = snapshot_host(bb.b)
    delta = diff_snapshots(before, after)
    assert delta["hostB.eth0.rx_frames"] >= 128
    assert delta["host"] == "hostB"      # non-numeric carried through


def test_interrupt_coalescing_visible_in_counters(run):
    env, bb, conn, before = run
    snap = snapshot_host(bb.b)
    # with coalescing, interrupts < frames
    assert snap["hostB.eth0.interrupts"] <= snap["hostB.eth0.rx_frames"]
