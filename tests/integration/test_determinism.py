"""Determinism: identical inputs produce bit-identical results.

The engine guarantees FIFO ordering among equal-time events and the
model uses no wall-clock or unseeded randomness, so every experiment is
exactly reproducible — the property that makes calibration and
regression-hunting tractable.
"""

import pytest

from repro.config import TuningConfig
from repro.net.topology import BackToBack, build_wan_path
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.tools.netpipe import netpipe_latency
from repro.tools.nttcp import nttcp_run
from repro.units import Gbps


def one_nttcp(payload=8948, count=256):
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    result = nttcp_run(env, conn, payload, count)
    return result, env.now, conn


def test_nttcp_bit_identical_across_runs():
    r1, t1, c1 = one_nttcp()
    r2, t2, c2 = one_nttcp()
    assert r1.goodput_bps == r2.goodput_bps
    assert r1.elapsed_s == r2.elapsed_s
    assert t1 == t2
    assert c1.receiver.acks_sent == c2.receiver.acks_sent
    assert c1.sender.segments_sent == c2.sender.segments_sent


def test_latency_bit_identical():
    def measure():
        env = Environment()
        bb = BackToBack.create(env, TuningConfig(
            mtu=1500, mmrbc=4096, smp_kernel=False))
        fwd = TcpConnection(env, bb.a, bb.b)
        bwd = TcpConnection(env, bb.b, bb.a)
        return netpipe_latency(env, fwd, bwd, 1, 4).latency_s

    assert measure() == measure()


def test_fluid_bit_identical():
    p = FluidParams(bottleneck_bps=Gbps(2.38), base_rtt_s=0.18,
                    mss=8948, max_window_bytes=Gbps(2.38) * 0.18 / 8)
    a = simulate_fluid(p, 120.0)
    b = simulate_fluid(p, 120.0)
    assert a.mean_throughput_bps == b.mean_throughput_bps
    assert (a.window_segments == b.window_segments).all()


def test_wan_des_bit_identical():
    def run():
        env = Environment()
        cfg = TuningConfig.wan_tuned(buf=1 << 21)
        tb = build_wan_path(env, cfg)
        for p in (tb.forward, tb.reverse):
            p.oc192.propagation_s *= 0.01
            p.oc48.propagation_s *= 0.01
        conn = TcpConnection(env, tb.sunnyvale, tb.geneva)

        def app():
            yield from conn.send_stream(8948, 256)
            yield from conn.wait_delivered(8948 * 256)

        env.run(until=env.process(app()))
        return env.now, conn.sender.segments_sent

    assert run() == run()
