"""Integration: the paper's headline results, asserted end to end.

Each test reproduces one claim of the paper through the full simulated
stack (scaled-down workloads) and checks the *shape*: who wins, by
roughly what factor, where the dips and crossovers fall.  Absolute
tolerances are set per EXPERIMENTS.md.
"""

import pytest

from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run


def goodput(cfg, payload, count=384):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    return nttcp_run(env, conn, payload, count).goodput_gbps


@pytest.fixture(scope="module")
def headline():
    """Measured peaks for the key configurations (computed once)."""
    return {
        "stock_1500": goodput(TuningConfig.stock(1500), 1448),
        "stock_9000": goodput(TuningConfig.stock(9000), 4474),
        "stock_9000_dip": goodput(TuningConfig.stock(9000), 8948),
        "burst_9000": goodput(TuningConfig.with_pcix_burst(9000), 4474),
        "up_9000": goodput(TuningConfig.uniprocessor(9000), 4474),
        "win_9000": goodput(TuningConfig.oversized_windows(9000), 8948),
        "win_1500": goodput(TuningConfig.oversized_windows(1500), 1448),
        "tuned_8160": goodput(TuningConfig.fully_tuned(8160), 8108),
        "tuned_16000": goodput(TuningConfig.fully_tuned(16000), 15948),
    }


class TestSection33Ladder:
    def test_stock_1500_peak(self, headline):
        assert headline["stock_1500"] == pytest.approx(1.8, rel=0.15)

    def test_jumbo_beats_standard_mtu(self, headline):
        assert headline["stock_9000"] > headline["stock_1500"]

    def test_pcix_burst_step_gains(self, headline):
        """Paper: +33% at 9000 MTU from MMRBC 512 -> 4096.  The gain is
        largest where the stock bus ceiling binds hardest (MSS-sized
        payloads); our window model leaves both configs partly
        window-limited, so we assert a >15% gain there and >10% at the
        mid-payload peak."""
        at_mss = goodput(TuningConfig.with_pcix_burst(9000), 8948)
        gain_mss = at_mss / headline["stock_9000_dip"] - 1
        assert gain_mss > 0.15
        gain_peak = headline["burst_9000"] / headline["stock_9000"] - 1
        assert gain_peak > 0.10

    def test_uniprocessor_step_gains(self, headline):
        """Paper: ~10% further at 9000 MTU."""
        assert headline["up_9000"] > headline["burst_9000"] * 1.02

    def test_window_step_reaches_3_9(self, headline):
        assert headline["win_9000"] == pytest.approx(3.9, rel=0.08)

    def test_1500_fully_tuned_reaches_2_47(self, headline):
        assert headline["win_1500"] == pytest.approx(2.47, rel=0.08)

    def test_8160_peak_above_4(self, headline):
        """Paper: 4.11 Gb/s, the headline LAN number."""
        assert headline["tuned_8160"] == pytest.approx(4.11, rel=0.08)

    def test_16000_peak_matches_8160_class(self, headline):
        """Paper: 4.09 vs 4.11 — 'virtually identical'."""
        assert headline["tuned_16000"] == pytest.approx(
            headline["tuned_8160"], rel=0.12)

    def test_over_4gbps_achieved(self, headline):
        """Abstract: 'over 4 Gb/s end-to-end throughput'."""
        assert max(headline.values()) > 4.0


class TestFig3Fig4Dips:
    def test_stock_dip_in_marked_band(self, headline):
        """Fig. 3: marked dip for payloads between 7436 and 8948."""
        dip = headline["stock_9000_dip"]
        assert dip < headline["stock_9000"] * 0.92

    def test_oversized_windows_eliminate_dip(self, headline):
        """Fig. 4: the dip disappears with 256 KB windows."""
        at_dip_payload = headline["win_9000"]
        off_dip = goodput(TuningConfig.oversized_windows(9000), 7000, 256)
        assert at_dip_payload > off_dip * 0.9


class TestWindowMechanism:
    def test_advertised_windows_are_mss_aligned_on_the_wire(self):
        from repro.tools.tcpdump import Tcpdump
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.stock(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        dump = Tcpdump(env, bb.links[1])
        nttcp_run(env, conn, 8948, 128)
        mss = conn.receiver.align_mss
        windows = dump.advertised_windows()
        assert windows, "no ACKs captured"
        assert all(w % mss == 0 for w in windows)

    def test_stock_advertised_window_below_expected_48k(self):
        """§3.5.1: 'the actual advertised window is significantly
        smaller than the expected value of 48 KB'."""
        from repro.tools.tcpdump import Tcpdump
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.stock(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        dump = Tcpdump(env, bb.links[1])
        nttcp_run(env, conn, 8948, 128)
        windows = dump.advertised_windows()
        steady = windows[len(windows) // 2:]
        assert min(steady) < 48 * 1024


class TestEndToEndConservation:
    @pytest.mark.parametrize("mtu,payload", [(1500, 1448), (9000, 8948),
                                             (8160, 8108), (16000, 15948)])
    def test_no_loss_no_duplicates_all_mtus(self, mtu, payload):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.fully_tuned(mtu))
        conn = TcpConnection(env, bb.a, bb.b)
        r = nttcp_run(env, conn, payload, 128)
        assert r.bytes_delivered == payload * 128
        assert r.retransmissions == 0
        assert conn.receiver.duplicates == 0
