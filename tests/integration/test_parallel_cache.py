"""Integration tests: parallel/serial parity and the on-disk result cache.

Parity is the load-bearing guarantee of the sweep runner: every
experiment must produce *bit-identical* output whether its points run
in-process or fan out over worker processes.  The expensive experiment
ids are skipped unless ``REPRO_PARITY_FULL=1`` so the default suite
stays fast; CI can opt into the exhaustive sweep.
"""

import os

import pytest

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.cache import ResultCache, cache_context
from repro.config import TuningConfig
from repro.core.casestudy import CaseStudy
from tests.support import assert_bit_identical

#: Experiments that take multiple seconds each even in quick mode.
HEAVY = {"anecdotal", "fig3", "fig4", "fig5", "opt_steps", "wan"}

_FULL = os.environ.get("REPRO_PARITY_FULL", "").strip() == "1"

PAYLOADS = [1024, 8192]  # two cheap points for sweep-level cache tests


@pytest.mark.parametrize("name", experiment_ids())
def test_experiment_parity_serial_vs_parallel(name):
    """jobs=1 and jobs=4 must agree bit-for-bit, data and text."""
    if name in HEAVY and not _FULL:
        pytest.skip("heavy experiment; set REPRO_PARITY_FULL=1 to run")
    with cache_context(False):
        serial = run_experiment(name, quick=True, jobs=1)
        parallel = run_experiment(name, quick=True, jobs=4)
    assert serial.text == parallel.text
    assert_bit_identical(serial.data, parallel.data, path=name)


def test_cache_hit_equals_cold_run(tmp_path):
    cache = ResultCache(tmp_path / "c")
    with cache_context(cache):
        cold = run_experiment("mtu_scan", quick=True)
        assert cache.stores > 0 and cache.hits == 0
        warm = run_experiment("mtu_scan", quick=True)
    assert cache.hits > 0
    assert warm.text == cold.text
    assert_bit_identical(warm.data, cold.data, path="mtu_scan")


def test_cached_sweep_matches_uncached(tmp_path):
    study = CaseStudy(points=2)
    config = TuningConfig.fully_tuned(9000)
    with cache_context(False):
        plain = study.sweep(config, payloads=PAYLOADS)
    cache = ResultCache(tmp_path / "c")
    with cache_context(cache):
        cold = study.sweep(config, payloads=PAYLOADS)
        warm = study.sweep(config, payloads=PAYLOADS)
    assert cache.stores == len(PAYLOADS)
    assert cache.hits == len(PAYLOADS)
    assert_bit_identical(cold.points, plain.points, path="cold")
    assert_bit_identical(warm.points, plain.points, path="warm")


def test_cache_invalidated_by_config_change(tmp_path):
    """Changing any tuning field must miss; repeating the old one hits."""
    study = CaseStudy(points=2)
    cache = ResultCache(tmp_path / "c")
    with cache_context(cache):
        study.sweep(TuningConfig.fully_tuned(9000), payloads=PAYLOADS)
        assert (cache.hits, cache.stores) == (0, 2)
        study.sweep(TuningConfig.fully_tuned(9000).replace(mmrbc=512),
                    payloads=PAYLOADS)
        assert (cache.hits, cache.stores) == (0, 4)  # all fresh misses
        study.sweep(TuningConfig.fully_tuned(9000), payloads=PAYLOADS)
        assert (cache.hits, cache.stores) == (2, 4)  # original still hits


def test_cache_invalidated_by_topology_change(tmp_path):
    from repro.hw.presets import INTEL_E7505

    config = TuningConfig.fully_tuned(9000)
    cache = ResultCache(tmp_path / "c")
    with cache_context(cache):
        CaseStudy(points=2).sweep(config, payloads=PAYLOADS)
        CaseStudy(points=2, spec=INTEL_E7505).sweep(config,
                                                    payloads=PAYLOADS)
    assert cache.hits == 0
    assert cache.stores == 2 * len(PAYLOADS)


def test_cache_invalidated_by_code_fingerprint(tmp_path, monkeypatch):
    config = TuningConfig.fully_tuned(9000)
    cache = ResultCache(tmp_path / "c")
    study = CaseStudy(points=2)
    with cache_context(cache):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "rev-a")
        study.sweep(config, payloads=PAYLOADS)
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "rev-b")
        study.sweep(config, payloads=PAYLOADS)
        assert cache.hits == 0  # source changed: everything recomputed
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "rev-a")
        study.sweep(config, payloads=PAYLOADS)
        assert cache.hits == len(PAYLOADS)


def test_corrupt_cache_entry_recomputed_to_identical_result(tmp_path):
    config = TuningConfig.fully_tuned(9000)
    cache = ResultCache(tmp_path / "c")
    study = CaseStudy(points=2)
    with cache_context(cache):
        cold = study.sweep(config, payloads=PAYLOADS)
        for entry in cache.path.rglob("*.pkl"):
            entry.write_bytes(b"RPROCACHE1\ngarbage")
        recomputed = study.sweep(config, payloads=PAYLOADS)
    assert cache.errors == len(PAYLOADS)
    assert cache.hits == 0
    assert_bit_identical(recomputed.points, cold.points, path="recomputed")
