"""Unit tests for the persistent warm worker pool (repro.sim.pool)."""

import os

import pytest

from repro.cache import ResultCache, cache_context
from repro.sim import pool
from repro.sim.runner import SweepRunner


def _square(task):
    return task * task


def _pid_point(task):
    return os.getpid()


def _read_knob(task):
    return os.environ.get("REPRO_TEST_KNOB")


def _chaos_fingerprint(task):
    from repro.chaos.hooks import active_chaos
    session = active_chaos()
    return None if session is None else session.plan.fingerprint()


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a warm pool."""
    pool.shutdown_pool()
    yield
    pool.shutdown_pool()


class TestPersistence:
    def test_pool_survives_across_sweeps(self):
        runner = SweepRunner(2)
        before = pool.pool_stats()["pools_created"]
        runner.map(_square, list(range(8)))
        runner.map(_square, list(range(8, 16)))
        stats = pool.pool_stats()
        assert stats["pools_created"] == before + 1
        assert stats["pool_reuses"] >= 1

    def test_persist_off_spawns_per_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_PERSIST", "0")
        runner = SweepRunner(2)
        before = pool.pool_stats()["pools_created"]
        runner.map(_square, list(range(4)))
        runner.map(_square, list(range(4)))
        assert pool.pool_stats()["pools_created"] == before + 2

    def test_persistent_and_ephemeral_results_identical(self, monkeypatch):
        tasks = list(range(10))
        monkeypatch.setenv("REPRO_POOL_PERSIST", "1")
        persistent = SweepRunner(2).map(_square, tasks)
        pool.shutdown_pool()
        monkeypatch.setenv("REPRO_POOL_PERSIST", "0")
        ephemeral = SweepRunner(2).map(_square, tasks)
        assert persistent == ephemeral == [t * t for t in tasks]

    def test_workers_reused_not_respawned(self):
        runner = SweepRunner(2)
        first = set(runner.map(_pid_point, list(range(8))))
        second = set(runner.map(_pid_point, list(range(8))))
        assert first == second            # same worker processes
        assert os.getpid() not in first   # and not the parent

    def test_resize_recycles_pool(self):
        SweepRunner(2).map(_square, list(range(4)))
        before = pool.pool_stats()["pools_created"]
        SweepRunner(3).map(_square, list(range(6)))
        assert pool.pool_stats()["pools_created"] == before + 1

    def test_shutdown_is_idempotent(self):
        SweepRunner(2).map(_square, list(range(4)))
        pool.shutdown_pool()
        pool.shutdown_pool()
        assert SweepRunner(2).map(_square, [3, 4]) == [9, 16]


class TestBatching:
    def test_auto_chunk_shape(self):
        assert pool.resolve_chunk(8, 2) == 1
        assert pool.resolve_chunk(100, 2) == 13
        assert pool.resolve_chunk(10_000, 4) == 64  # capped

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_CHUNK", "5")
        assert pool.resolve_chunk(100, 2) == 5
        monkeypatch.setenv("REPRO_POOL_CHUNK", "garbage")
        assert pool.resolve_chunk(100, 2) == 13
        monkeypatch.setenv("REPRO_POOL_CHUNK", "-3")
        assert pool.resolve_chunk(100, 2) == 1

    def test_batched_vs_unbatched_identical(self, monkeypatch):
        tasks = list(range(23))
        monkeypatch.setenv("REPRO_POOL_CHUNK", "1")
        unbatched = SweepRunner(2).map(_square, tasks)
        monkeypatch.setenv("REPRO_POOL_CHUNK", "7")
        batched = SweepRunner(2).map(_square, tasks)
        assert unbatched == batched == [t * t for t in tasks]


class TestAmbientCapsule:
    def test_env_knob_changes_reach_warm_workers(self, monkeypatch):
        runner = SweepRunner(2)
        monkeypatch.setenv("REPRO_TEST_KNOB", "first")
        assert set(runner.map(_read_knob, [0, 1, 2, 3])) == {"first"}
        # the pool is warm now; a knob flip must still reach workers
        monkeypatch.setenv("REPRO_TEST_KNOB", "second")
        assert set(runner.map(_read_knob, [0, 1, 2, 3])) == {"second"}
        monkeypatch.delenv("REPRO_TEST_KNOB")
        assert set(runner.map(_read_knob, [0, 1, 2, 3])) == {None}

    def test_chaos_plan_reaches_warm_workers(self):
        from repro.chaos import FaultPlan, FaultSpec, chaos_session
        runner = SweepRunner(2)
        tasks = [0, 1, 2, 3]
        assert set(runner.map(_chaos_fingerprint, tasks)) == {None}
        plan = FaultPlan(name="pool-test", seed=3, faults=(
            FaultSpec(kind="loss_burst", target="link:*", start_s=1e-4,
                      duration_s=2e-4, probability=0.3),
        ))
        with chaos_session(plan):
            fps = set(runner.map(_chaos_fingerprint, tasks))
            assert fps == {plan.fingerprint()}
        # and deactivation propagates too
        assert set(runner.map(_chaos_fingerprint, tasks)) == {None}

    def test_fingerprint_shipped_to_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned-rev")
        runner = SweepRunner(2)
        values = runner.map(
            _read_fingerprint_env, [0, 1, 2, 3])
        assert set(values) == {"pinned-rev"}


def _read_fingerprint_env(task):
    return os.environ.get("REPRO_CODE_FINGERPRINT")


class TestSubmitCollect:
    def test_fully_warm_sweep_never_touches_pool(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = list(range(6))
        with cache_context(cache):
            cold = pool.dispatch(_square, tasks, jobs=2, cache_ns="sq")
            before = pool.pool_stats()["tasks_dispatched"]
            handle = pool.submit(_square, tasks, jobs=2, cache_ns="sq")
            assert handle.warm
            warm = handle.collect()
        assert cold == warm
        assert pool.pool_stats()["tasks_dispatched"] == before

    def test_single_miss_runs_inline(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = list(range(4))
        with cache_context(cache):
            pool.dispatch(_pid_point, tasks[:3], jobs=2, cache_ns="pid")
            before = pool.pool_stats()["points_inline"]
            results = pool.dispatch(_pid_point, tasks, jobs=2,
                                    cache_ns="pid")
        # the one uncached point ran in-process, not in a worker
        assert results[3] == os.getpid()
        assert pool.pool_stats()["points_inline"] == before + 1

    def test_misses_memoized_through_handle(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = list(range(5))
        with cache_context(cache):
            first = pool.dispatch(_square, tasks, jobs=2, cache_ns="sq")
        assert cache.stores == len(tasks)
        fresh = ResultCache(tmp_path / "c")
        with cache_context(fresh):
            second = pool.dispatch(_square, tasks, jobs=2, cache_ns="sq")
        assert fresh.hits == len(tasks)
        assert first == second

    def test_collect_is_idempotent(self):
        handle = pool.submit(_square, [1, 2, 3], jobs=2)
        assert handle.collect() == [1, 4, 9]
        assert handle.collect() == [1, 4, 9]
