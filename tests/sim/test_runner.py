"""Unit tests for the parallel sweep runner."""

import os

import pytest

from repro.cache import ResultCache, cache_context
from repro.errors import ConfigError
from repro.sim.runner import SweepRunner, job_context, point_seed, resolve_jobs


def _square(x):
    return x * x


def _pid_and_value(x):
    return os.getpid(), x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_auto_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs("many")

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        with job_context(2):
            assert resolve_jobs() == 2
        assert resolve_jobs() == 5

    def test_none_context_inherits(self):
        with job_context(3):
            with job_context(None):
                assert resolve_jobs() == 3


class TestPointSeed:
    def test_deterministic(self):
        assert point_seed(42, 7) == point_seed(42, 7)

    def test_distinct_across_index_and_base(self):
        seeds = {point_seed(base, i) for base in (0, 1) for i in range(100)}
        assert len(seeds) == 200

    def test_64_bit_range(self):
        s = point_seed(123, 456)
        assert 0 <= s < 2 ** 64


class TestSweepRunner:
    def test_serial_map_preserves_order(self):
        assert SweepRunner(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        tasks = list(range(20))
        assert SweepRunner(4).map(_square, tasks) == [x * x for x in tasks]

    def test_parallel_actually_uses_workers(self):
        results = SweepRunner(3).map(_pid_and_value, list(range(6)))
        assert [v for _, v in results] == list(range(6))
        assert all(pid != os.getpid() for pid, _ in results)

    def test_serial_stays_in_process(self):
        results = SweepRunner(1).map(_pid_and_value, [1, 2])
        assert all(pid == os.getpid() for pid, _ in results)

    def test_empty_tasks(self):
        assert SweepRunner(4).map(_square, []) == []

    def test_single_pending_task_runs_inline(self):
        # one task never pays pool startup, even at jobs>1
        (pid, _), = SweepRunner(4).map(_pid_and_value, [9])
        assert pid == os.getpid()

    def test_map_memoizes_through_active_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with cache_context(cache):
            first = SweepRunner(1).map(_square, [2, 3], cache_ns="t")
            second = SweepRunner(1).map(_square, [2, 3], cache_ns="t")
        assert first == second == [4, 9]
        assert cache.stores == 2
        assert cache.hits == 2

    def test_map_without_ns_skips_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with cache_context(cache):
            SweepRunner(1).map(_square, [2, 3])
        assert cache.stores == 0
