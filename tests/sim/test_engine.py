"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleInPastError, SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ScheduleInPastError):
        env.timeout(-1.0)


def test_run_until_time_stops_exactly():
    env = Environment()
    fired = []
    env.schedule_call(1.0, fired.append, "a")
    env.schedule_call(3.0, fired.append, "b")
    env.run(until=2.0)
    assert fired == ["a"]
    assert env.now == 2.0
    env.run(until=4.0)
    assert fired == ["a", "b"]


def test_run_until_past_raises():
    env = Environment()
    env.run(until=3.0)
    with pytest.raises(ScheduleInPastError):
        env.run(until=1.0)


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []
    for i in range(10):
        env.schedule_call(1.0, order.append, i)
    env.run()
    assert order == list(range(10))


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    env.run()
    assert got == [42]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_after_processed_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    env.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == ["x"]


def test_process_sequences_timeouts():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(1.0)
        times.append(env.now)
        yield env.timeout(2.0)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1.0, 3.0]


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "done"

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == ["done"]


def test_process_yielding_non_event_crashes_cleanly():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_process_exception_surfaces_when_unwaited():
    env = Environment()

    def boom():
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(boom())
    with pytest.raises(SimulationError, match="kaput"):
        env.run()


def test_process_exception_delivered_to_waiter():
    env = Environment()
    caught = []

    def boom():
        yield env.timeout(1.0)
        raise ValueError("kaput")

    def waiter():
        try:
            yield env.process(boom())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["kaput"]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, env.now))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        proc.interrupt("wakeup")

    env.process(interrupter())
    env.run()
    assert ("interrupted", "wakeup", 2.0) in log
    assert "slept" not in log


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        return 99

    p = env.process(proc())
    assert env.run(until=p) == 99
    assert env.now == 3.0


def test_run_until_event_never_fires():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_and_step():
    env = Environment()
    env.timeout(5.0)
    assert env.peek() == 5.0
    env.step()
    assert env.now == 5.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_cross_environment_event_rejected():
    env1 = Environment()
    env2 = Environment()
    foreign = env2.timeout(1.0)

    def proc():
        yield foreign

    env1.process(proc())
    with pytest.raises(SimulationError, match="another environment"):
        env1.run()


def test_nested_processes_three_deep():
    env = Environment()

    def leaf():
        yield env.timeout(1.0)
        return 1

    def middle():
        v = yield env.process(leaf())
        yield env.timeout(1.0)
        return v + 1

    def root():
        v = yield env.process(middle())
        return v + 1

    p = env.process(root())
    assert env.run(until=p) == 3
    assert env.now == 2.0


def test_run_until_failing_process_raises_original_exception():
    env = Environment()

    def boom():
        yield env.timeout(1.0)
        raise ValueError("payload too large")

    p = env.process(boom())
    with pytest.raises(ValueError, match="payload too large") as excinfo:
        env.run(until=p)
    # raised `from None`: the original error, not a chained wrapper
    assert excinfo.value.__suppress_context__


def test_run_until_failed_event_raises_original_exception():
    env = Environment()
    ev = env.event()
    env.schedule_call(1.0, ev.fail, RuntimeError("link down"))
    with pytest.raises(RuntimeError, match="link down") as excinfo:
        env.run(until=ev)
    assert excinfo.value.__suppress_context__
    assert env.now == 1.0


def test_unwaited_crashes_surface_in_fifo_order():
    env = Environment()

    def boom(delay, msg):
        yield env.timeout(delay)
        raise RuntimeError(msg)

    env.process(boom(1.0, "first"), name="p1")
    env.process(boom(2.0, "second"), name="p2")
    with pytest.raises(SimulationError, match="'p1' crashed"):
        env.run()
    with pytest.raises(SimulationError, match="'p2' crashed"):
        env.run()


def test_fast_timeout_recycles_processed_objects():
    env = Environment()
    seen = []

    def proc():
        for i in range(3):
            ev = env._fast_timeout(1.0, value=i)
            seen.append(id(ev))
            got = yield ev
            assert got == i

    p = env.process(proc())
    env.run(until=p)
    assert env.now == 3.0
    # The generator asks for its next timeout while the previous one is
    # still being dispatched (its recycle happens after callbacks), so
    # two objects alternate — and nothing new is allocated after that.
    assert seen[2] == seen[0]
    assert len(set(seen)) == 2


def test_fast_timeout_matches_timeout_semantics():
    env = Environment()
    log = []

    def a():
        yield env._fast_timeout(1.0)
        log.append(("a", env.now))

    def b():
        yield env.timeout(1.0)
        log.append(("b", env.now))

    env.process(a())
    env.process(b())
    env.run()
    assert log == [("a", 1.0), ("b", 1.0)]  # FIFO order preserved


def test_fast_timeout_negative_rejected():
    env = Environment()
    with pytest.raises(ScheduleInPastError):
        env._fast_timeout(-0.5)


class TestPeriodicCall:
    def test_fires_at_fixed_interval(self):
        env = Environment()
        at = []
        handle = env.every(0.5, lambda: at.append(env.now))
        env.run(until=2.25)
        assert at == [0.5, 1.0, 1.5, 2.0]
        assert handle.fires == 4

    def test_cancel_stops_future_firings(self):
        env = Environment()
        at = []

        def tick():
            at.append(env.now)
            if len(at) == 2:
                handle.cancel()

        handle = env.every(0.25, tick)
        env.run(until=5.0)
        assert at == [0.25, 0.5]
        assert handle.fires == 2

    def test_args_are_forwarded(self):
        env = Environment()
        seen = []
        env.every(1.0, seen.append, "x")
        env.run(until=2.5)
        assert seen == ["x", "x"]

    def test_rejects_non_positive_interval(self):
        env = Environment()
        with pytest.raises(ScheduleInPastError):
            env.every(0.0, lambda: None)
        with pytest.raises(ScheduleInPastError):
            env.every(-1.0, lambda: None)
