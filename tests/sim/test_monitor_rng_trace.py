"""Tests for monitors, RNG streams and the trace buffer."""

import pytest

from repro.errors import MeasurementError
from repro.sim import (
    CounterMonitor,
    Environment,
    Monitor,
    RngStreams,
    TraceBuffer,
    UtilizationMonitor,
)


class TestMonitor:
    def test_record_and_statistics(self):
        env = Environment()
        m = Monitor(env)
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            m.record(v, time=t)
        assert len(m) == 3
        assert m.mean() == 3.0
        assert m.min() == 1.0 and m.max() == 5.0
        assert m.std() == pytest.approx((8 / 3) ** 0.5)

    def test_time_average_piecewise_constant(self):
        env = Environment()
        m = Monitor(env)
        m.record(0.0, time=0.0)
        m.record(10.0, time=1.0)
        assert m.time_average(until=2.0) == pytest.approx(5.0)

    def test_rate(self):
        env = Environment()
        m = Monitor(env)
        m.record(100, time=0.0)
        m.record(100, time=1.0)
        m.record(100, time=2.0)
        assert m.rate() == pytest.approx(150.0)

    def test_empty_monitor_raises(self):
        m = Monitor(Environment())
        with pytest.raises(MeasurementError):
            m.mean()

    def test_arrays(self):
        env = Environment()
        m = Monitor(env)
        m.record(1.0, time=0.5)
        times, values = m.arrays()
        assert times.tolist() == [0.5]
        assert values.tolist() == [1.0]


class TestCounterMonitor:
    def test_rate_over_span(self):
        env = Environment()
        c = CounterMonitor(env)
        c.add(10)
        env.run(until=2.0)
        c.add(10)
        assert c.total == 20
        assert c.rate() == pytest.approx(10.0)

    def test_empty_counter_raises(self):
        c = CounterMonitor(Environment())
        with pytest.raises(MeasurementError):
            c.rate()


class TestUtilizationMonitor:
    def test_half_busy(self):
        env = Environment()
        u = UtilizationMonitor(env)
        u.enter()
        env.run(until=1.0)
        u.exit()
        env.run(until=2.0)
        assert u.utilization() == pytest.approx(0.5)

    def test_exit_without_enter_raises(self):
        u = UtilizationMonitor(Environment())
        with pytest.raises(MeasurementError):
            u.exit()


class TestRngStreams:
    def test_same_name_same_stream_across_instances(self):
        a = RngStreams(seed=7).get("loss").random(5)
        b = RngStreams(seed=7).get("loss").random(5)
        assert (a == b).all()

    def test_different_names_independent(self):
        s = RngStreams(seed=7)
        a = s.get("loss").random(5)
        b = s.get("jitter").random(5)
        assert not (a == b).all()

    def test_creation_order_does_not_matter(self):
        s1 = RngStreams(seed=3)
        s1.get("x")
        a = s1.get("y").random(3)
        s2 = RngStreams(seed=3)
        b = s2.get("y").random(3)
        assert (a == b).all()

    def test_reset(self):
        s = RngStreams(seed=1)
        a = s.get("x").random(3)
        s.reset()
        b = s.get("x").random(3)
        assert (a == b).all()


class TestTraceBuffer:
    def test_disabled_by_default(self):
        buf = TraceBuffer()
        buf.post(0.0, "a.b", 1)
        assert len(buf) == 0

    def test_enabled_records(self):
        buf = TraceBuffer(enabled=True)
        buf.post(1.0, "tcp.tx", 42, seq=100)
        assert len(buf) == 1
        ev = next(iter(buf))
        assert ev.point == "tcp.tx" and ev.subject == 42
        assert ev.detail["seq"] == 100

    def test_select_by_point_and_prefix(self):
        buf = TraceBuffer(enabled=True)
        buf.post(0.0, "tcp.tx.segment", 1)
        buf.post(0.0, "tcp.rx.deliver", 1)
        buf.post(0.0, "tcp.rx.ack", 2)
        assert len(buf.select(point="tcp.rx.*")) == 2
        assert len(buf.select(point="tcp.tx.segment")) == 1
        assert len(buf.select(subject=1)) == 2

    def test_ring_discards_oldest(self):
        buf = TraceBuffer(max_events=10, enabled=True)
        for i in range(25):
            buf.post(float(i), "p", i)
        assert len(buf) <= 10
        assert buf.dropped > 0
        # newest events survive
        assert any(e.subject == 24 for e in buf)

    def test_ring_drop_count_is_exact(self):
        buf = TraceBuffer(max_events=10, enabled=True)
        for i in range(25):
            buf.post(float(i), "p", i)
        assert len(buf) == 10
        assert buf.dropped == 15  # exactly the evicted events
        # survivors are precisely the newest ten, oldest-first
        assert [e.subject for e in buf] == list(range(15, 25))

    def test_clear_resets_drop_count(self):
        buf = TraceBuffer(max_events=2, enabled=True)
        for i in range(5):
            buf.post(0.0, "p", i)
        buf.clear()
        assert len(buf) == 0 and buf.dropped == 0

    def test_points_histogram(self):
        buf = TraceBuffer(enabled=True)
        for _ in range(3):
            buf.post(0.0, "a", None)
        buf.post(0.0, "b", None)
        assert buf.points() == {"a": 3, "b": 1}

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            TraceBuffer(max_events=0)
