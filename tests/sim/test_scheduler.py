"""Event-queue backend tests: calendar queue, knob, and mid-run swaps."""

import pytest

from repro.sim import Environment
from repro.sim.engine import SCHEDULER_ENV, CalendarQueue, SimulationError


class TestBackendSelection:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert Environment().scheduler == "heap"

    def test_constructor_selects_calendar(self):
        assert Environment(scheduler="calendar").scheduler == "calendar"

    def test_env_var_selects_calendar(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        assert Environment().scheduler == "calendar"

    def test_constructor_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        assert Environment(scheduler="heap").scheduler == "heap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Environment(scheduler="splay-tree")


class TestCalendarBasics:
    def test_drains_in_time_order(self):
        env = Environment(scheduler="calendar")
        fired = []
        delays = [5e-6, 1e-6, 3e-3, 0.0, 2e-6, 1e-6]
        for i, d in enumerate(delays):
            env.schedule_call(d, fired.append, (d, i))
        env.run()
        assert fired == sorted(fired)
        assert env.now == max(delays)

    def test_pending_count_tracks_queue(self):
        env = Environment(scheduler="calendar")
        for i in range(10):
            env.schedule_call(i * 1e-6, lambda: None)
        assert env.pending_count() == 10
        env.run()
        assert env.pending_count() == 0

    def test_resize_counter_on_dense_buckets(self):
        # 20k timers at 40ns spacing load ~250 events into each 10us
        # bucket — far past the occupancy band — across enough buckets
        # for the periodic occupancy check to run, so the width
        # heuristic must fire at least once.
        env = Environment(scheduler="calendar")
        for i in range(20_000):
            env.schedule_call(i * 4e-8, lambda: None)
        env.run()
        assert env.calendar_resizes >= 1

    def test_run_until_event_and_horizon(self):
        env = Environment(scheduler="calendar")
        fired = []
        env.schedule_call(1.0, fired.append, "late")
        env.schedule_call(0.25, fired.append, "early")
        env.run(until=0.5)
        assert fired == ["early"] and env.now == 0.5
        env.run()
        assert fired == ["early", "late"]


class TestMidRunSwap:
    @pytest.mark.parametrize("start,target",
                             [("heap", "calendar"), ("calendar", "heap")])
    def test_swap_does_not_redeliver_processed_events(self, start, target):
        """run(until=t) -> swap -> run() must fire every event exactly
        once: already-processed events must not migrate into the new
        backend, pending ones must all survive."""
        env = Environment(scheduler=start)
        fired = []
        times = [i * 0.1 for i in range(20)]
        for i, t in enumerate(times):
            env.schedule_call(t, fired.append, (t, i))
        env.run(until=0.95)  # processes the first 10, leaves 10 pending
        assert len(fired) == 10
        env.swap_scheduler(target)
        assert env.scheduler == target
        env.run(until=5.0)
        assert len(fired) == 20
        assert fired == [(t, i) for i, t in enumerate(times)]

    def test_swap_preserves_same_time_fifo(self):
        env = Environment(scheduler="heap")
        fired = []
        for i in range(12):
            env.schedule_call(1.0, fired.append, i)  # all same instant
        env.schedule_call(0.5, env.swap_scheduler, "calendar")
        env.run()
        assert fired == list(range(12))

    def test_swap_is_noop_for_same_backend(self):
        env = Environment(scheduler="heap")
        env.schedule_call(1.0, lambda: None)
        env.swap_scheduler("heap")
        assert env.scheduler == "heap" and env.pending_count() == 1

    def test_swap_rejects_unknown_backend(self):
        with pytest.raises(SimulationError):
            Environment().swap_scheduler("btree")

    def test_calendar_resizes_survive_swap_to_heap(self):
        env = Environment(scheduler="calendar")
        for i in range(10_000):
            env.schedule_call(i * 1e-9, lambda: None)
        env.run()
        resizes = env.calendar_resizes
        env.swap_scheduler("heap")
        assert env.calendar_resizes == resizes


class TestFallback:
    def test_exhausted_resize_budget_requests_fallback(self):
        q = CalendarQueue()
        q.resizes = CalendarQueue.MAX_RESIZES
        q._loads = CalendarQueue.CHECK_EVERY
        q._loaded = (CalendarQueue.CHECK_EVERY * CalendarQueue.TARGET_OCCUPANCY
                     * int(CalendarQueue.HIGH_FACTOR) * 2)
        q._maybe_resize()
        assert q.fallback_requested
