"""Unit tests for Resource and Store."""

import pytest

from repro.errors import ResourceError
from repro.sim import Environment, Resource, Store


def make_worker(env, res, log, name, hold):
    def worker():
        req = res.request()
        yield req
        log.append((name, "start", env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append((name, "end", env.now))
    return worker


def test_resource_serializes_single_capacity():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(make_worker(env, res, log, "a", 2.0)())
    env.process(make_worker(env, res, log, "b", 3.0)())
    env.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 5.0),
    ]


def test_resource_parallel_capacity_two():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []
    for name in ("a", "b", "c"):
        env.process(make_worker(env, res, log, name, 2.0)())
    env.run()
    starts = {name: t for name, kind, t in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 2.0}


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    for name in "abcde":
        env.process(worker(name))
    env.run()
    assert order == list("abcde")


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ResourceError):
        Resource(env, capacity=0)


def test_release_unheld_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad():
        req1 = res.request()
        yield req1
        res.release(req1)
        res.release(req1)  # double release

    env.process(bad())
    with pytest.raises(Exception):
        env.run()


def test_resource_utilization():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker():
        req = res.request()
        yield req
        yield env.timeout(3.0)
        res.release(req)

    env.process(worker())
    env.run()
    env.run(until=6.0)
    assert res.utilization() == pytest.approx(0.5)


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    env.process(holder())
    env.run(until=1.0)
    req = res.request()
    assert res.queue_length == 1
    res.cancel(req)
    assert res.queue_length == 0
    env.run()
    assert not granted


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for item, _ in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("x", 4.0)]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer():
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [("a", 0.0), ("b", 3.0)]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("x")
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_level_and_max_level():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    env.run()
    assert store.level == 5
    assert store.max_level == 5
    store.get()
    env.run()
    assert store.level == 4
    assert store.max_level == 5


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ResourceError):
        Store(env, capacity=0)
