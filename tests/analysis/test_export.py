"""Tests for CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    figure_to_csv,
    rows_to_csv,
    rows_to_json,
    sweep_to_rows,
)
from repro.analysis.figures import Figure, Series
from repro.errors import MeasurementError


def make_figure():
    fig = Figure(title="F", xlabel="payload", ylabel="gbps")
    fig.add(Series("a", [1, 2], [0.5, 1.0]))
    fig.add(Series("b", [1, 2], [0.7, 1.4]))
    return fig


def test_figure_to_csv_long_format():
    text = figure_to_csv(make_figure())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["series", "payload", "gbps"]
    assert len(rows) == 5
    assert rows[1] == ["a", "1", "0.5"]


def test_figure_to_csv_writes_file(tmp_path):
    path = tmp_path / "fig.csv"
    figure_to_csv(make_figure(), path)
    assert path.read_text().startswith("series,payload,gbps")


def test_empty_figure_rejected():
    with pytest.raises(MeasurementError):
        figure_to_csv(Figure("F", "x", "y"))


def test_rows_to_csv_and_column_selection():
    rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
    text = rows_to_csv(rows, columns=["b"])
    parsed = list(csv.reader(io.StringIO(text)))
    assert parsed[0] == ["b"]
    assert parsed[1] == ["2"]


def test_rows_to_json_roundtrip(tmp_path):
    rows = [{"x": 1.5, "label": "p"}]
    path = tmp_path / "rows.json"
    rows_to_json(rows, path)
    assert json.loads(path.read_text()) == [{"x": 1.5, "label": "p"}]


def test_empty_rows_rejected():
    with pytest.raises(MeasurementError):
        rows_to_csv([])
    with pytest.raises(MeasurementError):
        rows_to_json([])


def test_sweep_to_rows():
    from repro.config import TuningConfig
    from repro.core.casestudy import CaseStudy

    study = CaseStudy(write_count=128, points=4)
    curve = study.sweep(TuningConfig.oversized_windows(9000),
                        payloads=(4474, 8948))
    rows = sweep_to_rows(curve)
    assert len(rows) == 2
    assert rows[0]["payload"] == 4474
    assert rows[0]["goodput_gbps"] > 0
    # exports cleanly
    text = rows_to_csv(rows)
    assert "goodput_gbps" in text
