"""Tests for the per-segment stack profiler."""

import pytest

from repro.config import TuningConfig
from repro.analysis.stackprofile import StackProfiler


@pytest.fixture(scope="module")
def profiler():
    return StackProfiler()


def test_stage_costs_are_positive_and_complete(profiler):
    prof = profiler.profile(TuningConfig.fully_tuned(9000))
    assert len(prof.stages) == 14
    assert all(s.seconds >= 0 for s in prof.stages)
    names = {s.stage for s in prof.stages}
    assert "wire serialization" in names
    assert "data movement (FSB + copy)" in names


def test_receiver_cpu_is_the_tuned_bottleneck(profiler):
    prof = profiler.profile(TuningConfig.fully_tuned(8160))
    assert prof.bottleneck() == "receiver CPU"
    # data movement is the single biggest stage — §3.5.2's conclusion
    biggest = max(prof.stages, key=lambda s: s.seconds)
    assert biggest.stage == "data movement (FSB + copy)"


def test_stock_9000_bottleneck_is_the_bus(profiler):
    prof = profiler.profile(TuningConfig.stock(9000))
    assert prof.bottleneck() in ("sender bus", "receiver bus")


def test_implied_goodput_tracks_measured_peaks(profiler):
    """The profile's implied rate should land near the DES results."""
    cases = [
        (TuningConfig.fully_tuned(8160), 4.1),
        (TuningConfig.fully_tuned(9000), 3.9),
        (TuningConfig.stock(9000), 2.8),
    ]
    for cfg, expect in cases:
        implied = profiler.profile(cfg).predicted_goodput_bps() / 1e9
        assert implied == pytest.approx(expect, rel=0.10)


def test_os_bypass_strips_cpu_stages(profiler):
    prof = profiler.profile(TuningConfig.os_bypass_projection(9000))
    assert prof.total_us("receiver CPU") < 1.0
    assert prof.bottleneck() in ("sender bus", "receiver bus")


def test_header_split_moves_bottleneck_to_sender(profiler):
    prof = profiler.profile(TuningConfig.with_header_splitting(8160))
    assert prof.total_us("receiver CPU") < prof.total_us("sender CPU")


def test_rows_sorted_and_share_sums(profiler):
    prof = profiler.profile(TuningConfig.fully_tuned(9000))
    rows = prof.rows()
    costs = [r["us/segment"] for r in rows]
    assert costs == sorted(costs, reverse=True)


def test_compare_emits_row_per_config(profiler):
    rows = profiler.compare({
        "a": TuningConfig.stock(1500),
        "b": TuningConfig.fully_tuned(9000),
    })
    assert [r["config"] for r in rows] == ["a", "b"]
    assert all(r["implied Gb/s"] > 0 for r in rows)
