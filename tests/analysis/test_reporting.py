"""Tests for table/figure rendering and the experiment registry."""

import pytest

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.analysis.figures import Figure, Series
from repro.analysis.tables import format_kv, format_table
from repro.errors import MeasurementError


class TestTables:
    def test_basic_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty_table(self):
        assert "(empty)" in format_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_kv(self):
        out = format_kv({"alpha": 1.0, "beta": "x"}, title="K")
        assert out.startswith("K\n")
        assert "alpha" in out and "beta" in out

    def test_float_formatting(self):
        out = format_kv({"big": 123456.0, "small": 0.0001, "zero": 0.0})
        assert "1.23e+05" in out
        assert "0.0001" in out


class TestFigures:
    def test_series_validation(self):
        with pytest.raises(MeasurementError):
            Series("x", [1, 2], [1])
        with pytest.raises(MeasurementError):
            Series("x", [], [])

    def test_series_stats(self):
        s = Series("x", [1, 2, 3], [1.0, 5.0, 3.0])
        assert s.peak == 5.0
        assert s.mean == 3.0

    def test_figure_render(self):
        fig = Figure(title="F", xlabel="payload", ylabel="Gb/s")
        fig.add(Series("a", [0, 100, 200], [1.0, 2.0, 3.0]))
        fig.add(Series("b", [0, 100, 200], [0.5, 1.0, 1.5]))
        out = fig.render(width=40, height=8)
        assert out.startswith("F")
        assert "* = a" in out and "o = b" in out
        assert "payload" in out

    def test_empty_figure_raises(self):
        with pytest.raises(MeasurementError):
            Figure("F", "x", "y").render()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                         "tab1", "opt_steps", "multiflow", "pktgen",
                         "stream", "anecdotal", "comparison", "wan",
                         "validation", "stackprofile"):
            assert required in ids

    def test_unknown_experiment(self):
        with pytest.raises(MeasurementError):
            run_experiment("fig99")

    def test_fast_experiments_run(self):
        for name in ("fig8", "tab1", "stream"):
            out = run_experiment(name, quick=True)
            assert out.experiment == name
            assert len(out.text) > 50
            assert out.data
