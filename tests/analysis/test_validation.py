"""Tests for the DES-vs-analytic cross-validation."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    ValidationReport,
    cross_validate,
)
from repro.config import TuningConfig
from repro.errors import MeasurementError


@pytest.fixture(scope="module")
def report():
    return cross_validate(count=256)


def test_rank_agreement(report):
    """The engines must order the configurations identically — the
    property the fast full-resolution figures rely on."""
    assert report.rank_agreement()


def test_errors_bounded(report):
    assert report.mean_error() < 0.20
    assert report.max_error() < 0.50


def test_rows_complete(report):
    rows = report.rows()
    assert len(rows) == 5
    assert all(r["DES Gb/s"] > 0 and r["analytic Gb/s"] > 0 for r in rows)


def test_tuned_configs_agree_tightly(report):
    """Where the CPU capacity binds (tuned configs), the analytic model
    should track the DES within a few percent."""
    tuned = [p for p in report.points if "256kbuf" in p.label]
    assert tuned
    for p in tuned:
        assert p.abs_error < 0.08, p.label


def test_custom_config_subset():
    rep = cross_validate(configs=(TuningConfig.fully_tuned(9000),),
                         count=128)
    assert len(rep.points) == 1


def test_empty_report_raises():
    rep = ValidationReport(points=[])
    with pytest.raises(MeasurementError):
        rep.max_error()
    with pytest.raises(MeasurementError):
        rep.mean_error()


def test_point_derived_metrics():
    p = ValidationPoint(label="x", payload=1, des_bps=2e9,
                        analytic_bps=1e9)
    assert p.ratio == 0.5
    assert p.abs_error == 0.5
