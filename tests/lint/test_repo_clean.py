"""Meta-tests: the real tree is lint-clean, and the CI gate has teeth.

These are the tests that make reprolint load-bearing: the first keeps
``src/repro`` clean under the committed (empty) baseline forever, the
second proves the exact command CI runs fails when a determinism
violation is seeded into the tree.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys

from repro.lint import all_rules, lint_paths, load_baseline
from repro.lint.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "reprolint-baseline.json"


def test_rule_catalog_is_complete():
    rules = all_rules()
    assert [r.id for r in rules] == [f"RPR00{i}" for i in range(1, 9)]
    for r in rules:
        assert r.name and r.rationale, r.id


def test_committed_baseline_is_empty():
    # Policy (docs/LINTING.md): new findings are fixed or suppressed
    # inline with a rationale, never baselined away.
    baseline = load_baseline(BASELINE)
    assert baseline.fingerprints == set()


def test_src_repro_is_lint_clean():
    result = lint_paths([SRC_REPRO], baseline=load_baseline(BASELINE))
    assert result.files > 100  # the whole package, not a subtree
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"reprolint found new violations:\n{rendered}"


def test_seeded_violation_fails_the_gate(tmp_path):
    # Replicate the CI job against a copy of the real tree with one
    # planted wall-clock read; the copy is named `repro` so logical
    # paths (and therefore rule scoping) match the real package.
    tree = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, tree)
    seeded = tree / "sim" / "seeded_violation.py"
    seeded.write_text("import time\nSTAMP = time.time()\n")

    code = main([str(tree), "--baseline", str(BASELINE)])
    assert code == 1

    # Remove the seed: the same invocation goes green again.
    seeded.unlink()
    assert main([str(tree), "--baseline", str(BASELINE)]) == 0


def test_ci_entrypoint_subprocess():
    # The literal command the CI lint job runs, against the real tree.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src/repro",
         "--format", "json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["ok"] is True
