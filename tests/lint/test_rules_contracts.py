"""Per-rule fixtures for the contract rules (RPR004/005/006/007).

The contract tables (knob registry, telemetry catalog) are injected as
fixtures through ``lint_paths(env_registry=..., telemetry_catalog=...)``
so these tests pin rule behaviour independently of the live tables.
"""

from types import SimpleNamespace

import pytest

from tests.lint.support import (lint_file, lint_tree, rules_fired,
                                suppress_line, write_module)


def knob(affects_results=False, keyed_via="none"):
    return SimpleNamespace(affects_results=affects_results,
                           keyed_via=keyed_via)


REGISTRY = {
    "REPRO_TRAIN": knob(),
    "REPRO_HYBRID": knob(affects_results=True, keyed_via="ambient"),
}


# ---------------------------------------------------------------------------
# RPR004 env reads outside the knob registry
# ---------------------------------------------------------------------------

def test_rpr004_flags_unregistered_direct_read(tmp_path):
    result = lint_file(tmp_path, "sim/fixture.py", """
        import os
        value = os.environ.get("REPRO_MYSTERY")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR004"}
    assert "register it" in result.findings[0].message


def test_rpr004_flags_registered_but_direct_read(tmp_path):
    # Registered knobs must still be read through env_value()/env_raw().
    result = lint_file(tmp_path, "sim/fixture.py", """
        import os
        value = os.environ.get("REPRO_TRAIN")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR004"}
    assert "route it through" in result.findings[0].message


@pytest.mark.parametrize("read", [
    'os.getenv("REPRO_MYSTERY")',
    'os.environ["REPRO_MYSTERY"]',
])
def test_rpr004_covers_every_read_spelling(tmp_path, read):
    result = lint_file(tmp_path, "sim/fixture.py",
                       f"import os\nvalue = {read}\n",
                       select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR004"}, read


def test_rpr004_resolves_module_constants(tmp_path):
    result = lint_file(tmp_path, "net/fixture.py", """
        import os
        MY_ENV = "REPRO_MYSTERY"
        value = os.environ.get(MY_ENV)
        """, select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR004"}


def test_rpr004_flags_unregistered_registry_accessor(tmp_path):
    result = lint_file(tmp_path, "sim/fixture.py", """
        from repro.core.knobs import env_value
        value = env_value("REPRO_MYSTERY")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR004"}
    assert "never registered" in result.findings[0].message


def test_rpr004_accepts_registered_accessor_read(tmp_path):
    result = lint_file(tmp_path, "sim/fixture.py", """
        from repro.core.knobs import env_value
        value = env_value("REPRO_TRAIN")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert result.ok, result.findings


def test_rpr004_knobs_module_is_the_sanctioned_reader(tmp_path):
    # os.environ reads of *registered* names are legal only in
    # core/knobs.py; an unregistered read there is still flagged.
    clean = lint_file(tmp_path, "core/knobs.py", """
        import os
        raw = os.environ.get("REPRO_TRAIN")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert clean.ok, clean.findings
    dirty = lint_file(tmp_path, "core/knobs2.py", "", select=["RPR004"],
                      env_registry=REGISTRY)
    assert dirty.ok
    missing = lint_file(tmp_path, "core/knobs.py", """
        import os
        raw = os.environ.get("REPRO_MYSTERY")
        """, select=["RPR004"], env_registry=REGISTRY)
    assert rules_fired(missing) == {"RPR004"}
    assert "missing from ENV_KNOBS" in missing.findings[0].message


def test_rpr004_ignores_non_repro_names_and_writes(tmp_path):
    result = lint_file(tmp_path, "sim/fixture.py", """
        import os
        home = os.environ.get("HOME")
        os.environ["REPRO_CODE_FINGERPRINT"] = "abc"
        """, select=["RPR004"], env_registry=REGISTRY)
    assert result.ok, result.findings


def test_rpr004_suppression(tmp_path):
    source = suppress_line(
        'import os\nvalue = os.environ.get("REPRO_MYSTERY")\n',
        "REPRO_MYSTERY", "RPR004", "bootstrap read")
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR004"], env_registry=REGISTRY)
    assert result.ok, result.findings


# ---------------------------------------------------------------------------
# RPR005 telemetry catalog
# ---------------------------------------------------------------------------

CATALOG = {"tcp.cwnd": object(), "nic.tx": object()}


def test_rpr005_flags_off_catalog_trace_post(tmp_path):
    result = lint_file(tmp_path, "tcp/fixture.py", """
        def instrument(trace, now):
            trace.post(now, "tcp.bogus", {})
        """, select=["RPR005"], telemetry_catalog=CATALOG)
    assert rules_fired(result) == {"RPR005"}
    assert "tcp.bogus" in result.findings[0].message


def test_rpr005_accepts_cataloged_trace_post(tmp_path):
    result = lint_file(tmp_path, "tcp/fixture.py", """
        def instrument(trace, now):
            trace.post(now, "tcp.cwnd", {})
        """, select=["RPR005"], telemetry_catalog=CATALOG)
    assert result.ok, result.findings


def test_rpr005_metric_names_are_free_form(tmp_path):
    result = lint_file(tmp_path, "cache/fixture.py", """
        def account(metrics):
            metrics.counter("cache.anything").inc()
            metrics.gauge("cache.bytes").set(0)
        """, select=["RPR005"], telemetry_catalog=CATALOG)
    assert result.ok, result.findings


def test_rpr005_dead_point_needs_package_coverage(tmp_path):
    write_module(tmp_path, "telemetry/points.py",
                 '"""Catalog."""\n_POINTS = ("tcp.cwnd", "nic.tx")\n')
    write_module(tmp_path, "tcp/emit.py", """
        def instrument(trace, now):
            trace.post(now, "tcp.cwnd", {})
        """)
    # Whole-package scan: "nic.tx" is declared but never emitted.
    covered = lint_tree(tmp_path, select=["RPR005"],
                        telemetry_catalog=CATALOG)
    assert rules_fired(covered) == {"RPR005"}
    [finding] = covered.findings
    assert "nic.tx" in finding.message
    assert finding.logical == "telemetry/points.py"
    assert "nic.tx" in finding.line_text  # anchored at the declaration
    # Partial scan (one file): dead-point analysis must stay silent —
    # the emitter may simply live outside the scanned subtree.
    partial = lint_file(tmp_path, "telemetry/points2.py", "x = 1\n",
                        select=["RPR005"], telemetry_catalog=CATALOG)
    assert partial.ok


def test_rpr005_suppression_on_trace_post(tmp_path):
    source = suppress_line(
        'def f(trace, now):\n    trace.post(now, "tcp.bogus", {})\n',
        "tcp.bogus", "RPR005", "experimental point")
    result = lint_file(tmp_path, "tcp/fixture.py", source,
                       select=["RPR005"], telemetry_catalog=CATALOG)
    assert result.ok, result.findings


# ---------------------------------------------------------------------------
# RPR006 cache-key completeness
# ---------------------------------------------------------------------------

KNOBS_FIXTURE = """
    ENV_KNOBS = {}
    NAMES = ("REPRO_TRAIN", "REPRO_HYBRID", "REPRO_EVIL")
    """

KEYS_WITH_AMBIENT = """
    def ambient_key_material():
        return {}

    def stable_key(*parts):
        ambient = ambient_key_material()
        return str((parts, ambient))
    """

KEYS_WITHOUT_AMBIENT = """
    def stable_key(*parts):
        return str(parts)
    """


def test_rpr006_flags_result_affecting_knob_not_keyed(tmp_path):
    write_module(tmp_path, "core/knobs.py", KNOBS_FIXTURE)
    write_module(tmp_path, "cache/keys.py", KEYS_WITH_AMBIENT)
    registry = dict(REGISTRY)
    registry["REPRO_EVIL"] = knob(affects_results=True, keyed_via="none")
    result = lint_tree(tmp_path, select=["RPR006"], env_registry=registry)
    assert rules_fired(result) == {"RPR006"}
    [finding] = result.findings
    assert "REPRO_EVIL" in finding.message
    assert "alias" in finding.message
    assert "REPRO_EVIL" in finding.line_text  # anchored at the declaration


def test_rpr006_flags_result_neutral_knob_that_is_keyed(tmp_path):
    write_module(tmp_path, "core/knobs.py", KNOBS_FIXTURE)
    write_module(tmp_path, "cache/keys.py", KEYS_WITH_AMBIENT)
    registry = dict(REGISTRY)
    registry["REPRO_EVIL"] = knob(affects_results=False,
                                  keyed_via="ambient")
    result = lint_tree(tmp_path, select=["RPR006"], env_registry=registry)
    assert rules_fired(result) == {"RPR006"}
    assert "fracture" in result.findings[0].message


def test_rpr006_flags_stable_key_that_ignores_ambient_knobs(tmp_path):
    write_module(tmp_path, "core/knobs.py", KNOBS_FIXTURE)
    write_module(tmp_path, "cache/keys.py", KEYS_WITHOUT_AMBIENT)
    result = lint_tree(tmp_path, select=["RPR006"], env_registry=REGISTRY)
    assert rules_fired(result) == {"RPR006"}
    [finding] = result.findings
    assert finding.logical == "cache/keys.py"
    assert "ambient_key_material" in finding.message


def test_rpr006_clean_when_contract_holds(tmp_path):
    write_module(tmp_path, "core/knobs.py", KNOBS_FIXTURE)
    write_module(tmp_path, "cache/keys.py", KEYS_WITH_AMBIENT)
    result = lint_tree(tmp_path, select=["RPR006"], env_registry=REGISTRY)
    assert result.ok, result.findings


def test_rpr006_silent_without_contract_modules(tmp_path):
    # A scan that never saw knobs.py/keys.py has nothing to anchor to.
    result = lint_file(tmp_path, "sim/fixture.py", "x = 1\n",
                       select=["RPR006"], env_registry=REGISTRY)
    assert result.ok


def test_rpr006_suppression_at_declaration(tmp_path):
    source = suppress_line(KNOBS_FIXTURE, "REPRO_EVIL", "RPR006",
                           "keyed out-of-band")
    write_module(tmp_path, "core/knobs.py", source)
    write_module(tmp_path, "cache/keys.py", KEYS_WITH_AMBIENT)
    registry = dict(REGISTRY)
    registry["REPRO_EVIL"] = knob(affects_results=True, keyed_via="none")
    result = lint_tree(tmp_path, select=["RPR006"], env_registry=registry)
    assert result.ok, result.findings


# ---------------------------------------------------------------------------
# RPR007 broad excepts on engine paths
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("handler", ["except Exception:",
                                     "except BaseException:",
                                     "except:",
                                     "except (ValueError, Exception):"])
def test_rpr007_fires(tmp_path, handler):
    source = f"try:\n    pass\n{handler}\n    pass\n"
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR007"])
    assert rules_fired(result) == {"RPR007"}, handler


@pytest.mark.parametrize("handler", ["except ValueError:",
                                     "except (KeyError, OSError):"])
def test_rpr007_stays_quiet_on_specific_handlers(tmp_path, handler):
    source = f"try:\n    pass\n{handler}\n    pass\n"
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR007"])
    assert result.ok, result.findings


def test_rpr007_scoped_to_engine_paths(tmp_path):
    source = "try:\n    pass\nexcept Exception:\n    pass\n"
    result = lint_file(tmp_path, "analysis/fixture.py", source,
                       select=["RPR007"])
    assert result.ok


def test_rpr007_suppression(tmp_path):
    source = suppress_line(
        "try:\n    pass\nexcept Exception:\n    pass\n",
        "except Exception:", "RPR007", "unpickling foreign bytes")
    result = lint_file(tmp_path, "cache/fixture.py", source,
                       select=["RPR007"])
    assert result.ok
    assert result.suppressed == 1
