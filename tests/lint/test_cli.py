"""CLI behaviour: exit codes, formats, baseline workflow, rule listing."""

import json

import pytest

from repro.lint.cli import main
from tests.lint.support import write_module

BAD_SIM = "import time\nstamp = time.time()\n"


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    # The CLI resolves the default baseline path against the cwd; run
    # from an empty directory so the repository's baseline stays out.
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(in_tmp, capsys):
    write_module(in_tmp, "sim/fine.py", "x = 1\n")
    assert main([str(in_tmp / "repro")]) == 0
    assert "reprolint: clean" in capsys.readouterr().out


def test_violation_exits_one(in_tmp, capsys):
    write_module(in_tmp, "sim/bad.py", BAD_SIM)
    assert main([str(in_tmp / "repro")]) == 1
    out = capsys.readouterr().out
    assert "reprolint: FAIL" in out
    assert "RPR002" in out and "sim/bad.py" in out


def test_json_format(in_tmp, capsys):
    write_module(in_tmp, "sim/bad.py", BAD_SIM)
    assert main([str(in_tmp / "repro"), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["files"] == 1
    assert [f["rule"] for f in report["findings"]] == ["RPR002"]


def test_select_restricts_rules(in_tmp):
    write_module(in_tmp, "sim/bad.py", BAD_SIM)
    assert main([str(in_tmp / "repro"), "--select", "RPR001"]) == 0
    assert main([str(in_tmp / "repro"), "--select", "RPR002"]) == 1


def test_unknown_rule_id_is_a_usage_error(in_tmp, capsys):
    write_module(in_tmp, "sim/fine.py", "x = 1\n")
    assert main([str(in_tmp / "repro"), "--select", "RPR999"]) == 2
    assert "RPR999" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(in_tmp, capsys):
    assert main([str(in_tmp / "nope")]) == 2
    assert "nope" in capsys.readouterr().err


def test_write_baseline_then_gate(in_tmp, capsys):
    write_module(in_tmp, "sim/legacy.py", BAD_SIM)
    target = str(in_tmp / "repro")
    # Accept the legacy finding...
    assert main([target, "--write-baseline"]) == 0
    assert (in_tmp / "reprolint-baseline.json").is_file()
    # ...the default gate now passes (baseline picked up from cwd)...
    capsys.readouterr()
    assert main([target]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...but --no-baseline still shows the debt...
    assert main([target, "--no-baseline"]) == 1
    # ...and a *new* violation fails even with the baseline.
    write_module(in_tmp, "sim/fresh.py", BAD_SIM)
    assert main([target]) == 1


def test_corrupt_baseline_is_an_error_not_a_pass(in_tmp, capsys):
    write_module(in_tmp, "sim/fine.py", "x = 1\n")
    (in_tmp / "reprolint-baseline.json").write_text("{}")
    assert main([str(in_tmp / "repro")]) == 2
    assert "baseline" in capsys.readouterr().err


def test_list_rules(in_tmp, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in [f"RPR00{i}" for i in range(1, 9)]:
        assert rule_id in out
