"""Engine behaviour: suppressions, logical paths, baselines, selection."""

import json

import pytest

from repro.lint import lint_paths, load_baseline, write_baseline
from repro.lint.base import parse_suppressions
from tests.lint.support import lint_file, write_module

BAD_SIM = "import time\nstamp = time.time()\n"


# ---------------------------------------------------------------------------
# Suppression comment parsing
# ---------------------------------------------------------------------------

def test_parse_suppressions_forms():
    lines = [
        "x = 1  # reprolint: disable=RPR001",
        "y = 2  # reprolint: disable=RPR001,RPR002 -- rationale here",
        "z = 3  # reprolint: disable",
        "plain = 4  # a reprolint mention that is not a directive",
        "untouched = 5",
    ]
    out = parse_suppressions(lines)
    assert out[1] == {"RPR001"}
    assert out[2] == {"RPR001", "RPR002"}
    assert out[3] is None          # blanket: every rule on that line
    assert 4 not in out
    assert 5 not in out


def test_blanket_suppression_covers_any_rule(tmp_path):
    source = "import time\nstamp = time.time()  # reprolint: disable\n"
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR002"])
    assert result.ok
    assert result.suppressed == 1


def test_suppression_only_applies_to_its_line(tmp_path):
    source = ("import time\n"
              "a = time.time()  # reprolint: disable=RPR002\n"
              "b = time.time()\n")
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR002"])
    assert len(result.findings) == 1
    assert result.findings[0].line == 3
    assert result.suppressed == 1


def test_suppressing_the_wrong_rule_does_nothing(tmp_path):
    source = "import time\nstamp = time.time()  # reprolint: disable=RPR001\n"
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR002"])
    assert not result.ok


# ---------------------------------------------------------------------------
# Logical paths and file collection
# ---------------------------------------------------------------------------

def test_path_scoping_needs_a_repro_package_dir(tmp_path):
    # Outside any `repro` directory there is no logical path, so
    # path-scoped rules (RPR002) do not apply...
    loose = tmp_path / "plain" / "sim"
    loose.mkdir(parents=True)
    bad = loose / "x.py"
    bad.write_text(BAD_SIM)
    assert lint_paths([bad], select=["RPR002"]).ok
    # ...but unscoped rules still do.
    bad.write_text("import random\nx = random.random()\n")
    assert not lint_paths([bad], select=["RPR001"]).ok


def test_innermost_repro_dir_anchors_the_logical_path(tmp_path):
    nested = tmp_path / "repro" / "vendored" / "repro" / "sim"
    nested.mkdir(parents=True)
    bad = nested / "x.py"
    bad.write_text(BAD_SIM)
    result = lint_paths([bad], select=["RPR002"])
    assert result.findings[0].logical == "sim/x.py"


def test_collect_skips_caches_hidden_and_duplicates(tmp_path):
    write_module(tmp_path, "sim/x.py", "x = 1\n")
    write_module(tmp_path, "__pycache__/junk.py", "x = 1\n")
    write_module(tmp_path, ".hidden/junk.py", "x = 1\n")
    root = tmp_path / "repro"
    result = lint_paths([root, root / "sim" / "x.py"])  # overlapping paths
    assert result.files == 1


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        lint_paths([tmp_path / "nope"])


def test_syntax_error_becomes_rpr000(tmp_path):
    result = lint_file(tmp_path, "sim/broken.py", "def (:\n")
    assert not result.ok
    assert result.findings[0].rule == "RPR000"
    assert "does not parse" in result.findings[0].message


def test_unknown_select_raises(tmp_path):
    write_module(tmp_path, "sim/x.py", "x = 1\n")
    with pytest.raises(ValueError, match="RPR999"):
        lint_paths([tmp_path / "repro"], select=["RPR999"])


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    first = lint_paths([path], select=["RPR002"])
    assert len(first.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    baseline = load_baseline(baseline_path)

    second = lint_paths([path], select=["RPR002"], baseline=baseline)
    assert second.ok
    assert len(second.baselined) == 1


def test_baseline_survives_code_motion(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path,
                   lint_paths([path], select=["RPR002"]).findings)
    # Shift the violation down: fingerprints hash content, not line
    # numbers, so the baseline still absorbs it.
    path.write_text("import time\n\n\n# moved\nstamp = time.time()\n")
    result = lint_paths([path], select=["RPR002"],
                        baseline=load_baseline(baseline_path))
    assert result.ok
    assert len(result.baselined) == 1


def test_baseline_does_not_absorb_new_duplicates(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path,
                   lint_paths([path], select=["RPR002"]).findings)
    # A second, textually identical violation is a *new* occurrence.
    path.write_text(BAD_SIM + "stamp = time.time()\n")
    result = lint_paths([path], select=["RPR002"],
                        baseline=load_baseline(baseline_path))
    assert len(result.baselined) == 1
    assert len(result.findings) == 1


def test_baseline_is_path_specific(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path,
                   lint_paths([path], select=["RPR002"]).findings)
    other = write_module(tmp_path, "sim/fresh.py", BAD_SIM)
    result = lint_paths([other], select=["RPR002"],
                        baseline=load_baseline(baseline_path))
    assert not result.ok  # same line text, different module


@pytest.mark.parametrize("payload", [
    "[]",
    '{"format": "something-else", "findings": []}',
    '{"format": "reprolint-baseline-v1", "findings": [{"rule": "RPR001"}]}',
])
def test_malformed_baseline_raises(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(ValueError):
        load_baseline(path)


def test_baseline_entries_keep_audit_context(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path,
                   lint_paths([path], select=["RPR002"]).findings)
    data = json.loads(baseline_path.read_text())
    [entry] = data["findings"]
    assert entry["rule"] == "RPR002"
    assert "fingerprint" in entry and "message" in entry
    assert "line" not in entry  # line numbers drift; fingerprints don't


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

def test_finding_render_and_json(tmp_path):
    path = write_module(tmp_path, "sim/legacy.py", BAD_SIM)
    [finding] = lint_paths([path], select=["RPR002"]).findings
    rendered = finding.render()
    assert rendered.startswith(f"{path}:2:")
    assert "RPR002" in rendered and "wall-clock" in rendered
    payload = finding.to_json()
    assert payload["rule"] == "RPR002"
    assert payload["logical"] == "sim/legacy.py"
    assert payload["line"] == 2
