"""Shared fixtures for the reprolint tests.

Fixture modules are written under ``<tmp>/repro/<logical>`` so the
engine's logical-path anchoring scopes them exactly like files in the
real ``src/repro`` tree (``sim/x.py`` is "simulation code" in both).
"""

import pathlib
import textwrap

from repro.lint import lint_paths


def write_module(root: pathlib.Path, logical: str, source: str) \
        -> pathlib.Path:
    """Write ``source`` at ``<root>/repro/<logical>`` and return the path."""
    path = root / "repro" / logical
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint_file(root: pathlib.Path, logical: str, source: str, **kwargs):
    """Lint one fixture module (module-rule scope; no package coverage)."""
    path = write_module(root, logical, source)
    return lint_paths([path], **kwargs)


def lint_tree(root: pathlib.Path, **kwargs):
    """Lint the whole ``<root>/repro`` fixture tree (package coverage)."""
    return lint_paths([root / "repro"], **kwargs)


def rules_fired(result):
    """The set of rule ids among the actionable findings."""
    return {f.rule for f in result.findings}


def suppress_line(source: str, fragment: str, rule_id: str,
                  rationale: str = "test") -> str:
    """Append an inline suppression to the (single) line containing
    ``fragment``."""
    lines = source.split("\n")
    hits = [i for i, line in enumerate(lines) if fragment in line]
    assert len(hits) == 1, f"fragment {fragment!r} matched {len(hits)} lines"
    lines[hits[0]] += f"  # reprolint: disable={rule_id} -- {rationale}"
    return "\n".join(lines)
