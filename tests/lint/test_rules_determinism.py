"""Per-rule fixtures for the determinism rules (RPR001/002/003/008).

Every rule gets: a positive fixture proving it fires, negative fixtures
proving the obvious safe spellings stay clean, and a suppression
fixture proving the inline escape hatch works on the flagged line.
"""

import pytest

from tests.lint.support import (lint_file, rules_fired, suppress_line)

# ---------------------------------------------------------------------------
# RPR001 unseeded randomness
# ---------------------------------------------------------------------------

RPR001_POSITIVES = {
    "module-call": """
        import random
        x = random.random()
        """,
    "from-import": """
        from random import choice
        pick = choice([1, 2, 3])
        """,
    "aliased": """
        import random as rnd
        n = rnd.randint(0, 5)
        """,
    "unseeded-instance": """
        import random
        rng = random.Random()
        """,
    "system-random": """
        import random
        rng = random.SystemRandom()
        """,
    "numpy-global": """
        import numpy as np
        a = np.random.rand(3)
        """,
    "numpy-unseeded-rng": """
        import numpy
        g = numpy.random.default_rng()
        """,
}

RPR001_NEGATIVES = {
    "seeded-instance": """
        import random
        rng = random.Random(42)
        x = rng.random()
        """,
    "seeded-numpy": """
        import numpy as np
        g = np.random.default_rng(7)
        a = g.normal(size=3)
        """,
    "unrelated-random-attr": """
        import random
        state = random.getstate
        """,
}


@pytest.mark.parametrize("name", sorted(RPR001_POSITIVES))
def test_rpr001_fires(tmp_path, name):
    result = lint_file(tmp_path, "analysis/fixture.py",
                       RPR001_POSITIVES[name], select=["RPR001"])
    assert rules_fired(result) == {"RPR001"}, name


@pytest.mark.parametrize("name", sorted(RPR001_NEGATIVES))
def test_rpr001_stays_quiet(tmp_path, name):
    result = lint_file(tmp_path, "analysis/fixture.py",
                       RPR001_NEGATIVES[name], select=["RPR001"])
    assert result.ok, result.findings


def test_rpr001_applies_everywhere_in_package(tmp_path):
    # No path scoping: tooling randomness is as non-reproducible as
    # simulation randomness.
    result = lint_file(tmp_path, "tools/fixture.py",
                       RPR001_POSITIVES["module-call"], select=["RPR001"])
    assert rules_fired(result) == {"RPR001"}


def test_rpr001_suppression(tmp_path):
    source = suppress_line(RPR001_POSITIVES["module-call"],
                           "random.random()", "RPR001")
    result = lint_file(tmp_path, "analysis/fixture.py", source,
                       select=["RPR001"])
    assert result.ok
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RPR002 wall-clock reads in simulation code
# ---------------------------------------------------------------------------

RPR002_SOURCE = """
    import time
    def measure():
        return time.time()
    """


@pytest.mark.parametrize("snippet,fragment", [
    ("import time\nt = time.time()\n", "time.time()"),
    ("from time import perf_counter\nt = perf_counter()\n",
     "perf_counter()"),
    ("import time as clock\nt = clock.monotonic()\n", "monotonic"),
    ("import datetime\nnow = datetime.datetime.now()\n", "now()"),
    ("from datetime import datetime\nnow = datetime.utcnow()\n",
     "utcnow"),
])
def test_rpr002_fires_in_sim_paths(tmp_path, snippet, fragment):
    result = lint_file(tmp_path, "sim/fixture.py", snippet,
                       select=["RPR002"])
    assert rules_fired(result) == {"RPR002"}, snippet
    assert fragment in result.findings[0].line_text


@pytest.mark.parametrize("logical", ["sim/a.py", "tcp/a.py", "net/a.py",
                                     "hw/a.py", "oskernel/a.py",
                                     "chaos/a.py"])
def test_rpr002_covers_every_sim_package(tmp_path, logical):
    result = lint_file(tmp_path, logical, RPR002_SOURCE, select=["RPR002"])
    assert rules_fired(result) == {"RPR002"}


@pytest.mark.parametrize("logical", ["analysis/report.py",
                                     "telemetry/export.py", "cli.py"])
def test_rpr002_ignores_reporting_layers(tmp_path, logical):
    result = lint_file(tmp_path, logical, RPR002_SOURCE, select=["RPR002"])
    assert result.ok, result.findings


def test_rpr002_ignores_simulated_clock(tmp_path):
    result = lint_file(tmp_path, "sim/fixture.py", """
        def wait(env):
            return env.now + 1.0
        """, select=["RPR002"])
    assert result.ok


def test_rpr002_suppression(tmp_path):
    source = suppress_line(RPR002_SOURCE, "time.time()", "RPR002",
                           "reporting only")
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR002"])
    assert result.ok
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RPR003 iteration over sets
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "for x in {1, 2, 3}:\n    print(x)\n",
    "s = set([3, 1, 2])\nfor x in s:\n    print(x)\n",
    "s = frozenset([1, 2])\nout = [y for y in s]\n",
    "out = sorted(x for x in set([2, 1]))\n",  # genexp arg still iterates
])
def test_rpr003_fires(tmp_path, snippet):
    result = lint_file(tmp_path, "core/fixture.py", snippet,
                       select=["RPR003"])
    assert rules_fired(result) == {"RPR003"}, snippet


@pytest.mark.parametrize("snippet", [
    "s = set([3, 1, 2])\nfor x in sorted(s):\n    print(x)\n",
    "for x in [1, 2, 3]:\n    print(x)\n",
    "d = {1: 'a'}\nfor k in d:\n    print(k)\n",
])
def test_rpr003_stays_quiet(tmp_path, snippet):
    result = lint_file(tmp_path, "core/fixture.py", snippet,
                       select=["RPR003"])
    assert result.ok, result.findings


def test_rpr003_is_a_warning(tmp_path):
    result = lint_file(tmp_path, "core/fixture.py",
                       "for x in {1, 2}:\n    print(x)\n",
                       select=["RPR003"])
    assert str(result.findings[0].severity) == "warning"


def test_rpr003_suppression(tmp_path):
    source = suppress_line("for x in {1, 2}:\n    print(x)\n",
                           "for x in", "RPR003", "singleton set")
    result = lint_file(tmp_path, "core/fixture.py", source,
                       select=["RPR003"])
    assert result.ok
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RPR008 float equality in sim code
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "def f(delay):\n    return delay == 0.5\n",
    "def f(x):\n    return 1.5 != x\n",
    "def f(x):\n    return x == -2.0\n",
    "def f(x):\n    return x == 1.0 / 3.0\n",
])
def test_rpr008_fires_in_sim_paths(tmp_path, snippet):
    result = lint_file(tmp_path, "tcp/fixture.py", snippet,
                       select=["RPR008"])
    assert rules_fired(result) == {"RPR008"}, snippet


@pytest.mark.parametrize("snippet", [
    "def f(x):\n    return x == 0\n",          # int literal
    "def f(x):\n    return x < 0.5\n",         # ordering is fine
    "import math\ndef f(x):\n    return math.isclose(x, 0.5)\n",
])
def test_rpr008_stays_quiet(tmp_path, snippet):
    result = lint_file(tmp_path, "tcp/fixture.py", snippet,
                       select=["RPR008"])
    assert result.ok, result.findings


def test_rpr008_scoped_to_sim_paths(tmp_path):
    result = lint_file(tmp_path, "analysis/fixture.py",
                       "def f(x):\n    return x == 0.5\n",
                       select=["RPR008"])
    assert result.ok


def test_rpr008_suppression(tmp_path):
    source = suppress_line("def f(delay):\n    return delay == 0.0\n",
                           "== 0.0", "RPR008", "exact-zero sentinel")
    result = lint_file(tmp_path, "sim/fixture.py", source,
                       select=["RPR008"])
    assert result.ok
    assert result.suppressed == 1
