"""API-surface quality gates.

* every public module, class, function and method in the package
  carries a docstring (deliverable: documented public API);
* every name in every ``__all__`` actually resolves;
* the top-level package exports what the README advertises.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _, name, _ in pkgutil.walk_packages(repro.__path__,
                                                 prefix="repro.")
    if not name.startswith("repro.__"))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def _public_members():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{module_name}.{name}", obj


@pytest.mark.parametrize("qualname,obj", list(_public_members()))
def test_public_object_documented(qualname, obj):
    assert obj.__doc__ and obj.__doc__.strip(), qualname
    if inspect.isclass(obj):
        for name, member in vars(obj).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            assert member.__doc__ and member.__doc__.strip(), \
                f"{qualname}.{name}"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)
    # the README's quickstart names
    for name in ("Environment", "TuningConfig", "BackToBack",
                 "TcpConnection", "run_experiment", "connect"):
        assert name in repro.__all__
