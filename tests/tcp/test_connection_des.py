"""Discrete-event TCP endpoint tests: delivery, ordering, recovery."""

import pytest

from repro.config import TuningConfig
from repro.errors import ProtocolError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.units import KB


def transfer(cfg, payload, count, **conn_kw):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b, **conn_kw)

    def app():
        yield from conn.send_stream(payload, count)
        yield from conn.wait_delivered(payload * count)

    env.run(until=env.process(app()))
    return env, conn


def test_all_bytes_delivered_exactly_once():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 8948, 64)
    assert conn.receiver.bytes_delivered == 8948 * 64
    assert conn.receiver.duplicates == 0
    assert conn.sender.retransmitted == 0


def test_mss_negotiated_from_path_minimum():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock(9000),
                           config_b=TuningConfig.stock(1500))
    conn = TcpConnection(env, bb.a, bb.b)
    assert conn.mss == 1448  # limited by the 1500 end


def test_segments_cut_at_mss():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 20000, 8)
    # 20000 bytes -> 2x8948 + 2104 per write
    assert conn.sender.segments_sent == 8 * 3


def test_write_boundaries_not_coalesced():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 5000, 10)
    # each 5000-byte write is its own segment
    assert conn.sender.segments_sent == 10


def test_wmem_blocks_writer():
    cfg = TuningConfig.fully_tuned(9000).replace(tcp_wmem=KB(32))
    env, conn = transfer(cfg, 8948, 32)
    assert conn.receiver.bytes_delivered == 8948 * 32
    # 32 KB of 16 KB-truesize segments: at most 2 queued at once
    assert conn.sender.wmem_used <= KB(32)


def test_acks_flow_back():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 8948, 64)
    assert conn.sender.acks_received > 0
    assert conn.sender.snd_una == 8948 * 64


def test_delayed_ack_halves_ack_count():
    env, conn = transfer(TuningConfig.oversized_windows(9000), 8948, 128)
    # roughly one ack per two segments (plus window updates)
    assert conn.receiver.acks_sent < 128 * 0.95


def test_rtt_estimated():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 8948, 64)
    assert conn.sender.srtt_s is not None
    assert 10e-6 < conn.sender.srtt_s < 3e-3


def test_goodput_positive_and_sane():
    env, conn = transfer(TuningConfig.fully_tuned(8160), 8108, 128)
    g = conn.goodput_bps()
    assert 1e9 < g < 8.5e9  # between GbE and the PCI-X ceiling


def test_invalid_write_rejected():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock())
    conn = TcpConnection(env, bb.a, bb.b)
    with pytest.raises(ProtocolError):
        list(conn.write(0))
    with pytest.raises(ProtocolError):
        list(conn.send_stream(0, 5))


def test_retransmission_rate_zero_without_loss():
    env, conn = transfer(TuningConfig.fully_tuned(9000), 8948, 64)
    assert conn.retransmission_rate() == 0.0


def test_tso_reduces_segments_sent_by_host():
    cfg = TuningConfig.oversized_windows(9000).replace(tso=True)
    env, conn = transfer(cfg, 60000, 8)
    # host hands down one super-segment per write
    assert conn.sender.segments_sent == 8
    assert conn.receiver.bytes_delivered == 60000 * 8


def test_two_connections_share_host_independently():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.fully_tuned(9000))
    c1 = TcpConnection(env, bb.a, bb.b)
    c2 = TcpConnection(env, bb.a, bb.b)

    def app(conn, n):
        yield from conn.send_stream(8948, n)
        yield from conn.wait_delivered(8948 * n)

    p1 = env.process(app(c1, 32))
    p2 = env.process(app(c2, 32))
    env.run(until=p1)
    env.run(until=p2)
    assert c1.receiver.bytes_delivered == 8948 * 32
    assert c2.receiver.bytes_delivered == 8948 * 32


class LossyLink:
    """Wraps a link sink, dropping chosen data frames once."""

    def __init__(self, inner, drop_idents):
        self.inner = inner
        self.drop_idents = set(drop_idents)
        self.dropped = []

    def receive_frame(self, skb):
        if skb.kind == "data" and skb.meta.get("drop_me") \
                and skb.ident not in self.dropped:
            self.dropped.append(skb.ident)
            return
        self.inner.receive_frame(skb)


def test_fast_retransmit_recovers_from_single_loss():
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    fwd = bb.links[0]
    tap = LossyLink(fwd.sink, drop_idents=())
    fwd.connect(tap)
    # mark the 20th data segment for a one-time drop
    counter = {"n": 0}
    original_receive = tap.inner.receive_frame

    def dropping_receive(skb):
        if skb.kind == "data" and not skb.meta.get("retransmit"):
            counter["n"] += 1
            if counter["n"] == 20:
                return  # dropped
        original_receive(skb)

    tap.receive_frame = dropping_receive
    total = 8948 * 128

    def app():
        yield from conn.send_stream(8948, 128)
        yield from conn.wait_delivered(total)

    env.run(until=env.process(app()))
    assert conn.receiver.bytes_delivered == total
    assert conn.sender.retransmitted >= 1
    assert conn.sender.cwnd.fast_retransmits + conn.sender.cwnd.timeouts >= 1
