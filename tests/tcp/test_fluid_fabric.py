"""The steppable multi-link FluidFabric model (hybrid-mode background)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.tcp.fluid import FluidFabric


def one_link_fabric(n_flows=4, cap_pps=10_000.0, queue=128.0,
                    base_rtt_s=1e-3, **kw):
    return FluidFabric(link_capacity_pps=[cap_pps],
                       link_queue_packets=[queue],
                       routes=[[0]] * n_flows,
                       base_rtt_s=base_rtt_s, mss=8948,
                       max_window_segments=64.0, **kw)


class TestValidation:
    def test_rejects_bad_links(self):
        with pytest.raises(ProtocolError):
            FluidFabric([], [], [[0]], 1e-3, 8948, 64.0)
        with pytest.raises(ProtocolError):
            FluidFabric([0.0], [10.0], [[0]], 1e-3, 8948, 64.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [0.5], [[0]], 1e-3, 8948, 64.0)

    def test_rejects_bad_routes(self):
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [], 1e-3, 8948, 64.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[]], 1e-3, 8948, 64.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[1]], 1e-3, 8948, 64.0)

    def test_rejects_bad_flow_parameters(self):
        with pytest.raises(ProtocolError):
            one_link_fabric(base_rtt_s=0.0)  # via kwargs override
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[0]], 1e-3, 0, 64.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[0]], 1e-3, 8948, 0.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[0]], 1e-3, 8948, 64.0,
                        initial_window_segments=0.0)
        with pytest.raises(ProtocolError):
            FluidFabric([1e4], [10.0], [[0]], 1e-3, 8948, 64.0,
                        start_times=[0.0, 1.0])  # wrong shape

    def test_rejects_bad_handoff_inputs(self):
        fabric = one_link_fabric()
        with pytest.raises(ProtocolError):
            fabric.set_cross_traffic([1.0, 2.0])
        with pytest.raises(ProtocolError):
            fabric.step(0.0)


class TestDynamics:
    def test_converges_to_link_capacity(self):
        fabric = one_link_fabric(n_flows=4, cap_pps=10_000.0)
        fabric.step(0.5)
        base = fabric.aggregate_delivered_bits()
        fabric.step(0.5)
        goodput_pps = (fabric.aggregate_delivered_bits() - base) \
            / (8948 * 8.0) / 0.5
        assert goodput_pps == pytest.approx(10_000.0, rel=0.10)

    def test_cross_traffic_steals_capacity(self):
        quiet = one_link_fabric()
        loaded = one_link_fabric()
        loaded.set_cross_traffic([5_000.0])
        quiet.step(1.0)
        loaded.step(1.0)
        assert loaded.aggregate_delivered_bits() < \
            quiet.aggregate_delivered_bits()
        assert loaded.link_utilization[0] < quiet.link_utilization[0]

    def test_windows_respect_caps_and_losses_halve(self):
        fabric = one_link_fabric(n_flows=8, cap_pps=2_000.0, queue=16.0)
        fabric.step(2.0)
        assert fabric.losses > 0                   # overloaded queue
        assert np.all(fabric.windows_segments <= 64.0)
        assert np.all(fabric.windows_segments >= 0.0)
        assert np.all(fabric.queue_packets <= 16.0 + 1e-9)

    def test_started_flows_only(self):
        fabric = one_link_fabric(n_flows=2, start_times=[0.0, 10.0])
        fabric.step(0.5)
        assert fabric.delivered_bits[0] > 0
        assert fabric.delivered_bits[1] == 0.0

    def test_time_advances_and_diagnostics_are_bounded(self):
        fabric = one_link_fabric()
        fabric.step(0.25)
        assert fabric.now == pytest.approx(0.25)
        assert 0.0 <= fabric.link_utilization[0] <= 0.95
        assert 0.0 <= fabric.link_drop_prob[0] <= 0.95
        assert fabric.link_arrival_pps[0] >= 0.0

    def test_multi_link_routes_sum_per_link(self):
        # two flows share link 0; flow 1 continues over link 1
        fabric = FluidFabric(
            link_capacity_pps=[1_000.0, 1_000.0],
            link_queue_packets=[64.0, 64.0],
            routes=[[0], [0, 1]],
            base_rtt_s=1e-3, mss=8948, max_window_segments=32.0)
        fabric.step(1.0)
        assert fabric.link_arrival_pps[0] > fabric.link_arrival_pps[1]
        assert fabric.aggregate_delivered_bits() > 0
