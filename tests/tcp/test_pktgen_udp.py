"""Tests for the packet generator and UDP endpoints."""

import pytest

from repro.config import TuningConfig
from repro.errors import MeasurementError, ProtocolError
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.pktgen import pktgen_run
from repro.tcp.udp import UdpSender, UdpSink
from repro.units import Gbps


def make_bb(cfg=None):
    env = Environment()
    bb = BackToBack.create(env, cfg or TuningConfig.with_pcix_burst(9000))
    bb.b.set_default_handler(lambda skb, batch: None)
    return env, bb


class TestPktgen:
    def test_paper_rate(self):
        """§3.5.2: 5.5 Gb/s with 8160-byte packets (~84k pps)."""
        env, bb = make_bb()
        r = pktgen_run(env, bb.a, "hostB.eth0", packet_bytes=8160,
                       packets=1024)
        assert r.rate_gbps == pytest.approx(5.5, rel=0.05)
        assert r.packets_per_sec == pytest.approx(84000, rel=0.06)

    def test_rate_survives_cpu_load(self):
        """'This rate is maintained when additional load is placed on
        the CPU, indicating that the CPU is not a bottleneck.'"""
        env, bb = make_bb()
        base = pktgen_run(env, bb.a, "hostB.eth0", packets=512)
        env2, bb2 = make_bb()
        loaded = pktgen_run(env2, bb2.a, "hostB.eth0", packets=512,
                            extra_cpu_load=0.8)
        assert loaded.rate_bps > base.rate_bps * 0.9

    def test_small_packets_cost_more_per_byte(self):
        env, bb = make_bb(TuningConfig.with_pcix_burst(1500))
        small = pktgen_run(env, bb.a, "hostB.eth0", packet_bytes=1500,
                           packets=512)
        env2, bb2 = make_bb()
        big = pktgen_run(env2, bb2.a, "hostB.eth0", packet_bytes=8160,
                         packets=512)
        assert big.rate_bps > small.rate_bps

    def test_stock_burst_size_caps_pktgen(self):
        """MMRBC 512 drags the generator down too — it is pure DMA."""
        env, bb = make_bb(TuningConfig.stock(9000))
        stock = pktgen_run(env, bb.a, "hostB.eth0", packets=512)
        env2, bb2 = make_bb()
        tuned = pktgen_run(env2, bb2.a, "hostB.eth0", packets=512)
        assert stock.rate_bps < tuned.rate_bps

    def test_validation(self):
        env, bb = make_bb()
        with pytest.raises(MeasurementError):
            pktgen_run(env, bb.a, "hostB.eth0", packet_bytes=20)
        with pytest.raises(MeasurementError):
            pktgen_run(env, bb.a, "hostB.eth0", packets=0)
        with pytest.raises(MeasurementError):
            pktgen_run(env, bb.a, "hostB.eth0", extra_cpu_load=1.5)


class TestUdp:
    def test_datagrams_delivered_at_offered_rate(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.with_pcix_burst(9000))
        sink = UdpSink(env, bb.b, conn="u1")
        sender = UdpSender(env, bb.a, "hostB.eth0", conn="u1",
                           datagram_bytes=8000, offered_bps=Gbps(1))
        done = sender.start(count=200)
        env.run(until=done)
        env.run(until=env.now + 0.001)
        assert sink.datagrams == 200
        assert sink.goodput_bps() == pytest.approx(Gbps(1), rel=0.05)

    def test_oversized_datagram_rejected(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.stock(1500))
        with pytest.raises(ProtocolError):
            UdpSender(env, bb.a, "hostB.eth0", conn="u1",
                      datagram_bytes=8000, offered_bps=Gbps(1))

    def test_overload_drops_locally(self):
        env = Environment()
        # stock MMRBC: the PCI-X drain (~2.8 Gb/s) is slower than the
        # CPU can produce datagrams, so the tiny device queue overflows
        cfg = TuningConfig.stock(9000).replace(txqueuelen=4,
                                               smp_kernel=False)
        bb = BackToBack.create(env, cfg)
        UdpSink(env, bb.b, conn="u1")
        sender = UdpSender(env, bb.a, "hostB.eth0", conn="u1",
                           datagram_bytes=8000, offered_bps=Gbps(20))
        done = sender.start(count=400)
        env.run(until=done)
        assert sender.local_drops > 0

    def test_stop_halts_source(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.with_pcix_burst(9000))
        UdpSink(env, bb.b, conn="u1")
        sender = UdpSender(env, bb.a, "hostB.eth0", conn="u1",
                           datagram_bytes=8000, offered_bps=Gbps(1))
        sender.start()
        env.run(until=0.001)
        sender.stop()
        env.run(until=0.002)
        sent = sender.sent
        env.run(until=0.004)
        assert sender.sent == sent

    def test_validation(self):
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.stock(9000))
        with pytest.raises(ProtocolError):
            UdpSender(env, bb.a, "x", "u", datagram_bytes=0,
                      offered_bps=Gbps(1))
        with pytest.raises(ProtocolError):
            UdpSender(env, bb.a, "x", "u", datagram_bytes=1000,
                      offered_bps=0)
