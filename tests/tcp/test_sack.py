"""Tests for selective acknowledgments (RFC 2018)."""

import pytest

from repro.config import TuningConfig
from repro.net.faults import LossTap
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection


def run_lossy(sack: bool, drops, segments=64, payload=8948):
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000).replace(sack=sack)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    LossTap(env, bb.links[0], drops)
    total = payload * segments

    def app():
        yield from conn.send_stream(payload, segments)
        yield from conn.wait_delivered(total, poll_s=1e-3)

    done = env.process(app())
    env.run(until=done)
    return env.now, conn


def test_sack_blocks_reported_on_ooo():
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000).replace(sack=True)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    from repro.tools.tcpdump import Tcpdump
    dump = Tcpdump(env, bb.links[1])
    LossTap(env, bb.links[0], {10})
    total = 8948 * 48

    def app():
        yield from conn.send_stream(8948, 48)
        yield from conn.wait_delivered(total, poll_s=1e-3)

    env.run(until=env.process(app()))
    sacked_acks = [r for r in dump.records
                   if r.kind == "ack"]
    assert conn.receiver.bytes_delivered == total
    # at least one ACK during the episode carried meaningful state: the
    # hole was eventually filled exactly once
    assert conn.sender.retransmitted >= 1


def test_sack_avoids_spurious_retransmissions_multi_loss():
    """With several losses in one window, NewReno retransmits one hole
    per RTT and may resend delivered data after an RTO; SACK retransmits
    only the actual holes."""
    drops = {8, 16, 24, 32}
    _, newreno = run_lossy(sack=False, drops=drops)
    _, sack = run_lossy(sack=True, drops=drops)
    assert sack.receiver.bytes_delivered == newreno.receiver.bytes_delivered
    assert sack.sender.retransmitted <= newreno.sender.retransmitted
    # SACK never re-sends data the receiver already holds
    assert sack.receiver.duplicates <= newreno.receiver.duplicates


def test_sack_completes_no_slower():
    drops = {8, 16, 24, 32}
    t_newreno, _ = run_lossy(sack=False, drops=drops)
    t_sack, _ = run_lossy(sack=True, drops=drops)
    assert t_sack <= t_newreno * 1.05


def test_sack_no_ooo_no_blocks():
    """Lossless run: SACK on changes nothing observable."""
    _, with_sack = run_lossy(sack=True, drops=set())
    _, without = run_lossy(sack=False, drops=set())
    assert with_sack.sender.retransmitted == 0
    assert with_sack.receiver.bytes_delivered == \
        without.receiver.bytes_delivered


def test_sack_block_merging():
    from repro.tcp.receiver import TcpReceiver
    from repro.oskernel.skbuff import SkBuff

    env = Environment()
    cfg = TuningConfig.oversized_windows(9000).replace(sack=True)
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    rx = conn.receiver
    # hand-craft an out-of-order queue: two contiguous + one separate
    for seq in (10000, 11000, 20000):
        rx._ooo[seq] = SkBuff(payload=1000, headers=52, seq=seq,
                              end_seq=seq + 1000)
    blocks = rx._sack_blocks()
    assert (10000, 12000) in blocks
    assert (20000, 21000) in blocks
    assert len(blocks) == 2
