"""Unit tests for MSS arithmetic."""

import pytest

from repro.errors import ProtocolError
from repro.tcp.mss import MtuProfile, advertised_mss, mss_for_mtu


def test_advertised_mss_is_mtu_minus_40():
    assert advertised_mss(9000) == 8960
    assert advertised_mss(1500) == 1460
    assert advertised_mss(8160) == 8120
    assert advertised_mss(16000) == 15960


def test_timestamps_consume_option_bytes():
    assert mss_for_mtu(9000, timestamps=True) == 8948
    assert mss_for_mtu(9000, timestamps=False) == 8960
    assert mss_for_mtu(1500, timestamps=True) == 1448


def test_tiny_mtu_rejected():
    with pytest.raises(ProtocolError):
        advertised_mss(40)
    with pytest.raises(ProtocolError):
        mss_for_mtu(50, timestamps=True)


def test_profile_effective_mss():
    p = MtuProfile(mtu=9000, timestamps=True)
    assert p.effective_mss == 8948
    assert p.advertised == 8960


def test_alignment_quirk_reproduces_8960_vs_8948():
    """§3.5.1: receiver aligns on 8948 (its own view), sender's segments
    are 8948 but the *sender* side aligns its cwnd on the advertised
    8960 — the paper's mismatch example."""
    receiver = MtuProfile(mtu=9000, timestamps=True, mismatch_quirk=True)
    # peer advertised 8960; quirk keeps the raw advertised value
    assert receiver.alignment_mss(8960) == 8960
    correct = MtuProfile(mtu=9000, timestamps=True, mismatch_quirk=False)
    assert correct.alignment_mss(8960) == 8948


def test_alignment_takes_minimum_of_views():
    # a 1500-MTU peer advertising 1460 must win over our jumbo view
    local = MtuProfile(mtu=9000, timestamps=True)
    assert local.alignment_mss(1460) == 1460
