"""Tests for the simulated three-way handshake timing."""

import pytest

from repro.config import TuningConfig
from repro.net.topology import BackToBack, build_wan_path
from repro.sim import Environment
from repro.tcp.connection import TcpConnection


def test_lan_handshake_is_one_rtt():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig(
        mtu=1500, mmrbc=4096, smp_kernel=False))
    conn = TcpConnection(env, bb.a, bb.b)
    done = env.process(conn.handshake())
    latency = env.run(until=done)
    # one kernel-level LAN round trip: slightly under 2 x the 19 us
    # app-to-app latency (no reader wakeup on either end)
    assert 20e-6 < latency < 38e-6


def test_wan_handshake_is_180ms():
    env = Environment()
    cfg = TuningConfig.wan_tuned(buf=1 << 22)
    tb = build_wan_path(env, cfg)
    conn = TcpConnection(env, tb.sunnyvale, tb.geneva)
    done = env.process(conn.handshake())
    latency = env.run(until=done)
    assert latency == pytest.approx(0.180, rel=0.02)


def test_data_flows_after_handshake():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)

    def app():
        yield from conn.handshake()
        yield from conn.send_stream(8948, 32)
        yield from conn.wait_delivered(8948 * 32)

    env.run(until=env.process(app()))
    assert conn.receiver.bytes_delivered == 8948 * 32


def test_handshake_twice_is_allowed():
    env = Environment()
    bb = BackToBack.create(env, TuningConfig.stock(1500))
    conn = TcpConnection(env, bb.a, bb.b)
    l1 = env.run(until=env.process(conn.handshake()))
    l2 = env.run(until=env.process(conn.handshake()))
    assert l1 > 0 and l2 > 0
