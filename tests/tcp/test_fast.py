"""Tests for the FAST TCP fluid model."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.tcp.fast import FastParams, simulate_fluid_fast
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.units import Gbps


def wan(queue=400, buffer_x_bdp=4.0):
    bdp = Gbps(2.38) * 0.18 / 8
    return FluidParams(bottleneck_bps=Gbps(2.38), base_rtt_s=0.18,
                       mss=8948, max_window_bytes=buffer_x_bdp * bdp,
                       queue_packets=queue)


def test_params_validation():
    with pytest.raises(ProtocolError):
        FastParams(alpha_packets=0)
    with pytest.raises(ProtocolError):
        FastParams(gamma=0)
    with pytest.raises(ProtocolError):
        FastParams(gamma=1.5)
    with pytest.raises(ProtocolError):
        simulate_fluid_fast(wan(), duration_s=0)


def test_fast_converges_lossfree_where_reno_oscillates():
    """The motivation for FAST: on a long fat pipe with an uncapped
    window, Reno fills the queue, loses, and sawtooths; FAST sits at
    alpha queued packets and full rate."""
    p = wan()
    reno = simulate_fluid(p, 900.0, warmup_s=120.0)
    fast = simulate_fluid_fast(p, 900.0, warmup_s=120.0)
    assert reno.losses >= 1
    assert fast.losses == 0
    assert fast.mean_throughput_bps == pytest.approx(Gbps(2.38), rel=0.01)
    assert fast.mean_throughput_bps > reno.mean_throughput_bps


def test_fast_steady_queue_near_alpha():
    fp = FastParams(alpha_packets=150.0)
    result = simulate_fluid_fast(wan(queue=1000), 600.0, fast=fp,
                                 warmup_s=200.0)
    steady = result.queue_packets[-50:]
    assert np.mean(steady) == pytest.approx(150.0, rel=0.15)


def test_fast_recovers_from_loss_in_seconds_not_hours():
    """Table 1 gives Reno ~38-45 min at this BDP; FAST re-converges in
    a handful of RTTs."""
    p = wan()
    result = simulate_fluid_fast(p, 420.0, warmup_s=60.0,
                                 force_loss_at_s=300.0)
    assert result.losses == 1
    t, thr = result.time_s, result.throughput_bps
    i0 = int(np.searchsorted(t, 300.0))
    target = 0.95 * thr[max(0, i0 - 4)]
    recovered_at = None
    for j in range(i0 + 1, len(t)):
        if thr[j] >= target:
            recovered_at = t[j] - 300.0
            break
    assert recovered_at is not None
    assert recovered_at < 30.0


def test_fast_respects_window_cap():
    p = wan(buffer_x_bdp=0.25)
    result = simulate_fluid_fast(p, 300.0, warmup_s=60.0)
    cap_segments = p.max_window_bytes / p.mss
    assert result.window_segments.max() <= cap_segments * 1.001
    assert result.mean_throughput_bps < Gbps(0.7)


def test_alpha_scales_throughput_share_intuition():
    """Bigger alpha -> bigger standing queue (single flow: same rate)."""
    small = simulate_fluid_fast(wan(queue=2000), 400.0,
                                fast=FastParams(alpha_packets=50),
                                warmup_s=150.0)
    large = simulate_fluid_fast(wan(queue=2000), 400.0,
                                fast=FastParams(alpha_packets=400),
                                warmup_s=150.0)
    assert large.queue_packets[-10:].mean() > small.queue_packets[-10:].mean()
