"""Unit tests for window arithmetic (the §3.5.1 mechanics)."""

import pytest

from repro.errors import ProtocolError
from repro.tcp.window import (
    MAX_UNSCALED_WINDOW,
    ReceiveWindow,
    sws_aligned,
    window_from_space,
    window_scale_for,
    wire_window,
)
from repro.units import KB


class TestSwsAligned:
    def test_paper_footnote_formula(self):
        # advertised = (int)(available / MSS) * MSS
        assert sws_aligned(33000, 8948) == 26844  # the worked example
        assert sws_aligned(26844, 8960) == 17920  # sender side of it

    def test_exact_multiple_unchanged(self):
        assert sws_aligned(8948 * 5, 8948) == 8948 * 5

    def test_below_one_mss_is_zero(self):
        assert sws_aligned(8000, 8948) == 0

    def test_negative_available(self):
        assert sws_aligned(-100, 1448) == 0

    def test_invalid_mss(self):
        with pytest.raises(ProtocolError):
            sws_aligned(1000, 0)


class TestWindowFromSpace:
    def test_default_three_quarters(self):
        assert window_from_space(65536) == 49152

    def test_zero_space(self):
        assert window_from_space(0) == 0
        assert window_from_space(-10) == 0

    def test_expected_48k_of_the_paper(self):
        """§3.3 computes an expected ~48 KB window from the 64 KB
        default; the adv_win_scale arithmetic produces exactly that."""
        assert window_from_space(KB(64)) == KB(48)


class TestWindowScaling:
    def test_no_scale_needed_small_buffer(self):
        assert window_scale_for(KB(64)) == 0

    def test_scale_for_larger_buffers(self):
        assert window_scale_for(KB(256)) == 2
        # 32 MB usable (24 MB) needs 9 doublings of 64 KB -> shift 9
        assert window_scale_for(32 * 1024 * 1024) == 9
        assert window_scale_for(128 * 1024 * 1024) == 11

    def test_wire_window_truncates_low_bits(self):
        assert wire_window(100001, 3) == 100000 - (100000 % 8)
        assert wire_window(65535, 0) == 65535

    def test_wire_window_caps_at_representable(self):
        assert wire_window(10**9, 2) == MAX_UNSCALED_WINDOW << 2 >> 2 << 2

    def test_invalid_scale(self):
        with pytest.raises(ProtocolError):
            wire_window(1000, -1)
        with pytest.raises(ProtocolError):
            wire_window(1000, 20)


class TestReceiveWindow:
    def test_initial_advertisement_mss_aligned(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        # 3/4 of 64K = 49152 -> 5 x 8960 = 44800
        assert win.current == 44800

    def test_truesize_charge_shrinks_future_advertisements(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        # consume the initially promised 5 segments...
        win.rcv_nxt = 5 * 8948
        # ...while two 16 KB-truesize segments sit undrained
        win.charge(16384)
        win.charge(16384)
        # free = 64K - 32K = 32K; 3/4 -> 24576 -> 2 x 8960
        assert win.advertise() == 2 * 8960

    def test_window_never_retreats(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        first_right = win.rcv_nxt + win.current
        win.charge(3 * 16384)  # huge occupancy
        # fresh advertisement cannot pull the right edge back
        assert win.rcv_nxt + win.advertise() >= first_right

    def test_uncharge_restores_space(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        win.charge(16384)
        win.uncharge(16384)
        assert win.free_space == KB(64)

    def test_uncharge_underflow_rejected(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        with pytest.raises(ProtocolError):
            win.uncharge(1)

    def test_would_update_after_drain(self):
        win = ReceiveWindow(rmem=KB(64), align_mss=8960)
        win.charge(16384 * 2)
        win.rcv_nxt = 2 * 8948
        win.advertise()
        assert not win.would_update(1)
        win.uncharge(16384 * 2)
        assert win.would_update(1)

    def test_scaling_enables_large_windows(self):
        big = ReceiveWindow(rmem=KB(1024), align_mss=8960,
                            window_scaling=True)
        small = ReceiveWindow(rmem=KB(1024), align_mss=8960,
                              window_scaling=False)
        assert big.current > MAX_UNSCALED_WINDOW
        assert small.current <= MAX_UNSCALED_WINDOW

    def test_invalid_construction(self):
        with pytest.raises(ProtocolError):
            ReceiveWindow(rmem=0, align_mss=1448)
        with pytest.raises(ProtocolError):
            ReceiveWindow(rmem=KB(64), align_mss=0)
