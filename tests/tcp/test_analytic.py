"""Unit tests for the closed-form models (Table 1, Fig. 8, §3.5.1)."""

import pytest

from repro.config import TuningConfig
from repro.errors import ProtocolError
from repro.hw.presets import PE2650
from repro.tcp.analytic import (
    bandwidth_delay_product,
    mss_aligned_window,
    predict_throughput_bps,
    recovery_time_s,
    sender_receiver_mismatch,
    window_efficiency,
)
from repro.units import Gbps, us


class TestBdp:
    def test_lan_bdp_of_the_paper(self):
        """§3.3: 10GbE at 19 us latency -> ~48 KB ideal window."""
        bdp = bandwidth_delay_product(Gbps(10), 2 * us(19))
        assert bdp == pytest.approx(47500, rel=0.01)

    def test_wan_bdp(self):
        bdp = bandwidth_delay_product(Gbps(2.5), 0.180)
        assert bdp == pytest.approx(56.25e6)

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            bandwidth_delay_product(0, 1)
        with pytest.raises(ProtocolError):
            bandwidth_delay_product(1, 0)


class TestRecoveryTime:
    """Table 1, checked against the paper's legible cells."""

    def test_geneva_chicago_1460(self):
        t = recovery_time_s(Gbps(10), 0.120, 1460)
        assert t / 60 == pytest.approx(102.7, rel=0.01)  # 1 hr 42 min

    def test_geneva_sunnyvale_1460(self):
        t = recovery_time_s(Gbps(10), 0.180, 1460)
        assert t / 3600 == pytest.approx(3.85, rel=0.01)  # 3 hr 51 min

    def test_jumbo_mss_recovers_faster(self):
        slow = recovery_time_s(Gbps(10), 0.180, 1460)
        fast = recovery_time_s(Gbps(10), 0.180, 8960)
        assert fast == pytest.approx(slow * 1460 / 8960)

    def test_lan_recovery_is_milliseconds(self):
        assert recovery_time_s(Gbps(10), 0.0002, 1460) < 0.1

    def test_scales_with_rtt_squared(self):
        t1 = recovery_time_s(Gbps(10), 0.090, 1460)
        t2 = recovery_time_s(Gbps(10), 0.180, 1460)
        assert t2 == pytest.approx(4 * t1)

    def test_invalid_mss(self):
        with pytest.raises(ProtocolError):
            recovery_time_s(Gbps(10), 0.1, 0)


class TestFig8:
    def test_26kb_window_9k_mss(self):
        """Fig. 8: a ~26 KB ideal window fits only two ~9 KB segments —
        the 'best possible window' is ~31% below the ideal."""
        ideal = 26 * 1024
        assert mss_aligned_window(ideal, 8960) == 17920
        assert window_efficiency(ideal, 8960) == pytest.approx(0.673,
                                                               rel=0.01)

    def test_efficiency_approaches_one_for_small_mss(self):
        assert window_efficiency(26 * 1024, 1460) > 0.95

    def test_invalid_window(self):
        with pytest.raises(ProtocolError):
            window_efficiency(0, 1460)


class TestMismatchExample:
    def test_paper_worked_example(self):
        """§3.5.1: 33000 bytes, receiver MSS 8948, sender MSS 8960."""
        r = sender_receiver_mismatch()
        assert r.advertised_window == 26844
        assert r.usable_window == 17920
        # "19% less than the available 33,000 bytes"
        assert r.advertised_loss == pytest.approx(0.19, abs=0.005)
        # "nearly 50% smaller than the actual available socket memory"
        assert r.usable_loss == pytest.approx(0.457, abs=0.005)


class TestPredictThroughput:
    def test_orders_tuned_configs_like_the_paper(self):
        def predict(mtu, payload):
            return predict_throughput_bps(
                PE2650, TuningConfig.fully_tuned(mtu), payload)
        t1500 = predict(1500, 1448)
        t9000 = predict(9000, 8948)
        t8160 = predict(8160, 8108)
        assert t1500 < t9000
        assert t9000 < t8160 * 1.05  # 8160 at least on par

    def test_stock_below_tuned(self):
        stock = predict_throughput_bps(PE2650, TuningConfig.stock(9000), 8948)
        tuned = predict_throughput_bps(
            PE2650, TuningConfig.fully_tuned(9000), 8948)
        assert stock < tuned

    def test_invalid_payload(self):
        with pytest.raises(ProtocolError):
            predict_throughput_bps(PE2650, TuningConfig.stock(), 0)
