"""Tests for the multi-flow fluid model."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.core.wanrecord import WanRecordRun
from repro.tcp.fluid import FluidParams, simulate_fluid, simulate_fluid_multiflow
from repro.units import Gbps


def params(buffer_fraction=1.0, queue=1024):
    bdp = Gbps(2.38) * 0.18 / 8
    return FluidParams(bottleneck_bps=Gbps(2.38), base_rtt_s=0.18,
                       mss=8948, max_window_bytes=bdp * buffer_fraction,
                       queue_packets=queue)


def test_single_flow_special_case_matches_scalar_model():
    p = params()
    multi = simulate_fluid_multiflow(p, n_flows=1, duration_s=200.0,
                                     warmup_s=60.0, stagger_s=0.0)
    single = simulate_fluid(p, duration_s=200.0, warmup_s=60.0)
    assert multi.mean_aggregate_bps == pytest.approx(
        single.mean_throughput_bps, rel=0.05)


def test_multistream_fills_pipe_with_small_buffers():
    """8 flows with 1/8-BDP buffers saturate where one flow starves —
    the pre-large-window workaround for Table 1's recovery times."""
    p = params(buffer_fraction=1 / 8)
    single = simulate_fluid(p, duration_s=300.0, warmup_s=60.0)
    multi = simulate_fluid_multiflow(p, n_flows=8, duration_s=300.0,
                                     warmup_s=60.0)
    assert single.mean_throughput_bps < Gbps(0.4)
    assert multi.mean_aggregate_gbps == pytest.approx(2.38, rel=0.03)


def test_aggregate_never_exceeds_capacity():
    p = params(buffer_fraction=2.0, queue=128)
    multi = simulate_fluid_multiflow(p, n_flows=4, duration_s=120.0)
    assert multi.aggregate_throughput_bps.max() <= Gbps(2.38) * 1.001


def test_fairness_high_for_identical_flows():
    p = params(buffer_fraction=1 / 4)
    multi = simulate_fluid_multiflow(p, n_flows=4, duration_s=300.0,
                                     warmup_s=100.0)
    assert multi.fairness > 0.9


def test_losses_hit_largest_flow():
    p = params(buffer_fraction=1.0, queue=64)
    multi = simulate_fluid_multiflow(p, n_flows=4, duration_s=200.0,
                                     warmup_s=50.0)
    assert multi.losses >= 1
    # aggregate stays much closer to capacity than a single lossy flow
    assert multi.mean_aggregate_gbps > 1.8


def test_window_series_shape():
    multi = simulate_fluid_multiflow(params(), n_flows=3, duration_s=30.0)
    assert multi.windows_segments.shape[1] == 3
    assert (multi.windows_segments >= 0).all()


def test_validation():
    with pytest.raises(ProtocolError):
        simulate_fluid_multiflow(params(), n_flows=0, duration_s=10.0)
    with pytest.raises(ProtocolError):
        simulate_fluid_multiflow(params(), n_flows=2, duration_s=0.0)


def test_wanrecord_multiflow_outcome():
    run = WanRecordRun()
    out = run.run_fluid_multiflow(n_flows=8, duration_s=300.0)
    assert out.throughput_gbps == pytest.approx(2.38, rel=0.05)
    assert out.label == "8 streams"
    with pytest.raises(Exception):
        run.run_fluid_multiflow(n_flows=0)
