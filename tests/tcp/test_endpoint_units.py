"""Direct unit tests of the sender/receiver state machines.

These bypass the full topology: a :class:`FakeNic` captures frames so
each state transition can be driven by hand — the complement of the
end-to-end tests in test_connection_des.py.
"""

import pytest

from repro.config import TuningConfig
from repro.hw.host import Host
from repro.hw.presets import PE2650
from repro.oskernel.skbuff import SkBuff
from repro.sim import Environment
from repro.tcp.mss import MtuProfile
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import MIN_RTO_S, TcpSender
from repro.units import KB


class FakeNic:
    """Captures frames instead of transmitting them."""

    def __init__(self, env):
        self.env = env
        self.sent = []
        self.address = "fake.eth0"
        from repro.sim.resources import Store
        self._accept = Store(env)

    def send(self, skb):
        self.sent.append(skb)
        return True

    def enqueue(self, skb):
        self.sent.append(skb)
        ev = self.env.event()
        ev.succeed()
        return ev


def make_sender(env, config=None, rwnd=KB(192)):
    cfg = config or TuningConfig.oversized_windows(9000)
    host = Host(env, PE2650, cfg, name="S")
    nic = FakeNic(env)
    profile = MtuProfile(mtu=cfg.mtu, timestamps=cfg.tcp_timestamps)
    sender = TcpSender(env, host, nic, conn=1, dst_address="peer",
                       profile=profile, initial_rwnd=rwnd)
    return sender, nic, host


def ack(sender, ack_seq, win=KB(192), **meta):
    skb = SkBuff(payload=0, headers=52, kind="ack", ack=ack_seq,
                 conn=1, meta={"win": win, **meta})
    sender.on_ack_frame(skb)


class TestSenderUnit:
    def test_initial_cwnd_limits_first_burst(self):
        env = Environment()
        sender, nic, _ = make_sender(env)

        def app():
            yield from sender.write(8948 * 6)

        env.process(app())
        env.run(until=0.05)
        # initial cwnd = 2 segments
        assert len(nic.sent) == 2
        assert sender.bytes_in_flight == 2 * 8948

    def test_ack_releases_more_segments(self):
        env = Environment()
        sender, nic, _ = make_sender(env)

        def app():
            yield from sender.write(8948 * 6)

        env.process(app())
        env.run(until=0.05)
        ack(sender, 2 * 8948)
        env.run(until=0.1)
        # cwnd grew to 4 in slow start; 4 more in flight
        assert len(nic.sent) == 6
        assert sender.snd_una == 2 * 8948

    def test_rwnd_zero_stalls_sender(self):
        env = Environment()
        sender, nic, _ = make_sender(env, rwnd=0)

        def app():
            yield from sender.write(8948)

        env.process(app())
        env.run(until=0.01)
        assert len(nic.sent) == 0
        # window update reopens the flow
        ack(sender, 0, win=KB(64))
        env.run(until=0.02)
        assert len(nic.sent) == 1

    def test_three_dupacks_trigger_fast_retransmit(self):
        env = Environment()
        sender, nic, _ = make_sender(env)

        def app():
            yield from sender.write(8948 * 8)

        env.process(app())
        env.run(until=0.05)
        baseline = len(nic.sent)
        for _ in range(3):
            ack(sender, 0)
        env.run(until=0.1)
        retransmits = [s for s in nic.sent if s.meta.get("retransmit")]
        assert len(retransmits) == 1
        assert retransmits[0].seq == 0
        assert sender.cwnd.in_recovery

    def test_rto_fires_without_acks(self):
        env = Environment()
        sender, nic, _ = make_sender(env)

        def app():
            yield from sender.write(8948)

        env.process(app())
        env.run(until=MIN_RTO_S * 12)
        retransmits = [s for s in nic.sent if s.meta.get("retransmit")]
        assert len(retransmits) >= 1
        assert sender.cwnd.timeouts >= 1

    def test_wmem_accounting_returns_on_ack(self):
        env = Environment()
        cfg = TuningConfig.oversized_windows(9000).replace(tcp_wmem=KB(32))
        sender, nic, _ = make_sender(env, config=cfg)
        done = {"flag": False}

        def app():
            yield from sender.write(8948 * 4)
            done["flag"] = True

        env.process(app())
        env.run(until=0.01)
        assert not done["flag"]           # blocked: 32K / 16K truesize = 2
        ack(sender, 8948)
        env.run(until=0.02)
        ack(sender, 2 * 8948)
        env.run(until=0.03)
        ack(sender, 4 * 8948)
        env.run(until=0.04)
        assert done["flag"]
        assert sender.wmem_used <= KB(32)

    def test_sacked_segments_skipped_on_retransmit(self):
        env = Environment()
        cfg = TuningConfig.oversized_windows(9000).replace(sack=True)
        sender, nic, _ = make_sender(env, config=cfg)

        def app():
            yield from sender.write(8948 * 8)

        env.process(app())
        env.run(until=0.05)
        # SACK says segment 2 (seq 8948..17896) arrived; segment 1 lost
        for _ in range(3):
            ack(sender, 0, sack=[(8948, 17896)])
        env.run(until=0.1)
        retransmits = [s for s in nic.sent if s.meta.get("retransmit")]
        assert [r.seq for r in retransmits] == [0]


def make_receiver(env, config=None):
    cfg = config or TuningConfig.oversized_windows(9000)
    host = Host(env, PE2650, cfg, name="R")
    nic = FakeNic(env)
    profile = MtuProfile(mtu=cfg.mtu, timestamps=cfg.tcp_timestamps)
    receiver = TcpReceiver(env, host, nic, conn=1, src_address="peer",
                           profile=profile, peer_advertised_mss=8960)
    return receiver, nic, host


def data(seq, payload=8948):
    return SkBuff(payload=payload, headers=64, kind="data", seq=seq,
                  end_seq=seq + payload, conn=1)


class TestReceiverUnit:
    def test_in_order_advances_rcv_nxt(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(0))
        rx.on_data_frame(data(8948))
        env.run()
        assert rx.rcv_nxt == 2 * 8948
        assert rx.bytes_delivered == 2 * 8948

    def test_out_of_order_held_then_flushed(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(8948))   # gap
        env.run()
        assert rx.rcv_nxt == 0
        assert len(rx._ooo) == 1
        rx.on_data_frame(data(0))      # fills the hole
        env.run()
        assert rx.rcv_nxt == 2 * 8948
        assert not rx._ooo

    def test_ooo_generates_immediate_dupack(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(8948))
        env.run()
        acks = [s for s in nic.sent if s.kind == "ack"]
        assert acks and acks[-1].ack == 0

    def test_old_duplicate_reacked_not_redelivered(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(0))
        env.run()
        delivered = rx.bytes_delivered
        rx.on_data_frame(data(0))      # stale retransmission
        env.run()
        assert rx.bytes_delivered == delivered
        assert rx.duplicates == 1

    def test_delayed_ack_covers_two_segments(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(0))
        rx.on_data_frame(data(8948))
        env.run()
        acks = [s for s in nic.sent if s.kind == "ack"]
        cumulative = [a for a in acks if a.ack == 2 * 8948]
        assert cumulative

    def test_window_advertised_in_acks(self):
        env = Environment()
        rx, nic, _ = make_receiver(env)
        rx.on_data_frame(data(0))
        rx.on_data_frame(data(8948))
        env.run()
        acks = [s for s in nic.sent if s.kind == "ack"]
        assert all("win" in a.meta for a in acks)
        assert all(a.meta["win"] % rx.align_mss == 0 for a in acks)
