"""Unit tests for Reno congestion control."""

import pytest

from repro.errors import ProtocolError
from repro.tcp.congestion import DUPACK_THRESHOLD, INITIAL_CWND, RenoCongestion


def test_initial_state():
    cc = RenoCongestion(mss=8948)
    assert cc.cwnd == INITIAL_CWND
    assert cc.in_slow_start
    assert not cc.in_recovery


def test_slow_start_doubles_per_window():
    cc = RenoCongestion(mss=1448)
    cc.on_ack(2)   # both initial segments acked
    assert cc.cwnd == 4.0
    cc.on_ack(4)
    assert cc.cwnd == 8.0


def test_congestion_avoidance_linear():
    cc = RenoCongestion(mss=1448, ssthresh=4.0)
    cc.on_ack(4)  # slow start until 4
    start = cc.cwnd
    assert not cc.in_slow_start
    # one full window of acks adds ~1 segment
    n = cc.cwnd_segments
    cc.on_ack(n)
    assert cc.cwnd == pytest.approx(start + 1.0, rel=0.1)


def test_cwnd_bytes_mss_aligned():
    cc = RenoCongestion(mss=8948)
    cc.cwnd = 5.9
    assert cc.cwnd_segments == 5
    assert cc.cwnd_bytes == 5 * 8948


def test_fast_retransmit_on_third_dupack():
    cc = RenoCongestion(mss=1448)
    cc.on_ack(20)
    before = cc.cwnd
    fired = [cc.on_dupack() for _ in range(DUPACK_THRESHOLD)]
    assert fired == [False, False, True]
    assert cc.in_recovery
    assert cc.cwnd == pytest.approx(before / 2.0)
    assert cc.fast_retransmits == 1


def test_no_double_fast_retransmit_in_recovery():
    cc = RenoCongestion(mss=1448)
    cc.on_ack(20)
    for _ in range(DUPACK_THRESHOLD):
        cc.on_dupack()
    assert not any(cc.on_dupack() for _ in range(5))


def test_window_frozen_during_recovery():
    cc = RenoCongestion(mss=1448)
    cc.on_ack(20)
    for _ in range(DUPACK_THRESHOLD):
        cc.on_dupack()
    w = cc.cwnd
    cc.on_ack(3)  # partial acks do not grow the window
    assert cc.cwnd == w
    cc.exit_recovery()
    assert not cc.in_recovery


def test_timeout_collapses_to_one_segment():
    cc = RenoCongestion(mss=1448)
    cc.on_ack(30)
    cc.on_timeout()
    assert cc.cwnd == 1.0
    assert cc.timeouts == 1
    assert cc.in_slow_start  # ssthresh = half the old window


def test_ssthresh_floor_of_two():
    cc = RenoCongestion(mss=1448)
    cc.on_timeout()
    assert cc.ssthresh == 2.0


def test_max_cwnd_cap():
    cc = RenoCongestion(mss=1448, max_cwnd_segments=10)
    cc.on_ack(100)
    assert cc.cwnd == 10.0


def test_recovery_time_model():
    cc = RenoCongestion(mss=1448)
    cc.cwnd = 50.0
    # needs 50 more segments at 1/RTT with RTT=0.1
    assert cc.recovery_time_s(0.1, 100.0) == pytest.approx(5.0)
    assert cc.recovery_time_s(0.1, 10.0) == 0.0


def test_invalid_arguments():
    with pytest.raises(ProtocolError):
        RenoCongestion(mss=0)
    with pytest.raises(ProtocolError):
        RenoCongestion(mss=1448, initial_cwnd=0)
    cc = RenoCongestion(mss=1448)
    with pytest.raises(ProtocolError):
        cc.on_ack(-1)
    with pytest.raises(ProtocolError):
        cc.recovery_time_s(0.0, 10.0)
