"""Unit tests for the fluid AIMD model."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.units import Gbps, MB


def wan_params(**overrides):
    base = dict(
        bottleneck_bps=Gbps(2.38),
        base_rtt_s=0.180,
        mss=8948,
        max_window_bytes=Gbps(2.38) * 0.180 / 8,
        queue_packets=1024,
    )
    base.update(overrides)
    return FluidParams(**base)


def test_bdp_arithmetic():
    p = wan_params()
    assert p.bdp_bytes == pytest.approx(Gbps(2.38) * 0.180 / 8)
    assert p.bdp_segments == pytest.approx(p.bdp_bytes / 8948)


def test_bdp_window_saturates_without_loss():
    result = simulate_fluid(wan_params(), duration_s=120.0, warmup_s=30.0)
    assert result.losses == 0
    assert result.mean_throughput_bps == pytest.approx(Gbps(2.38), rel=0.02)


def test_tiny_window_throughput_is_window_over_rtt():
    p = wan_params(max_window_bytes=MB(1))
    result = simulate_fluid(p, duration_s=120.0, warmup_s=30.0)
    expected = MB(1) * 8 / 0.180
    assert result.mean_throughput_bps == pytest.approx(expected, rel=0.05)


def test_oversized_window_provokes_losses():
    p = wan_params(max_window_bytes=3 * wan_params().bdp_bytes,
                   queue_packets=256)
    result = simulate_fluid(p, duration_s=300.0, warmup_s=30.0)
    assert result.losses >= 1
    assert result.mean_throughput_bps < Gbps(2.38)


def test_forced_loss_halves_window():
    p = wan_params()
    result = simulate_fluid(p, duration_s=120.0, force_loss_at_s=60.0)
    assert result.losses == 1
    # window right after the loss is about half the pre-loss window
    idx = int(np.searchsorted(result.time_s, 60.0))
    before = result.window_segments[idx - 1]
    after = result.window_segments[min(idx + 1, len(result.window_segments) - 1)]
    assert after == pytest.approx(before / 2.0, rel=0.1)


def test_recovery_rate_one_segment_per_rtt():
    """After the forced loss, the window grows ~1 segment per RTT —
    the Table 1 recovery model, now measured rather than assumed."""
    p = wan_params()
    result = simulate_fluid(p, duration_s=200.0, force_loss_at_s=100.0)
    t, w = result.time_s, result.window_segments
    lo = int(np.searchsorted(t, 110.0))
    hi = int(np.searchsorted(t, 150.0))
    # linear fit of window growth in avoidance
    slope = np.polyfit(t[lo:hi], w[lo:hi], 1)[0]  # segments per second
    assert slope == pytest.approx(1.0 / 0.180, rel=0.15)


def test_slow_start_ramp_visible():
    result = simulate_fluid(wan_params(), duration_s=30.0)
    w = result.window_segments
    assert w[0] < 10
    assert w[-1] > 100


def test_bytes_transferred_consistent():
    result = simulate_fluid(wan_params(), duration_s=60.0)
    total = result.bytes_transferred()
    approx = result.mean_throughput_bps * 60.0 / 8.0
    assert total == pytest.approx(approx, rel=0.3)


def test_invalid_params():
    with pytest.raises(ProtocolError):
        wan_params(bottleneck_bps=0)
    with pytest.raises(ProtocolError):
        wan_params(mss=0)
    with pytest.raises(ProtocolError):
        wan_params(queue_packets=0)
    with pytest.raises(ProtocolError):
        simulate_fluid(wan_params(), duration_s=0)
