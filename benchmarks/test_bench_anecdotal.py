"""§3.4 — anecdotal systems: Intel E7505 and the quad Itanium-II.

Paper: the dual 2.66 GHz / 533 MHz-FSB E7505 systems reach 4.64 Gb/s
essentially out of the box (timestamps disabled); aggregated flows into
a 1 GHz quad Itanium-II reach 7.2 Gb/s.  Both beat the tuned PE2650 —
the FSB ("the CPU's ability to move, but not process, data") being the
differentiator the conclusion highlights.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_anecdotal_systems(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("anecdotal", quick=True),
        rounds=1, iterations=1)
    report("anecdotal", out.text)
    s = out.data["summary"]
    e7505 = s["e7505_peak_gbps (paper 4.64)"]
    itanium = s["itanium2_aggregate_gbps (paper 7.2)"]

    # E7505 out-of-box in the tuned-PE2650 class or above (paper 4.64;
    # our FSB model reaches ~4.1-4.3 — see EXPERIMENTS.md)
    assert e7505 > 3.8
    # the Itanium-II aggregate clearly exceeds any single-CPU host
    assert itanium > e7505
    assert itanium > 5.5
