"""Cross-validation and stack-profile benchmarks.

Not paper tables: ``validation`` checks that the analytic shortcuts
track the packet-level DES (the property the fast figures rely on);
``stackprofile`` regenerates the §5 "where does the time go" picture.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_validation_analytic_vs_des(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("validation", quick=True),
        rounds=1, iterations=1)
    report("validation", out.text)
    rep = out.data["report"]
    assert rep.rank_agreement()
    assert rep.mean_error() < 0.20


def test_stackprofile_cost_accounting(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("stackprofile", quick=True),
        rounds=1, iterations=1)
    report("stackprofile", out.text)
    detail = out.data["detail"]
    # §3.5.2's conclusion, quantified: data movement is the largest
    # single stage of the tuned flow
    biggest = max(detail.stages, key=lambda s: s.seconds)
    assert biggest.stage == "data movement (FSB + copy)"
    # and the implied bottleneck rate matches the measured ~4.1 Gb/s
    assert detail.predicted_goodput_bps() / 1e9 == pytest.approx(4.1,
                                                                 rel=0.08)
