"""Beyond the paper: FAST TCP vs Reno on the record path.

The paper's Caltech co-authors followed the 2003 record with FAST TCP;
this benchmark shows why: with uncapped (4x BDP) windows over the
Sunnyvale-Geneva bottleneck, Reno sawtooths through congestion losses
while FAST converges loss-free to the full 2.38 Gb/s — dissolving the
Table 1 recovery-time problem.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fast_vs_reno(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fast_tcp", quick=True),
        rounds=1, iterations=1)
    report("fast_tcp", out.text)
    rows = out.data["rows"]

    for row in rows:
        # Reno with uncapped windows loses and underperforms...
        assert row["Reno losses"] >= 1
        assert row["Reno Gb/s"] < 2.3
        # ...FAST converges loss-free at full rate
        assert row["FAST losses"] == 0
        assert row["FAST Gb/s"] == pytest.approx(2.38, abs=0.02)
