"""§3.5.2 — the kernel packet generator and the STREAM comparison.

Paper: pktgen (single-copy, stack-bypassing) peaks at 5.5 Gb/s with
8160-byte packets (~84k packets/s) on the PE2650; observed TCP is about
75% of that, and the 8.5 - 5.5 = 3 Gb/s gap is the host's data
movement.  STREAM: PE4600 = 12.8 Gb/s (~50% above the PE2650) with no
network benefit — memory bandwidth is not the bottleneck.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_pktgen_ceiling(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("pktgen", quick=True),
        rounds=1, iterations=1)
    report("pktgen", out.text)
    s = out.data["summary"]

    assert s["pktgen_gbps (paper 5.5)"] == pytest.approx(5.5, rel=0.05)
    assert s["pktgen_pps (paper ~84k)"] == pytest.approx(84000, rel=0.06)
    assert 0.6 < s["tcp_fraction_of_pktgen (paper ~0.75)"] < 0.9


def test_stream_platforms(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("stream", quick=True),
        rounds=1, iterations=1)
    report("stream", out.text)
    rows = {r["host"]: r["stream_copy_gbps"] for r in out.data["rows"]}

    assert rows["PE4600"] == pytest.approx(12.8, rel=0.01)
    assert rows["PE4600"] / rows["PE2650"] == pytest.approx(1.5, rel=0.05)
    assert abs(rows["IntelE7505"] - rows["PE2650"]) / rows["PE2650"] < 0.05
