"""Figure 3 — Throughput of Stock TCP: 1500- vs 9000-byte MTU.

Regenerates the stock-configuration NTTCP payload sweep, including the
CPU-load contrast (§3.3: ~0.9 vs ~0.4) and the marked dip between 7436
and 8948 bytes.  Paper peaks: 1.8 Gb/s (1500) and 2.7 Gb/s (9000).
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fig3_stock_tcp(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig3", quick=True),
        rounds=1, iterations=1)
    report("fig3", out.text)
    curves = out.data["curves"]
    summary = out.data["summary"]

    # who wins: jumbo frames beat the standard MTU at peak
    assert curves[9000].peak_gbps > curves[1500].peak_gbps
    # by roughly what factor: paper sees 1.8 -> 2.7 (x1.5); we require
    # a clear (>10%) jumbo advantage
    assert curves[9000].peak_gbps / curves[1500].peak_gbps > 1.1
    # absolute peaks in the paper's neighbourhood
    assert curves[1500].peak_gbps == pytest.approx(1.8, rel=0.15)
    assert 1.9 < curves[9000].peak_gbps < 3.1
    # the marked dip exists in [7436, 8948]
    assert summary["dip_9000 in [7436,8948] (paper: marked dip)"] > 0.05
    # CPU load contrast: 1500 saturates, 9000 does not
    assert summary["load_1500 (paper ~0.9)"] > \
        summary["load_9000 (paper ~0.4)"]
