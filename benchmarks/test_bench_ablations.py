"""Ablations: the design choices DESIGN.md calls out, knob by knob.

Not a paper table — these benchmarks isolate each modelled mechanism to
show it carries the effect attributed to it:

* the SMP tax (stock-vs-UP steps),
* the allocator order penalty (8160-vs-9000 MTU spread),
* TCP timestamps (the E7505 ~10% observation),
* interrupt coalescing (latency vs CPU-load trade),
* NAPI and TSO (the paper's 'newer kernels' discussion),
* and the §3.5.3/§5 forward-looking offloads (header splitting,
  OS-bypass, CSA) as projections.
"""

import pytest

from repro.analysis.tables import format_table
from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.sim import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run


def measure(cfg, payload, count=768):
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    return nttcp_run(env, conn, payload, count)


def test_ablation_knobs(benchmark, report):
    base = TuningConfig.fully_tuned(9000)

    def run_all():
        rows = {}
        rows["tuned baseline"] = measure(base, 8948)
        rows["+ SMP kernel"] = measure(base.replace(smp_kernel=True), 8948)
        rows["timestamps off"] = measure(
            base.replace(tcp_timestamps=False), 8948)
        rows["NAPI"] = measure(base.replace(napi=True), 8948)
        rows["TSO"] = measure(base.replace(tso=True), 8948)
        rows["no csum offload"] = measure(
            base.replace(checksum_offload=False), 8948)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [{"config": k,
              "Gb/s": round(v.goodput_gbps, 2),
              "rx load": round(v.receiver_load, 2)}
             for k, v in rows.items()]
    report("ablations", format_table(
        table, title="Ablations around the fully tuned 9000-MTU flow"))

    tuned = rows["tuned baseline"]
    # SMP tax costs throughput (the paper's counterintuitive step,
    # inverted)
    assert rows["+ SMP kernel"].goodput_bps < tuned.goodput_bps * 0.95
    # timestamps cost a few percent of a CPU-bound flow (§3.4 reports
    # ~10% on the E7505; our per-packet model carries ~2-3% — see
    # EXPERIMENTS.md deviations)
    assert rows["timestamps off"].goodput_bps > tuned.goodput_bps * 1.005
    # losing checksum offload hurts
    assert rows["no csum offload"].goodput_bps < tuned.goodput_bps * 0.97
    # NAPI/TSO never hurt and reduce load
    assert rows["NAPI"].goodput_bps > tuned.goodput_bps * 0.97
    assert rows["TSO"].goodput_bps > tuned.goodput_bps * 0.97


def test_ablation_allocator_order_penalty(benchmark, report):
    """The 8160-vs-9000 spread is the allocator's doing: with the order
    penalty zeroed, the two MTUs converge (per-byte costs then favour
    the larger MSS)."""
    import dataclasses

    from repro.hw.calibration import Calibration
    from repro.tools.nttcp import nttcp_run

    def run_pair(cal):
        out = {}
        for mtu, payload in ((8160, 8108), (9000, 8948)):
            env = Environment()
            bb = BackToBack.create(env, TuningConfig.fully_tuned(mtu),
                                   calibration=cal)
            conn = TcpConnection(env, bb.a, bb.b)
            out[mtu] = nttcp_run(env, conn, payload, 512).goodput_bps
        return out

    def run_all():
        return (run_pair(Calibration()),
                run_pair(dataclasses.replace(Calibration(),
                                             alloc_order_usghz=0.0)))

    with_penalty, without = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    spread_with = with_penalty[8160] / with_penalty[9000]
    spread_without = without[8160] / without[9000]
    report("ablation_allocator",
           f"8160/9000 goodput ratio with order penalty: "
           f"{spread_with:.3f}\n"
           f"8160/9000 goodput ratio without           : "
           f"{spread_without:.3f}")
    assert spread_with > 1.0          # 8160 wins, as in Fig. 5
    assert spread_without < spread_with  # the penalty carries the effect


def test_ablation_future_offloads(benchmark, report):
    """§3.5.3 / §5 projections: header splitting, OS-bypass, CSA."""

    def run_all():
        rows = {}
        rows["tuned TCP (8160)"] = measure(
            TuningConfig.fully_tuned(8160), 8108)
        rows["+ header splitting"] = measure(
            TuningConfig.with_header_splitting(8160), 8108)
        rows["OS-bypass"] = measure(
            TuningConfig.os_bypass_projection(9000), 8948, count=1536)
        rows["OS-bypass + CSA"] = measure(
            TuningConfig.os_bypass_projection(9000).replace(csa=True),
            8948, count=1536)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [{"config": k, "Gb/s": round(v.goodput_gbps, 2),
              "rx load": round(v.receiver_load, 2)}
             for k, v in rows.items()]
    report("ablation_offloads", format_table(
        table, title="§3.5.3/§5 offload projections"))

    tcp = rows["tuned TCP (8160)"]
    # header splitting clearly beats plain TCP and cuts CPU load
    assert rows["+ header splitting"].goodput_bps > tcp.goodput_bps * 1.2
    assert rows["+ header splitting"].receiver_load < tcp.receiver_load
    # OS-bypass: CPU load approaching zero (§5)
    assert rows["OS-bypass"].receiver_load < 0.1
    assert rows["OS-bypass"].goodput_bps > tcp.goodput_bps
    # with the I/O bus bypassed too, throughput approaches the wire
    assert rows["OS-bypass + CSA"].goodput_gbps > 8.0
