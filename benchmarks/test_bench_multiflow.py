"""§3.5.2 — multi-flow probes: RX/TX symmetry and the dual-adapter test.

Paper: aggregating GbE flows into (or out of) one 10GbE adapter shows
the transmit and receive paths "of statistically equal performance";
splitting flows across two adapters on independent buses is
"statistically identical" to one adapter — ruling out the PCI-X bus and
the adapter as bottlenecks.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_multiflow_symmetry_and_dual_adapter(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("multiflow", quick=True),
        rounds=1, iterations=1)
    report("multiflow", out.text)
    rx, tx, dual = out.data["rx"], out.data["tx"], out.data["dual"]

    # statistically equal paths (paper); we allow 15% at quick scale
    asym = abs(rx.aggregate_bps - tx.aggregate_bps) / max(
        rx.aggregate_bps, tx.aggregate_bps)
    assert asym < 0.15

    # dual adapters buy nothing: the host, not the bus, is the limit
    assert dual.aggregate_bps < rx.aggregate_bps * 1.15

    # sanity: aggregation actually aggregates (multiple flows active)
    assert rx.n_flows >= 4
    assert all(f > 0 for f in rx.per_flow_bps)
