"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (a table or figure; see
the index in DESIGN.md), prints the same rows/series the paper reports,
and archives the text under ``benchmarks/results/``.  The
pytest-benchmark fixture times the regeneration itself, so
``pytest benchmarks/ --benchmark-only`` both reproduces the numbers and
tracks the simulator's own performance.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Callable: archive + emit one experiment report."""

    def _report(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # echo into the test output (visible with -s / on failure)
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}\n[saved to {path}]")

    return _report
