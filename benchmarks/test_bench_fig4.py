"""Figure 4 — TCP with Oversized (256 KB) Windows + PCI-X burst + UP.

Paper peaks: 2.47 Gb/s (1500) and 3.9 Gb/s (9000); the stock dip between
7436 and 8948 bytes is eliminated.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fig4_oversized_windows(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig4", quick=True),
        rounds=1, iterations=1)
    report("fig4", out.text)
    curves = out.data["curves"]
    summary = out.data["summary"]

    assert curves[1500].peak_gbps == pytest.approx(2.47, rel=0.1)
    assert curves[9000].peak_gbps == pytest.approx(3.9, rel=0.1)
    # the dip that the stock configuration shows is (mostly) gone
    assert summary["dip_9000_bigwin (paper: eliminated)"] < \
        summary["dip_9000_stock"]
    assert summary["dip_9000_bigwin (paper: eliminated)"] < 0.12
