"""Figures 6 and 7 — End-to-end latency vs payload size.

Paper: 19 µs back-to-back / 25 µs through the FastIron 1500 with the
5 µs interrupt-coalescing delay (Fig. 6); ~20% growth from 1 B to
1024 B; turning coalescing off trivially shaves 5 µs, to 14 µs (Fig. 7).
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fig6_latency_with_coalescing(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig6", quick=True),
        rounds=1, iterations=1)
    report("fig6", out.text)
    b2b, sw = out.data["b2b"], out.data["switch"]

    assert b2b.base_latency_us == pytest.approx(19.0, abs=1.5)
    assert sw.base_latency_us == pytest.approx(25.0, abs=1.8)
    # stepwise-linear growth over the payload range (~20% in the paper)
    assert 0.1 < b2b.growth_fraction < 0.45
    lat = b2b.latencies_us
    assert all(a <= b + 0.2 for a, b in zip(lat, lat[1:]))


def test_fig7_latency_without_coalescing(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig7", quick=True),
        rounds=1, iterations=1)
    report("fig7", out.text)
    off, on = out.data["off"], out.data["on"]

    assert off.base_latency_us == pytest.approx(14.0, abs=1.5)
    saved = on.base_latency_us - off.base_latency_us
    assert saved == pytest.approx(5.0, abs=1.0)
