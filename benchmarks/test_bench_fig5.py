"""Figure 5 — Non-standard MTUs with cumulative optimizations.

Paper: peak 4.11 Gb/s at MTU 8160 (a frame fits one 8 KB allocator
block); 4.09 Gb/s peak at MTU 16000 but with clearly higher average.
The figure also marks the theoretical maxima of GbE (1), Myrinet (2)
and Quadrics (3.2) — all beaten.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fig5_nonstandard_mtus(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig5", quick=True),
        rounds=1, iterations=1)
    report("fig5", out.text)
    curves = out.data["curves"]

    peak_8160 = curves[8160].peak_gbps
    peak_16000 = curves[16000].peak_gbps
    # the headline: > 4 Gb/s end-to-end with commodity Ethernet
    assert peak_8160 == pytest.approx(4.11, rel=0.08)
    # "virtually identical" peaks
    assert peak_16000 == pytest.approx(peak_8160, rel=0.12)
    # 16000 wins on average across the sweep (paper: "clearly much
    # higher"); allow equality margin at quick resolution
    assert curves[16000].average_gbps > curves[8160].average_gbps * 0.95
    # beats every competing interconnect's theoretical maximum
    for theoretical in (1.0, 2.0, 3.2):
        assert peak_8160 > theoretical
