"""§3.5.4 — 10GbE versus GbE, Myrinet and QsNet.

Paper (with its 4.11 Gb/s / 19 µs numbers): throughput over 300% better
than GbE, over 120% better than Myrinet, over 80% better than QsNet;
latency ~40% better than GbE and ~half of the peers' TCP/IP layers, but
slower than the native GM/Elan3 APIs.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_interconnect_comparison(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("comparison", quick=True),
        rounds=1, iterations=1)
    report("comparison", out.text)
    comp = out.data["comparison"]

    # throughput: 10GbE/TCP beats every peer, native APIs included
    for key in ("GbE/TCP", "Myrinet/GM", "Myrinet/IP",
                "QsNet/Elan3", "QsNet/IP"):
        assert comp.throughput_advantage(key) > 0, key
    # ordering of the margins matches the paper
    assert comp.throughput_advantage("GbE/TCP") > \
        comp.throughput_advantage("Myrinet/IP") > \
        comp.throughput_advantage("QsNet/IP")
    assert comp.throughput_advantage("GbE/TCP") > 2.5

    # latency: faster than every TCP/IP layer, slower than native APIs
    assert comp.latency_ratio("GbE/TCP") < 1.0
    assert comp.latency_ratio("Myrinet/IP") < 0.75
    assert comp.latency_ratio("QsNet/IP") < 0.75
    assert comp.latency_ratio("Myrinet/GM") > 1.5
    assert comp.latency_ratio("QsNet/Elan3") > 2.0
