"""MTU scan: the allocator sawtooth across the adapter's MTU range.

Generalises the paper's 8160-vs-9000 observation (§3.3): throughput
climbs with MTU but *drops at every power-of-two allocator boundary* —
4050 beats 4500, 8160 beats 9000 — because frames that spill into the
next block order pay the buddy allocator's contiguity penalty and waste
window budget via truesize.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_mtu_scan_sawtooth(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("mtu_scan", quick=True),
        rounds=1, iterations=1)
    report("mtu_scan", out.text)
    rows = {r["mtu"]: r for r in out.data["rows"]}

    # the paper's flagship pair
    assert rows[8160]["goodput_gbps"] > rows[9000]["goodput_gbps"]
    # the same effect one boundary earlier (4 KB block edge)
    assert rows[4050]["goodput_gbps"] > rows[4500]["goodput_gbps"]
    # and the broad trend still rises with MTU
    assert rows[16000]["goodput_gbps"] > rows[1500]["goodput_gbps"] * 1.5
    # block bookkeeping is what the table says it is
    assert rows[8160]["frame_block"] == 8192
    assert rows[9000]["frame_block"] == 16384
