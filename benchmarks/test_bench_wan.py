"""§4 — the WAN record: 2.38 Gb/s Sunnyvale -> Geneva.

Paper: a single TCP stream over the OC-192 + OC-48 path (RTT 180 ms),
socket buffers sized to the bandwidth-delay product, sustains 2.38 Gb/s
(~99% payload efficiency of the OC-48 bottleneck), moves a terabyte in
under an hour, and multiplies the previous Internet2 Land Speed Record
by ~2.5x (23,888,060,000,000,000 m·b/s).
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_wan_land_speed_record(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("wan", quick=True),
        rounds=1, iterations=1)
    report("wan", out.text)
    s = out.data["summary"]
    sweep = out.data["sweep"]

    assert s["tuned_gbps (paper 2.38)"] == pytest.approx(2.38, abs=0.02)
    assert s["payload_efficiency (paper ~0.99)"] > 0.98
    assert s["terabyte_minutes (paper <60)"] < 60.0
    assert s["lsr_metric (paper 2.3888e16)"] == pytest.approx(2.3888e16,
                                                              rel=0.01)
    assert s["x_previous_record (paper 2.5)"] > 2.0
    # packet-level cross-check at scaled distance reaches the bottleneck
    assert s["des_crosscheck_gbps"] == pytest.approx(2.38, rel=0.08)
    # 8 parallel streams also fill the pipe (the LSR's other category)
    assert s["multistream_8_gbps (LSR multi-stream category)"] == \
        pytest.approx(2.38, rel=0.05)

    # the buffer sweep tells the tuning story: BDP-sized wins,
    # undersized starves, oversized suffers congestion losses
    by_label = {o.label: o for o in sweep}
    tuned = by_label["1x BDP buffer"]
    assert tuned.throughput_gbps == max(o.throughput_gbps for o in sweep)
    assert by_label["0.25x BDP buffer"].throughput_gbps < \
        tuned.throughput_gbps * 0.5
    assert by_label["3x BDP buffer"].losses >= 1
