"""§3.3 — the cumulative optimization ladder, step by step.

Paper progression at 9000-byte MTU: 2.7 (stock) -> 3.6 (+PCI-X burst)
-> ~3.2 peak /2.9 avg (+UP kernel) -> 3.9 (+256 KB windows); at 1500:
1.8 -> ~1.85 -> 2.15 -> 2.47.
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_opt_steps_ladder(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("opt_steps", quick=True),
        rounds=1, iterations=1)
    report("opt_steps", out.text)
    results = out.data["results"]

    peaks_9000 = [r.curves[9000].peak_gbps for r in results]
    peaks_1500 = [r.curves[1500].peak_gbps for r in results]

    # each 9000-MTU step at least holds ground, and the ladder climbs
    assert peaks_9000[-1] == max(peaks_9000)
    assert peaks_9000[-1] > peaks_9000[0] * 1.3
    # the burst step is the big one for jumbo frames
    assert peaks_9000[1] > peaks_9000[0]
    # ... but marginal for 1500-byte MTUs (paper: "only a marginal
    # increase in throughput for 1500-byte MTUs")
    gain_1500_burst = peaks_1500[1] / peaks_1500[0] - 1
    gain_9000_burst = peaks_9000[1] / peaks_9000[0] - 1
    assert gain_1500_burst < gain_9000_burst
    # the uniprocessor step helps the 1500 case noticeably
    assert peaks_1500[2] > peaks_1500[1] * 1.05
    # final state matches Fig. 4
    assert peaks_1500[-1] == pytest.approx(2.47, rel=0.1)
    assert peaks_9000[-1] == pytest.approx(3.9, rel=0.1)
