"""Simulator microbenchmarks: the engine's own performance.

Not a paper artifact — these track the DES kernel's cost (events/s,
simulated-segments/s) so regressions in the simulator itself are caught
by the same harness that regenerates the paper.  Multiple rounds, real
statistics (unlike the one-shot experiment benches).
"""

from repro.config import TuningConfig
from repro.net.topology import BackToBack
from repro.sim import Environment, Resource, Store
from repro.tcp.connection import TcpConnection
from repro.tools.nttcp import nttcp_run


def test_engine_event_throughput(benchmark):
    """Raw timeout scheduling/dispatch rate."""

    def run():
        env = Environment()
        for i in range(5000):
            env.timeout(i * 1e-6)
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_engine_process_switching(benchmark):
    """Generator-process resume cost."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(500):
                yield env.timeout(1e-6)

        for _ in range(10):
            env.process(ticker())
        env.run()
        return env.now

    benchmark(run)


def test_resource_contention(benchmark):
    """FCFS queueing through a single server."""

    def run():
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            for _ in range(50):
                req = res.request()
                yield req
                yield env.timeout(1e-7)
                res.release(req)

        for _ in range(20):
            env.process(worker())
        env.run()
        return res.grant_count

    grants = benchmark(run)
    assert grants == 1000


def test_store_pipeline(benchmark):
    """Producer/consumer handoff rate."""

    def run():
        env = Environment()
        store = Store(env)
        n = 2000

        def producer():
            for i in range(n):
                yield store.put(i)

        def consumer():
            for _ in range(n):
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        return store.get_count

    assert benchmark(run) == 2000


def test_tcp_segment_rate(benchmark):
    """End-to-end simulated TCP cost: wall time per simulated segment
    through the full host/NIC/link/stack path."""

    def run():
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        return nttcp_run(env, conn, payload=8948, count=256)

    result = benchmark(run)
    assert result.bytes_delivered == 8948 * 256
