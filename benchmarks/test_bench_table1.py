"""Table 1 — Time to recover from a single packet loss.

Paper's legible cells: Geneva-Chicago at 10 Gb/s, MSS 1460 -> 1 hr
42 min; Geneva-Sunnyvale at 10 Gb/s, MSS 1460 -> 3 hr 51 min; jumbo
MSS cuts both to minutes; the LAN case recovers in milliseconds.

Cross-checked against the fluid model: after a forced loss the window
regrows at one segment per RTT, the assumption behind the table.
"""

import pytest

from repro.analysis.experiments import run_experiment
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.units import Gbps


def test_table1_recovery_times(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("tab1", quick=True),
        rounds=1, iterations=1)
    report("tab1", out.text)
    rows = {(r["path"], r["mss_bytes"]): r["recovery_s"]
            for r in out.data["rows"]}

    assert rows[("Geneva-Chicago", 1460)] == pytest.approx(102.7 * 60,
                                                           rel=0.01)
    assert rows[("Geneva-Sunnyvale", 1460)] == pytest.approx(3.85 * 3600,
                                                             rel=0.01)
    assert rows[("Geneva-Sunnyvale", 8960)] == pytest.approx(37.7 * 60,
                                                             rel=0.02)
    assert rows[("LAN", 1460)] < 0.1


def test_table1_fluid_crosscheck(benchmark, report):
    """The analytic entries assume +1 segment/RTT; the fluid simulator
    measures that rate after a forced loss on a scaled-down path."""
    rtt = 0.120
    params = FluidParams(bottleneck_bps=Gbps(2.4), base_rtt_s=rtt,
                         mss=8948,
                         max_window_bytes=Gbps(2.4) * rtt / 8)
    result = benchmark.pedantic(
        lambda: simulate_fluid(params, duration_s=120.0,
                               force_loss_at_s=60.0),
        rounds=1, iterations=1)
    assert result.losses == 1
    import numpy as np
    t, w = result.time_s, result.window_segments
    lo, hi = np.searchsorted(t, 70.0), np.searchsorted(t, 100.0)
    slope = np.polyfit(t[lo:hi], w[lo:hi], 1)[0]
    assert slope == pytest.approx(1.0 / rtt, rel=0.15)
    report("tab1_fluid",
           f"fluid recovery slope: {slope:.2f} segments/s "
           f"(expected {1 / rtt:.2f} = 1 segment per {rtt * 1e3:.0f} ms RTT)")
