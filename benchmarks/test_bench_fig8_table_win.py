"""Figure 8 and the §3.5.1 window-arithmetic worked example.

Paper: a ~26 KB ideal window only admits two ~9 KB MSS-aligned segments
(~31% loss); with the sender/receiver MSS mismatch (8960 vs 8948) and
33000 bytes of socket memory, the advertised window is 26844 bytes (19%
lost) and the sender can use only 17920 (nearly 50% below the memory).
"""

import pytest

from repro.analysis.experiments import run_experiment


def test_fig8_mss_aligned_window(benchmark, report):
    out = benchmark.pedantic(
        lambda: run_experiment("fig8", quick=True),
        rounds=1, iterations=1)
    report("fig8", out.text)
    s = out.data["summary"]
    mismatch = out.data["mismatch"]

    assert s["mss_allowed_window (paper ~18KB)"] == 17920
    assert s["efficiency (paper ~0.69)"] == pytest.approx(0.673, abs=0.01)
    # the worked example, digit for digit
    assert mismatch.advertised_window == 26844
    assert mismatch.usable_window == 17920
    assert mismatch.advertised_loss == pytest.approx(0.19, abs=0.01)
    assert mismatch.usable_loss == pytest.approx(0.457, abs=0.01)
