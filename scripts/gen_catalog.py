#!/usr/bin/env python
"""Regenerate the instrumentation-point catalog in docs/OBSERVABILITY.md.

The tables between the ``BEGIN/END GENERATED CATALOG`` markers are the
rendered form of ``repro.telemetry.points.CATALOG``
(:func:`render_catalog_markdown`); ``tests/telemetry/test_points_docs.py``
fails whenever they drift from the code.  After adding or editing an
instrumentation point:

    python scripts/gen_catalog.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.telemetry.points import render_catalog_markdown  # noqa: E402

DOC = ROOT / "docs" / "OBSERVABILITY.md"
BEGIN = "<!-- BEGIN GENERATED CATALOG (python scripts/gen_catalog.py) -->\n"
END = "<!-- END GENERATED CATALOG -->\n"


def regenerate(text: str) -> str:
    """``text`` with the marked block replaced by a fresh rendering."""
    start = text.index(BEGIN) + len(BEGIN)
    end = text.index(END)
    return text[:start] + render_catalog_markdown() + text[end:]


def main() -> int:
    old = DOC.read_text(encoding="utf-8")
    new = regenerate(old)
    if new == old:
        print(f"{DOC.relative_to(ROOT)}: catalog already current")
        return 0
    DOC.write_text(new, encoding="utf-8")
    print(f"{DOC.relative_to(ROOT)}: catalog regenerated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
