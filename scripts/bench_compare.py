#!/usr/bin/env python
"""Run the simulator microbenchmarks and gate on regressions.

Runs the pytest-benchmark suite (the engine microbenches by default),
archives the machine-readable results as
``benchmarks/results/BENCH_<rev>.json`` and diffs them against the most
recent previous ``BENCH_*.json``.  Exits non-zero when any engine
microbench (``test_engine_*``) regresses by more than the threshold
(default 20% on best time per round), so CI — or a pre-merge habit —
catches simulator slowdowns the same way the tests catch wrong numbers.

Also measures the *tracing overhead*: the cost the disabled-by-default
instrumentation (guarded ``TraceBuffer.post`` calls) adds to the engine
hot path.  The run fails when the disabled-tracing path is more than
``--trace-threshold`` (default 3%) slower than an untraced baseline —
the "negligible effect" property the paper claims for MAGNET, kept
honest by CI.

The same discipline covers the chaos engine: a run with no fault plan
loaded must cost within ``--chaos-threshold`` (default 2%) of a run
with every chaos hook bypassed, measured on the reference nttcp
transfer and recorded into the archived JSON (under
``repro_metrics.chaos_overhead``).

And the streaming layer: a telemetry session carrying an idle
(no-subscriber) :class:`TelemetryBus` must cost within
``--stream-threshold`` (default 3%) of the same session with no bus at
all, measured on the reference transfer and recorded under
``repro_metrics.stream_overhead`` (``--stream-overhead-only`` runs
just this gate).

The result cache has a warm/cold gate too (``--cache-only`` runs just
this): the Fig. 3 quick sweep against a throwaway cache directory must
run at least ``--cache-speedup`` (default 10x) faster warm than cold,
produce bit-identical data, and the per-entry disk-tier ``get()`` p50
is recorded (under ``repro_metrics.cache``).

Beyond the pytest-benchmark suite the script also records simulator
metrics into the archived JSON (under ``repro_metrics``):

- events-simulated/sec and the mean transmit-train size on the
  reference nttcp workload,
- a deep-queue scheduler microbench gating that the calendar-queue
  backend beats the binary heap by at least ``--scheduler-threshold``
  (default 15%) at ~20k pending timers,
- with ``--figure-sweep``, the Fig. 3 MTU sweep + WAN benchmark wall
  times for legacy+heap vs batched+calendar, their speedup, and a
  bit-identical cross-check of the experiment data.

Finally, ``--lint-clean`` runs reprolint (``python -m repro.lint``, see
docs/LINTING.md) over ``src/repro`` against the committed baseline and
stamps the verdict into the archived record (top-level ``lint_clean``
plus details under ``repro_metrics.lint``) — performance baselines are
only trusted from lint-clean trees.

Usage::

    python scripts/bench_compare.py                 # engine microbenches
    python scripts/bench_compare.py --all           # every benchmark
    python scripts/bench_compare.py --baseline benchmarks/results/BENCH_abc1234.json
    python scripts/bench_compare.py --threshold 0.10
    python scripts/bench_compare.py --trace-overhead-only
    python scripts/bench_compare.py --figure-sweep  # + train/scheduler bench
    python scripts/bench_compare.py --lint-clean    # reprolint gate + stamp
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, List, Optional

ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = ROOT / "benchmarks" / "results"
ENGINE_PREFIX = "test_engine_"


def git_rev() -> str:
    """Short revision of the working tree (``-dirty`` when modified)."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return rev + ("-dirty" if dirty else "")


def run_benchmarks(out_path: pathlib.Path, everything: bool) -> None:
    """Run pytest-benchmark, writing its JSON report to ``out_path``."""
    target = "benchmarks/" if everything else "benchmarks/test_bench_simulator.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "pytest", target, "--benchmark-only",
           f"--benchmark-json={out_path}", "-q"]
    print(f"$ {' '.join(cmd)}")
    result = subprocess.run(cmd, cwd=ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {result.returncode})")


def load_mins(path: pathlib.Path) -> Dict[str, float]:
    """``{test name: best seconds per round}`` from a benchmark JSON.

    The *minimum* round is the robust statistic for CPU-bound
    microbenches: it estimates the true cost with the least scheduling
    noise, where the mean is inflated arbitrarily by machine-load
    outliers and makes the regression gate flaky.
    """
    data = json.loads(path.read_text())
    return {bench["name"]: bench["stats"]["min"]
            for bench in data.get("benchmarks", [])}


def previous_report(current: pathlib.Path) -> Optional[pathlib.Path]:
    """The newest BENCH_*.json that is not the current one."""
    candidates = [p for p in RESULTS_DIR.glob("BENCH_*.json") if p != current]
    return max(candidates, key=lambda p: p.stat().st_mtime, default=None)


def compare(old: Dict[str, float], new: Dict[str, float],
            threshold: float) -> List[str]:
    """Print the per-bench diff; return the names that regressed."""
    regressed: List[str] = []
    width = max((len(n) for n in new), default=4)
    print(f"\n{'benchmark':<{width}}  {'old (s)':>12}  {'new (s)':>12}  delta")
    for name in sorted(new):
        new_mean = new[name]
        old_mean = old.get(name)
        if old_mean is None or old_mean <= 0:
            print(f"{name:<{width}}  {'-':>12}  {new_mean:>12.6f}  (new)")
            continue
        delta = new_mean / old_mean - 1.0
        flag = ""
        if name.startswith(ENGINE_PREFIX) and delta > threshold:
            regressed.append(name)
            flag = "  REGRESSION"
        print(f"{name:<{width}}  {old_mean:>12.6f}  {new_mean:>12.6f}  "
              f"{delta:+7.1%}{flag}")
    return regressed


def measure_engine_metrics() -> Dict[str, float]:
    """Events-simulated/sec and mean train size on the reference workload.

    Runs the same end-to-end TCP workload as the
    ``test_tcp_segment_rate`` microbench (jumbo-frame nttcp over a
    back-to-back pair) and reports throughput of the *simulator itself*:
    total events scheduled, wall time, events/sec, and the mean number
    of frames per transmit train (1.0 when ``REPRO_TRAIN`` batching is
    off, larger when the sender is emitting back-to-back bursts as one
    scheduled unit).
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.config import TuningConfig
    from repro.net.topology import BackToBack
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.tools.nttcp import nttcp_run

    env = Environment()
    bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
    conn = TcpConnection(env, bb.a, bb.b)
    start = perf_counter()
    result = nttcp_run(env, conn, payload=8948, count=512)
    wall = perf_counter() - start
    nic = bb.a.adapters[0]
    return {
        "wall_s": wall,
        "events_scheduled": float(env.events_scheduled),
        "events_per_sec": env.events_scheduled / wall,
        "mean_train_size": nic.mean_train_size(),
        "segments": 512.0,
        "bytes_delivered": float(result.bytes_delivered),
    }


def measure_scheduler_microbench(depth: int = 100_000, rounds: int = 5,
                                 repeats: int = 3) -> Dict[str, float]:
    """Deep-pending-queue scheduler shootout: heap vs calendar.

    Keeps ~``depth`` timers pending while churning ``depth * rounds``
    schedule/dispatch pairs — the regime where the heap pays
    O(log depth) per operation and the calendar queue pays O(1).
    Returns best-of-``repeats`` wall time per backend (interleaved so
    machine drift hits both alike).
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.sim.engine import Environment

    def run(kind: str) -> float:
        env = Environment(scheduler=kind)
        horizon = depth * 1e-6

        def rearm(remaining: int) -> None:
            if remaining:
                env.schedule_call(horizon, rearm, remaining - 1)

        for i in range(depth):
            env.schedule_call((i + 1) * 1e-6, rearm, rounds)
        start = perf_counter()
        env.run()
        return perf_counter() - start

    best = {"heap": float("inf"), "calendar": float("inf")}
    for _ in range(repeats):
        for kind in ("heap", "calendar"):
            best[kind] = min(best[kind], run(kind))
    return best


def check_scheduler_microbench(threshold: float,
                               repeats: int) -> tuple:
    """Gate: the calendar queue must beat the heap by ``threshold``.

    Returns ``(ok, times)`` where ``times`` holds the best wall time per
    backend plus the measured speedup.
    """
    print(f"\nscheduler deep-queue microbench (best of {repeats}, "
          f"~100000 pending timers):")
    times = measure_scheduler_microbench(repeats=repeats)
    speedup = times["heap"] / times["calendar"]
    times["calendar_speedup"] = speedup
    for kind in ("heap", "calendar"):
        print(f"  {kind:<9}  {times[kind]:>10.6f} s")
    if speedup < 1.0 + threshold:
        print(f"\nFAIL: calendar queue is only {speedup:.2f}x the heap on "
              f"the deep-queue microbench (needs >= {1.0 + threshold:.2f}x).")
        return False, times
    print(f"OK: calendar queue is {speedup:.2f}x the heap "
          f"(gate {1.0 + threshold:.2f}x).")
    return True, times


_SWEEP_DRIVER = r"""
import hashlib, json, sys, time
from repro.analysis.experiments import run_experiment
t0 = time.perf_counter()
data = run_experiment(sys.argv[1], quick=True).data
wall = time.perf_counter() - t0
# default=str renders dataclass reprs, which print floats at full repr
# precision — hashing the dump is a bit-identity check.
blob = json.dumps(data, sort_keys=True, default=str)
json.dump({"wall": wall,
           "sha": hashlib.sha256(blob.encode()).hexdigest()}, sys.stdout)
"""


def measure_figure_sweep(repeats: int = 2) -> Dict[str, object]:
    """Figure-sweep speedup: batched+calendar vs legacy+heap.

    Runs the Fig. 3 MTU sweep and the WAN benchmark (quick mode) under
    both data paths — train batching off on the binary heap (the PR 2
    path) vs batching on under the calendar queue — and reports wall
    times, the speedup, and whether the two variants produced
    bit-identical experiment data (the determinism contract: batching
    and the scheduler backend are pure performance knobs).

    Each run happens in a fresh subprocess (both knobs are captured at
    component construction, and a cold interpreter is how experiments
    actually run); variants are interleaved best-of-``repeats`` so
    machine drift hits both alike.
    """
    variants = {
        "legacy": {"REPRO_TRAIN": "0", "REPRO_SCHEDULER": "heap"},
        "batched": {"REPRO_TRAIN": "1", "REPRO_SCHEDULER": "calendar"},
    }
    experiments = ("fig3", "wan")

    def run_one(exp: str, knobs: Dict[str, str]) -> Dict[str, object]:
        env = dict(os.environ, **knobs)
        env["PYTHONPATH"] = (str(ROOT / "src") + os.pathsep
                             + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, "-c", _SWEEP_DRIVER, exp],
            cwd=ROOT, env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SystemExit(f"figure-sweep run failed ({exp}, {knobs}):\n"
                             f"{proc.stderr[-2000:]}")
        return json.loads(proc.stdout)

    walls: Dict[str, Dict[str, float]] = {n: {} for n in variants}
    shas: Dict[str, Dict[str, str]] = {n: {} for n in variants}
    for _ in range(repeats):
        for exp in experiments:
            for name, knobs in variants.items():
                result = run_one(exp, knobs)
                prev = walls[name].get(exp, float("inf"))
                walls[name][exp] = min(prev, result["wall"])
                shas[name][exp] = result["sha"]
    report: Dict[str, object] = {"experiments": "fig3+wan (quick)"}
    total = {n: sum(walls[n].values()) for n in variants}
    for exp in experiments:
        report[exp] = {
            "wall_legacy_s": walls["legacy"][exp],
            "wall_batched_s": walls["batched"][exp],
            "speedup": walls["legacy"][exp] / walls["batched"][exp],
            "bit_identical": shas["legacy"][exp] == shas["batched"][exp],
        }
    report["wall_legacy_s"] = total["legacy"]
    report["wall_batched_s"] = total["batched"]
    report["speedup"] = total["legacy"] / total["batched"]
    report["bit_identical"] = all(report[e]["bit_identical"]
                                  for e in experiments)
    return report


def measure_lint_clean() -> Dict[str, object]:
    """Run reprolint over ``src/repro`` against the committed baseline.

    Returns the verdict metrics; any new findings are printed so the
    log shows *why* a tree is not lint-clean.
    """
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.lint import lint_paths, load_baseline
    baseline_path = ROOT / "reprolint-baseline.json"
    baseline = (load_baseline(baseline_path)
                if baseline_path.is_file() else None)
    result = lint_paths([ROOT / "src" / "repro"], baseline=baseline)
    for finding in result.findings:
        print(finding.render())
    print(f"reprolint: {'clean' if result.ok else 'FAIL'} — "
          f"{len(result.findings)} new finding(s) in "
          f"{result.files} file(s)")
    return {"clean": result.ok, "files": result.files,
            "new_findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed_inline": result.suppressed}


def stamp_lint_clean(out_path: pathlib.Path,
                     metrics: Dict[str, object]) -> None:
    """Stamp the reprolint verdict into the archived BENCH JSON."""
    data = json.loads(out_path.read_text())
    data["lint_clean"] = bool(metrics["clean"])
    data.setdefault("repro_metrics", {})["lint"] = metrics
    out_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_extra_metrics(out_path: pathlib.Path,
                         metrics: Dict[str, Dict]) -> None:
    """Merge the simulator metrics into the archived BENCH JSON."""
    data = json.loads(out_path.read_text())
    data.setdefault("repro_metrics", {}).update(metrics)
    out_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def measure_trace_overhead(repeats: int = 5,
                           events: int = 50_000) -> Dict[str, float]:
    """Time the engine hot path untraced vs guarded-disabled vs enabled.

    The workload mirrors the instrumented simulation loops: a generator
    process doing four pooled-timeout yields per guarded trace post
    (roughly the post density of the TCP pump).  Returns the best-of-
    ``repeats`` wall time per variant:

    - ``baseline``  — no trace code at all,
    - ``disabled``  — ``if trace.enabled: trace.post(...)`` with a
      disabled buffer (what every default run pays),
    - ``enabled``   — the same posts actually recording.
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.sim.engine import Environment
    from repro.sim.trace import TraceBuffer

    def untraced(env: "Environment"):
        timeout = env._fast_timeout
        for _ in range(events):
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)

    def traced(env: "Environment", trace: "TraceBuffer"):
        timeout = env._fast_timeout
        for i in range(events):
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            if trace.enabled:
                trace.post(env.now, "bench.tick", i, qlen=i)

    def run_variant(variant: str) -> float:
        env = Environment()
        if variant == "baseline":
            env.process(untraced(env), name="bench.untraced")
        else:
            trace = TraceBuffer(max_events=events,
                                enabled=(variant == "enabled"))
            env.process(traced(env, trace), name="bench.traced")
        start = perf_counter()
        env.run()
        return perf_counter() - start

    variants = ("baseline", "disabled", "enabled")
    best = {v: float("inf") for v in variants}
    for _ in range(repeats):
        for v in variants:  # interleave so drift hits all variants alike
            best[v] = min(best[v], run_variant(v))
    return best


def measure_chaos_overhead(repeats: int = 5,
                           count: int = 256) -> Dict[str, float]:
    """Time a reference transfer with the chaos hooks bypassed vs idle.

    The chaos engine's contract is that a run with **no plan loaded**
    pays only ambient hook checks (one per component construction plus
    one per cache key).  Three variants, best-of-``repeats``,
    interleaved, each timing topology construction + a full nttcp
    transfer:

    - ``baseline``   — every chaos hook short-circuited (the bypass
      switch: as close to compiled-out as a live process gets),
    - ``disabled``   — the normal no-plan path every default run pays,
    - ``empty_plan`` — an activated but empty ``FaultPlan`` (must be
      byte-identical in behaviour, and near-identical in cost).
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.chaos import FaultPlan, chaos_session, hooks
    from repro.config import TuningConfig
    from repro.net.topology import BackToBack
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.tools.nttcp import nttcp_run

    def timed_transfer() -> float:
        start = perf_counter()
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        nttcp_run(env, conn, payload=8948, count=count)
        return perf_counter() - start

    def run_variant(variant: str) -> float:
        if variant == "baseline":
            hooks._BYPASS = True
            try:
                return timed_transfer()
            finally:
                hooks._BYPASS = False
        if variant == "empty_plan":
            with chaos_session(FaultPlan()):
                return timed_transfer()
        return timed_transfer()

    variants = ("baseline", "disabled", "empty_plan")
    best = {v: float("inf") for v in variants}
    for _ in range(repeats):
        for v in variants:  # interleave so drift hits all variants alike
            best[v] = min(best[v], run_variant(v))
    return best


def check_chaos_overhead(threshold: float, repeats: int) -> tuple:
    """Gate the idle chaos hooks; returns ``(ok, times)``."""
    print(f"\nchaos-overhead bench (best of {repeats}):")
    times = measure_chaos_overhead(repeats=repeats)
    base = times["baseline"]
    for variant in ("baseline", "disabled", "empty_plan"):
        t = times[variant]
        rel = "" if variant == "baseline" else f"  {t / base - 1.0:+7.1%}"
        print(f"  {variant:<10}  {t:>10.6f} s{rel}")
    overhead = times["disabled"] / base - 1.0
    times["disabled_overhead"] = overhead
    if overhead > threshold:
        print(f"\nFAIL: idle chaos-hook overhead {overhead:+.1%} exceeds "
              f"{threshold:.0%} — no-plan runs are no longer near-free.")
        return False, times
    print(f"OK: idle chaos-hook overhead {overhead:+.1%} is within "
          f"{threshold:.0%}.")
    return True, times


def measure_stream_overhead(repeats: int = 5,
                            count: int = 256) -> Dict[str, float]:
    """Time the reference transfer with/without an idle telemetry bus.

    The streaming layer's contract is that carrying a
    :class:`TelemetryBus` with **no consumers** costs nothing beyond
    one truthiness test per would-be publish: no heartbeat tap is
    scheduled, no trace events are re-published, and the run stays
    bit-identical to a bus-less one.  Three variants,
    best-of-``repeats``, interleaved, each timing topology construction
    + a full traced nttcp transfer under a telemetry session:

    - ``baseline`` — ``telemetry_session(trace=True)``, no bus at all,
    - ``idle_bus`` — same session carrying a bus with zero consumers
      (the gated comparison: what every ``--serve``-capable build pays
      when nobody is watching),
    - ``ring``     — bus with one ring subscriber attached
      (informational: the live-streaming price when someone *is*
      watching).
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.config import TuningConfig
    from repro.net.topology import BackToBack
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.telemetry import TelemetryBus, telemetry_session
    from repro.tools.nttcp import nttcp_run

    def timed_transfer() -> float:
        start = perf_counter()
        env = Environment()
        bb = BackToBack.create(env, TuningConfig.oversized_windows(9000))
        conn = TcpConnection(env, bb.a, bb.b)
        nttcp_run(env, conn, payload=8948, count=count)
        return perf_counter() - start

    def run_variant(variant: str) -> float:
        bus = None
        sub = None
        if variant != "baseline":
            bus = TelemetryBus()
            if variant == "ring":
                sub = bus.subscribe("bench")
        try:
            with telemetry_session(trace=True, bus=bus):
                return timed_transfer()
        finally:
            if sub is not None:
                sub.close()

    variants = ("baseline", "idle_bus", "ring")
    best = {v: float("inf") for v in variants}
    for _ in range(repeats):
        for v in variants:  # interleave so drift hits all variants alike
            best[v] = min(best[v], run_variant(v))
    return best


def check_stream_overhead(threshold: float, repeats: int) -> tuple:
    """Gate the idle (no-consumer) streaming hooks; ``(ok, times)``."""
    print(f"\nstream-overhead bench (best of {repeats}):")
    times = measure_stream_overhead(repeats=repeats)
    base = times["baseline"]
    for variant in ("baseline", "idle_bus", "ring"):
        t = times[variant]
        rel = "" if variant == "baseline" else f"  {t / base - 1.0:+7.1%}"
        print(f"  {variant:<9}  {t:>10.6f} s{rel}")
    overhead = times["idle_bus"] / base - 1.0
    times["idle_overhead"] = overhead
    if overhead > threshold:
        print(f"\nFAIL: idle streaming-hook overhead {overhead:+.1%} "
              f"exceeds {threshold:.0%} — an unobserved bus is no "
              f"longer near-free.")
        return False, times
    print(f"OK: idle streaming-hook overhead {overhead:+.1%} is within "
          f"{threshold:.0%}.")
    return True, times


def measure_fabric_benchmark(threshold: float,
                             budget_s: float) -> tuple:
    """The hybrid fluid+DES fabric gate (see docs/FABRICS.md).

    Two checks, returned as ``(ok, metrics)``:

    - **validation** — on the small fabric the envelope covers (k=4
      fat-tree incast, 8 foreground + 32 background flows) the hybrid
      aggregate goodput must stay within ``threshold`` (default 5%) of
      the same workload run entirely in the packet DES;
    - **tractability** — a 1024-flow incast on a k=8 fat-tree must
      complete in hybrid mode within ``budget_s`` wall seconds (the
      all-DES equivalent is out of reach entirely) — the point of the
      hybrid fast path.
    """
    sys.path.insert(0, str(ROOT / "src"))
    from repro.net.fabric import build_fat_tree
    from repro.net.hybrid import FabricSimulation, incast_pairs

    print("\nfabric benchmark (hybrid fluid+DES):")
    small = build_fat_tree(4)
    pairs = incast_pairs(small, 40)
    des = FabricSimulation(small, pairs, n_foreground=8,
                           mode="des").run(duration_s=0.1)
    hyb = FabricSimulation(small, pairs, n_foreground=8,
                           mode="hybrid").run(duration_s=0.1)
    rel_err = (abs(hyb.aggregate_goodput_bps - des.aggregate_goodput_bps)
               / des.aggregate_goodput_bps)
    print(f"  validation (k=4 fat-tree, 8 fg + 32 bg incast):")
    print(f"    all-DES   {des.aggregate_goodput_gbps:>7.3f} Gb/s  "
          f"({des.wall_s:.2f} s wall)")
    print(f"    hybrid    {hyb.aggregate_goodput_gbps:>7.3f} Gb/s  "
          f"({hyb.wall_s:.2f} s wall)")
    print(f"    rel diff  {rel_err:>7.2%}")

    big = build_fat_tree(8)
    scale = FabricSimulation(big, incast_pairs(big, 1024),
                             n_foreground=8,
                             mode="hybrid").run(duration_s=0.2)
    print(f"  1024-flow incast (k=8 fat-tree, hybrid): "
          f"{scale.aggregate_goodput_gbps:.3f} Gb/s in "
          f"{scale.wall_s:.2f} s wall "
          f"({scale.events_scheduled:,} DES events, "
          f"{scale.coupler_ticks} coupling ticks)")

    metrics = {
        "validation_des_gbps": des.aggregate_goodput_gbps,
        "validation_hybrid_gbps": hyb.aggregate_goodput_gbps,
        "validation_rel_err": rel_err,
        "validation_des_wall_s": des.wall_s,
        "validation_hybrid_wall_s": hyb.wall_s,
        "incast1024_gbps": scale.aggregate_goodput_gbps,
        "incast1024_wall_s": scale.wall_s,
        "incast1024_events": float(scale.events_scheduled),
        "incast1024_coupler_ticks": float(scale.coupler_ticks),
    }
    ok = True
    if rel_err > threshold:
        print(f"\nFAIL: hybrid aggregate goodput is {rel_err:.2%} away "
              f"from all-DES (gate {threshold:.0%}).")
        ok = False
    if scale.wall_s > budget_s:
        print(f"\nFAIL: 1024-flow hybrid incast took {scale.wall_s:.1f} s "
              f"(budget {budget_s:.0f} s).")
        ok = False
    if ok:
        print(f"OK: hybrid within {threshold:.0%} of all-DES "
              f"({rel_err:.2%}) and 1024 flows in {scale.wall_s:.1f} s "
              f"(budget {budget_s:.0f} s).")
    return ok, metrics


def measure_cache_bench(speedup_gate: float,
                        repeats: int = 2) -> tuple:
    """Warm/cold result-cache gate on the Fig. 3 quick sweep.

    Runs ``fig3`` (quick) in fresh subprocesses against a throwaway
    cache directory: once cold (every point computed and stored), then
    warm (every point — and the whole experiment output — answered from
    the sharded store).  Three checks, returned as ``(ok, metrics)``:

    - **speedup** — the warm run must be at least ``speedup_gate``
      times faster than the cold one (best-of-``repeats`` warm rounds);
    - **bit-identity** — warm and cold runs must hash to the same
      experiment data (a cache hit is indistinguishable from a
      recompute);
    - **warm p50 latency** — the per-entry disk-tier ``get()`` median,
      measured over every key the sweep stored, using a fresh handle so
      the in-process hot tier cannot flatter the number.
    """
    import statistics
    import tempfile
    from time import perf_counter

    print("\nresult-cache bench (fig3 quick, cold vs warm):")
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        cache_dir = os.path.join(tmp, "cache")

        def run_once() -> Dict[str, object]:
            env = dict(os.environ, REPRO_CACHE="1",
                       REPRO_CACHE_DIR=cache_dir)
            env["PYTHONPATH"] = (str(ROOT / "src") + os.pathsep
                                 + os.environ.get("PYTHONPATH", ""))
            proc = subprocess.run(
                [sys.executable, "-c", _SWEEP_DRIVER, "fig3"],
                cwd=ROOT, env=env, capture_output=True, text=True)
            if proc.returncode != 0:
                raise SystemExit(f"cache-bench run failed:\n"
                                 f"{proc.stderr[-2000:]}")
            return json.loads(proc.stdout)

        cold = run_once()
        warm_wall = float("inf")
        warm_sha = None
        for _ in range(repeats):
            warm = run_once()
            warm_wall = min(warm_wall, warm["wall"])
            warm_sha = warm["sha"]

        # honest per-entry latency: fresh handle, disk tier, every key
        sys.path.insert(0, str(ROOT / "src"))
        from repro.cache import ResultCache
        store = ResultCache(cache_dir)
        keys = store.keys()
        latencies = []
        for key in keys:
            start = perf_counter()
            hit, _ = store.get(key)
            latencies.append(perf_counter() - start)
            if not hit:
                raise SystemExit(f"cache-bench: indexed key {key} did not "
                                 f"read back")
        p50_ms = statistics.median(latencies) * 1e3 if latencies else 0.0

    speedup = cold["wall"] / warm_wall if warm_wall > 0 else float("inf")
    identical = cold["sha"] == warm_sha
    metrics = {
        "experiment": "fig3 (quick)",
        "cold_wall_s": cold["wall"],
        "warm_wall_s": warm_wall,
        "warm_speedup": speedup,
        "bit_identical": identical,
        "entries": float(len(keys)),
        "warm_get_p50_ms": p50_ms,
    }
    print(f"  cold          {cold['wall']:>9.3f} s")
    print(f"  warm          {warm_wall:>9.3f} s  (best of {repeats})")
    print(f"  speedup       {speedup:>9.1f}x  (gate {speedup_gate:.0f}x)")
    print(f"  entries       {len(keys):>9}")
    print(f"  get() p50     {p50_ms:>9.3f} ms  (disk tier, fresh handle)")
    ok = True
    if not identical:
        print("\nFAIL: warm fig3 data differs from the cold run — the "
              "cache returned something the simulator would not have "
              "computed.")
        ok = False
    if speedup < speedup_gate:
        print(f"\nFAIL: warm sweep is only {speedup:.1f}x the cold one "
              f"(gate {speedup_gate:.0f}x).")
        ok = False
    if ok:
        print(f"OK: warm sweep {speedup:.1f}x cold, bit-identical, "
              f"p50 get {p50_ms:.3f} ms.")
    return ok, metrics


def check_trace_overhead(threshold: float, repeats: int) -> bool:
    """Run the overhead bench and report; True when within threshold."""
    print(f"\ntracing-overhead bench (best of {repeats}):")
    times = measure_trace_overhead(repeats=repeats)
    base = times["baseline"]
    for variant in ("baseline", "disabled", "enabled"):
        t = times[variant]
        rel = "" if variant == "baseline" else f"  {t / base - 1.0:+7.1%}"
        print(f"  {variant:<9}  {t:>10.6f} s{rel}")
    overhead = times["disabled"] / base - 1.0
    if overhead > threshold:
        print(f"\nFAIL: disabled-tracing overhead {overhead:+.1%} exceeds "
              f"{threshold:.0%} — the guarded posts are no longer "
              f"near-free.")
        return False
    print(f"OK: disabled-tracing overhead {overhead:+.1%} is within "
          f"{threshold:.0%}.")
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run benchmarks, archive BENCH_<rev>.json, fail on "
                    "engine regressions.")
    parser.add_argument("--all", action="store_true",
                        help="run every benchmark, not just the engine "
                             "microbenches")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="explicit BENCH_*.json to diff against "
                             "(default: newest previous one)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated best-round-time increase "
                             "for test_engine_* benches (default 0.20 = "
                             "20%%)")
    parser.add_argument("--rev", default=None,
                        help="revision label for the output file "
                             "(default: git short rev)")
    parser.add_argument("--trace-threshold", type=float, default=0.03,
                        help="maximum tolerated slowdown of the engine hot "
                             "path from disabled tracing (default 0.03 = "
                             "3%%)")
    parser.add_argument("--trace-repeats", type=int, default=5,
                        help="repeats for the tracing-overhead bench "
                             "(best-of; default 5)")
    parser.add_argument("--trace-overhead-only", action="store_true",
                        help="run only the tracing-overhead bench")
    parser.add_argument("--skip-trace-overhead", action="store_true",
                        help="skip the tracing-overhead bench")
    parser.add_argument("--chaos-threshold", type=float, default=0.02,
                        help="maximum tolerated slowdown of the reference "
                             "transfer from idle (no-plan) chaos hooks "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--chaos-repeats", type=int, default=5,
                        help="repeats for the chaos-overhead bench "
                             "(best-of; default 5)")
    parser.add_argument("--chaos-overhead-only", action="store_true",
                        help="run only the chaos-overhead bench")
    parser.add_argument("--skip-chaos-overhead", action="store_true",
                        help="skip the chaos-overhead bench")
    parser.add_argument("--stream-threshold", type=float, default=0.03,
                        help="maximum tolerated slowdown of the reference "
                             "transfer from an idle (no-consumer) "
                             "telemetry bus (default 0.03 = 3%%)")
    parser.add_argument("--stream-repeats", type=int, default=5,
                        help="repeats for the stream-overhead bench "
                             "(best-of; default 5)")
    parser.add_argument("--stream-overhead-only", action="store_true",
                        help="run only the stream-overhead bench")
    parser.add_argument("--skip-stream-overhead", action="store_true",
                        help="skip the stream-overhead bench")
    parser.add_argument("--scheduler-threshold", type=float, default=0.15,
                        help="minimum calendar-vs-heap advantage on the "
                             "deep-queue microbench (default 0.15 = 15%%)")
    parser.add_argument("--scheduler-repeats", type=int, default=3,
                        help="repeats for the scheduler microbench "
                             "(best-of; default 3)")
    parser.add_argument("--skip-scheduler-bench", action="store_true",
                        help="skip the deep-queue scheduler microbench")
    parser.add_argument("--figure-sweep", action="store_true",
                        help="also run the fig3+wan figure-sweep speedup "
                             "bench (batched+calendar vs legacy+heap; "
                             "adds minutes)")
    parser.add_argument("--fabric-threshold", type=float, default=0.05,
                        help="maximum tolerated hybrid-vs-DES aggregate "
                             "goodput deviation on the validation fabric "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--fabric-budget-s", type=float, default=60.0,
                        help="wall-clock budget for the 1024-flow hybrid "
                             "incast (default 60 s)")
    parser.add_argument("--fabric-only", action="store_true",
                        help="run only the fabric benchmark gate")
    parser.add_argument("--skip-fabric-bench", action="store_true",
                        help="skip the fabric benchmark")
    parser.add_argument("--cache-speedup", type=float, default=10.0,
                        help="minimum warm-over-cold speedup for the fig3 "
                             "quick sweep on the result cache (default 10)")
    parser.add_argument("--cache-only", action="store_true",
                        help="run only the result-cache warm/cold gate")
    parser.add_argument("--skip-cache-bench", action="store_true",
                        help="skip the result-cache warm/cold gate")
    parser.add_argument("--lint-clean", action="store_true",
                        help="run reprolint over src/repro and stamp the "
                             "verdict into BENCH_<rev>.json (standalone "
                             "gate; exits 1 on new findings)")
    args = parser.parse_args(argv)

    if args.lint_clean:
        metrics = measure_lint_clean()
        rev = args.rev or git_rev()
        out_path = RESULTS_DIR / f"BENCH_{rev}.json"
        if out_path.is_file():  # fold into an existing archive if present
            stamp_lint_clean(out_path, metrics)
            print(f"stamped lint verdict into {out_path}")
        return 0 if metrics["clean"] else 1

    if args.trace_overhead_only:
        ok = check_trace_overhead(args.trace_threshold, args.trace_repeats)
        return 0 if ok else 1
    if args.chaos_overhead_only:
        ok, _ = check_chaos_overhead(args.chaos_threshold, args.chaos_repeats)
        return 0 if ok else 1
    if args.stream_overhead_only:
        ok, _ = check_stream_overhead(args.stream_threshold,
                                      args.stream_repeats)
        return 0 if ok else 1
    if args.fabric_only:
        ok, _ = measure_fabric_benchmark(args.fabric_threshold,
                                         args.fabric_budget_s)
        return 0 if ok else 1
    if args.cache_only:
        ok, metrics = measure_cache_bench(args.cache_speedup)
        rev = args.rev or git_rev()
        out_path = RESULTS_DIR / f"BENCH_{rev}.json"
        if out_path.is_file():  # fold into an existing archive if present
            record_extra_metrics(out_path, {"cache": metrics})
            print(f"recorded cache metrics into {out_path}")
        return 0 if ok else 1

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rev = args.rev or git_rev()
    out_path = RESULTS_DIR / f"BENCH_{rev}.json"
    run_benchmarks(out_path, everything=args.all)
    new = load_mins(out_path)
    print(f"\nwrote {out_path} ({len(new)} benchmarks)")

    baseline = args.baseline or previous_report(out_path)
    if baseline is None:
        print("no previous BENCH_*.json to compare against; baseline recorded.")
    else:
        print(f"comparing against {baseline}")
        regressed = compare(load_mins(baseline), new, args.threshold)
        if regressed:
            # One confirmation pass before failing: on a shared/virtual
            # box the best round of a single run still jitters by tens
            # of percent, so a real regression must survive the min of
            # two independent suite runs.
            print(f"\npossible regression(s): {', '.join(regressed)}; "
                  f"rerunning once to confirm...")
            confirm_path = out_path.with_suffix(".confirm.json")
            run_benchmarks(confirm_path, everything=args.all)
            confirm = load_mins(confirm_path)
            confirm_path.unlink()
            for name, best in confirm.items():
                new[name] = min(new.get(name, best), best)
            regressed = compare(load_mins(baseline), new, args.threshold)
        if regressed:
            print(f"\nFAIL: engine microbench regression(s) over "
                  f"{args.threshold:.0%}: {', '.join(regressed)}")
            return 1
        print(f"\nOK: no engine microbench regressed more than "
              f"{args.threshold:.0%}.")

    extra: Dict[str, Dict] = {}
    metrics = measure_engine_metrics()
    extra["engine"] = metrics
    print(f"\nengine metrics (nttcp back-to-back, jumbo, 512 segments):")
    print(f"  events scheduled   {int(metrics['events_scheduled']):>12,}")
    print(f"  events/sec         {metrics['events_per_sec']:>12,.0f}")
    print(f"  mean train size    {metrics['mean_train_size']:>12.2f}")

    sched_ok = True
    if not args.skip_scheduler_bench:
        sched_ok, sched_times = check_scheduler_microbench(
            args.scheduler_threshold, args.scheduler_repeats)
        extra["scheduler_microbench"] = sched_times
    chaos_ok = True
    if not args.skip_chaos_overhead:
        chaos_ok, chaos_times = check_chaos_overhead(
            args.chaos_threshold, args.chaos_repeats)
        extra["chaos_overhead"] = chaos_times
    stream_ok = True
    if not args.skip_stream_overhead:
        stream_ok, stream_times = check_stream_overhead(
            args.stream_threshold, args.stream_repeats)
        extra["stream_overhead"] = stream_times
    fabric_ok = True
    if not args.skip_fabric_bench:
        fabric_ok, fabric_metrics = measure_fabric_benchmark(
            args.fabric_threshold, args.fabric_budget_s)
        extra["fabric"] = fabric_metrics
    cache_ok = True
    if not args.skip_cache_bench:
        cache_ok, cache_metrics = measure_cache_bench(args.cache_speedup)
        extra["cache"] = cache_metrics
    if args.figure_sweep:
        sweep = measure_figure_sweep()
        extra["figure_sweep"] = sweep
        print(f"\nfigure-sweep bench (quick): batched+calendar vs "
              f"legacy+heap")
        for exp in ("fig3", "wan"):
            s = sweep[exp]
            ident = "bit-identical" if s["bit_identical"] else \
                "RESULTS DIFFER"
            print(f"  {exp:<5} legacy {s['wall_legacy_s']:6.2f} s  batched "
                  f"{s['wall_batched_s']:6.2f} s  {s['speedup']:.2f}x  "
                  f"[{ident}]")
        print(f"  total speedup {sweep['speedup']:.2f}x")
        if not sweep["bit_identical"]:
            print("\nFAIL: figure-sweep results are not bit-identical "
                  "between the legacy and batched data paths.")
            record_extra_metrics(out_path, extra)
            return 1
    record_extra_metrics(out_path, extra)
    if (not sched_ok or not chaos_ok or not stream_ok or not fabric_ok
            or not cache_ok):
        return 1
    if not args.skip_trace_overhead:
        if not check_trace_overhead(args.trace_threshold, args.trace_repeats):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
