#!/usr/bin/env python
"""Run the simulator microbenchmarks and gate on regressions.

Runs the pytest-benchmark suite (the engine microbenches by default),
archives the machine-readable results as
``benchmarks/results/BENCH_<rev>.json`` and diffs them against the most
recent previous ``BENCH_*.json``.  Exits non-zero when any engine
microbench (``test_engine_*``) regresses by more than the threshold
(default 20% on mean time per round), so CI — or a pre-merge habit —
catches simulator slowdowns the same way the tests catch wrong numbers.

Also measures the *tracing overhead*: the cost the disabled-by-default
instrumentation (guarded ``TraceBuffer.post`` calls) adds to the engine
hot path.  The run fails when the disabled-tracing path is more than
``--trace-threshold`` (default 3%) slower than an untraced baseline —
the "negligible effect" property the paper claims for MAGNET, kept
honest by CI.

Usage::

    python scripts/bench_compare.py                 # engine microbenches
    python scripts/bench_compare.py --all           # every benchmark
    python scripts/bench_compare.py --baseline benchmarks/results/BENCH_abc1234.json
    python scripts/bench_compare.py --threshold 0.10
    python scripts/bench_compare.py --trace-overhead-only
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, List, Optional

ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = ROOT / "benchmarks" / "results"
ENGINE_PREFIX = "test_engine_"


def git_rev() -> str:
    """Short revision of the working tree (``-dirty`` when modified)."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return rev + ("-dirty" if dirty else "")


def run_benchmarks(out_path: pathlib.Path, everything: bool) -> None:
    """Run pytest-benchmark, writing its JSON report to ``out_path``."""
    target = "benchmarks/" if everything else "benchmarks/test_bench_simulator.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "pytest", target, "--benchmark-only",
           f"--benchmark-json={out_path}", "-q"]
    print(f"$ {' '.join(cmd)}")
    result = subprocess.run(cmd, cwd=ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {result.returncode})")


def load_means(path: pathlib.Path) -> Dict[str, float]:
    """``{test name: mean seconds per round}`` from a benchmark JSON."""
    data = json.loads(path.read_text())
    return {bench["name"]: bench["stats"]["mean"]
            for bench in data.get("benchmarks", [])}


def previous_report(current: pathlib.Path) -> Optional[pathlib.Path]:
    """The newest BENCH_*.json that is not the current one."""
    candidates = [p for p in RESULTS_DIR.glob("BENCH_*.json") if p != current]
    return max(candidates, key=lambda p: p.stat().st_mtime, default=None)


def compare(old: Dict[str, float], new: Dict[str, float],
            threshold: float) -> List[str]:
    """Print the per-bench diff; return the names that regressed."""
    regressed: List[str] = []
    width = max((len(n) for n in new), default=4)
    print(f"\n{'benchmark':<{width}}  {'old (s)':>12}  {'new (s)':>12}  delta")
    for name in sorted(new):
        new_mean = new[name]
        old_mean = old.get(name)
        if old_mean is None or old_mean <= 0:
            print(f"{name:<{width}}  {'-':>12}  {new_mean:>12.6f}  (new)")
            continue
        delta = new_mean / old_mean - 1.0
        flag = ""
        if name.startswith(ENGINE_PREFIX) and delta > threshold:
            regressed.append(name)
            flag = "  REGRESSION"
        print(f"{name:<{width}}  {old_mean:>12.6f}  {new_mean:>12.6f}  "
              f"{delta:+7.1%}{flag}")
    return regressed


def measure_trace_overhead(repeats: int = 5,
                           events: int = 50_000) -> Dict[str, float]:
    """Time the engine hot path untraced vs guarded-disabled vs enabled.

    The workload mirrors the instrumented simulation loops: a generator
    process doing four pooled-timeout yields per guarded trace post
    (roughly the post density of the TCP pump).  Returns the best-of-
    ``repeats`` wall time per variant:

    - ``baseline``  — no trace code at all,
    - ``disabled``  — ``if trace.enabled: trace.post(...)`` with a
      disabled buffer (what every default run pays),
    - ``enabled``   — the same posts actually recording.
    """
    sys.path.insert(0, str(ROOT / "src"))
    from time import perf_counter

    from repro.sim.engine import Environment
    from repro.sim.trace import TraceBuffer

    def untraced(env: "Environment"):
        timeout = env._fast_timeout
        for _ in range(events):
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)

    def traced(env: "Environment", trace: "TraceBuffer"):
        timeout = env._fast_timeout
        for i in range(events):
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            yield timeout(1e-6)
            if trace.enabled:
                trace.post(env.now, "bench.tick", i, qlen=i)

    def run_variant(variant: str) -> float:
        env = Environment()
        if variant == "baseline":
            env.process(untraced(env), name="bench.untraced")
        else:
            trace = TraceBuffer(max_events=events,
                                enabled=(variant == "enabled"))
            env.process(traced(env, trace), name="bench.traced")
        start = perf_counter()
        env.run()
        return perf_counter() - start

    variants = ("baseline", "disabled", "enabled")
    best = {v: float("inf") for v in variants}
    for _ in range(repeats):
        for v in variants:  # interleave so drift hits all variants alike
            best[v] = min(best[v], run_variant(v))
    return best


def check_trace_overhead(threshold: float, repeats: int) -> bool:
    """Run the overhead bench and report; True when within threshold."""
    print(f"\ntracing-overhead bench (best of {repeats}):")
    times = measure_trace_overhead(repeats=repeats)
    base = times["baseline"]
    for variant in ("baseline", "disabled", "enabled"):
        t = times[variant]
        rel = "" if variant == "baseline" else f"  {t / base - 1.0:+7.1%}"
        print(f"  {variant:<9}  {t:>10.6f} s{rel}")
    overhead = times["disabled"] / base - 1.0
    if overhead > threshold:
        print(f"\nFAIL: disabled-tracing overhead {overhead:+.1%} exceeds "
              f"{threshold:.0%} — the guarded posts are no longer "
              f"near-free.")
        return False
    print(f"OK: disabled-tracing overhead {overhead:+.1%} is within "
          f"{threshold:.0%}.")
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run benchmarks, archive BENCH_<rev>.json, fail on "
                    "engine regressions.")
    parser.add_argument("--all", action="store_true",
                        help="run every benchmark, not just the engine "
                             "microbenches")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="explicit BENCH_*.json to diff against "
                             "(default: newest previous one)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated mean-time increase for "
                             "test_engine_* benches (default 0.20 = 20%%)")
    parser.add_argument("--rev", default=None,
                        help="revision label for the output file "
                             "(default: git short rev)")
    parser.add_argument("--trace-threshold", type=float, default=0.03,
                        help="maximum tolerated slowdown of the engine hot "
                             "path from disabled tracing (default 0.03 = "
                             "3%%)")
    parser.add_argument("--trace-repeats", type=int, default=5,
                        help="repeats for the tracing-overhead bench "
                             "(best-of; default 5)")
    parser.add_argument("--trace-overhead-only", action="store_true",
                        help="run only the tracing-overhead bench")
    parser.add_argument("--skip-trace-overhead", action="store_true",
                        help="skip the tracing-overhead bench")
    args = parser.parse_args(argv)

    if args.trace_overhead_only:
        ok = check_trace_overhead(args.trace_threshold, args.trace_repeats)
        return 0 if ok else 1

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rev = args.rev or git_rev()
    out_path = RESULTS_DIR / f"BENCH_{rev}.json"
    run_benchmarks(out_path, everything=args.all)
    new = load_means(out_path)
    print(f"\nwrote {out_path} ({len(new)} benchmarks)")

    baseline = args.baseline or previous_report(out_path)
    if baseline is None:
        print("no previous BENCH_*.json to compare against; baseline recorded.")
    else:
        print(f"comparing against {baseline}")
        regressed = compare(load_means(baseline), new, args.threshold)
        if regressed:
            print(f"\nFAIL: engine microbench regression(s) over "
                  f"{args.threshold:.0%}: {', '.join(regressed)}")
            return 1
        print(f"\nOK: no engine microbench regressed more than "
              f"{args.threshold:.0%}.")
    if not args.skip_trace_overhead:
        if not check_trace_overhead(args.trace_threshold, args.trace_repeats):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
