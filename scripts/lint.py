#!/usr/bin/env python
"""Lint gate: run ruff when available, fall back to a syntax check.

The repository's lint rules live in ``pyproject.toml`` (``[tool.ruff]``
— error-class checks only).  Ruff itself is an optional tool: dev boxes
and CI images that have it get the full check, minimal environments
degrade to ``compileall`` (pure syntax validation) instead of failing
on a missing binary.

Usage::

    python scripts/lint.py            # ruff check (or syntax fallback)
    python scripts/lint.py --strict   # missing ruff is an error
"""

from __future__ import annotations

import argparse
import compileall
import pathlib
import shutil
import subprocess
import sys
from typing import List, Optional

ROOT = pathlib.Path(__file__).resolve().parents[1]
TARGETS = ["src", "tests", "benchmarks", "scripts", "examples"]


def run_ruff(ruff: str) -> int:
    cmd = [ruff, "check", *TARGETS]
    print(f"$ {' '.join(cmd)}")
    return subprocess.run(cmd, cwd=ROOT).returncode


def run_syntax_fallback() -> int:
    print("ruff not found; falling back to a syntax-only check "
          "(python -m compileall).")
    ok = all(
        compileall.compile_dir(str(ROOT / target), quiet=1, force=True)
        for target in TARGETS
        if (ROOT / target).is_dir()
    )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 2) when ruff is not installed "
                             "instead of falling back to a syntax check")
    args = parser.parse_args(argv)

    ruff = shutil.which("ruff")
    if ruff is not None:
        return run_ruff(ruff)
    if args.strict:
        print("error: ruff is not installed (pip install ruff)",
              file=sys.stderr)
        return 2
    return run_syntax_fallback()


if __name__ == "__main__":
    raise SystemExit(main())
