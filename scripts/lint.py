#!/usr/bin/env python
"""Lint gate: reprolint (always) plus ruff when available.

Two layers run here:

* **reprolint** (``python -m repro.lint`` — in-repo, no dependency):
  the AST-based determinism & contract linter described in
  ``docs/LINTING.md``.  It always runs; its findings always gate.
* **ruff** error-class checks (configured in ``pyproject.toml``).
  Ruff is an optional tool: dev boxes and CI images that have it get
  the full check, minimal environments degrade to ``compileall``
  (pure syntax validation) instead of failing on a missing binary.

Usage::

    python scripts/lint.py            # reprolint + ruff (or syntax fallback)
    python scripts/lint.py --strict   # missing ruff is an error
"""

from __future__ import annotations

import argparse
import compileall
import os
import pathlib
import shutil
import subprocess
import sys
from typing import List, Optional

ROOT = pathlib.Path(__file__).resolve().parents[1]
TARGETS = ["src", "tests", "benchmarks", "scripts", "examples"]


def run_reprolint() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(ROOT / "src"), env.get("PYTHONPATH")) if p)
    cmd = [sys.executable, "-m", "repro.lint", "src/repro"]
    print(f"$ {' '.join(cmd)}")
    return subprocess.run(cmd, cwd=ROOT, env=env).returncode


def run_ruff(ruff: str) -> int:
    cmd = [ruff, "check", *TARGETS]
    print(f"$ {' '.join(cmd)}")
    return subprocess.run(cmd, cwd=ROOT).returncode


def run_syntax_fallback() -> int:
    print("ruff not found; falling back to a syntax-only check "
          "(python -m compileall).")
    ok = all(
        compileall.compile_dir(str(ROOT / target), quiet=1, force=True)
        for target in TARGETS
        if (ROOT / target).is_dir()
    )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 2) when ruff is not installed "
                             "instead of falling back to a syntax check")
    args = parser.parse_args(argv)

    reprolint_rc = run_reprolint()

    ruff = shutil.which("ruff")
    if ruff is not None:
        style_rc = run_ruff(ruff)
    elif args.strict:
        print("error: ruff is not installed (pip install ruff)",
              file=sys.stderr)
        style_rc = 2
    else:
        style_rc = run_syntax_fallback()

    return reprolint_rc or style_rc


if __name__ == "__main__":
    raise SystemExit(main())
