#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every ``repro`` module, and for each emits the module summary and
a one-line entry per public class/function (first docstring line).
Regenerate after API changes:

    python scripts/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import repro  # noqa: E402


def first_line(doc: str) -> str:
    return (doc or "").strip().splitlines()[0] if doc else ""


def module_entries(module) -> list:
    entries = []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj):
            entries.append((f"class {name}", first_line(obj.__doc__)))
        elif inspect.isfunction(obj):
            try:
                sig = str(inspect.signature(obj))
            except (TypeError, ValueError):
                sig = "(...)"
            if len(sig) > 48:
                sig = "(...)"
            entries.append((f"{name}{sig}", first_line(obj.__doc__)))
    return entries


#: Hand-written prose emitted ahead of the generated reference.
PREAMBLE = """\
## Parallel execution & caching

Every experiment decomposes into independent simulation points, and two
orthogonal mechanisms exploit that:

* **Parallel sweeps** — `repro.sim.runner.SweepRunner` fans points
  through the persistent warm worker pool (`repro.sim.pool`) and
  collects them in submission order, so results are **bit-identical at
  any job count**.  One long-lived pool is shared across sweeps and
  experiments (`REPRO_POOL_PERSIST=0` reverts to a pool per sweep);
  points travel in order-preserving batches (`REPRO_POOL_CHUNK`
  overrides the size).  Select the worker count with
  `run_experiment(name, jobs=4)`, the `--jobs/-j` CLI flag (`auto` =
  one per core) or the `REPRO_JOBS` environment variable; the default
  is serial.
* **Result cache** — completed points (and whole experiment outputs)
  are memoized under `.repro-cache/` (override with `REPRO_CACHE_DIR`):
  a 256-way sharded store with per-shard append-only indexes, an
  in-process hot tier for repeat reads, and LRU eviction under
  `REPRO_CACHE_MAX_BYTES` (see `docs/CACHING.md`).  Keys are a stable
  hash of the tuning configuration, topology, workload and a
  fingerprint of the `repro` sources — editing the simulator
  invalidates everything it could have influenced, while doc/test
  edits keep the cache warm; a fully-warm sweep never touches the
  worker pool at all.  Enable it with `run_experiment(name,
  cache=True)`, `repro.cache_context(...)` or `REPRO_CACHE=1` (the CLI
  caches by default; `--no-cache` opts out).  Inspect with
  `repro.cache_stats()` / `python -m repro --cache-stats`; drop
  entries with `repro.clear_cache()` / `--clear-cache`.  Corrupt or
  truncated entries are detected, discarded and recomputed.

## Telemetry

`repro.telemetry` instruments every layer: a labelled metrics registry
(counters/gauges/histograms), 47 catalogued trace points riding the
per-component `TraceBuffer` rings, Chrome-trace/JSONL/timeline
exporters, and engine self-profiling.  Activate with
`telemetry_session(...)` (before building the topology) or the CLI
flags `--metrics` / `--trace` / `--trace-jsonl` / `--timeline` /
`--profile`; sweep workers aggregate deterministically, so the metrics
table is identical at any job count.  See `docs/OBSERVABILITY.md`.

## Chaos engineering

`repro.chaos` injects declarative, seeded faults — link flaps, loss
bursts, reordering, corruption, duplicates, switch-buffer degradation,
NIC stalls/resets, CPU contention — described by a JSON `FaultPlan`
and armed with `chaos_session(plan)`, the `--chaos PLAN.json` CLI flag
or `REPRO_CHAOS=plan.json`.  Outcomes are deterministic per plan seed
across both schedulers and both data paths; the empty plan is
byte-identical to chaos off, and the active plan's fingerprint is
folded into every result-cache key so chaotic and clean results never
alias.  `repro.chaos.analyze_goodput` + `render_scorecard` score each
fault's goodput trough, time-to-recover, lost bits and retransmission
storm (the paper's §5 "one loss costs ~1.5 hours" arithmetic:
`repro.analysis.resilience.wan_loss_report`, demo in
`examples/chaos_storm.py`).  With no plan loaded the hooks cost one
`None` check each — `scripts/bench_compare.py` gates that overhead at
≤2%.  See `docs/RESILIENCE.md`.

## Engine performance

Two engine-level switches trade event count for speed with
**bit-identical** simulation results (see `docs/PERFORMANCE.md`):
segment-train batching (`REPRO_TRAIN`, default on) moves contiguous
frame bursts through the NIC/bus/network layers as one scheduled unit,
and the event-queue backend (`REPRO_SCHEDULER=heap|calendar`, or
`Environment(scheduler=...)`) selects between the binary heap and a
self-resizing calendar queue that wins on deep pending queues.
`scripts/bench_compare.py` records events/sec, mean train size and the
scheduler microbench into `benchmarks/results/BENCH_<rev>.json`.
"""


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated by `python scripts/gen_api_docs.py` — one line per",
        "public object; full documentation lives in the docstrings.",
        "",
        PREAMBLE,
    ]
    names = sorted(
        name for _, name, _ in pkgutil.walk_packages(repro.__path__,
                                                     prefix="repro.")
        if not name.startswith("repro.__"))
    for module_name in ["repro"] + names:
        module = importlib.import_module(module_name)
        entries = module_entries(module)
        summary = first_line(module.__doc__)
        lines.append(f"## `{module_name}`")
        lines.append("")
        if summary:
            lines.append(summary)
            lines.append("")
        for signature, doc in entries:
            lines.append(f"* **`{signature}`** — {doc}")
        if entries:
            lines.append("")
    out = pathlib.Path(__file__).resolve().parents[1] / "docs" / "API.md"
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
