"""Power-of-two sk_buff allocator (the mechanism behind the 8160-byte MTU).

Linux allocates packet buffers from pools of power-of-two sized blocks:
512, 1024, 2048, ... bytes.  An 8160-byte MTU lets a whole frame
(payload + TCP/IP + Ethernet headers + skb bookkeeping) fit in a single
8192-byte block, whereas a 9000-byte MTU forces a 16384-byte block and
wastes roughly 7000 bytes (paper §3.3, "Tuning the MTU Size").

Two costs matter and are both modelled here:

* **truesize** — the block size actually charged against socket-buffer
  memory, which shrinks the effective TCP window for wasteful MTUs; and
* **allocation cost** — finding contiguous pages for high-order blocks
  "places far greater stress on the kernel's memory-allocation
  subsystem"; cost grows with the number of pages assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import AllocationError
from repro.telemetry.session import active_metrics
from repro.units import us

__all__ = [
    "block_size_for",
    "block_order",
    "BuddyAllocator",
    "AllocatorStats",
    "SKB_OVERHEAD",
    "PAGE_SIZE",
    "MAX_BLOCK",
]

#: Per-skb bookkeeping bytes charged on top of the frame data
#: (struct sk_buff + shared info, Linux 2.4 era).
SKB_OVERHEAD = 192

#: x86 page size.
PAGE_SIZE = 4096

#: Largest block the allocator will hand out (order-5: 128 KB).
MAX_BLOCK = PAGE_SIZE * 32

#: Smallest block handed out.
MIN_BLOCK = 256


def block_size_for(nbytes: int) -> int:
    """The power-of-two block size that holds ``nbytes``.

    >>> block_size_for(8160 + 18)   # 8160-byte MTU frame fits order-1
    8192
    >>> block_size_for(9000 + 18)   # 9000-byte MTU wastes ~7 KB
    16384
    """
    if nbytes <= 0:
        raise AllocationError(f"allocation size must be positive, got {nbytes}")
    if nbytes > MAX_BLOCK:
        raise AllocationError(
            f"allocation of {nbytes} exceeds max block {MAX_BLOCK}")
    size = MIN_BLOCK
    while size < nbytes:
        size <<= 1
    return size


def block_order(block_bytes: int) -> int:
    """Buddy order of a block: number of pages as a power of two.

    Blocks at or below one page are order 0.
    """
    order = 0
    pages = (block_bytes + PAGE_SIZE - 1) // PAGE_SIZE
    while (1 << order) < pages:
        order += 1
    return order


@dataclass
class AllocatorStats:
    """Counters the tests and benchmarks assert on."""

    allocations: int = 0
    frees: int = 0
    bytes_requested: int = 0
    bytes_allocated: int = 0
    by_block: Dict[int, int] = field(default_factory=dict)

    @property
    def live(self) -> int:
        """Allocations not yet freed."""
        return self.allocations - self.frees

    @property
    def waste_fraction(self) -> float:
        """Fraction of allocated bytes that is padding."""
        if self.bytes_allocated == 0:
            return 0.0
        return 1.0 - self.bytes_requested / self.bytes_allocated


class BuddyAllocator:
    """Cost-and-accounting model of the kernel block allocator.

    This is not a memory manager (nothing is stored); it computes the
    block size, tracks outstanding bytes, and prices each allocation.

    Parameters
    ----------
    base_cost_s:
        Cost of an order-0 allocation (seconds of CPU).
    order_penalty_s:
        Extra cost per buddy order above zero — the "harder to find the
        contiguous pages" effect.  The default is calibrated in
        :mod:`repro.hw.calibration`.
    """

    def __init__(self, base_cost_s: float = us(0.15),
                 order_penalty_s: float = us(0.55),
                 trace: Any = None, clock: Any = None):
        if base_cost_s < 0 or order_penalty_s < 0:
            raise AllocationError("allocator costs cannot be negative")
        self.base_cost_s = base_cost_s
        self.order_penalty_s = order_penalty_s
        self.stats = AllocatorStats()
        self._outstanding: Dict[int, int] = {}
        self._next_id = 0
        # Optional instrumentation: `trace` is the owning host's
        # TraceBuffer, `clock` anything with a .now (the Environment).
        self.trace = trace
        self.clock = clock
        metrics = active_metrics()
        if metrics is not None:
            self._c_alloc = metrics.counter("skbuff.allocs")
            self._c_free = metrics.counter("skbuff.frees")
            self._c_waste = metrics.counter("skbuff.waste.bytes")
        else:
            self._c_alloc = self._c_free = self._c_waste = None

    # -- allocation ------------------------------------------------------------
    def alloc(self, nbytes: int) -> "Allocation":
        """Allocate a block holding ``nbytes``; returns the handle."""
        block = block_size_for(nbytes)
        self._next_id += 1
        handle = Allocation(self._next_id, nbytes, block,
                            self.alloc_cost(nbytes))
        self._outstanding[handle.ident] = block
        st = self.stats
        st.allocations += 1
        st.bytes_requested += nbytes
        st.bytes_allocated += block
        st.by_block[block] = st.by_block.get(block, 0) + 1
        if self._c_alloc is not None:
            self._c_alloc.inc()
            self._c_waste.inc(block - nbytes)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self._now(), "skbuff.alloc", handle.ident,
                       nbytes=nbytes, block=block,
                       order=block_order(block))
        return handle

    def free(self, handle: "Allocation") -> None:
        """Release ``handle``; double frees raise."""
        if self._outstanding.pop(handle.ident, None) is None:
            raise AllocationError(f"double free of allocation {handle.ident}")
        self.stats.frees += 1
        if self._c_free is not None:
            self._c_free.inc()
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self._now(), "skbuff.free", handle.ident,
                       block=handle.block)

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def alloc_cost(self, nbytes: int) -> float:
        """CPU seconds to allocate a block for ``nbytes``."""
        order = block_order(block_size_for(nbytes))
        return self.base_cost_s + order * self.order_penalty_s

    @property
    def outstanding_bytes(self) -> int:
        """Total truesize of live allocations."""
        return sum(self._outstanding.values())


@dataclass(frozen=True)
class Allocation:
    """Handle to one live block."""

    ident: int
    requested: int
    block: int
    cost_s: float

    @property
    def waste(self) -> int:
        """Padding bytes in this block."""
        return self.block - self.requested
