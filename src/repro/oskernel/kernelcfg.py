"""Kernel build configuration: SMP vs UP, old-API vs NAPI receive.

The paper's "counterintuitive optimization" replaces the SMP kernel with
a uniprocessor build: the P4 Xeon SMP architecture pins each interrupt to
a single CPU, and the SMP kernel's locking and cache-line bouncing taxes
every per-packet operation without buying any receive-path parallelism.

:class:`KernelConfig` turns those qualitative statements into two
multipliers used by the cost model:

* ``per_packet_tax`` — factor on every per-packet kernel cost, and
* ``irq_tax`` — factor on interrupt entry/exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TuningConfig

__all__ = ["KernelConfig", "SMP_PER_PACKET_TAX", "SMP_IRQ_TAX",
           "NAPI_RX_DISCOUNT"]

#: SMP locking / cache-bounce multiplier on per-packet costs.  Calibrated
#: so the UP switch reproduces the paper's ~10% (9000 MTU) and ~20-25%
#: (1500 MTU) gains together with the queueing effects.
SMP_PER_PACKET_TAX = 1.18

#: SMP multiplier on interrupt entry/exit (all interrupts land on CPU0).
SMP_IRQ_TAX = 1.35

#: NAPI processes packets outside interrupt context: discount on the
#: per-packet receive cost when multiple frames are handled per poll.
NAPI_RX_DISCOUNT = 0.75


@dataclass(frozen=True)
class KernelConfig:
    """Derived kernel-build properties for a tuning state."""

    smp: bool
    napi: bool

    @classmethod
    def from_tuning(cls, config: TuningConfig) -> "KernelConfig":
        """Kernel build matching a :class:`TuningConfig`."""
        return cls(smp=config.smp_kernel, napi=config.napi)

    @property
    def per_packet_tax(self) -> float:
        """Multiplier on per-packet stack processing costs."""
        return SMP_PER_PACKET_TAX if self.smp else 1.0

    @property
    def irq_tax(self) -> float:
        """Multiplier on interrupt handling costs."""
        return SMP_IRQ_TAX if self.smp else 1.0

    def rx_batch_cost_factor(self, batch: int) -> float:
        """Per-packet receive cost factor when ``batch`` frames are
        processed in one interrupt/poll.

        The old API queues every frame separately in interrupt context,
        so batching does not help.  NAPI only notes "packets are ready"
        in the interrupt and processes the batch in softirq context,
        cutting the per-packet cost for every frame after the first.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if not self.napi or batch == 1:
            return 1.0
        # first frame full price, the rest discounted
        return (1.0 + (batch - 1) * NAPI_RX_DISCOUNT) / batch

    def describe(self) -> str:
        """Short label, e.g. ``"UP+NAPI"``."""
        base = "SMP" if self.smp else "UP"
        return f"{base}+NAPI" if self.napi else base
