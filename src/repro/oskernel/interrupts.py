"""Interrupt moderation: fixed and adaptive coalescing policies.

The paper's adapters use a fixed interrupt delay (5 µs, the Fig. 6/7
knob): every delay microsecond bought CPU relief at full load and cost
exactly that microsecond at low load.  Later e1000-class hardware
shipped *adaptive* moderation (ITR): the delay tracks the observed
arrival rate, so a quiet link interrupts immediately while a saturated
one batches aggressively — resolving the latency/throughput trade the
paper had to choose between.

:class:`InterruptModerator` implements both policies behind one
interface; the NIC consults it for the delay to arm after each first
unannounced frame.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.units import us

__all__ = ["InterruptModerator", "ADAPTIVE_MAX_DELAY_S"]

#: Ceiling for the adaptive policy's delay.
ADAPTIVE_MAX_DELAY_S = us(20.0)

#: EWMA weight for inter-arrival tracking.
_EWMA_ALPHA = 0.25

#: Arrival gaps above this are "idle"; interrupt immediately.  Saturated
#: 10GbE inter-arrival gaps are 1-13 µs (16 KB frames at line rate), so
#: anything slower is request-response traffic that wants low latency.
_IDLE_GAP_S = us(15.0)


class InterruptModerator:
    """Decides the coalescing delay for each interrupt arming.

    Parameters
    ----------
    base_delay_s:
        The configured fixed delay (the paper's 5 µs).
    adaptive:
        When True, scale the delay with the observed packet rate
        instead of using the fixed value.
    """

    def __init__(self, base_delay_s: float, adaptive: bool = False,
                 max_delay_s: float = ADAPTIVE_MAX_DELAY_S):
        if base_delay_s < 0:
            raise ConfigError("coalescing delay cannot be negative")
        if max_delay_s < 0:
            raise ConfigError("max delay cannot be negative")
        self.base_delay_s = base_delay_s
        self.adaptive = adaptive
        self.max_delay_s = max_delay_s
        self._last_arrival_s: Optional[float] = None
        self._ewma_gap_s: Optional[float] = None
        self.arrivals = 0

    def note_arrival(self, now_s: float) -> None:
        """Record a frame arrival (drives the adaptive estimate)."""
        self.arrivals += 1
        if self._last_arrival_s is not None:
            gap = now_s - self._last_arrival_s
            if gap >= 0:
                if self._ewma_gap_s is None:
                    self._ewma_gap_s = gap
                else:
                    self._ewma_gap_s += _EWMA_ALPHA * (gap - self._ewma_gap_s)
        self._last_arrival_s = now_s

    def arming_delay_s(self) -> float:
        """The delay to use for the next interrupt arming."""
        if not self.adaptive:
            return self.base_delay_s
        gap = self._ewma_gap_s
        if gap is None or gap >= _IDLE_GAP_S:
            # quiet link: do not tax latency
            return 0.0
        # busy link: wait long enough to batch a few frames, capped
        delay = 3.0 * gap
        return min(delay, self.max_delay_s)

    @property
    def estimated_rate_pps(self) -> float:
        """Current packet-rate estimate (0 when unknown/idle)."""
        if not self._ewma_gap_s:
            return 0.0
        return 1.0 / self._ewma_gap_s
