"""``/proc/sys`` emulation: the interface the paper tunes through.

The WAN section of the paper configures hosts with literal ``echo ... >
/proc/sys/net/ipv4/tcp_rmem`` commands.  :class:`SysctlTable` reproduces
that interface on top of :class:`~repro.config.TuningConfig`, so examples
can be written exactly like the paper's recipe:

    >>> t = SysctlTable()
    >>> t.write("net/ipv4/tcp_rmem", "4096 87380 33554432")
    >>> t.write("net/core/rmem_max", "33554432")
    >>> cfg = t.apply(TuningConfig.stock())
    >>> cfg.tcp_rmem
    33554432
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.config import TuningConfig
from repro.errors import SysctlError

__all__ = ["SysctlTable"]


def _parse_rmem(value: str) -> int:
    """tcp_rmem/tcp_wmem triplets: ``min default max`` — we adopt max,
    matching how the paper sizes buffers to the BDP."""
    parts = value.split()
    if not 1 <= len(parts) <= 3:
        raise SysctlError(f"expected 1-3 integers, got {value!r}")
    try:
        numbers = [int(p) for p in parts]
    except ValueError as exc:
        raise SysctlError(f"non-integer sysctl value {value!r}") from exc
    if any(n <= 0 for n in numbers):
        raise SysctlError(f"sysctl values must be positive: {value!r}")
    return numbers[-1]


def _parse_int(value: str) -> int:
    try:
        n = int(value.strip())
    except ValueError as exc:
        raise SysctlError(f"non-integer sysctl value {value!r}") from exc
    if n < 0:
        raise SysctlError(f"sysctl value must be non-negative: {value!r}")
    return n


def _parse_bool(value: str) -> bool:
    n = _parse_int(value)
    if n not in (0, 1):
        raise SysctlError(f"boolean sysctl takes 0 or 1, got {value!r}")
    return bool(n)


class SysctlTable:
    """A writable view of the networking sysctls the paper touches.

    Writes are validated immediately; :meth:`apply` folds the accumulated
    writes into a :class:`TuningConfig`.
    """

    #: key -> (parser, TuningConfig field)
    _KEYS: Dict[str, Tuple[Callable[[str], object], str]] = {
        "net/ipv4/tcp_rmem": (_parse_rmem, "tcp_rmem"),
        "net/ipv4/tcp_wmem": (_parse_rmem, "tcp_wmem"),
        "net/core/rmem_max": (_parse_int, "tcp_rmem"),
        "net/core/wmem_max": (_parse_int, "tcp_wmem"),
        "net/ipv4/tcp_timestamps": (_parse_bool, "tcp_timestamps"),
        "net/ipv4/tcp_window_scaling": (_parse_bool, "window_scaling"),
    }

    def __init__(self) -> None:
        self._values: Dict[str, object] = {}
        self._raw: Dict[str, str] = {}

    @staticmethod
    def _normalize(key: str) -> str:
        key = key.strip().lstrip("/")
        if key.startswith("proc/sys/"):
            key = key[len("proc/sys/"):]
        return key.replace(".", "/")

    def write(self, key: str, value: str) -> None:
        """``echo value > /proc/sys/<key>``."""
        norm = self._normalize(key)
        entry = self._KEYS.get(norm)
        if entry is None:
            raise SysctlError(f"unknown sysctl {key!r}")
        parser, attr = entry
        self._values[attr] = parser(value)
        self._raw[norm] = value

    def read(self, key: str) -> str:
        """Last raw value written (``cat /proc/sys/<key>``)."""
        norm = self._normalize(key)
        if norm not in self._KEYS:
            raise SysctlError(f"unknown sysctl {key!r}")
        if norm not in self._raw:
            raise SysctlError(f"sysctl {key!r} has not been written")
        return self._raw[norm]

    def apply(self, config: TuningConfig) -> TuningConfig:
        """``config`` with every accumulated write applied."""
        if not self._values:
            return config
        return config.replace(**self._values)

    def run_script(self, script: str) -> None:
        """Execute a block of ``echo ... > /proc/sys/...`` lines.

        Lines that are empty, comments, or non-echo commands (the paper's
        recipe also contains ``/sbin/ifconfig`` lines, handled elsewhere)
        are skipped.
        """
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#") or not line.startswith("echo"):
                continue
            try:
                rest = line[len("echo"):]
                value, _, target = rest.partition(">")
            except ValueError as exc:  # pragma: no cover - defensive
                raise SysctlError(f"cannot parse line {line!r}") from exc
            if not target.strip():
                raise SysctlError(f"echo without redirect target: {line!r}")
            self.write(target.strip(), value.strip().strip('"'))
