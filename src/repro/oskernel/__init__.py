"""Linux-2.4-style kernel substrate: allocator, sk_buffs, sysctl, costs.

This package models the *software* half of the paper's data path: the
power-of-two sk_buff allocator whose block sizes explain the 8160-byte
MTU result, truesize-based socket-buffer accounting, the SMP/UP kernel
distinction, syscall and copy costs, and the old-API vs NAPI receive
paths.
"""

from repro.oskernel.allocator import BuddyAllocator, block_size_for, block_order
from repro.oskernel.skbuff import SkBuff
from repro.oskernel.sysctl import SysctlTable
from repro.oskernel.kernelcfg import KernelConfig
from repro.oskernel.copyengine import CopyEngine

__all__ = [
    "BuddyAllocator",
    "block_size_for",
    "block_order",
    "SkBuff",
    "SysctlTable",
    "KernelConfig",
    "CopyEngine",
]
