"""Data-movement costs: copies, checksums and the memory bus.

The paper's central finding is that "the host software's ability to move
data between every component in the system is likely the bottleneck":
the standard IP stack is effectively *triple-copy* (DMA into kernel
memory, checksum pass, copy to user space) while the kernel packet
generator is single-copy — and the observed TCP throughput is ~75% of
pktgen's 5.5 Gb/s.

:class:`CopyEngine` prices per-byte operations against the host's
STREAM-style copy bandwidth.  A copy reads and writes every byte; a
checksum only reads.  Offloading the checksum to the NIC removes that
pass (the default on this adapter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CopyEngine"]


@dataclass(frozen=True)
class CopyEngine:
    """Per-byte cost model bound to a host's memory subsystem.

    Parameters
    ----------
    stream_copy_bps:
        Measured STREAM *copy* bandwidth in bit/s (counts read+write
        traffic once, like the STREAM benchmark reports).
    read_bps:
        Pure-read bandwidth (checksum pass); defaults to 1.6x copy.
    """

    stream_copy_bps: float
    read_bps: float = 0.0

    def __post_init__(self) -> None:
        if self.stream_copy_bps <= 0:
            raise ConfigError("stream_copy_bps must be positive")
        if self.read_bps <= 0:
            object.__setattr__(self, "read_bps", self.stream_copy_bps * 1.6)

    # -- per-operation costs (seconds) -------------------------------------
    def copy_time(self, nbytes: int) -> float:
        """One memcpy of ``nbytes`` (user<->kernel copy)."""
        return nbytes * 8.0 / self.stream_copy_bps

    def checksum_time(self, nbytes: int) -> float:
        """One in-CPU Internet checksum pass over ``nbytes``."""
        return nbytes * 8.0 / self.read_bps

    def rx_byte_time(self, nbytes: int, checksum_offload: bool) -> float:
        """Receive-path per-byte cost: kernel->user copy, plus a checksum
        pass when the NIC does not verify it."""
        t = self.copy_time(nbytes)
        if not checksum_offload:
            t += self.checksum_time(nbytes)
        return t

    def tx_byte_time(self, nbytes: int, checksum_offload: bool) -> float:
        """Transmit-path per-byte cost: user->kernel copy, plus a checksum
        pass when not offloaded (Linux folds it into the copy at a
        discount; we charge the read-pass price)."""
        t = self.copy_time(nbytes)
        if not checksum_offload:
            t += self.checksum_time(nbytes)
        return t
