"""sk_buff: the unit of data moving through the simulated stack.

An :class:`SkBuff` describes one Ethernet frame's worth of data together
with its kernel accounting (``truesize``), exactly the quantity Linux
charges against socket buffers.  Frames are *descriptors only* — no
payload bytes are stored — so a simulated multi-gigabit flow costs a few
hundred bytes of Python per packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.oskernel.allocator import SKB_OVERHEAD, block_size_for

__all__ = ["SkBuff", "ETH_HEADER", "ETH_OVERHEAD_WIRE", "IP_HEADER",
           "TCP_HEADER", "TCP_TIMESTAMP_OPT"]

#: Ethernet MAC header + frame check sequence (bytes in the frame).
ETH_HEADER = 18

#: Extra wire bytes per frame that never reach memory: preamble (8) +
#: inter-frame gap (12).
ETH_OVERHEAD_WIRE = 20

#: IPv4 header without options.
IP_HEADER = 20

#: TCP header without options.
TCP_HEADER = 20

#: TCP timestamp option bytes (10 + 2 padding), consumed from the MSS
#: when timestamps are enabled.
TCP_TIMESTAMP_OPT = 12

_ids = itertools.count(1)


@dataclass
class SkBuff:
    """One frame descriptor.

    Attributes
    ----------
    payload:
        TCP payload bytes carried.
    headers:
        IP + TCP (+options) bytes.
    kind:
        ``"data"``, ``"ack"``, ``"udp"`` or ``"raw"`` (pktgen).
    seq, end_seq, ack:
        TCP sequence bookkeeping (bytes).
    conn:
        Opaque connection identifier for demultiplexing at the receiver.
    sent_at:
        Simulation time the frame entered the wire path (for RTT).
    meta:
        Free-form extras (trace tags, flow ids).
    """

    payload: int
    headers: int = IP_HEADER + TCP_HEADER
    kind: str = "data"
    seq: int = 0
    end_seq: int = 0
    ack: int = -1
    conn: Any = None
    sent_at: float = 0.0
    ident: int = field(default_factory=lambda: next(_ids))
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload < 0:
            raise ValueError(f"negative payload: {self.payload}")
        if self.headers < 0:
            raise ValueError(f"negative headers: {self.headers}")
        # Sizes are pure functions of the immutable payload/headers pair
        # and are read on every hop of the data path, so they are
        # precomputed here instead of recomputed behind properties.
        #
        # frame_bytes: bytes stored in memory / crossing the I/O bus
        #   (payload + IP/TCP headers + Ethernet header).
        # wire_bytes: bytes occupying the wire, incl. preamble and IFG.
        # truesize: kernel memory charged for this skb — the
        #   power-of-two data block (the 2.4-era ``struct sk_buff``
        #   itself lives in a separate slab, counted via
        #   :data:`SKB_OVERHEAD` where relevant).  This is the quantity
        #   that makes an 8160-byte MTU fit an 8192-byte block while
        #   9000 bytes needs 16384 (paper §3.3).
        self.frame_bytes = self.payload + self.headers + ETH_HEADER
        self.wire_bytes = self.frame_bytes + ETH_OVERHEAD_WIRE
        self.truesize = block_size_for(self.frame_bytes)

    def copy_for_retransmit(self) -> "SkBuff":
        """A fresh descriptor with the same TCP identity (new frame id)."""
        return SkBuff(payload=self.payload, headers=self.headers,
                      kind=self.kind, seq=self.seq, end_seq=self.end_seq,
                      ack=self.ack, conn=self.conn,
                      meta=dict(self.meta, retransmit=True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SkBuff #{self.ident} {self.kind} seq={self.seq}"
                f" len={self.payload} ack={self.ack}>")


def ip_tcp_header_bytes(timestamps: bool) -> int:
    """IP+TCP header bytes for a data segment given the timestamp option."""
    return IP_HEADER + TCP_HEADER + (TCP_TIMESTAMP_OPT if timestamps else 0)
