"""Stable cache keys: canonical hashing of configs, tasks and code.

Every memoized result is a pure function of (tuning configuration,
topology/workload parameters, code), so the key layer reduces arbitrary
nested inputs — dataclasses, dicts, numpy arrays, floats — to one
deterministic SHA-256.  The semantics here are *frozen*: any change to
:func:`stable_key` or :func:`_canon` silently invalidates every cache
in the wild, so new key ingredients (like the chaos plan fingerprint)
are folded in additively and only when active.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Dict, Optional

from repro.chaos.hooks import active_plan_fingerprint

__all__ = ["ambient_key_material", "code_fingerprint", "default_cache_dir",
           "stable_key"]


def _knobs():
    # Lazy: repro.core.__init__ transitively imports repro.cache, so a
    # module-level import here would be circular.  First call pays the
    # package import; sys.modules caches the rest.
    from repro.core import knobs
    return knobs


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    env = _knobs().env_value("REPRO_CACHE_DIR")
    return pathlib.Path(env) if env else pathlib.Path.cwd() / ".repro-cache"


def ambient_key_material() -> Dict[str, str]:
    """Raw non-default values of every ambient-keyed environment knob.

    Delegates to :func:`repro.core.knobs.ambient_key_material`; lives
    here too so the key layer owns one complete list of its
    ingredients (config + code fingerprint + chaos fingerprint +
    ambient knobs) and so lint rule RPR006 can check the wiring
    statically.
    """
    return _knobs().ambient_key_material()


# ---------------------------------------------------------------------------
# Code fingerprint
# ---------------------------------------------------------------------------

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Part of every cache key: cached results survive edits *outside* the
    package (docs, tests, notebooks) but any change to the simulator
    itself misses the cache.  Computed once per process; the persistent
    worker pool ships the parent's value into workers via
    ``REPRO_CODE_FINGERPRINT`` so no worker ever repeats the source
    walk.
    """
    override = _knobs().env_value("REPRO_CODE_FINGERPRINT")
    if override:
        return override
    global _fingerprint
    if _fingerprint is None:
        import repro

        pkg = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(pkg.rglob("*.py")):
            digest.update(str(path.relative_to(pkg)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


# ---------------------------------------------------------------------------
# Stable keys
# ---------------------------------------------------------------------------

def _canon(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable primitives, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; avoids json float formatting drift
        return f"f:{obj!r}"
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (json.dumps(_canon(k), sort_keys=True), _canon(v))
            for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(
            json.dumps(_canon(v), sort_keys=True) for v in obj)}
    tolist = getattr(obj, "tolist", None)  # numpy arrays and scalars
    if callable(tolist):
        return {"__array__": _canon(tolist())}
    return {"__repr__": f"{type(obj).__module__}.{type(obj).__qualname__}:"
                        f"{obj!r}"}


def stable_key(*parts: Any) -> str:
    """A stable hex key for a tuple of (nested) inputs.

    Dataclasses (``TuningConfig``, ``HostSpec``, ``Calibration``, ...)
    hash by type + field values, so changing *any* field produces a
    different key.

    When a non-empty chaos fault plan is active its fingerprint is
    folded into every key, so results computed under fault injection can
    never alias clean results (or results under a different plan).  With
    no plan — or an empty one, which cannot affect results — the keys
    are byte-identical to a chaos-free build.

    Result-affecting environment knobs (the ``keyed_via="ambient"``
    rows of :data:`repro.core.knobs.ENV_KNOBS` — hybrid-mode gating and
    the coupling tick) fold in the same additive way: only when set to
    a non-default value.  Before this, ``REPRO_HYBRID=0`` (forced
    all-DES) could alias a cached hybrid-mode result under the same
    key; reprolint rule RPR006 now guards the completeness of that
    material statically.
    """
    canon_parts = [_canon(p) for p in parts]
    chaos_fp = active_plan_fingerprint()
    if chaos_fp is not None:
        canon_parts.append({"__chaos__": chaos_fp})
    ambient = ambient_key_material()
    if ambient:
        canon_parts.append({"__ambient__": ambient})
    canon = json.dumps(canon_parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()
