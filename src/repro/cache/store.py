"""The sharded result store: 256-way keyspace, shard indexes, hot tier.

Layout (format v2)::

    .repro-cache/
        CACHE_FORMAT            # "2\\n"
        00/
            index.jsonl         # append-only shard index
            00a3...f1.pkl       # one self-validating entry per key
        01/
        ...
        ff/

Entries keep the v1 on-disk format (magic header + SHA-256 payload
digest + pickle), so a v1 flat cache is *migrated*, never invalidated:
on first open, top-level ``<key>.pkl`` files are renamed into their
shard directories and indexed — a pure metadata move with no
recompute.  A concurrent legacy writer is also tolerated: a miss in
the sharded slot falls back to the flat path and adopts the entry.

Three tiers answer a ``get``:

1. **hot tier** — an in-process LRU of recently *read* values; repeat
   lookups skip the filesystem and unpickling entirely.  Values are
   returned by reference, so treat cached results as immutable (every
   caller in this repository does).
2. **sharded file** — one ``open``/``read`` at a path derived from the
   key prefix; the magic header and payload digest reject torn or
   corrupt files, which are dropped and recomputed.
3. **flat fallback** — the v1 location, adopted into the shard on hit.

Each shard carries a compact append-only JSONL **index** (key → size,
last-use time) written with single ``O_APPEND`` writes so concurrent
processes never tear a record.  Indexes are loaded once per handle and
kept in memory: :meth:`ResultCache.stats` sums them in O(shards)
instead of walking O(entries) files, and the size-capped LRU eviction
(``REPRO_CACHE_MAX_BYTES``) orders candidates by the indexed last-use
time.  Lost or stale indexes self-heal: a missing index is rebuilt
from a directory scan, a dangling record is dropped when its file
turns out to be gone, and an unindexed file written by another process
is adopted on first read.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cache.keys import default_cache_dir, stable_key

__all__ = ["ResultCache", "CacheStats", "SHARDS", "cache_max_bytes"]

_active_metrics = None


def _metrics():
    """The ambient metrics registry, or None (lazy import: telemetry
    pulls in ``repro.sim``, which imports this package)."""
    global _active_metrics
    if _active_metrics is None:
        from repro.telemetry.session import active_metrics
        _active_metrics = active_metrics
    return _active_metrics()

#: File header: identifies cache entries and their format revision.
#: Deliberately unchanged from the flat v1 layout — entry *files* are
#: compatible in both directions; only their placement moved.
_MAGIC = b"RPROCACHE1\n"

#: Marker file recording the directory layout revision.
_FORMAT_FILE = "CACHE_FORMAT"
_FORMAT_VERSION = "2"

#: Shard fan-out: first ``_SHARD_WIDTH`` hex chars of the key.
_SHARD_WIDTH = 2
SHARDS = 16 ** _SHARD_WIDTH

_INDEX_NAME = "index.jsonl"

#: Hot-tier defaults (entries / bytes); see ``REPRO_CACHE_HOT_*``.
_HOT_ENTRIES_DEFAULT = 512
_HOT_BYTES_DEFAULT = 128 * 1024 * 1024


def cache_max_bytes() -> Optional[int]:
    """The on-disk size cap from ``REPRO_CACHE_MAX_BYTES`` (None = off)."""
    from repro.core.knobs import env_value  # lazy: core imports cache
    cap = env_value("REPRO_CACHE_MAX_BYTES")
    if cap is None:
        return None
    return cap if cap > 0 else None


def _env_int(name: str, default: int) -> int:
    from repro.core.knobs import env_value  # lazy: core imports cache
    value = env_value(name)
    return value if value is not None else default


@dataclass
class CacheStats:
    """Counters + on-disk footprint of one :class:`ResultCache`.

    ``entries``/``size_bytes`` come from the shard indexes — O(shards)
    to compute, not O(entries) — and reflect the indexes as loaded by
    this handle plus its own writes (call :meth:`ResultCache.reload`
    to pick up concurrent writers).
    """

    path: str
    entries: int
    size_bytes: int
    hits: int
    misses: int
    stores: int
    errors: int
    evictions: int = 0
    hot_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when no lookups happened)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class _HotTier:
    """In-process LRU of recently read values (returned by reference)."""

    def __init__(self, max_entries: int, max_bytes: int):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._items: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0

    def get(self, key: str) -> Tuple[bool, Any]:
        try:
            value, size = self._items[key]
        except KeyError:
            return False, None
        self._items.move_to_end(key)
        return True, value

    def put(self, key: str, value: Any, size: int) -> None:
        if self.max_entries <= 0 or size > self.max_bytes:
            return
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._items[key] = (value, size)
        self._bytes += size
        while self._items and (len(self._items) > self.max_entries
                               or self._bytes > self.max_bytes):
            _, (_, dropped) = self._items.popitem(last=False)
            self._bytes -= dropped

    def pop(self, key: str) -> None:
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= old[1]

    def clear(self) -> None:
        self._items.clear()
        self._bytes = 0


class _ShardIndex:
    """One shard's in-memory index, mirrored by an append-only JSONL.

    Records are ``{"k": key, "n": size, "t": last_use}`` (upsert) and
    ``{"k": key, "d": 1}`` (tombstone).  Appends go through a single
    ``os.write`` on an ``O_APPEND`` descriptor, so concurrent processes
    interleave whole lines, never fragments; a malformed line (the
    theoretical torn tail of a crashed writer) is skipped on load.
    """

    def __init__(self, directory: pathlib.Path):
        self.dir = directory
        self.entries: Dict[str, Tuple[int, float]] = {}
        self._records = 0  # lines represented by the on-disk file
        self._fd: Optional[int] = None
        self._loaded = False

    # -- loading / reconciliation -------------------------------------------
    def load(self) -> None:
        """Read the index once; rebuild from a scan when it is missing."""
        if self._loaded:
            return
        self._loaded = True
        path = self.dir / _INDEX_NAME
        try:
            raw = path.read_bytes()
        except OSError:
            if self.dir.is_dir():
                self._rebuild_from_scan()
            return
        for line in raw.splitlines():
            self._records += 1
            try:
                rec = json.loads(line)
                key = rec["k"]
            except (ValueError, KeyError, TypeError):
                continue  # torn tail of a crashed writer
            if rec.get("d"):
                self.entries.pop(key, None)
            else:
                self.entries[key] = (int(rec.get("n", 0)),
                                     float(rec.get("t", 0.0)))
        self._maybe_compact()

    def _rebuild_from_scan(self) -> None:
        """Reconstruct a lost index from the shard's entry files."""
        found = []
        for entry in self.dir.glob("*.pkl"):
            with contextlib.suppress(OSError):
                st = entry.stat()
                found.append((entry.stem, st.st_size, st.st_mtime))
        if not found:
            return
        for key, size, mtime in found:
            self.entries[key] = (size, mtime)
        self._write_compact()

    def _maybe_compact(self) -> None:
        # Rewrite when tombstones/duplicates dominate the on-disk file.
        if self._records > 2 * len(self.entries) + 16:
            self._write_compact()

    def _write_compact(self) -> None:
        self._close_fd()
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".idx.tmp")
            try:
                lines = [json.dumps({"k": k, "n": n, "t": t},
                                    separators=(",", ":"))
                         for k, (n, t) in sorted(self.entries.items())]
                os.write(fd, ("\n".join(lines) + "\n" if lines else "")
                         .encode())
            finally:
                os.close(fd)
            os.replace(tmp, self.dir / _INDEX_NAME)
            self._records = len(self.entries)
        except OSError:
            pass  # the index is advisory; the entry files are the truth

    # -- mutation ------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        try:
            if self._fd is None:
                self.dir.mkdir(parents=True, exist_ok=True)
                self._fd = os.open(self.dir / _INDEX_NAME,
                                   os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                                   0o644)
            os.write(self._fd, line)
            self._records += 1
        except OSError:
            self._close_fd()

    def upsert(self, key: str, size: int, last_use: float,
               persist: bool = True) -> None:
        self.load()
        self.entries[key] = (size, last_use)
        if persist:
            self._append({"k": key, "n": size, "t": last_use})

    def remove(self, key: str, persist: bool = True) -> None:
        self.load()
        if self.entries.pop(key, None) is not None and persist:
            self._append({"k": key, "d": 1})

    def _close_fd(self) -> None:
        if self._fd is not None:
            with contextlib.suppress(OSError):
                os.close(self._fd)
            self._fd = None

    def __del__(self):  # pragma: no cover - interpreter teardown
        self._close_fd()


class ResultCache:
    """Content-addressed pickle store: sharded, indexed, LRU-capped.

    ``max_bytes`` (or ``REPRO_CACHE_MAX_BYTES``) bounds the on-disk
    footprint; exceeding it evicts least-recently-used entries (last
    use = store time, refreshed on disk reads while a cap is active).
    ``hot_entries``/``hot_bytes`` bound the in-process read tier.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 max_bytes: Optional[int] = None,
                 hot_entries: Optional[int] = None,
                 hot_bytes: Optional[int] = None):
        self.path = pathlib.Path(path) if path is not None \
            else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None \
            else cache_max_bytes()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.evictions = 0
        self.hot_hits = 0
        self._shards: Dict[str, _ShardIndex] = {}
        self._hot = _HotTier(
            hot_entries if hot_entries is not None
            else _env_int("REPRO_CACHE_HOT_ENTRIES", _HOT_ENTRIES_DEFAULT),
            hot_bytes if hot_bytes is not None
            else _env_int("REPRO_CACHE_HOT_BYTES", _HOT_BYTES_DEFAULT))
        self._migrated = False

    # -- keys ---------------------------------------------------------------
    def key(self, *parts: Any) -> str:
        """Alias for :func:`repro.cache.stable_key`."""
        return stable_key(*parts)

    def _shard_name(self, key: str) -> str:
        return key[:_SHARD_WIDTH]

    def _shard(self, key: str) -> _ShardIndex:
        name = self._shard_name(key)
        shard = self._shards.get(name)
        if shard is None:
            shard = self._shards[name] = _ShardIndex(self.path / name)
        return shard

    def _file(self, key: str) -> pathlib.Path:
        return self.path / self._shard_name(key) / f"{key}.pkl"

    def _flat_file(self, key: str) -> pathlib.Path:
        return self.path / f"{key}.pkl"

    # -- v1 migration --------------------------------------------------------
    def _ensure_migrated(self) -> None:
        """Adopt a v1 flat layout on first touch (rename, no recompute)."""
        if self._migrated:
            return
        self._migrated = True
        marker = self.path / _FORMAT_FILE
        if not self.path.is_dir():
            with contextlib.suppress(OSError):
                self.path.mkdir(parents=True, exist_ok=True)
                marker.write_text(_FORMAT_VERSION + "\n")
            return
        if not marker.exists():
            with contextlib.suppress(OSError):
                marker.write_text(_FORMAT_VERSION + "\n")
        moved = False
        for flat in self.path.glob("*.pkl"):
            key = flat.stem
            if len(key) <= _SHARD_WIDTH:
                continue
            with contextlib.suppress(OSError):
                size = flat.stat().st_size
                target = self._file(key)
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(flat, target)  # atomic; racing openers tolerate
                self._shard(key).upsert(key, size, time.time())
                moved = True
        if moved:
            self._publish_bytes()

    def _adopt_flat(self, key: str, blob: bytes) -> None:
        """Move one legacy entry (written flat by an old process) over."""
        with contextlib.suppress(OSError):
            target = self._file(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(self._flat_file(key), target)
            self._shard(key).upsert(key, len(blob), time.time())

    # -- telemetry -----------------------------------------------------------
    def _count(self, point: str, amount: int = 1) -> None:
        metrics = _metrics()
        if metrics is not None:
            metrics.counter(point).inc(amount)

    def _publish_bytes(self) -> None:
        metrics = _metrics()
        if metrics is not None:
            metrics.gauge("cache.bytes").set(float(self._total_bytes()))

    # -- lookup / store -----------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a valid hit, else ``(False, None)``.

        Repeat reads are served from the in-process hot tier without
        touching the filesystem; corrupted, truncated or unreadable
        entries count as misses and are removed so the slot is
        recomputed cleanly.
        """
        hot, value = self._hot.get(key)
        if hot:
            self.hits += 1
            self.hot_hits += 1
            self._count("cache.hits")
            return True, value
        self._ensure_migrated()
        flat = False
        try:
            blob = self._file(key).read_bytes()
        except OSError:
            try:  # legacy fallback: a concurrent v1 writer
                blob = self._flat_file(key).read_bytes()
                flat = True
            except OSError:
                self.misses += 1
                self._count("cache.misses")
                shard = self._shard(key)
                shard.load()
                shard.remove(key)  # reconcile a dangling index record
                return False, None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            digest = blob[len(_MAGIC):len(_MAGIC) + 64]
            payload = blob[len(_MAGIC) + 64:]
            if hashlib.sha256(payload).hexdigest().encode() != digest:
                raise ValueError("checksum mismatch")
            value = pickle.loads(payload)
        except Exception:  # reprolint: disable=RPR007 -- unpickling a corrupt blob can raise nearly anything; any failure means "treat as miss"
            # Detected corruption: drop the entry, report a miss.
            self.errors += 1
            self.misses += 1
            self._count("cache.misses")
            path = self._flat_file(key) if flat else self._file(key)
            with contextlib.suppress(OSError):
                path.unlink()
            if not flat:
                self._shard(key).remove(key)
            return False, None
        self.hits += 1
        self._count("cache.hits")
        if flat:
            self._adopt_flat(key, blob)
        else:
            shard = self._shard(key)
            shard.load()
            if key not in shard.entries:
                # adopted: another process stored it after our load
                shard.upsert(key, len(blob), time.time(), persist=False)
            elif self.max_bytes is not None:
                # under a size cap reads refresh LRU recency
                now = time.time()
                with contextlib.suppress(OSError):
                    os.utime(self._file(key), (now, now))
                shard.upsert(key, shard.entries[key][0], now)
        self._hot.put(key, value, len(payload))
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value``; returns False (and stays silent) when the
        value cannot be pickled or the directory is unwritable —
        caching is an optimization, never a failure mode."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # reprolint: disable=RPR007 -- unpicklable values raise arbitrary types; caching is best-effort, never a failure mode
            self.errors += 1
            return False
        blob = (_MAGIC
                + hashlib.sha256(payload).hexdigest().encode()
                + payload)
        self._ensure_migrated()
        try:
            target = self._file(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish: concurrent writers never expose a torn file
            fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            try:
                os.write(fd, blob)
            finally:
                os.close(fd)
            os.replace(tmp, target)
        except OSError:
            self.errors += 1
            return False
        self.stores += 1
        self._shard(key).upsert(key, len(blob), time.time())
        if self.max_bytes is not None:
            self._evict_to_cap(protect=key)
        self._publish_bytes()
        return True

    # -- eviction ------------------------------------------------------------
    def _total_bytes(self) -> int:
        self._load_all_shards()
        return sum(size for shard in self._shards.values()
                   for size, _ in shard.entries.values())

    def _evict_to_cap(self, protect: Optional[str] = None) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        self._load_all_shards()
        total = self._total_bytes()
        if total <= self.max_bytes:
            return 0
        candidates = sorted(
            (last_use, key, size)
            for shard in self._shards.values()
            for key, (size, last_use) in shard.entries.items()
            if key != protect)
        evicted = 0
        for last_use, key, size in candidates:
            if total <= self.max_bytes:
                break
            with contextlib.suppress(OSError):
                self._file(key).unlink()
            self._shard(key).remove(key)
            self._hot.pop(key)
            total -= size
            evicted += 1
        if evicted:
            self.evictions += evicted
            self._count("cache.evictions", evicted)
        return evicted

    # -- maintenance --------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry; True when something was removed."""
        self._hot.pop(key)
        removed = False
        try:
            self._file(key).unlink()
            removed = True
        except OSError:
            with contextlib.suppress(OSError):
                self._flat_file(key).unlink()
                removed = True
        if removed:
            self._shard(key).remove(key)
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._iter_entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        if self.path.is_dir():
            for index in self.path.glob(f"*/{_INDEX_NAME}"):
                with contextlib.suppress(OSError):
                    index.unlink()
        self._shards.clear()
        self._hot.clear()
        return removed

    def reload(self) -> None:
        """Drop in-memory state so the next access re-reads the indexes
        (picks up entries stored by concurrent processes)."""
        for shard in self._shards.values():
            shard._close_fd()
        self._shards.clear()
        self._hot.clear()
        self._migrated = False

    def _iter_entries(self) -> Iterator[pathlib.Path]:
        if self.path.is_dir():
            yield from self.path.glob("*.pkl")        # v1 leftovers
            yield from self.path.glob("*/*.pkl")      # sharded entries

    def _load_all_shards(self) -> None:
        self._ensure_migrated()
        if self.path.is_dir():
            for entry in self.path.iterdir():
                if (entry.is_dir() and len(entry.name) == _SHARD_WIDTH
                        and entry.name not in self._shards):
                    self._shards[entry.name] = _ShardIndex(entry)
        for shard in self._shards.values():
            shard.load()

    def keys(self) -> List[str]:
        """Every indexed key (sorted) — O(shards) file reads."""
        self._load_all_shards()
        return sorted(key for shard in self._shards.values()
                      for key in shard.entries)

    def stats(self) -> CacheStats:
        """Counters for this handle + indexed on-disk footprint.

        Served from the shard indexes: O(shards), never an O(entries)
        directory walk.
        """
        self._load_all_shards()
        entries = 0
        size = 0
        for shard in self._shards.values():
            entries += len(shard.entries)
            size += sum(n for n, _ in shard.entries.values())
        return CacheStats(path=str(self.path), entries=entries,
                          size_bytes=size, hits=self.hits,
                          misses=self.misses, stores=self.stores,
                          errors=self.errors, evictions=self.evictions,
                          hot_hits=self.hot_hits)
