"""The rule engine's moving parts: contexts, the Rule base, the registry.

A rule sees the world through two lenses:

* :meth:`Rule.check_module` — one parsed module at a time.  Rules that
  only apply to parts of the tree (the wall-clock rule has no business
  in ``analysis/``) declare ``paths``, a tuple of package-relative
  prefixes, and the engine scopes them automatically.
* :meth:`Rule.check_project` — after every module is parsed, for
  cross-file contracts (dead catalog points, cache-key completeness).
  Project checks that need the *whole* package to be meaningful gate on
  :attr:`ProjectContext.covers_package`.

Rules register themselves with the :func:`rule` decorator at import
time; the registry is the single source the CLI, the docs generator and
the tests all enumerate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.lint.findings import Finding, Severity

__all__ = ["ModuleContext", "ProjectContext", "Rule", "RULES", "rule",
           "all_rules", "parse_suppressions"]

#: ``# reprolint: disable=RPR001,RPR003 -- optional rationale`` (no ids
#: = every rule on that line).  The rationale after ``--`` is for the
#: human reviewer; the linter only parses the id list.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<ids>[A-Za-z0-9_,\s]*?))?(?:\s*--.*)?$")


def parse_suppressions(lines: List[str]) -> Dict[int, Optional[set]]:
    """1-based line -> suppressed rule-id set (None = all rules)."""
    out: Dict[int, Optional[set]] = {}
    for n, text in enumerate(lines, start=1):
        if "reprolint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None or not ids.strip():
            out[n] = None
        else:
            out[n] = {i.strip().upper() for i in ids.split(",") if i.strip()}
    return out


@dataclass
class ModuleContext:
    """One parsed source file plus everything a rule needs to judge it."""

    path: str                    # path as reported in findings
    logical: str                 # package-relative posix path ("" if outside)
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Optional[set]] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        """The 1-based source line, or "" when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether an inline comment suppresses ``rule_id`` on that line."""
        ids = self.suppressions.get(lineno, ())
        return ids is None or rule_id in ids


@dataclass
class ProjectContext:
    """The whole scanned file set, for cross-file contract rules.

    ``env_registry`` and ``telemetry_catalog`` default to the live
    tables imported from :mod:`repro.core.knobs` and
    :mod:`repro.telemetry.points`; tests inject fixtures instead.
    """

    modules: List[ModuleContext]
    covers_package: bool = False
    env_registry: Optional[Dict[str, object]] = None
    telemetry_catalog: Optional[Dict[str, object]] = None

    def module(self, logical: str) -> Optional[ModuleContext]:
        """The scanned module with this logical path, if any."""
        for mod in self.modules:
            if mod.logical == logical:
                return mod
        return None


class Rule:
    """Base class: subclass, set the class attributes, register.

    Attributes
    ----------
    id:
        ``"RPR0xx"`` — stable, never reused.
    name:
        Short kebab-case label shown next to the id.
    severity:
        Default severity for this rule's findings.
    paths:
        Package-relative prefixes the rule applies to (None = all).
    rationale:
        Why violating this breaks reproducibility or a contract; the
        docs catalog renders it.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    paths: Optional[Tuple[str, ...]] = None
    rationale: str = ""

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule's path scope covers ``module``."""
        if self.paths is None:
            return True
        return bool(module.logical) and module.logical.startswith(self.paths)

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module (override per rule)."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield cross-file findings after every module is parsed."""
        return iter(())

    # -- helpers shared by every concrete rule -------------------------------

    def finding(self, module: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """Build a Finding anchored at ``node`` with this rule's identity."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id, name=self.name, severity=self.severity,
            path=module.path, logical=module.logical, line=lineno,
            col=col, message=message,
            line_text=module.line_text(lineno))


#: id -> rule instance; populated by the :func:`rule` decorator.
RULES: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    instance = cls()
    if not instance.id or not instance.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if instance.id in RULES:
        raise ValueError(f"duplicate rule id {instance.id}")
    RULES[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [RULES[k] for k in sorted(RULES)]


def resolve_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rule set to run (``select`` filters by id, case-insensitive)."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}; "
                         f"known: {sorted(RULES)}")
    return [r for r in rules if r.id in wanted]
