"""reprolint: AST-based determinism & contract linting for the repro stack.

Every figure this repository regenerates rests on one invariant: a
simulation result is a pure function of (tuning configuration, topology/
workload parameters, code) — bit-identical across serial/parallel runs,
heap/calendar schedulers, train batching on/off, chaos on/off and warm/
cold caches.  Runtime parity tests police that invariant *after* the
fact and at full simulation cost; reprolint polices it *statically*, on
every PR, by scanning the source for the bug classes that break it:

* unseeded randomness (RPR001) and wall-clock reads (RPR002),
* hash-order-dependent iteration (RPR003),
* environment knobs missing from the central registry (RPR004),
* telemetry emitted outside the instrumentation catalog (RPR005),
* result-affecting knobs missing from cache keys (RPR006),
* overbroad exception handlers on engine paths (RPR007),
* exact float equality in simulation arithmetic (RPR008).

Run it as ``python -m repro.lint src/repro`` (see docs/LINTING.md).
Findings are suppressed inline with ``# reprolint: disable=RPR0xx --
rationale`` or accepted wholesale via a committed baseline file, so
legacy findings never block CI while new ones always do.
"""

from __future__ import annotations

from repro.lint.base import (ModuleContext, ProjectContext, Rule, RULES,
                             all_rules, rule)
from repro.lint.baseline import (Baseline, load_baseline, write_baseline)
from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding, Severity

# Importing the rule modules registers every rule in RULES.
from repro.lint import rules_determinism as _rules_determinism  # noqa: F401
from repro.lint import rules_contracts as _rules_contracts  # noqa: F401

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "load_baseline",
    "rule",
    "write_baseline",
]
