"""Determinism rules: randomness, wall clocks, hash order, float equality.

These four rules target the bug classes that break the repository's
bit-identical-runs invariant silently — nothing crashes, results just
stop being reproducible — which is exactly why they belong in a static
gate rather than waiting for a runtime parity test to drift red.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ModuleContext, Rule, rule
from repro.lint.findings import Finding, Severity

__all__ = ["UnseededRandomRule", "WallClockRule", "UnsortedIterationRule",
           "FloatEqualityRule", "SIM_PATHS"]

#: The packages whose code executes *inside* a simulation — where a
#: wall-clock read or an exact float compare can leak into results.
SIM_PATHS = ("sim/", "tcp/", "net/", "hw/", "oskernel/", "chaos/")


class _ImportMap:
    """Where the interesting modules are bound in one file.

    Tracks ``import random`` / ``import numpy as np`` style aliases and
    ``from random import choice`` style direct names so call-site
    matching survives renaming imports.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_alias: Dict[str, str] = {}   # local name -> module path
        self.from_names: Dict[str, str] = {}     # local name -> "mod.attr"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.asname:
                        self.module_alias[item.asname] = item.name
                    else:  # "import numpy.random" binds the root name
                        root = item.name.split(".")[0]
                        self.module_alias[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for item in node.names:
                    self.from_names[item.asname or item.name] = \
                        f"{node.module}.{item.name}"

    def call_target(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a call target, e.g. ``random.choice``.

        Resolves ``Name`` through both maps and ``Attribute`` chains
        through the module-alias map, so ``rnd.choice`` with
        ``import random as rnd`` resolves to ``random.choice``.
        """
        if isinstance(func, ast.Name):
            if func.id in self.from_names:
                return self.from_names[func.id]
            if func.id in self.module_alias:
                return self.module_alias[func.id]
            return None
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if not isinstance(value, ast.Name):
                return None
            root = value.id
            if root in self.module_alias:
                parts.append(self.module_alias[root])
            elif root in self.from_names:
                parts.append(self.from_names[root])
            else:
                return None
            return ".".join(reversed(parts))
        return None


#: ``random`` module-level functions that draw from (or mutate) the
#: hidden global Mersenne Twister.
_RANDOM_GLOBAL_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "binomialvariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes", "seed", "setstate",
})

#: ``numpy.random`` legacy functions backed by the global RandomState.
_NUMPY_GLOBAL_FUNCS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "normal",
    "uniform", "standard_normal", "poisson", "exponential", "binomial",
    "beta", "gamma", "bytes", "get_state", "set_state",
})


@rule
class UnseededRandomRule(Rule):
    """RPR001: randomness outside an explicitly seeded generator."""

    id = "RPR001"
    name = "unseeded-random"
    severity = Severity.ERROR
    paths = None  # anywhere in the package: results or tooling, both matter
    rationale = (
        "Module-level random.*/numpy.random.* calls draw from hidden "
        "global state, so results depend on import order, test order and "
        "process layout. Use repro.sim.rng.RngStreams or an explicitly "
        "seeded random.Random/numpy Generator instance.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag global-state randomness and unseeded generator creation."""
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.call_target(node.func)
            if target is None:
                continue
            message = self._judge(target, node)
            if message is not None:
                yield self.finding(module, node, message)

    def _judge(self, target: str, node: ast.Call) -> Optional[str]:
        """The finding message for a resolved call target, or None."""
        if target.startswith("random."):
            attr = target[len("random."):]
            if attr in _RANDOM_GLOBAL_FUNCS:
                return (f"call to the global-state generator "
                        f"random.{attr}(); use a seeded random.Random "
                        f"or repro.sim.rng.RngStreams")
            if attr == "SystemRandom":
                return ("random.SystemRandom is OS-entropy backed and "
                        "never reproducible")
            if attr == "Random" and not node.args and not node.keywords:
                return ("random.Random() without a seed argument seeds "
                        "from OS entropy; pass an explicit seed")
            return None
        if target.startswith("numpy.random."):
            attr = target.split(".")[-1]
            if attr in _NUMPY_GLOBAL_FUNCS:
                return (f"call to the numpy global RandomState "
                        f"({attr}); use repro.sim.rng.RngStreams or "
                        f"numpy.random.default_rng(seed)")
            if attr in ("default_rng", "Generator", "RandomState") \
                    and not node.args and not node.keywords:
                return (f"numpy.random.{attr}() without a seed draws "
                        f"OS entropy; pass an explicit seed")
        return None


#: Call targets that read a clock.  Monotonic clocks are listed too:
#: they cannot produce wall dates, but any clock feeding simulation
#: state breaks serial/parallel parity just the same.
_CLOCK_TARGETS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@rule
class WallClockRule(Rule):
    """RPR002: host-clock reads inside simulation packages."""

    id = "RPR002"
    name = "wall-clock"
    severity = Severity.ERROR
    paths = SIM_PATHS
    rationale = (
        "Simulated time is the only clock that may influence results; a "
        "host-clock read in sim/tcp/net/hw/oskernel code varies run to "
        "run and across machines. Wall time is fine in reporting and "
        "benchmarking layers — keep it out of the engine, or suppress "
        "with a rationale when it is provably reporting-only.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag host-clock call sites resolved through the import map."""
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.call_target(node.func)
            if target in _CLOCK_TARGETS:
                yield self.finding(
                    module, node,
                    f"host-clock read {target}() in simulation code; "
                    f"use env.now (simulated seconds) or move the "
                    f"measurement to a reporting layer")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def _set_bound_names(tree: ast.Module) -> Set[str]:
    """Names assigned a set expression anywhere in the module.

    Scope-blind on purpose: a name that holds a set in one function and
    a list in another is rare enough that the occasional false positive
    (suppressible inline) beats missing real hash-order dependencies.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and _is_set_expr(node.value) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


@rule
class UnsortedIterationRule(Rule):
    """RPR003: iterating a set without an explicit order."""

    id = "RPR003"
    name = "unsorted-iteration"
    severity = Severity.WARNING
    paths = None
    rationale = (
        "Set iteration order follows the hash seed, so anything built "
        "from it — event schedules, cache-key material, output rows — "
        "can differ between processes. Wrap the iterable in sorted(...) "
        "with an explicit key.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag for-loops and comprehensions that iterate sets."""
        # Two passes: first learn which names hold sets, then judge
        # every iteration site.
        known = _set_bound_names(module.tree)
        for node in ast.walk(module.tree):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                if _is_set_expr(expr) or (
                        isinstance(expr, ast.Name) and expr.id in known):
                    yield self.finding(
                        module, expr,
                        "iteration over a set has hash-dependent order; "
                        "wrap in sorted(...) before anything "
                        "order-sensitive consumes it")


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_float_literal(node.left) and _is_float_literal(node.right)
    return False


@rule
class FloatEqualityRule(Rule):
    """RPR008: exact == / != against float literals in sim code."""

    id = "RPR008"
    name = "float-equality"
    severity = Severity.WARNING
    paths = SIM_PATHS
    rationale = (
        "Accumulated float arithmetic rarely lands exactly on a "
        "literal, so == comparisons encode silent platform and "
        "code-path dependencies into control flow. Compare with "
        "math.isclose/tolerances or integer ticks; exact sentinel "
        "compares (a value assigned, never computed) may be suppressed "
        "with a rationale.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag ==/!= comparisons involving float literals."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: List[Tuple[ast.cmpop, ast.AST, ast.AST]] = []
            left = node.left
            for op, comparator in zip(node.ops, node.comparators):
                operands.append((op, left, comparator))
                left = comparator
            for op, lhs, rhs in operands:
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(lhs) or _is_float_literal(rhs):
                    yield self.finding(
                        module, node,
                        "exact float equality against a literal; use a "
                        "tolerance (math.isclose) or integer ticks")
                    break
