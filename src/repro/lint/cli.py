"""``python -m repro.lint``: the command-line face of reprolint.

Exit codes: 0 = clean (or every finding baselined/suppressed), 1 = new
findings, 2 = usage or environment error.  ``--format json`` emits a
machine-readable report for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint.base import all_rules
from repro.lint.baseline import (DEFAULT_BASELINE_NAME, load_baseline,
                                 write_baseline)
from repro.lint.engine import lint_paths

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & contract linter for the "
                    "repro simulation stack (see docs/LINTING.md).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro under the cwd)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help=f"baseline file (default: "
                             f"./{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings: write them to "
                             "the baseline file and exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _default_paths() -> List[str]:
    candidate = pathlib.Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    raise SystemExit("error: no paths given and ./src/repro does not "
                     "exist; pass the files or directories to lint")


def _list_rules() -> int:
    for rule_ in all_rules():
        scope = ", ".join(rule_.paths) if rule_.paths else "whole tree"
        print(f"{rule_.id}  {rule_.name}  [{rule_.severity}]  "
              f"(scope: {scope})")
        print(f"    {rule_.rationale}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code (0/1/2)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()

    paths = args.paths or _default_paths()
    select = (args.select.split(",") if args.select else None)

    baseline_path = args.baseline or pathlib.Path(DEFAULT_BASELINE_NAME)
    baseline = None
    if not args.no_baseline and not args.write_baseline \
            and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        result = lint_paths(paths, select=select, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"wrote {len(result.findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in result.findings],
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "files": result.files,
            "ok": result.ok,
        }, indent=2, sort_keys=True))
        return 0 if result.ok else 1

    for finding in result.findings:
        print(finding.render())
    summary = (f"{len(result.findings)} finding(s) in {result.files} "
               f"file(s)")
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    if result.ok:
        print(f"reprolint: clean — {summary}")
        return 0
    counts = ", ".join(f"{rule}×{n}"
                       for rule, n in result.counts_by_rule().items())
    print(f"reprolint: FAIL — {summary} [{counts}]")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
