"""Baselines: accept legacy findings without letting new ones in.

A baseline is a committed JSON file of finding fingerprints.  Findings
whose fingerprint appears in the baseline are reported as "baselined"
and do not fail the gate; anything else does.  Because fingerprints
hash line *content* rather than line numbers, moving code around
neither breaks the baseline nor lets one stale entry absorb a fresh
violation elsewhere.

The repository's committed ``reprolint-baseline.json`` is empty — every
finding the initial sweep produced was either fixed or suppressed
inline with a rationale — and the meta-test in ``tests/lint`` keeps it
that way.
"""

from __future__ import annotations

import collections
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.lint.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME", "fingerprint_findings",
           "load_baseline", "write_baseline"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_FORMAT = "reprolint-baseline-v1"


def fingerprint_findings(findings: Sequence[Finding]) -> List[str]:
    """Fingerprints for a finding list, disambiguating duplicates.

    Two identical violations on identical lines of one file get
    occurrence indexes 0, 1, ... in file order, so a baseline holding
    one of them never absorbs the second.
    """
    seen: Dict[str, int] = collections.defaultdict(int)
    out: List[str] = []
    for finding in findings:
        occurrence = seen[finding.fingerprint_seed]
        seen[finding.fingerprint_seed] += 1
        out.append(finding.fingerprint(occurrence))
    return out


@dataclass
class Baseline:
    """The accepted-findings set plus its provenance."""

    path: str = ""
    fingerprints: Set[str] = field(default_factory=set)

    def partition(self, findings: Sequence[Finding]) \
            -> Tuple[List[Finding], List[Finding]]:
        """``(new, baselined)`` — order preserved within each."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding, fp in zip(findings, fingerprint_findings(findings)):
            (old if fp in self.fingerprints else new).append(finding)
        return new, old


def load_baseline(path: Union[str, pathlib.Path]) -> Baseline:
    """Load a baseline file (raises on a malformed one — a broken
    baseline silently accepting everything would defeat the gate)."""
    path = pathlib.Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ValueError(
            f"{path}: not a reprolint baseline (expected format={_FORMAT!r})")
    entries = data.get("findings", [])
    fingerprints = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        fingerprints.add(entry["fingerprint"])
    return Baseline(path=str(path), fingerprints=fingerprints)


def write_baseline(path: Union[str, pathlib.Path],
                   findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new accepted set.

    Entries carry the human-readable context (rule, path, message)
    alongside the fingerprint so a reviewer can audit what a baseline
    actually grandfathers in.
    """
    entries = [
        dict(sorted(f.to_json().items()))
        for f, fp in zip(findings, fingerprint_findings(findings))
    ]
    for entry, fp in zip(entries, fingerprint_findings(list(findings))):
        entry["fingerprint"] = fp
        entry.pop("line", None)   # line numbers drift; fingerprints don't
        entry.pop("col", None)
    payload = {"format": _FORMAT, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
