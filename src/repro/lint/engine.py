"""The lint engine: walk files, parse, run rules, filter, report.

Path semantics: every scanned file gets a *logical* path — its posix
path relative to the innermost enclosing ``repro`` package directory
(``.../src/repro/sim/engine.py`` -> ``sim/engine.py``).  Rules scope on
logical paths, so test fixtures laid out as ``tmp/repro/sim/x.py`` are
judged exactly like the real tree.  Cross-file contract checks that
need the whole package (dead telemetry points) additionally require
that the scan *covered* a package root, not just brushed against it.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lint.base import (ModuleContext, ProjectContext, Rule,
                             parse_suppressions, resolve_rules)
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity

__all__ = ["LintResult", "collect_files", "lint_paths"]

#: The package directory name that anchors logical paths.
_PACKAGE_DIR = "repro"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]              # new (actionable) findings
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    @property
    def ok(self) -> bool:
        """True when no actionable (new, unsuppressed) findings remain."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Actionable finding counts per rule id (sorted by id)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))


def collect_files(paths: Sequence[Union[str, pathlib.Path]]) \
        -> List[Tuple[pathlib.Path, pathlib.Path]]:
    """``(file, scan_root)`` pairs for every ``.py`` under ``paths``."""
    out: List[Tuple[pathlib.Path, pathlib.Path]] = []
    seen = set()
    for raw in paths:
        root = pathlib.Path(raw)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            key = path.resolve()
            if key not in seen:
                seen.add(key)
                out.append((path, root))
    return out


def _logical_path(path: pathlib.Path) -> Tuple[str, Optional[pathlib.Path]]:
    """``(logical, package_root)`` for a file; ``("", None)`` outside."""
    resolved = path.resolve()
    parts = resolved.parts
    for i in range(len(parts) - 2, -1, -1):  # innermost "repro" dir wins
        if parts[i] == _PACKAGE_DIR:
            logical = "/".join(parts[i + 1:])
            return logical, pathlib.Path(*parts[:i + 1])
    return "", None


def _parse_module(path: pathlib.Path, display: str) \
        -> Union[ModuleContext, Finding]:
    source = path.read_text(encoding="utf-8", errors="replace")
    lines = source.splitlines()
    logical, _ = _logical_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="RPR000", name="parse-error", severity=Severity.ERROR,
            path=display, logical=logical, line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            line_text=lines[exc.lineno - 1]
            if exc.lineno and exc.lineno <= len(lines) else "")
    return ModuleContext(path=display, logical=logical, tree=tree,
                         lines=lines,
                         suppressions=parse_suppressions(lines))


def lint_paths(paths: Sequence[Union[str, pathlib.Path]], *,
               select: Optional[Iterable[str]] = None,
               baseline: Optional[Baseline] = None,
               env_registry: Optional[Dict[str, object]] = None,
               telemetry_catalog: Optional[Dict[str, object]] = None) \
        -> LintResult:
    """Lint ``paths`` and return the filtered result.

    ``select`` restricts to specific rule ids; ``baseline`` moves
    already-accepted findings out of the failing set;
    ``env_registry``/``telemetry_catalog`` override the live contract
    tables (tests inject fixtures through these).
    """
    rules = resolve_rules(select)
    files = collect_files(paths)
    modules: List[ModuleContext] = []
    raw_findings: List[Finding] = []
    package_roots_covered = set()
    for path, scan_root in files:
        display = str(path)
        parsed = _parse_module(path, display)
        if isinstance(parsed, Finding):
            raw_findings.append(parsed)
            continue
        modules.append(parsed)
        logical, package_root = _logical_path(path)
        if package_root is not None:
            scan_resolved = scan_root.resolve()
            if scan_resolved == package_root \
                    or scan_resolved in package_root.parents:
                package_roots_covered.add(package_root)

    project = ProjectContext(
        modules=modules,
        covers_package=bool(package_roots_covered),
        env_registry=env_registry,
        telemetry_catalog=telemetry_catalog)

    suppressed = 0
    for module in modules:
        for rule_ in rules:
            if not rule_.applies_to(module):
                continue
            for finding in rule_.check_module(module):
                if module.suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    raw_findings.append(finding)
    for rule_ in rules:
        # Project rules filter their own suppressions (their findings
        # can anchor to any module); everything they yield stands.
        raw_findings.extend(rule_.check_project(project))

    raw_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is None:
        new, old = raw_findings, []
    else:
        new, old = baseline.partition(raw_findings)
    return LintResult(findings=new, baselined=old,
                      suppressed=suppressed, files=len(files))
