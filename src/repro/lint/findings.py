"""Findings: what a rule reports, and how a finding is fingerprinted.

A fingerprint identifies a finding across edits that move it around:
it hashes the rule id, the module's package-relative path, the
*content* of the offending line and an occurrence index — never the
line number — so reordering unrelated code neither invalidates a
baseline entry nor lets a baselined finding mask a fresh one.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the lint gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in output
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          # "RPR001"
    name: str          # "unseeded-random"
    severity: Severity
    path: str          # filesystem path as given to the engine
    logical: str       # package-relative posix path, e.g. "sim/engine.py"
    line: int          # 1-based line of the offending node
    col: int           # 0-based column of the offending node
    message: str
    line_text: str = field(default="", compare=False)

    @property
    def fingerprint_seed(self) -> str:
        """Content-based identity material (no line numbers)."""
        return f"{self.rule}|{self.logical}|{self.line_text.strip()}"

    def fingerprint(self, occurrence: int = 0) -> str:
        """Stable identity for baselines (line-number independent)."""
        seed = f"{self.fingerprint_seed}|{occurrence}"
        return hashlib.sha256(seed.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line human-readable report form."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} [{self.name}] {self.message}")

    def to_json(self, occurrence: int = 0) -> Dict[str, Any]:
        """JSON-serializable form (fingerprint included for tooling)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "logical": self.logical,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(occurrence),
        }
