"""Contract rules: knob registry, telemetry catalog, cache keys, excepts.

Where the determinism rules look for *local* hazards, these four check
the repository's cross-file contracts: every ``REPRO_*`` environment
switch is declared in :data:`repro.core.knobs.ENV_KNOBS` (RPR004),
every trace point posted is in :data:`repro.telemetry.points.CATALOG`
and every catalog entry is emitted somewhere (RPR005), every
result-affecting knob reaches :func:`repro.cache.keys.stable_key`
(RPR006), and engine hot paths never swallow arbitrary exceptions
(RPR007).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ModuleContext, ProjectContext, Rule, rule
from repro.lint.findings import Finding, Severity

__all__ = ["EnvRegistryRule", "TelemetryCatalogRule", "CacheKeyRule",
           "BroadExceptRule"]

#: Logical path of the sanctioned environment-read module.
_KNOBS_MODULE = "core/knobs.py"
#: Logical path of the key layer RPR006 inspects.
_KEYS_MODULE = "cache/keys.py"
#: Logical path of the telemetry catalog.
_POINTS_MODULE = "telemetry/points.py"


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (e.g. ``TRAIN_ENV``)."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       ast.Constant) \
                and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value.value
    return out


def _resolve_str(node: ast.AST, consts: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _is_os_environ(node: ast.AST) -> bool:
    """``os.environ`` (by any ``import os`` spelling — os is os)."""
    return (isinstance(node, ast.Attribute) and node.attr == "environ"
            and isinstance(node.value, ast.Name) and node.value.id == "os")


def _env_reads(module: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, env_name)`` for every REPRO_* environment *read*:
    ``os.environ.get/getenv``, ``os.environ[...]`` loads, and registry
    accessor calls (``env_value``/``env_raw``/``env_knob``)."""
    consts = _module_str_constants(module.tree)
    for node in ast.walk(module.tree):
        name: Optional[str] = None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get" \
                    and _is_os_environ(func.value) and node.args:
                name = _resolve_str(node.args[0], consts)
            elif isinstance(func, ast.Attribute) and func.attr == "getenv" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "os" and node.args:
                name = _resolve_str(node.args[0], consts)
            elif node.args and (
                    (isinstance(func, ast.Name)
                     and func.id in ("env_value", "env_raw", "env_knob"))
                    or (isinstance(func, ast.Attribute)
                        and func.attr in ("env_value", "env_raw",
                                          "env_knob"))):
                resolved = _resolve_str(node.args[0], consts)
                if resolved is not None and resolved.startswith("REPRO_"):
                    yield node, f"registry:{resolved}"
                continue
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load) \
                and _is_os_environ(node.value):
            name = _resolve_str(node.slice, consts)
        if name is not None and name.startswith("REPRO_"):
            yield node, name


def _live_env_registry() -> Dict[str, object]:
    from repro.core.knobs import ENV_KNOBS
    return dict(ENV_KNOBS)


@rule
class EnvRegistryRule(Rule):
    """RPR004: REPRO_* environment reads outside the knob registry."""

    id = "RPR004"
    name = "env-knob-registry"
    severity = Severity.ERROR
    paths = None
    rationale = (
        "A knob read straight from os.environ is invisible to the "
        "worker pool's ambient capsule audit, the cache-key "
        "completeness check (RPR006) and the docs — the exact recipe "
        "for a setting that silently stops being reproducible. Declare "
        "it in repro.core.knobs.ENV_KNOBS and read it through "
        "env_value()/env_raw().")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag REPRO_* reads that bypass (or miss) the knob registry."""
        registry = project.env_registry
        if registry is None:
            registry = _live_env_registry()
        for module in project.modules:
            for node, name in self._reads(module):
                if name.startswith("registry:"):
                    env_name = name[len("registry:"):]
                    if env_name not in registry:
                        finding = self.finding(
                            module, node,
                            f"{env_name} is read through the registry "
                            f"but never registered in "
                            f"repro.core.knobs.ENV_KNOBS")
                        if not module.suppressed(self.id, finding.line):
                            yield finding
                    continue
                if module.logical == _KNOBS_MODULE:
                    if name not in registry:
                        finding = self.finding(
                            module, node,
                            f"{name} read in the registry module but "
                            f"missing from ENV_KNOBS")
                        if not module.suppressed(self.id, finding.line):
                            yield finding
                    continue
                detail = (f"route it through repro.core.knobs.env_value()"
                          if name in registry else
                          f"register it in repro.core.knobs.ENV_KNOBS and "
                          f"read it through env_value()")
                finding = self.finding(
                    module, node,
                    f"direct os.environ read of {name} outside the knob "
                    f"registry; {detail}")
                if not module.suppressed(self.id, finding.line):
                    yield finding

    @staticmethod
    def _reads(module: ModuleContext):
        """Seam for tests: the env-read iterator for one module."""
        return _env_reads(module)


#: Method names whose first string argument names a metrics point.
_METRIC_EMITTERS = ("counter", "gauge", "_count")


def _emit_sites(module: ModuleContext) \
        -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, kind, point)`` for telemetry emits.

    ``kind`` is ``"trace"`` for ``*.post(t, "name", ...)`` call sites
    (the catalog contract applies) or ``"metric"`` for
    ``counter/gauge/_count("name")`` sites (free-form namespace, but
    they count as emits for dead-point analysis).
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "post" \
                and len(node.args) >= 2 \
                and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            yield node, "trace", node.args[1].value
        elif node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str) \
                and ((isinstance(func, ast.Attribute)
                      and func.attr in _METRIC_EMITTERS)
                     or (isinstance(func, ast.Name)
                         and func.id in _METRIC_EMITTERS)):
            yield node, "metric", node.args[0].value


def _live_catalog() -> Dict[str, object]:
    from repro.telemetry.points import CATALOG
    return dict(CATALOG)


@rule
class TelemetryCatalogRule(Rule):
    """RPR005: trace posts off-catalog, and catalog points never emitted."""

    id = "RPR005"
    name = "telemetry-catalog"
    severity = Severity.ERROR
    paths = None
    rationale = (
        "telemetry/points.py is the contract between the instrumented "
        "layers and the exporters/docs: an undeclared trace point is "
        "invisible to the observability reference and breaks the "
        "every-posted-point-is-registered test only at runtime; a "
        "declared point emitted nowhere documents instrumentation that "
        "does not exist.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag off-catalog trace posts and never-emitted catalog points."""
        catalog = project.telemetry_catalog
        if catalog is None:
            catalog = _live_catalog()
        emitted: Set[str] = set()
        for module in project.modules:
            for node, kind, point in _emit_sites(module):
                emitted.add(point)
                if kind == "trace" and point not in catalog:
                    finding = self.finding(
                        module, node,
                        f"trace point {point!r} is not declared in "
                        f"telemetry/points.py; add it to the catalog "
                        f"(with layer + description) before emitting")
                    if not module.suppressed(self.id, finding.line):
                        yield finding
        # Dead-point analysis is only meaningful when the scan saw the
        # whole package: a partial scan would report every point whose
        # emitter happens to live outside the scanned subtree.
        points_module = project.module(_POINTS_MODULE)
        if points_module is None or not project.covers_package:
            return
        lines = self._catalog_linenos(points_module)
        for point in sorted(set(catalog) - emitted):
            lineno = lines.get(point, 1)
            finding = Finding(
                rule=self.id, name=self.name, severity=self.severity,
                path=points_module.path, logical=points_module.logical,
                line=lineno, col=0,
                message=(f"catalog point {point!r} is emitted nowhere in "
                         f"the package; delete the entry or instrument "
                         f"the layer it documents"),
                line_text=points_module.line_text(lineno))
            if not points_module.suppressed(self.id, lineno):
                yield finding

    @staticmethod
    def _catalog_linenos(module: ModuleContext) -> Dict[str, int]:
        """First line each string constant appears on in points.py."""
        out: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node.value not in out:
                out[node.value] = node.lineno
        return out


@rule
class CacheKeyRule(Rule):
    """RPR006: result-affecting knobs must reach the cache key."""

    id = "RPR006"
    name = "cache-key-completeness"
    severity = Severity.ERROR
    paths = None
    rationale = (
        "The result cache memoizes on (config, workload, code, chaos "
        "plan, ambient knobs). A knob that can change results but is "
        "missing from that key silently serves one mode's cached "
        "results to another — the worst reproducibility bug there is, "
        "because everything still looks deterministic.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Check registry/key-route consistency and the stable_key fold."""
        registry = project.env_registry
        if registry is None:
            registry = _live_env_registry()
        knobs_module = project.module(_KNOBS_MODULE)
        anchor = knobs_module or project.module(_KEYS_MODULE)
        if anchor is None:
            return  # scan does not include the contract modules
        names = (self._catalog_linenos(knobs_module)
                 if knobs_module is not None else {})
        ambient_declared = False
        for name in sorted(registry):
            knob = registry[name]
            affects = getattr(knob, "affects_results", False)
            keyed_via = getattr(knob, "keyed_via", "none")
            if keyed_via == "ambient":
                ambient_declared = True
            lineno = names.get(name, 1)
            message = None
            if affects and keyed_via == "none":
                message = (f"{name} is declared result-affecting but "
                           f"keyed_via='none': its value never reaches "
                           f"stable_key, so cached results under "
                           f"different settings alias")
            elif not affects and keyed_via != "none":
                message = (f"{name} is declared result-neutral but "
                           f"keyed_via={keyed_via!r}: keying on it "
                           f"would fracture the cache for no reason")
            if message is not None:
                finding = Finding(
                    rule=self.id, name=self.name, severity=self.severity,
                    path=anchor.path, logical=anchor.logical,
                    line=lineno, col=0, message=message,
                    line_text=anchor.line_text(lineno))
                if not anchor.suppressed(self.id, lineno):
                    yield finding
        keys_module = project.module(_KEYS_MODULE)
        if keys_module is None or not ambient_declared:
            return
        if not self._stable_key_folds_ambient(keys_module):
            finding = Finding(
                rule=self.id, name=self.name, severity=self.severity,
                path=keys_module.path, logical=keys_module.logical,
                line=1, col=0,
                message=("stable_key never calls ambient_key_material() "
                         "although ambient-keyed knobs are registered; "
                         "non-default knob settings would alias cached "
                         "results"),
                line_text=keys_module.line_text(1))
            if not keys_module.suppressed(self.id, 1):
                yield finding

    @staticmethod
    def _catalog_linenos(module: ModuleContext) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node.value not in out:
                out[node.value] = node.lineno
        return out

    @staticmethod
    def _stable_key_folds_ambient(module: ModuleContext) -> bool:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "stable_key":
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        func = inner.func
                        name = (func.id if isinstance(func, ast.Name)
                                else func.attr
                                if isinstance(func, ast.Attribute) else "")
                        if name == "ambient_key_material":
                            return True
        return False


@rule
class BroadExceptRule(Rule):
    """RPR007: bare/overbroad except on engine hot paths."""

    id = "RPR007"
    name = "broad-except"
    severity = Severity.ERROR
    paths = ("sim/", "tcp/", "net/", "hw/", "oskernel/", "cache/")
    rationale = (
        "A bare or Exception-wide handler on a hot path swallows the "
        "determinism guards (SimulationError, ProtocolError) and "
        "KeyboardInterrupt-adjacent state corruption alike, turning "
        "loud invariant violations into silently wrong results. Catch "
        "the specific exceptions the operation can raise; genuinely "
        "unbounded operations (unpickling foreign bytes) may be "
        "suppressed with a rationale.")

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag bare/Exception/BaseException handlers (tuples included)."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            label = "bare except:" if broad == "" else f"except {broad}:"
            yield self.finding(
                module, node,
                f"{label} on an engine path; catch the specific "
                f"exceptions this operation raises")

    @staticmethod
    def _broad_name(type_node: Optional[ast.AST]) -> Optional[str]:
        """"" for bare, the name for Exception/BaseException, else None."""
        if type_node is None:
            return ""
        names: List[ast.AST] = (list(type_node.elts)
                                if isinstance(type_node, ast.Tuple)
                                else [type_node])
        for name in names:
            if isinstance(name, ast.Name) \
                    and name.id in ("Exception", "BaseException"):
                return name.id
        return None
