"""Host/NIC/TCP tuning configuration — the knobs the paper turns.

:class:`TuningConfig` collects every optimization the case study applies:

* MTU (1500 standard, 9000 jumbo, 8160 allocator-friendly, 16000 max),
* PCI-X maximum memory read byte count (MMRBC burst size),
* SMP vs uniprocessor kernel,
* TCP socket buffer sizes (``/proc/sys/net/ipv4/tcp_rmem`` etc.),
* interrupt-coalescing delay,
* TCP timestamps and window scaling,
* transmit queue length, TSO, NAPI, checksum offload.

The named constructors (:meth:`TuningConfig.stock`, ...) correspond to the
paper's cumulative optimization steps in §3.3.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigError
from repro.units import KB

__all__ = ["TuningConfig", "VALID_MMRBC", "MAX_ADAPTER_MTU", "MIN_MTU"]

#: PCI-X MMRBC register accepts these burst sizes (bytes).
VALID_MMRBC = (512, 1024, 2048, 4096)

#: Largest MTU the Intel PRO/10GbE adapter supports (paper §3.3).
MAX_ADAPTER_MTU = 16000

#: Smallest MTU we accept (Ethernet v2 minimum payload region).
MIN_MTU = 576


@dataclass(frozen=True)
class TuningConfig:
    """One complete tuning state for a host + adapter + TCP stack.

    Instances are immutable; derive variants with :meth:`replace`.
    """

    mtu: int = 1500
    mmrbc: int = 512
    smp_kernel: bool = True
    tcp_rmem: int = KB(64)
    tcp_wmem: int = KB(64)
    interrupt_coalescing_us: float = 5.0
    #: adaptive (ITR-style) interrupt moderation: the delay tracks the
    #: observed arrival rate instead of the fixed value above —
    #: resolving the Fig. 6/7 latency-vs-load trade (extension).
    adaptive_coalescing: bool = False
    tcp_timestamps: bool = True
    window_scaling: bool = True
    txqueuelen: int = 100
    tso: bool = False
    napi: bool = False
    checksum_offload: bool = True
    delayed_ack: bool = True
    #: RFC 2018 selective acknowledgments (``net.ipv4.tcp_sack``).
    #: Off by default so the calibrated runs use plain NewReno recovery;
    #: turn on to study multi-loss recovery behaviour.
    sack: bool = False
    # --- §3.5.3 / §5 forward-looking offloads (extensions) ---
    #: aLAST-style header-parsing engine: the adapter places payloads of
    #: established connections directly in user memory; only headers
    #: take the kernel path (§3.5.3, "Breaking the Bottlenecks").
    header_splitting: bool = False
    #: OS-bypass / RDMA-over-IP projection (§5: "would result in
    #: throughput approaching 8 Gb/s, end-to-end latencies below 10 µs,
    #: and a CPU load approaching zero").
    os_bypass: bool = False
    #: Communication Streaming Architecture: the adapter hangs off the
    #: memory controller hub, bypassing the PCI-X bus entirely (§3.5.3).
    csa: bool = False

    def __post_init__(self) -> None:
        if not (MIN_MTU <= self.mtu <= MAX_ADAPTER_MTU):
            raise ConfigError(
                f"MTU {self.mtu} outside adapter range "
                f"[{MIN_MTU}, {MAX_ADAPTER_MTU}]")
        if self.mmrbc not in VALID_MMRBC:
            raise ConfigError(
                f"MMRBC {self.mmrbc} invalid; must be one of {VALID_MMRBC}")
        if self.tcp_rmem < KB(4) or self.tcp_wmem < KB(4):
            raise ConfigError("socket buffers must be at least 4 KB")
        if self.interrupt_coalescing_us < 0:
            raise ConfigError("interrupt coalescing delay cannot be negative")
        if self.txqueuelen < 1:
            raise ConfigError("txqueuelen must be >= 1")
        if self.os_bypass and self.header_splitting:
            raise ConfigError(
                "os_bypass already places data directly; combining it "
                "with header_splitting is contradictory")

    # -- derivation ---------------------------------------------------------
    def replace(self, **changes: Any) -> "TuningConfig":
        """A copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """Short label in the style of the paper's figure legends,
        e.g. ``"9000MTU,SMP,512PCI,64kbuf"``."""
        kernel = "SMP" if self.smp_kernel else "UP"
        buf = f"{self.tcp_rmem // 1024}kbuf"
        return f"{self.mtu}MTU,{kernel},{self.mmrbc}PCI,{buf}"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for reports and tests)."""
        return dataclasses.asdict(self)

    # -- the paper's named configurations (§3.3) ------------------------------
    @classmethod
    def stock(cls, mtu: int = 1500) -> "TuningConfig":
        """Out-of-box Dell PE2650: SMP kernel, MMRBC 512, 64 KB buffers."""
        return cls(mtu=mtu)

    @classmethod
    def with_pcix_burst(cls, mtu: int = 9000) -> "TuningConfig":
        """Stock + MMRBC raised to 4096 bytes."""
        return cls(mtu=mtu, mmrbc=4096)

    @classmethod
    def uniprocessor(cls, mtu: int = 9000) -> "TuningConfig":
        """+ uniprocessor kernel (the paper's counterintuitive step)."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False)

    @classmethod
    def oversized_windows(cls, mtu: int = 9000,
                          buf: int = KB(256)) -> "TuningConfig":
        """+ 256 KB socket buffers (four times the default)."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False,
                   tcp_rmem=buf, tcp_wmem=buf)

    @classmethod
    def fully_tuned(cls, mtu: int = 8160) -> "TuningConfig":
        """All LAN/SAN optimizations; MTU defaults to the allocator-friendly
        8160 bytes that produced the paper's 4.11 Gb/s peak."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False,
                   tcp_rmem=KB(256), tcp_wmem=KB(256))

    @classmethod
    def low_latency(cls, mtu: int = 1500) -> "TuningConfig":
        """Latency-oriented: interrupt coalescing disabled (Fig. 7)."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False,
                   interrupt_coalescing_us=0.0)

    @classmethod
    def with_header_splitting(cls, mtu: int = 8160) -> "TuningConfig":
        """§3.5.3 proposal: fully tuned + an aLAST-style header-parsing
        engine placing payload directly into user memory."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False,
                   tcp_rmem=KB(256), tcp_wmem=KB(256),
                   header_splitting=True)

    @classmethod
    def os_bypass_projection(cls, mtu: int = 9000) -> "TuningConfig":
        """§5 projection: an OS-bypass (RDMA-over-IP-style) protocol on a
        programmable adapter — throughput toward 8 Gb/s, latency below
        10 µs, CPU load approaching zero."""
        return cls(mtu=mtu, mmrbc=4096, smp_kernel=False,
                   tcp_rmem=KB(1024), tcp_wmem=KB(1024),
                   interrupt_coalescing_us=0.0, tcp_timestamps=False,
                   os_bypass=True)

    @classmethod
    def wan_tuned(cls, buf: int) -> "TuningConfig":
        """§4 WAN configuration: jumbo frames, large txqueuelen, socket
        buffers sized to the path bandwidth-delay product."""
        return cls(mtu=9000, mmrbc=4096, smp_kernel=True,
                   tcp_rmem=buf, tcp_wmem=buf,
                   txqueuelen=10000, window_scaling=True)
