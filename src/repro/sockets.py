"""Socket-style façade over the simulated stack.

The paper's selling point for 10GbE over Myrinet/QsNet is that it is "a
general-purpose, TCP/IP-based solution to applications, a solution that
does not require any modification to application codes".  This module
honours that by giving simulation users the sockets idiom they already
know: a :class:`SimSocket` with ``send``/``recv``/``sendall`` that work
as byte *counts* (the simulator models timing, not payload contents).

Usage from a process::

    sock = connect(env, client_host, server_host)
    yield from sock.sendall(10 * 1024 * 1024)
    ...
    received = yield from peer.recv(65536)   # on the other end
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection

__all__ = ["SimSocket", "connect"]


class SimSocket:
    """One end of an established simulated connection.

    The ``tx`` role wraps the sending side (``send``/``sendall``); the
    ``rx`` role wraps the receiving side (``recv``).  ``connect``
    returns the pair.
    """

    def __init__(self, connection: TcpConnection, role: str):
        if role not in ("tx", "rx"):
            raise ProtocolError(f"role must be 'tx' or 'rx', got {role!r}")
        self.connection = connection
        self.role = role
        self._recv_cursor = 0
        self._closed = False

    # -- sending --------------------------------------------------------------
    def send(self, nbytes: int):
        """Process: queue up to ``nbytes`` (blocks on the socket buffer,
        like a blocking ``send``); returns ``nbytes``."""
        self._require("tx")
        yield from self.connection.write(nbytes)
        return nbytes

    def sendall(self, nbytes: int, chunk: int = 65536):
        """Process: send ``nbytes`` in ``chunk``-sized writes."""
        self._require("tx")
        if nbytes <= 0:
            raise ProtocolError("sendall of a non-positive byte count")
        remaining = nbytes
        while remaining > 0:
            size = min(chunk, remaining)
            yield from self.connection.write(size)
            remaining -= size
        return nbytes

    # -- receiving --------------------------------------------------------------
    def recv(self, nbytes: int, poll_s: float = 1e-4):
        """Process: block until up to ``nbytes`` beyond what this socket
        has already consumed are available; returns the count consumed
        (like a blocking ``recv``, it returns as soon as *some* data is
        there)."""
        self._require("rx")
        if nbytes <= 0:
            raise ProtocolError("recv of a non-positive byte count")
        receiver = self.connection.receiver
        env = self.connection.env
        while receiver.bytes_delivered <= self._recv_cursor:
            yield env.timeout(poll_s)
        available = receiver.bytes_delivered - self._recv_cursor
        consumed = min(available, nbytes)
        self._recv_cursor += consumed
        return consumed

    def recv_exactly(self, nbytes: int, poll_s: float = 1e-4):
        """Process: block until exactly ``nbytes`` more are consumed."""
        self._require("rx")
        remaining = nbytes
        while remaining > 0:
            got = yield from self.recv(remaining, poll_s=poll_s)
            remaining -= got
        return nbytes

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Mark the socket closed; further operations raise."""
        self._closed = True

    @property
    def bytes_outstanding(self) -> int:
        """TX: unacknowledged bytes.  RX: delivered-but-unconsumed."""
        if self.role == "tx":
            return self.connection.sender.bytes_in_flight
        return self.connection.receiver.bytes_delivered - self._recv_cursor

    def _require(self, role: str) -> None:
        if self._closed:
            raise ProtocolError("operation on a closed socket")
        if self.role != role:
            raise ProtocolError(
                f"{'send' if role == 'tx' else 'recv'} on the "
                f"{self.role!r} end of the connection")


def connect(env: Environment, src_host, dst_host,
            **conn_kwargs) -> "tuple[SimSocket, SimSocket]":
    """Establish a connection; returns ``(tx_socket, rx_socket)``."""
    connection = TcpConnection(env, src_host, dst_host, **conn_kwargs)
    return SimSocket(connection, "tx"), SimSocket(connection, "rx")
