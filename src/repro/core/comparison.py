"""§3.5.4: 10GbE versus GbE, Myrinet and QsNet.

The peer numbers are the published figures the paper cites (Myricom's
GM datasheets, the authors' Quadrics experience, their own GbE work);
the 10GbE entries are produced by *our* simulation, and the comparison
percentages are recomputed, matching the paper's arithmetic:
"our established 10GbE throughput (4.11 Gb/s) is over 300% better than
GbE, over 120% better than Myrinet, and over 80% better than QsNet,
while our 19 µs latency is roughly 40% better than GbE and 50% better
than Myrinet/IP and QsNet/IP."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import MeasurementError
from repro.units import Gbps, us

__all__ = ["Interconnect", "INTERCONNECTS", "InterconnectComparison"]


@dataclass(frozen=True)
class Interconnect:
    """Published performance of one interconnect/API pairing."""

    name: str
    api: str
    unidirectional_bps: float
    latency_s: float
    hardware_limit_bps: Optional[float] = None
    needs_code_changes: bool = False

    @property
    def unidirectional_gbps(self) -> float:
        """Throughput in Gb/s."""
        return self.unidirectional_bps / 1e9

    @property
    def latency_us(self) -> float:
        """One-way latency in µs."""
        return self.latency_s * 1e6


#: §3.5.4's reference points.
INTERCONNECTS: Dict[str, Interconnect] = {
    "GbE/TCP": Interconnect(
        name="Gigabit Ethernet", api="TCP/IP",
        unidirectional_bps=Gbps(0.99), latency_s=us(31.5),
        hardware_limit_bps=Gbps(1.0)),
    "Myrinet/GM": Interconnect(
        name="Myrinet", api="GM",
        unidirectional_bps=Gbps(1.984), latency_s=us(6.5),
        hardware_limit_bps=Gbps(2.0), needs_code_changes=True),
    "Myrinet/IP": Interconnect(
        name="Myrinet", api="TCP/IP emulation",
        unidirectional_bps=Gbps(1.853), latency_s=us(30.0),
        hardware_limit_bps=Gbps(2.0)),
    "QsNet/Elan3": Interconnect(
        name="QsNet", api="Elan3",
        unidirectional_bps=Gbps(2.456), latency_s=us(4.9),
        hardware_limit_bps=Gbps(3.2), needs_code_changes=True),
    "QsNet/IP": Interconnect(
        name="QsNet", api="TCP/IP",
        unidirectional_bps=Gbps(2.24), latency_s=us(29.0),
        hardware_limit_bps=Gbps(3.2)),
}


class InterconnectComparison:
    """Compare a measured 10GbE result against the §3.5.4 peers."""

    def __init__(self, tengbe_bps: float, tengbe_latency_s: float,
                 label: str = "10GbE/TCP (measured)"):
        if tengbe_bps <= 0 or tengbe_latency_s <= 0:
            raise MeasurementError("10GbE figures must be positive")
        self.tengbe = Interconnect(
            name="10-Gigabit Ethernet", api="TCP/IP",
            unidirectional_bps=tengbe_bps, latency_s=tengbe_latency_s,
            hardware_limit_bps=Gbps(8.5))
        self.label = label

    def throughput_advantage(self, key: str) -> float:
        """Fractional throughput advantage over a peer: the paper's
        'over 300% better' is ``(ours / theirs) - 1``."""
        peer = self._peer(key)
        return self.tengbe.unidirectional_bps / peer.unidirectional_bps - 1.0

    def latency_advantage(self, key: str) -> float:
        """Fractional latency advantage (positive = we are faster)."""
        peer = self._peer(key)
        return 1.0 - self.tengbe.latency_s / peer.latency_s

    def latency_ratio(self, key: str) -> float:
        """Ours / theirs (the conclusion's '1.7x slower than
        Myrinet/GM' is this ratio)."""
        return self.tengbe.latency_s / self._peer(key).latency_s

    def rows(self) -> List[Dict[str, object]]:
        """Comparison table rows for reporting."""
        out: List[Dict[str, object]] = []
        for key, peer in INTERCONNECTS.items():
            out.append({
                "interconnect": key,
                "peer_gbps": round(peer.unidirectional_gbps, 3),
                "peer_latency_us": round(peer.latency_us, 1),
                "throughput_advantage_pct":
                    round(self.throughput_advantage(key) * 100.0, 1),
                "latency_ratio": round(self.latency_ratio(key), 2),
                "needs_code_changes": peer.needs_code_changes,
            })
        return out

    @staticmethod
    def _peer(key: str) -> Interconnect:
        try:
            return INTERCONNECTS[key]
        except KeyError:
            raise MeasurementError(
                f"unknown interconnect {key!r}; known: "
                f"{sorted(INTERCONNECTS)}") from None
