"""The named optimization ladder of §3.3.

Each :class:`OptimizationStep` transforms the previous configuration and
records what the paper measured for that step, so the case-study driver
can print measured-vs-paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.config import TuningConfig
from repro.units import KB

__all__ = ["OptimizationStep", "LAN_OPTIMIZATION_LADDER"]


@dataclass(frozen=True)
class OptimizationStep:
    """One rung of the cumulative tuning ladder.

    Attributes
    ----------
    name:
        Step label, matching the paper's subsection headings.
    rationale:
        The mechanism the step exploits.
    transform:
        ``transform(previous_config) -> new_config``.
    paper_peaks_gbps:
        The paper's reported peak throughput per MTU at this step
        (missing entries mean the paper reports no number).
    """

    name: str
    rationale: str
    transform: Callable[[TuningConfig], TuningConfig]
    paper_peaks_gbps: Dict[int, float]


def _stock(config: TuningConfig) -> TuningConfig:
    return config


def _pcix_burst(config: TuningConfig) -> TuningConfig:
    return config.replace(mmrbc=4096)


def _uniprocessor(config: TuningConfig) -> TuningConfig:
    return config.replace(smp_kernel=False)


def _oversized_windows(config: TuningConfig) -> TuningConfig:
    return config.replace(tcp_rmem=KB(256), tcp_wmem=KB(256))


#: §3.3 in order.  Peaks from the text: stock 1.8 / 2.7 Gb/s
#: (1500/9000); burst "+33%" to 3.6 at 9000, marginal at 1500;
#: uniprocessor 2.15 at 1500 (~+20% peak), ~+10% at 9000;
#: oversized windows 2.47 / 3.9 (Fig. 4); non-standard MTUs 4.11 (8160)
#: and 4.09 (16000) (Fig. 5).
LAN_OPTIMIZATION_LADDER: Tuple[OptimizationStep, ...] = (
    OptimizationStep(
        name="stock TCP",
        rationale="baseline: SMP kernel, MMRBC 512, default 64 KB windows",
        transform=_stock,
        paper_peaks_gbps={1500: 1.8, 9000: 2.7},
    ),
    OptimizationStep(
        name="+ increased PCI-X burst size",
        rationale="MMRBC 512 -> 4096: fewer, larger DMA bursts lift the "
                  "effective PCI-X bandwidth past the 9000-MTU ceiling",
        transform=_pcix_burst,
        paper_peaks_gbps={1500: 1.85, 9000: 3.6},
    ),
    OptimizationStep(
        name="+ uniprocessor kernel",
        rationale="interrupts pin to one CPU anyway; dropping SMP "
                  "removes lock/cache-bounce tax from every packet",
        transform=_uniprocessor,
        paper_peaks_gbps={1500: 2.15, 9000: 3.2},
    ),
    OptimizationStep(
        name="+ oversized (256 KB) windows",
        rationale="4x the default window masks MSS-alignment and "
                  "truesize losses (§3.5.1)",
        transform=_oversized_windows,
        paper_peaks_gbps={1500: 2.47, 9000: 3.9, 8160: 4.11, 16000: 4.09},
    ),
)
