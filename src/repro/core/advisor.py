"""Tuning advisor: the paper's methodology as a reusable artifact.

The case study's lasting value is its *procedure*: identify the binding
resource, apply the knob that relieves it, re-measure.  The advisor
automates that loop analytically — given a platform and a workload
intent, it walks the knobs in the paper's order, keeps each change that
the cost model predicts will help, and emits the recommended
:class:`~repro.config.TuningConfig` together with the reasoning chain
and the paper's reference configuration for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.hw.presets import HostSpec, PE2650
from repro.tcp.analytic import predict_throughput_bps
from repro.tcp.mss import mss_for_mtu
from repro.units import KB

__all__ = ["TuningAdvisor", "Advice", "AdviceStep"]


@dataclass(frozen=True)
class AdviceStep:
    """One accepted (or rejected) tuning move."""

    knob: str
    change: str
    predicted_gbps: float
    accepted: bool
    rationale: str


@dataclass
class Advice:
    """The advisor's output."""

    workload: str
    config: TuningConfig
    predicted_gbps: float
    steps: List[AdviceStep] = field(default_factory=list)

    def explain(self) -> str:
        """Human-readable reasoning chain."""
        lines = [f"workload: {self.workload}",
                 f"recommended: {self.config.describe()} "
                 f"(predicted {self.predicted_gbps:.2f} Gb/s)"]
        for s in self.steps:
            mark = "+" if s.accepted else "-"
            lines.append(f"  {mark} {s.knob}: {s.change} -> "
                         f"{s.predicted_gbps:.2f} Gb/s ({s.rationale})")
        return "\n".join(lines)


class TuningAdvisor:
    """Walk the paper's knob ladder analytically for a platform."""

    #: candidate moves in the paper's order: (knob, change-description,
    #: transform, rationale)
    _LADDER = (
        ("mmrbc", "512 -> 4096",
         lambda c: c.replace(mmrbc=4096),
         "larger DMA bursts lift effective PCI-X bandwidth (§3.3)"),
        ("smp_kernel", "SMP -> UP",
         lambda c: c.replace(smp_kernel=False),
         "interrupts pin to one CPU anyway; drop the SMP tax (§3.3)"),
        ("tcp_rmem/wmem", "64 KB -> 256 KB",
         lambda c: c.replace(tcp_rmem=KB(256), tcp_wmem=KB(256)),
         "mask MSS-alignment and truesize window losses (§3.5.1)"),
        ("mtu", "-> 8160 (one 8 KB allocator block)",
         lambda c: c.replace(mtu=8160),
         "frame fits a single power-of-two block (§3.3)"),
        ("mtu", "-> 16000 (adapter max)",
         lambda c: c.replace(mtu=16000),
         "amortise per-packet costs further (§3.3)"),
        ("tcp_timestamps", "on -> off",
         lambda c: c.replace(tcp_timestamps=False),
         "per-packet stamping cost; safe inside a LAN (§3.4)"),
    )

    def __init__(self, spec: HostSpec = PE2650):
        self.spec = spec

    def advise(self, workload: str = "lan-throughput",
               start: Optional[TuningConfig] = None) -> Advice:
        """Recommend a configuration for ``workload``.

        Workloads: ``"lan-throughput"`` (bulk, the §3 study),
        ``"lan-latency"`` (small messages; coalescing off, standard
        MTU), ``"wan-throughput"`` (the §4 recipe; buffers must then be
        sized to the measured BDP by the caller).
        """
        if workload == "lan-latency":
            config = TuningConfig(mtu=1500, mmrbc=4096, smp_kernel=False,
                                  interrupt_coalescing_us=0.0)
            advice = Advice(workload=workload, config=config,
                            predicted_gbps=self._predict(config))
            advice.steps.append(AdviceStep(
                "interrupt_coalescing_us", "5 -> 0 us",
                advice.predicted_gbps, True,
                "trade CPU load for the 5 us delay (Fig. 7)"))
            return advice
        if workload == "wan-throughput":
            config = TuningConfig.wan_tuned(buf=KB(32 * 1024))
            advice = Advice(workload=workload, config=config,
                            predicted_gbps=self._predict(config))
            advice.steps.append(AdviceStep(
                "tcp_rmem/wmem", "size to path BDP / 0.75",
                advice.predicted_gbps, True,
                "cap the congestion window at the BDP so the bottleneck "
                "queue never overflows (§4)"))
            advice.steps.append(AdviceStep(
                "txqueuelen", "100 -> 10000", advice.predicted_gbps, True,
                "a BDP-sized window must fit the local qdisc (§4)"))
            return advice
        if workload != "lan-throughput":
            raise ConfigError(
                f"unknown workload {workload!r}; expected lan-throughput,"
                " lan-latency or wan-throughput")

        config = start or TuningConfig.stock(9000)
        best = self._predict(config)
        advice = Advice(workload=workload, config=config,
                        predicted_gbps=best)
        for knob, change, transform, rationale in self._LADDER:
            try:
                candidate = transform(config)
            except ConfigError:
                continue
            predicted = self._predict(candidate)
            accepted = predicted > best * 1.005
            advice.steps.append(AdviceStep(knob, change, predicted,
                                           accepted, rationale))
            if accepted:
                config, best = candidate, predicted
        advice.config = config
        advice.predicted_gbps = best
        return advice

    def _predict(self, config: TuningConfig) -> float:
        payload = mss_for_mtu(config.mtu, config.tcp_timestamps)
        return predict_throughput_bps(self.spec, config, payload) / 1e9
