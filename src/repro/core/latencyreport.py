"""The latency study: Figures 6 and 7.

NetPipe ping-pong latency versus payload size (1 B .. 1024 B), back to
back and through the switch, with and without interrupt coalescing.
Paper numbers: 19 µs back-to-back / 25 µs through the switch with the
5 µs coalescing delay, rising ~20% over the payload range (23 µs /
28 µs at 1024 B); disabling coalescing "trivially shaves off" 5 µs,
down to 14 µs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.presets import HostSpec, PE2650
from repro.net.topology import BackToBack, ThroughSwitch
from repro.sim.engine import Environment
from repro.sim.runner import SweepRunner
from repro.tcp.connection import TcpConnection
from repro.tools.netpipe import NetpipeResult, netpipe_latency

__all__ = ["LatencyStudy", "LatencyCurve", "DEFAULT_LATENCY_PAYLOADS"]


def _latency_point(task) -> NetpipeResult:
    """One ping-pong measurement on a fresh testbed (module-level for
    the parallel runner)."""
    spec, calibration, config, through_switch, payload, iterations = task
    env = Environment()
    if through_switch:
        topo = ThroughSwitch.create(env, config, spec=spec,
                                    calibration=calibration)
    else:
        topo = BackToBack.create(env, config, spec=spec,
                                 calibration=calibration)
    forward = TcpConnection(env, topo.a, topo.b)
    backward = TcpConnection(env, topo.b, topo.a)
    return netpipe_latency(env, forward, backward, payload, iterations)

#: Fig. 6/7 x-axis: single bytes up to 1 KB.
DEFAULT_LATENCY_PAYLOADS = (1, 2, 4, 8, 16, 32, 64, 128, 192, 256, 384,
                            512, 640, 768, 896, 1024)


@dataclass
class LatencyCurve:
    """Latency vs payload under one configuration/topology."""

    label: str
    through_switch: bool
    coalescing_us: float
    points: List[NetpipeResult] = field(default_factory=list)

    @property
    def payloads(self) -> np.ndarray:
        """Payload sizes."""
        return np.array([p.payload for p in self.points])

    @property
    def latencies_us(self) -> np.ndarray:
        """One-way latencies (µs)."""
        return np.array([p.latency_us for p in self.points])

    @property
    def base_latency_us(self) -> float:
        """Latency at the smallest payload."""
        if not self.points:
            raise MeasurementError(f"curve {self.label!r} has no points")
        return float(self.latencies_us[0])

    @property
    def growth_fraction(self) -> float:
        """Relative increase from the smallest to the largest payload
        (the paper reports ~20% over 1 B .. 1024 B)."""
        lat = self.latencies_us
        return float(lat[-1] / lat[0] - 1.0)


class LatencyStudy:
    """Regenerates Figures 6 and 7."""

    def __init__(self, spec: HostSpec = PE2650, iterations: int = 8,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 jobs: Optional[int] = None):
        self.spec = spec
        self.iterations = iterations
        self.calibration = calibration
        self.jobs = jobs

    def measure(self, coalescing_us: float = 5.0,
                through_switch: bool = False,
                payloads: Sequence[int] = DEFAULT_LATENCY_PAYLOADS,
                mtu: int = 1500) -> LatencyCurve:
        """One latency-vs-payload curve."""
        config = TuningConfig(
            mtu=mtu, mmrbc=4096, smp_kernel=False,
            interrupt_coalescing_us=coalescing_us)
        curve = LatencyCurve(
            label=("switch" if through_switch else "back-to-back")
            + f", coalesce={coalescing_us:g}us",
            through_switch=through_switch,
            coalescing_us=coalescing_us)
        tasks = [(self.spec, self.calibration, config, through_switch,
                  payload, self.iterations) for payload in payloads]
        curve.points.extend(SweepRunner(self.jobs).map(
            _latency_point, tasks, cache_ns="netpipe-latency"))
        return curve

    def figure6(self) -> List[LatencyCurve]:
        """Latency with the 5 µs coalescing delay: back-to-back and
        through the switch."""
        return [self.measure(coalescing_us=5.0, through_switch=False),
                self.measure(coalescing_us=5.0, through_switch=True)]

    def figure7(self) -> List[LatencyCurve]:
        """Latency with interrupt coalescing disabled."""
        return [self.measure(coalescing_us=0.0, through_switch=False),
                self.measure(coalescing_us=0.0, through_switch=True)]
