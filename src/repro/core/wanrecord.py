"""§4: the Internet2 Land Speed Record run, Sunnyvale -> Geneva.

The experiment: a single TCP/IP stream across an OC-192 + OC-48 path
(RTT 180 ms), with the socket buffer sized to the bandwidth-delay
product so the flow-control window "implicitly caps the congestion
window ... so that the network approaches congestion but avoids it
altogether".  Result: 2.38 Gb/s — ~99% of the OC-48 payload capacity —
moving a terabyte in under an hour.

Two engines reproduce it:

* the fluid model (default) — runs the full 180 ms-RTT hour-scale flow
  in milliseconds of wall time; and
* the packet-level DES — used as a cross-check at a scaled-down
  distance (the mechanics are identical; simulating 6000-segment
  windows for simulated hours in Python buys no additional fidelity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net.topology import build_wan_path
from repro.net.wanpath import OC48_BPS, POS_OVERHEAD, SONET_PAYLOAD_FRACTION
from repro.core.landspeed import LSR_2002, LSR_2003, land_speed_record_metric
from repro.sim.engine import Environment
from repro.sim.runner import SweepRunner
from repro.tcp.analytic import bandwidth_delay_product
from repro.tcp.connection import TcpConnection
from repro.tcp.fluid import FluidParams, FluidResult, simulate_fluid
from repro.tcp.mss import mss_for_mtu
from repro.tcp.window import window_from_space

__all__ = ["WanRecordRun", "WanOutcome"]

#: The paper's path length (Sunnyvale - Geneva).
PATH_KM = 10037.0

#: Measured RTT of the path.
RTT_S = 0.180


def _buffer_sweep_point(task) -> "WanOutcome":
    """One buffer-sweep configuration (module-level for the parallel
    runner; :class:`WanRecordRun` holds only plain picklable state)."""
    run, buf, duration_s, label = task
    return run.run_fluid(buffer_bytes=buf, duration_s=duration_s,
                         label=label)


@dataclass(frozen=True)
class WanOutcome:
    """Results of one WAN configuration."""

    label: str
    buffer_bytes: int
    throughput_bps: float
    losses: int
    payload_efficiency: float
    terabyte_time_s: float
    lsr_metric: float

    @property
    def throughput_gbps(self) -> float:
        """Goodput in Gb/s."""
        return self.throughput_bps / 1e9

    @property
    def terabyte_under_an_hour(self) -> bool:
        """The paper's headline claim."""
        return self.terabyte_time_s < 3600.0

    @property
    def beats_previous_record(self) -> float:
        """Multiple of the pre-2003 record (the paper claims 2.5x)."""
        return self.lsr_metric / LSR_2002.metric


class WanRecordRun:
    """Drive the §4 experiment."""

    def __init__(self, mtu: int = 9000, rtt_s: float = RTT_S,
                 bottleneck_queue_frames: int = 1024,
                 calibration: Calibration = DEFAULT_CALIBRATION):
        self.mtu = mtu
        self.rtt_s = rtt_s
        self.queue_frames = bottleneck_queue_frames
        self.calibration = calibration
        self.mss = mss_for_mtu(mtu, timestamps=True)

    # -- path arithmetic -----------------------------------------------------------
    @property
    def bottleneck_goodput_bps(self) -> float:
        """TCP-payload capacity of the OC-48: SONET payload rate scaled
        by the segment's payload fraction."""
        pos_payload = OC48_BPS * SONET_PAYLOAD_FRACTION
        return pos_payload * self.mss / (self.mtu + POS_OVERHEAD)

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the bottleneck."""
        return bandwidth_delay_product(self.bottleneck_goodput_bps, self.rtt_s)

    def bdp_buffer_bytes(self, truesize_aware: bool = False) -> int:
        """The socket-buffer size whose usable window equals the BDP
        (inverting the adv_win_scale reservation) — the paper's tuning.

        ``truesize_aware`` additionally inverts the kernel's
        power-of-two truesize accounting (a 9000-MTU segment charges
        16 KB of buffer for ~9 KB of payload), which is why real tuned
        buffers — including the paper's sysctl values — end up roughly
        twice the raw BDP.
        """
        buf = self.bdp_bytes / 0.75
        if truesize_aware:
            from repro.oskernel.allocator import block_size_for
            frame = self.mss + (self.mtu - self.mss) + 18
            buf *= block_size_for(frame) / self.mss
        return int(math.ceil(buf))

    # -- fluid engine --------------------------------------------------------------
    def run_fluid(self, buffer_bytes: Optional[int] = None,
                  duration_s: float = 3600.0,
                  label: str = "tuned") -> WanOutcome:
        """One configuration through the fluid model."""
        buf = self.bdp_buffer_bytes() if buffer_bytes is None else buffer_bytes
        if buf <= 0:
            raise MeasurementError("buffer must be positive")
        window_cap = window_from_space(buf)
        params = FluidParams(
            bottleneck_bps=self.bottleneck_goodput_bps,
            base_rtt_s=self.rtt_s,
            mss=self.mss,
            max_window_bytes=window_cap,
            queue_packets=self.queue_frames)
        result = simulate_fluid(params, duration_s=duration_s,
                                warmup_s=min(30.0, duration_s / 4.0))
        return self._outcome(label, buf, result.mean_throughput_bps,
                             result.losses)

    def run_fluid_multiflow(self, n_flows: int,
                            per_flow_buffer_bytes: Optional[int] = None,
                            duration_s: float = 600.0) -> WanOutcome:
        """N parallel streams (the LSR's multi-stream category).

        Default per-flow buffer: an N-th of the tuned single-stream
        buffer — the practical reason multi-stream transfers were
        popular before large windows were safe (Table 1 recovery).
        """
        from repro.tcp.fluid import simulate_fluid_multiflow
        if n_flows < 1:
            raise MeasurementError("need at least one flow")
        buf = (per_flow_buffer_bytes if per_flow_buffer_bytes is not None
               else max(4096, self.bdp_buffer_bytes() // n_flows))
        params = FluidParams(
            bottleneck_bps=self.bottleneck_goodput_bps,
            base_rtt_s=self.rtt_s,
            mss=self.mss,
            max_window_bytes=window_from_space(buf),
            queue_packets=self.queue_frames)
        result = simulate_fluid_multiflow(
            params, n_flows=n_flows, duration_s=duration_s,
            warmup_s=min(30.0, duration_s / 4.0))
        return self._outcome(f"{n_flows} streams", buf,
                             result.mean_aggregate_bps, result.losses)

    def buffer_sweep(self, factors: Sequence[float] = (0.001, 0.25, 0.5,
                                                       1.0, 1.5, 3.0),
                     duration_s: float = 600.0) -> List[WanOutcome]:
        """Throughput vs socket-buffer size, in multiples of the
        BDP-sized buffer — showing the paper's point that both too-small
        *and* too-large buffers lose (Table 1 context: 'setting the
        socket buffer too large can severely impact performance')."""
        tasks = [(self, max(4096, int(self.bdp_buffer_bytes() * factor)),
                  duration_s, f"{factor:g}x BDP buffer")
                 for factor in factors]
        return SweepRunner().map(_buffer_sweep_point, tasks,
                                 cache_ns="wan-buffer-sweep")

    # -- DES cross-check -------------------------------------------------------------
    def run_des_scaled(self, scale: float = 0.1,
                       duration_s: float = 4.0) -> WanOutcome:
        """Packet-level cross-check at ``scale`` of the real distance.

        The BDP shrinks with the distance, so the tuned buffer is scaled
        identically; steady-state goodput must still reach ~99% of the
        bottleneck payload capacity.
        """
        if not 0.0 < scale <= 1.0:
            raise MeasurementError("scale must be in (0, 1]")
        buf = max(65536, int(self.bdp_buffer_bytes(truesize_aware=True)
                             * scale))
        config = TuningConfig.wan_tuned(buf=buf)
        env = Environment()
        testbed = build_wan_path(
            env, config, bottleneck_queue_frames=self.queue_frames,
            calibration=self.calibration)
        # scale the circuit lengths
        for path in (testbed.forward, testbed.reverse):
            path.oc192.propagation_s *= scale
            path.oc48.propagation_s *= scale
        conn = TcpConnection(env, testbed.sunnyvale, testbed.geneva)
        stop = {"flag": False}

        def source():
            while not stop["flag"]:
                yield from conn.write(262144)

        env.process(source(), name="wan.src")
        warmup = duration_s / 2.0
        env.run(until=warmup)
        start_bytes = conn.receiver.bytes_delivered
        t0 = env.now
        env.run(until=t0 + duration_s / 2.0)
        stop["flag"] = True
        delivered = conn.receiver.bytes_delivered - start_bytes
        elapsed = env.now - t0
        if delivered <= 0:
            raise MeasurementError("WAN DES run saw no deliveries")
        throughput = delivered * 8.0 / elapsed
        losses = testbed.forward.drops + testbed.reverse.drops
        return self._outcome(f"DES x{scale:g} scale", buf, throughput,
                             losses)

    # -- shared reporting ------------------------------------------------------------
    def _outcome(self, label: str, buf: int, throughput_bps: float,
                 losses: int) -> WanOutcome:
        efficiency = throughput_bps / (OC48_BPS * SONET_PAYLOAD_FRACTION)
        terabyte = 1e12 * 8.0 / throughput_bps
        return WanOutcome(
            label=label, buffer_bytes=buf, throughput_bps=throughput_bps,
            losses=losses, payload_efficiency=efficiency,
            terabyte_time_s=terabyte,
            lsr_metric=land_speed_record_metric(throughput_bps, PATH_KM))
