"""§3.5.2: where does the missing bandwidth go?

The paper's bottleneck hunt runs four probes, all reproduced here:

1. **Receive vs transmit path** — aggregate many GbE flows *into* one
   10GbE adapter, then *out of* it; the two directions turn out
   statistically equal (receive benefits from interrupt coalescing of
   bursty multi-host arrivals).
2. **Dual adapters on independent buses** — statistically identical to
   one adapter, ruling out the PCI-X bus and the adapter itself.
3. **Memory bandwidth** — STREAM across platforms: the GC-HE's ~50%
   extra bandwidth buys no network throughput.
4. **Kernel packet generator** — 5.5 Gb/s single-copy ceiling; observed
   TCP is ~75% of it, consistent with host data movement (not CPU
   cycles, not the bus) being the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.presets import GBE_HOST, HostSpec, PE2650, PE4600, INTEL_E7505
from repro.net.topology import BackToBack, MultiFlow
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection
from repro.tcp.pktgen import PktgenResult, pktgen_run
from repro.tools.stream_bench import StreamResult, stream_bench
from repro.units import Gbps

__all__ = ["BottleneckStudy", "BottleneckReport", "AggregateResult"]


@dataclass(frozen=True)
class AggregateResult:
    """Aggregate goodput of a multi-flow run."""

    direction: str
    n_flows: int
    n_adapters: int
    aggregate_bps: float
    per_flow_bps: Sequence[float]

    @property
    def aggregate_gbps(self) -> float:
        """Total goodput in Gb/s."""
        return self.aggregate_bps / 1e9


@dataclass
class BottleneckReport:
    """Everything §3.5.2 measures, in one record."""

    rx_aggregate: AggregateResult
    tx_aggregate: AggregateResult
    dual_adapter: AggregateResult
    stream: Dict[str, StreamResult]
    pktgen: PktgenResult
    single_flow_bps: float

    @property
    def paths_symmetric(self) -> bool:
        """Receive and transmit within 10% — the paper's 'statistically
        equal performance'."""
        rx, tx = self.rx_aggregate.aggregate_bps, self.tx_aggregate.aggregate_bps
        return abs(rx - tx) / max(rx, tx) < 0.10

    @property
    def bus_ruled_out(self) -> bool:
        """Dual independent buses no better than one (within 10%)."""
        one = self.rx_aggregate.aggregate_bps
        two = self.dual_adapter.aggregate_bps
        return (two - one) / one < 0.10

    @property
    def tcp_fraction_of_pktgen(self) -> float:
        """Observed TCP vs the single-copy generator (~0.75 in §3.5.2)."""
        return self.single_flow_bps / self.pktgen.rate_bps


class BottleneckStudy:
    """Run the §3.5.2 decomposition."""

    def __init__(self, server_spec: HostSpec = PE2650,
                 duration_s: float = 0.02,
                 n_clients: int = 8,
                 calibration: Calibration = DEFAULT_CALIBRATION):
        if n_clients < 1:
            raise MeasurementError("need at least one client")
        self.server_spec = server_spec
        self.duration_s = duration_s
        self.n_clients = n_clients
        self.calibration = calibration
        self.config = TuningConfig.oversized_windows(mtu=9000)

    # -- multi-flow probes -----------------------------------------------------
    def _aggregate(self, direction: str, n_adapters: int) -> AggregateResult:
        env = Environment()
        topo = MultiFlow.create(
            env, self.config, n_clients=self.n_clients,
            server_spec=self.server_spec,
            n_server_adapters=n_adapters,
            calibration=self.calibration)
        conns: List[TcpConnection] = []
        for i, client in enumerate(topo.clients):
            adapter = topo.server_adapters[i % n_adapters]
            if direction == "rx":
                conns.append(TcpConnection(env, client, topo.server,
                                           dst_nic=adapter))
            else:
                conns.append(TcpConnection(env, topo.server, client,
                                           src_nic=adapter))
        stop = {"flag": False}

        def source(conn: TcpConnection):
            while not stop["flag"]:
                yield from conn.write(65536)

        for conn in conns:
            env.process(source(conn), name=f"mf.{conn.name}")
        warmup = self.duration_s * 0.5
        env.run(until=warmup)
        start = [c.receiver.bytes_delivered for c in conns]
        t0 = env.now
        env.run(until=t0 + self.duration_s)
        stop["flag"] = True
        elapsed = env.now - t0
        per_flow = [
            (c.receiver.bytes_delivered - s) * 8.0 / elapsed
            for c, s in zip(conns, start)
        ]
        return AggregateResult(direction=direction, n_flows=len(conns),
                               n_adapters=n_adapters,
                               aggregate_bps=float(sum(per_flow)),
                               per_flow_bps=per_flow)

    def receive_path(self) -> AggregateResult:
        """GbE clients transmit into one 10GbE server adapter."""
        return self._aggregate("rx", n_adapters=1)

    def transmit_path(self) -> AggregateResult:
        """The server transmits out to the GbE clients."""
        return self._aggregate("tx", n_adapters=1)

    def dual_adapters(self) -> AggregateResult:
        """Clients split across two server adapters on independent buses."""
        return self._aggregate("rx", n_adapters=2)

    # -- supporting probes -----------------------------------------------------
    def stream_comparison(self) -> Dict[str, StreamResult]:
        """STREAM on the three platforms §3.5.2 compares."""
        return {spec.name: stream_bench(spec)
                for spec in (PE2650, PE4600, INTEL_E7505)}

    def pktgen_ceiling(self, packets: int = 2048) -> PktgenResult:
        """The kernel packet generator on the server platform."""
        env = Environment()
        bb = BackToBack.create(env, self.config, spec=self.server_spec,
                               calibration=self.calibration)
        bb.b.set_default_handler(lambda skb, batch: None)
        return pktgen_run(env, bb.a, dst_address="hostB.eth0",
                          packet_bytes=8160, packets=packets)

    def single_flow(self, payload: int = 8108) -> float:
        """Reference tuned single-flow goodput (bps)."""
        from repro.tools.nttcp import nttcp_run
        env = Environment()
        config = TuningConfig.fully_tuned(8160)
        bb = BackToBack.create(env, config, spec=self.server_spec,
                               calibration=self.calibration)
        conn = TcpConnection(env, bb.a, bb.b)
        return nttcp_run(env, conn, payload, 1024).goodput_bps

    # -- the full report ---------------------------------------------------------
    def run(self) -> BottleneckReport:
        """All four probes."""
        return BottleneckReport(
            rx_aggregate=self.receive_path(),
            tx_aggregate=self.transmit_path(),
            dual_adapter=self.dual_adapters(),
            stream=self.stream_comparison(),
            pktgen=self.pktgen_ceiling(),
            single_flow_bps=self.single_flow(),
        )
