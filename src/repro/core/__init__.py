"""The paper's contribution: the 10GbE tuning methodology.

* :mod:`repro.core.knobs` — the tuning-knob registry.
* :mod:`repro.core.optimizations` — the named cumulative steps of §3.3.
* :mod:`repro.core.casestudy` — the driver that applies steps and
  measures each (Figs. 3-5).
* :mod:`repro.core.latencyreport` — the latency study (Figs. 6-7).
* :mod:`repro.core.bottleneck` — the §3.5.2 bottleneck decomposition.
* :mod:`repro.core.comparison` — §3.5.4 versus GbE/Myrinet/QsNet.
* :mod:`repro.core.wanrecord` — the §4 Internet2 Land Speed Record run.
* :mod:`repro.core.landspeed` — the LSR metric itself.
"""

from repro.core.knobs import Knob, KNOBS, knob
from repro.core.optimizations import OptimizationStep, LAN_OPTIMIZATION_LADDER
from repro.core.casestudy import CaseStudy, StepResult, SweepCurve
from repro.core.latencyreport import LatencyStudy, LatencyCurve
from repro.core.bottleneck import BottleneckStudy, BottleneckReport
from repro.core.comparison import InterconnectComparison, INTERCONNECTS
from repro.core.wanrecord import WanRecordRun, WanOutcome
from repro.core.landspeed import land_speed_record_metric, LSR_2003
from repro.core.advisor import TuningAdvisor, Advice

__all__ = [
    "Knob",
    "KNOBS",
    "knob",
    "OptimizationStep",
    "LAN_OPTIMIZATION_LADDER",
    "CaseStudy",
    "StepResult",
    "SweepCurve",
    "LatencyStudy",
    "LatencyCurve",
    "BottleneckStudy",
    "BottleneckReport",
    "InterconnectComparison",
    "INTERCONNECTS",
    "WanRecordRun",
    "WanOutcome",
    "land_speed_record_metric",
    "LSR_2003",
    "TuningAdvisor",
    "Advice",
]
