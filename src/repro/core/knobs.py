"""The knob registries: every lever the paper turns, plus every
``REPRO_*`` environment switch the runtime reads.

Two tables live here:

* :data:`KNOBS` — the paper's tuning levers.  Each :class:`Knob`
  couples a name to the :class:`~repro.config.TuningConfig`
  transformation it performs and to the mechanism it acts through, so
  the case-study driver, the docs and the ablation benchmarks all share
  one source of truth.
* :data:`ENV_KNOBS` — the runtime's ambient switches.  Each
  :class:`EnvKnob` declares its default, its parser, whether flipping
  it can change simulation *results* (as opposed to only changing how
  fast or how observably they are computed), and — when it can — how
  that influence reaches the result-cache key.  This table is the
  contract reprolint checks statically: rule RPR004 flags any
  ``REPRO_*`` environment read that bypasses it, and RPR006 flags any
  result-affecting knob whose value never reaches
  :func:`repro.cache.keys.stable_key`.

All ``os.environ`` reads of ``REPRO_*`` names live in this module
(:func:`env_raw` / :func:`env_value`); everything else imports from
here.  That single choke point is what makes "did we forget a knob in
the cache key?" a lint-time question instead of a 2 a.m. bug hunt.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.config import TuningConfig
from repro.errors import ConfigError

__all__ = ["Knob", "KNOBS", "knob",
           "EnvKnob", "ENV_KNOBS", "env_knob", "env_raw", "env_value",
           "ambient_key_material",
           "parse_on_flag", "parse_truthy_flag"]


@dataclass(frozen=True)
class Knob:
    """One tuning lever.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"mtu"``.
    description:
        What it does and through which mechanism.
    paper_section:
        Where the paper discusses it.
    apply:
        ``apply(config, value) -> new config``.
    """

    name: str
    description: str
    paper_section: str
    apply: Callable[[TuningConfig, Any], TuningConfig]


KNOBS: Dict[str, Knob] = {}


def _register(name: str, description: str, paper_section: str,
              field: str) -> None:
    def apply(config: TuningConfig, value: Any) -> TuningConfig:
        return config.replace(**{field: value})

    KNOBS[name] = Knob(name=name, description=description,
                       paper_section=paper_section, apply=apply)


_register(
    "mtu",
    "Maximum transfer unit. Larger MTUs amortise per-packet costs; "
    "non-power-of-two-friendly sizes (9000) waste allocator blocks, "
    "which is why 8160 outperforms it.",
    "3.3", "mtu")
_register(
    "mmrbc",
    "PCI-X maximum memory read byte count: the DMA burst size. Raising "
    "512 -> 4096 cuts per-burst arbitration overhead and lifts the "
    "effective bus bandwidth.",
    "3.3", "mmrbc")
_register(
    "smp_kernel",
    "SMP vs uniprocessor kernel build. The P4 Xeon SMP pins interrupts "
    "to one CPU, so SMP buys no receive parallelism but taxes every "
    "per-packet operation.",
    "3.3", "smp_kernel")
_register(
    "tcp_rmem",
    "Receive socket buffer (and thus the advertised-window budget). "
    "Oversizing past the BDP masks the MSS-alignment and truesize "
    "losses of §3.5.1.",
    "3.3/3.5.1", "tcp_rmem")
_register(
    "tcp_wmem",
    "Send socket buffer: caps queued-plus-unacknowledged truesize.",
    "3.3/4", "tcp_wmem")
_register(
    "interrupt_coalescing_us",
    "NIC interrupt delay: batches receptions into one interrupt, "
    "trading 5 us of latency for CPU load.",
    "3.3 (latency)", "interrupt_coalescing_us")
_register(
    "tcp_timestamps",
    "RFC 1323 timestamps: 12 header bytes and per-packet stamping cost; "
    "disabling bought ~10% on the CPU-bound E7505 systems.",
    "3.4", "tcp_timestamps")
_register(
    "window_scaling",
    "RFC 1323 window scaling: required for >64 KB windows; scaling "
    "truncates window precision (§3.5.1).",
    "3.5.1/4", "window_scaling")
_register(
    "txqueuelen",
    "Device transmit queue length; the WAN recipe raises it to 10000 "
    "so a BDP-sized congestion window cannot overflow the local qdisc.",
    "4", "txqueuelen")
_register(
    "tso",
    "TCP segmentation offload: the host hands the adapter a 64 KB "
    "virtual segment; the adapter re-segments at wire speed.",
    "3.3 (NAPI/TSO discussion)", "tso")
_register(
    "napi",
    "New API receive path: interrupts only schedule processing, "
    "cutting per-packet interrupt-context work.",
    "3.3 (NAPI/TSO discussion)", "napi")
_register(
    "checksum_offload",
    "TCP/IP checksum computation in the adapter silicon.",
    "2", "checksum_offload")


def knob(name: str) -> Knob:
    """Lookup a knob by name."""
    try:
        return KNOBS[name]
    except KeyError:
        raise ConfigError(
            f"unknown knob {name!r}; known: {sorted(KNOBS)}") from None


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------

#: ``keyed_via`` values: how a result-affecting knob reaches cache keys.
#: ``"ambient"`` — :func:`ambient_key_material` folds the raw value into
#: every :func:`repro.cache.keys.stable_key` when it differs from the
#: default.  ``"chaos-fingerprint"`` — covered by the active fault
#: plan's content fingerprint, which the key layer already folds in.
#: ``"none"`` — the knob cannot change results (speed/observability
#: only), so it must stay out of keys to keep them stable.
_KEYED_VIA = ("none", "ambient", "chaos-fingerprint")

#: Values meaning "off" for default-on flags (train batching, hybrid).
_OFF_VALUES = ("0", "off", "false", "no")
#: Values meaning "on" for default-off flags (cache activation).
_TRUTHY_VALUES = ("1", "true", "yes", "on")


def parse_on_flag(raw: Optional[str]) -> bool:
    """Default-on boolean: unset/anything-but-an-off-word means True."""
    if raw is None:
        return True
    return raw.strip().lower() not in _OFF_VALUES


def parse_truthy_flag(raw: Optional[str]) -> bool:
    """Default-off boolean: only an explicit truthy word means True."""
    if raw is None:
        return False
    return raw.strip().lower() in _TRUTHY_VALUES


def _parse_optional_str(raw: Optional[str]) -> Optional[str]:
    return raw.strip() if raw and raw.strip() else None


def _parse_optional_float(raw: Optional[str]) -> Optional[float]:
    if raw is None or not raw.strip():
        return None
    return float(raw)  # call sites map ValueError to their error types


def _parse_optional_int(raw: Optional[str]) -> Optional[int]:
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw.strip())
    except ValueError:
        return None  # historic lenient sites (cache caps) ignore garbage


@dataclass(frozen=True)
class EnvKnob:
    """One ``REPRO_*`` environment switch.

    Attributes
    ----------
    name:
        The environment variable, e.g. ``"REPRO_TRAIN"``.
    default:
        The *parsed* value when the variable is unset.
    parse:
        ``parse(raw_or_None) -> value``.  Parsers either total (return
        the default on garbage, matching historic lenient sites) or
        raise ``ValueError`` for call sites that map it to a typed
        error.
    affects_results:
        True when flipping the knob can change simulation *results* —
        not just wall time, telemetry or where files land.
    keyed_via:
        How a result-affecting value reaches cache keys (see
        ``_KEYED_VIA``).  Lint rule RPR006 enforces consistency.
    description:
        One line for the docs table.
    """

    name: str
    default: Any
    parse: Callable[[Optional[str]], Any]
    affects_results: bool
    keyed_via: str
    description: str

    def __post_init__(self) -> None:
        if self.keyed_via not in _KEYED_VIA:
            raise ConfigError(
                f"{self.name}: keyed_via must be one of {_KEYED_VIA}, "
                f"got {self.keyed_via!r}")


ENV_KNOBS: Dict[str, EnvKnob] = {}


def _register_env(name: str, default: Any,
                  parse: Callable[[Optional[str]], Any],
                  affects_results: bool, keyed_via: str,
                  description: str) -> None:
    ENV_KNOBS[name] = EnvKnob(name=name, default=default, parse=parse,
                              affects_results=affects_results,
                              keyed_via=keyed_via, description=description)


_register_env(
    "REPRO_TRAIN", True, parse_on_flag,
    affects_results=False, keyed_via="none",
    description="Train-batched data path (default on); the legacy "
                "per-segment path is bit-identical by contract, so the "
                "toggle is speed-only.")
_register_env(
    "REPRO_SCHEDULER", None, _parse_optional_str,
    affects_results=False, keyed_via="none",
    description="Event-queue backend (heap/calendar); both orderings "
                "are bit-identical by contract.")
_register_env(
    "REPRO_JOBS", None, _parse_optional_str,
    affects_results=False, keyed_via="none",
    description="Default sweep parallelism ('auto' = one per core); "
                "serial and parallel runs are bit-identical by "
                "contract.")
_register_env(
    "REPRO_POOL_PERSIST", True, parse_on_flag,
    affects_results=False, keyed_via="none",
    description="Keep one warm worker pool across sweeps (default on); "
                "ambient-state capsules make reuse result-neutral.")
_register_env(
    "REPRO_POOL_CHUNK", None, _parse_optional_int,
    affects_results=False, keyed_via="none",
    description="Force the points-per-task batch size; chunking "
                "preserves task order, results identical at any size.")
_register_env(
    "REPRO_CACHE", False, parse_truthy_flag,
    affects_results=False, keyed_via="none",
    description="Enable the on-disk result cache process-wide; a hit "
                "returns the bit-identical stored result.")
_register_env(
    "REPRO_CACHE_DIR", None, _parse_optional_str,
    affects_results=False, keyed_via="none",
    description="Result-cache location (default ./.repro-cache).")
_register_env(
    "REPRO_CACHE_MAX_BYTES", None, _parse_optional_int,
    affects_results=False, keyed_via="none",
    description="On-disk cache cap; exceeding it evicts LRU entries.")
_register_env(
    "REPRO_CACHE_HOT_ENTRIES", None, _parse_optional_int,
    affects_results=False, keyed_via="none",
    description="In-process hot-tier entry bound (default 512).")
_register_env(
    "REPRO_CACHE_HOT_BYTES", None, _parse_optional_int,
    affects_results=False, keyed_via="none",
    description="In-process hot-tier byte bound (default 128 MiB).")
_register_env(
    "REPRO_CODE_FINGERPRINT", None, _parse_optional_str,
    affects_results=False, keyed_via="none",
    description="Override the computed source fingerprint (tests, "
                "pinned deployments); it is itself cache-key material.")
_register_env(
    "REPRO_CHAOS", None, _parse_optional_str,
    affects_results=True, keyed_via="chaos-fingerprint",
    description="Fault-plan JSON to auto-load; keyed by the plan's "
                "content fingerprint, which stable_key already folds "
                "into every key when a non-empty plan is active.")
_register_env(
    "REPRO_HYBRID", True, parse_on_flag,
    affects_results=True, keyed_via="ambient",
    description="Permit the hybrid fluid+DES fabric mode (default on); "
                "hybrid and all-DES results legitimately differ under "
                "background load, so the setting must reach cache "
                "keys.")
_register_env(
    "REPRO_HYBRID_TICK", None, _parse_optional_float,
    affects_results=True, keyed_via="ambient",
    description="Override the fluid<->DES coupling tick (seconds); the "
                "tick changes handoff boundaries and therefore "
                "results.")
_register_env(
    "REPRO_STREAM_TICK", None, _parse_optional_float,
    affects_results=False, keyed_via="none",
    description="Telemetry heartbeat cadence in simulated seconds "
                "(observability only; never feeds back into the run).")
_register_env(
    "REPRO_SERVE_HOLD", None, _parse_optional_str,
    affects_results=False, keyed_via="none",
    description="Keep the replay-dashboard server in the foreground "
                "after a CLI run (unset falls back to 'is stdin a "
                "tty'; any value but 0/empty holds).")


def env_knob(name: str) -> EnvKnob:
    """Lookup an environment knob by variable name."""
    try:
        return ENV_KNOBS[name]
    except KeyError:
        raise ConfigError(
            f"unknown environment knob {name!r}; register it in "
            f"repro.core.knobs before reading it "
            f"(known: {sorted(ENV_KNOBS)})") from None


def env_raw(name: str) -> Optional[str]:
    """The raw environment value of a *registered* knob (or None).

    The one sanctioned ``os.environ`` read for ``REPRO_*`` names —
    reprolint rule RPR004 flags reads anywhere else.
    """
    env_knob(name)  # unregistered name -> ConfigError
    return os.environ.get(name)


def env_value(name: str) -> Any:
    """The parsed value of a registered knob (default when unset)."""
    knob_ = env_knob(name)
    raw = os.environ.get(name)
    if raw is None:
        return knob_.default
    return knob_.parse(raw)


def ambient_key_material() -> Dict[str, str]:
    """Raw values of ambient-keyed knobs that differ from their default.

    :func:`repro.cache.keys.stable_key` folds this mapping into every
    key, so results computed under a non-default ambient knob (say
    ``REPRO_HYBRID=0`` forcing all-DES) can never alias results
    computed under the default.  At defaults the mapping is empty and
    keys are byte-identical to builds that predate it.

    Unparseable values are included verbatim rather than raised on:
    key derivation must never crash an unrelated lookup, and a
    different raw string producing a different key is exactly the
    conservative behaviour we want.
    """
    material: Dict[str, str] = {}
    for name in sorted(ENV_KNOBS):
        knob_ = ENV_KNOBS[name]
        if knob_.keyed_via != "ambient":
            continue
        raw = os.environ.get(name)
        if raw is None:
            continue
        try:
            if knob_.parse(raw) == knob_.default:
                continue
        except (ValueError, TypeError):
            pass  # garbage: keep it in the key material verbatim
        material[name] = raw
    return material
