"""The tuning-knob registry: every configuration lever the paper turns.

Each :class:`Knob` couples a name to the :class:`~repro.config.TuningConfig`
transformation it performs and to the mechanism it acts through, so the
case-study driver, the docs and the ablation benchmarks all share one
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.config import TuningConfig
from repro.errors import ConfigError

__all__ = ["Knob", "KNOBS", "knob"]


@dataclass(frozen=True)
class Knob:
    """One tuning lever.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"mtu"``.
    description:
        What it does and through which mechanism.
    paper_section:
        Where the paper discusses it.
    apply:
        ``apply(config, value) -> new config``.
    """

    name: str
    description: str
    paper_section: str
    apply: Callable[[TuningConfig, Any], TuningConfig]


KNOBS: Dict[str, Knob] = {}


def _register(name: str, description: str, paper_section: str,
              field: str) -> None:
    def apply(config: TuningConfig, value: Any) -> TuningConfig:
        return config.replace(**{field: value})

    KNOBS[name] = Knob(name=name, description=description,
                       paper_section=paper_section, apply=apply)


_register(
    "mtu",
    "Maximum transfer unit. Larger MTUs amortise per-packet costs; "
    "non-power-of-two-friendly sizes (9000) waste allocator blocks, "
    "which is why 8160 outperforms it.",
    "3.3", "mtu")
_register(
    "mmrbc",
    "PCI-X maximum memory read byte count: the DMA burst size. Raising "
    "512 -> 4096 cuts per-burst arbitration overhead and lifts the "
    "effective bus bandwidth.",
    "3.3", "mmrbc")
_register(
    "smp_kernel",
    "SMP vs uniprocessor kernel build. The P4 Xeon SMP pins interrupts "
    "to one CPU, so SMP buys no receive parallelism but taxes every "
    "per-packet operation.",
    "3.3", "smp_kernel")
_register(
    "tcp_rmem",
    "Receive socket buffer (and thus the advertised-window budget). "
    "Oversizing past the BDP masks the MSS-alignment and truesize "
    "losses of §3.5.1.",
    "3.3/3.5.1", "tcp_rmem")
_register(
    "tcp_wmem",
    "Send socket buffer: caps queued-plus-unacknowledged truesize.",
    "3.3/4", "tcp_wmem")
_register(
    "interrupt_coalescing_us",
    "NIC interrupt delay: batches receptions into one interrupt, "
    "trading 5 us of latency for CPU load.",
    "3.3 (latency)", "interrupt_coalescing_us")
_register(
    "tcp_timestamps",
    "RFC 1323 timestamps: 12 header bytes and per-packet stamping cost; "
    "disabling bought ~10% on the CPU-bound E7505 systems.",
    "3.4", "tcp_timestamps")
_register(
    "window_scaling",
    "RFC 1323 window scaling: required for >64 KB windows; scaling "
    "truncates window precision (§3.5.1).",
    "3.5.1/4", "window_scaling")
_register(
    "txqueuelen",
    "Device transmit queue length; the WAN recipe raises it to 10000 "
    "so a BDP-sized congestion window cannot overflow the local qdisc.",
    "4", "txqueuelen")
_register(
    "tso",
    "TCP segmentation offload: the host hands the adapter a 64 KB "
    "virtual segment; the adapter re-segments at wire speed.",
    "3.3 (NAPI/TSO discussion)", "tso")
_register(
    "napi",
    "New API receive path: interrupts only schedule processing, "
    "cutting per-packet interrupt-context work.",
    "3.3 (NAPI/TSO discussion)", "napi")
_register(
    "checksum_offload",
    "TCP/IP checksum computation in the adapter silicon.",
    "2", "checksum_offload")


def knob(name: str) -> Knob:
    """Lookup a knob by name."""
    try:
        return KNOBS[name]
    except KeyError:
        raise ConfigError(
            f"unknown knob {name!r}; known: {sorted(KNOBS)}") from None
