"""The Internet2 Land Speed Record metric.

The LSR ranks entries by the product of end-to-end throughput and
distance, in meters-bits/second.  The paper's record: 2.38 Gb/s over
10,037 km = 23,888,060,000,000,000 m·b/s, 2.5x the previous record
(single-stream 923 Mb/s over 10,978 km, November 2002).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError

__all__ = ["land_speed_record_metric", "LsrEntry", "LSR_2003", "LSR_2002"]


def land_speed_record_metric(throughput_bps: float, distance_km: float) -> float:
    """Meters-bits per second: throughput x distance."""
    if throughput_bps <= 0 or distance_km <= 0:
        raise MeasurementError("throughput and distance must be positive")
    return throughput_bps * distance_km * 1000.0


@dataclass(frozen=True)
class LsrEntry:
    """One record entry."""

    date: str
    throughput_bps: float
    distance_km: float
    description: str

    @property
    def metric(self) -> float:
        """m·b/s score."""
        return land_speed_record_metric(self.throughput_bps, self.distance_km)


#: The record this paper set (February 27, 2003).
LSR_2003 = LsrEntry(
    date="2003-02-27",
    throughput_bps=2.38e9,
    distance_km=10037.0,
    description="Sunnyvale - Geneva, single TCP/IP stream over "
                "OC-192 + OC-48, 10GbE adapters")

#: The record it broke (November 19, 2002).
LSR_2002 = LsrEntry(
    date="2002-11-19",
    throughput_bps=923e6,
    distance_km=10978.0,
    description="Previous single-stream record")
