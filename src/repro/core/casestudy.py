"""The case-study driver: apply the §3.3 ladder, measure every rung.

:class:`CaseStudy` is the reproduction's centrepiece — it regenerates
Figures 3, 4 and 5 and the per-step peak/average numbers of §3.3 from
the simulated testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.presets import HostSpec, PE2650
from repro.core.optimizations import LAN_OPTIMIZATION_LADDER, OptimizationStep
from repro.net.topology import BackToBack
from repro.sim.engine import Environment
from repro.sim.runner import SweepRunner
from repro.tcp.connection import TcpConnection
from repro.tcp.mss import mss_for_mtu
from repro.tools.nttcp import (
    DEFAULT_WRITE_COUNT,
    NttcpResult,
    default_payloads,
    nttcp_run,
)

__all__ = ["CaseStudy", "StepResult", "SweepCurve"]


def _sweep_point(task: Tuple[HostSpec, Calibration, TuningConfig, int, int]
                 ) -> NttcpResult:
    """One NTTCP point on a fresh testbed (module-level so the parallel
    runner can ship it to worker processes)."""
    spec, calibration, config, payload, write_count = task
    env = Environment()
    bb = BackToBack.create(env, config, spec=spec, calibration=calibration)
    conn = TcpConnection(env, bb.a, bb.b)
    return nttcp_run(env, conn, payload, write_count)


@dataclass
class SweepCurve:
    """One NTTCP payload sweep under one configuration."""

    label: str
    config: TuningConfig
    points: List[NttcpResult] = field(default_factory=list)

    @property
    def payloads(self) -> np.ndarray:
        """Payload sizes (bytes)."""
        return np.array([p.payload for p in self.points])

    @property
    def goodputs_gbps(self) -> np.ndarray:
        """Goodput per point (Gb/s)."""
        return np.array([p.goodput_gbps for p in self.points])

    @property
    def peak_gbps(self) -> float:
        """Best point on the curve (the number the paper headlines)."""
        if not self.points:
            raise MeasurementError(f"curve {self.label!r} has no points")
        return float(self.goodputs_gbps.max())

    @property
    def average_gbps(self) -> float:
        """Mean across the sweep (the paper's 'average throughput')."""
        if not self.points:
            raise MeasurementError(f"curve {self.label!r} has no points")
        return float(self.goodputs_gbps.mean())

    @property
    def mean_receiver_load(self) -> float:
        """Average receiver CPU load across the sweep (§3.3 quotes 0.9
        for 1500-byte MTUs and 0.4 for 9000)."""
        if not self.points:
            raise MeasurementError(f"curve {self.label!r} has no points")
        return float(np.mean([p.receiver_load for p in self.points]))

    def dip(self, lo: int, hi: int) -> float:
        """Depth of the worst dip in payload range [lo, hi] relative to
        the best point outside it (Fig. 3's marked dip diagnostics)."""
        inside = [p.goodput_gbps for p in self.points if lo <= p.payload <= hi]
        outside = [p.goodput_gbps for p in self.points
                   if not lo <= p.payload <= hi]
        if not inside or not outside:
            raise MeasurementError("dip range does not split the sweep")
        return 1.0 - min(inside) / max(outside)


@dataclass
class StepResult:
    """Measurements for one optimization step across MTUs."""

    step: OptimizationStep
    curves: Dict[int, SweepCurve] = field(default_factory=dict)

    def peak(self, mtu: int) -> float:
        """Measured peak for an MTU."""
        return self.curves[mtu].peak_gbps

    def paper_peak(self, mtu: int) -> Optional[float]:
        """The paper's reported peak for the same step/MTU, if any."""
        return self.step.paper_peaks_gbps.get(mtu)


class CaseStudy:
    """Run the cumulative LAN/SAN optimization study.

    Parameters
    ----------
    spec:
        Host platform for both ends (default PE2650, like the paper).
    write_count:
        NTTCP writes per point (scaled default; see tools.nttcp).
    points:
        Payload-grid resolution per sweep.
    jobs:
        Worker processes for the payload sweeps (None: the ambient
        :func:`repro.sim.runner.resolve_jobs` setting — ``REPRO_JOBS``
        or the enclosing ``job_context``).  Results are bit-identical
        at any job count; only wall-clock changes.
    """

    def __init__(self, spec: HostSpec = PE2650,
                 write_count: int = DEFAULT_WRITE_COUNT,
                 points: int = 16,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 jobs: Optional[int] = None):
        self.spec = spec
        self.write_count = write_count
        self.points = points
        self.calibration = calibration
        self.jobs = jobs

    # -- building blocks ----------------------------------------------------------
    def sweep(self, config: TuningConfig,
              payloads: Optional[Sequence[int]] = None,
              label: str = "") -> SweepCurve:
        """One full NTTCP payload sweep under ``config``.

        Points are independent simulations, so they fan out over the
        parallel runner and memoize through the active result cache.
        """
        mss = mss_for_mtu(config.mtu, config.tcp_timestamps)
        if payloads is None:
            payloads = default_payloads(mss, points=self.points)
        curve = SweepCurve(label=label or config.describe(), config=config)
        tasks = [(self.spec, self.calibration, config, payload,
                  self.write_count) for payload in payloads]
        curve.points.extend(SweepRunner(self.jobs).map(
            _sweep_point, tasks, cache_ns="nttcp-sweep"))
        return curve

    # -- the ladder -------------------------------------------------------------
    def run_ladder(self, mtus: Sequence[int] = (1500, 9000),
                   steps: Sequence[OptimizationStep] = LAN_OPTIMIZATION_LADDER,
                   ) -> List[StepResult]:
        """Apply each step cumulatively and sweep each MTU (Figs. 3-4)."""
        results: List[StepResult] = []
        for step in steps:
            step_result = StepResult(step=step)
            for mtu in mtus:
                config = TuningConfig.stock(mtu)
                for applied in steps:
                    config = applied.transform(config)
                    if applied is step:
                        break
                step_result.curves[mtu] = self.sweep(
                    config, label=f"{step.name} @ {mtu}")
            results.append(step_result)
        return results

    def run_mtu_tuning(self, mtus: Sequence[int] = (8160, 16000),
                       ) -> Dict[int, SweepCurve]:
        """Fig. 5: the fully tuned configuration at non-standard MTUs."""
        curves: Dict[int, SweepCurve] = {}
        for mtu in mtus:
            config = TuningConfig.fully_tuned(mtu)
            curves[mtu] = self.sweep(config, label=f"fully tuned @ {mtu}")
        return curves
