"""Exception hierarchy for the repro package.

Every exception raised deliberately by the library derives from
:class:`ReproError` so applications can catch library failures with a
single ``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleInPastError",
    "ResourceError",
    "ConfigError",
    "SysctlError",
    "TopologyError",
    "AllocationError",
    "ProtocolError",
    "LinkError",
    "MeasurementError",
    "ChaosError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event engine."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class ResourceError(SimulationError):
    """Misuse of a simulation resource (double release, bad capacity...)."""


class ConfigError(ReproError):
    """Invalid tuning/host configuration."""


class SysctlError(ConfigError):
    """Unknown sysctl key or out-of-range sysctl value."""


class TopologyError(ReproError):
    """Invalid network topology (unattached NIC, port clash...)."""


class AllocationError(ReproError):
    """sk_buff allocator failure (size too large, accounting underflow)."""


class ProtocolError(ReproError):
    """TCP/UDP state-machine violation."""


class LinkError(ReproError):
    """Frame rejected by a link or switch (oversized MTU, no route...)."""


class MeasurementError(ReproError):
    """A measurement tool was used incorrectly or produced no samples."""


class ChaosError(ReproError):
    """Invalid fault plan or misuse of the chaos-injection subsystem."""
