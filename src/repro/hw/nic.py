"""Network adapters: the Intel PRO/10GbE LR and a GbE client NIC.

The 10GbE adapter (Figure 1 of the paper) couples a DMA engine on the
PCI-X side with the MAC/PCS/SerDes/optics chain on the wire side and
offloads TCP/IP checksums and (optionally) TCP segmentation.  The model
reproduces the externally visible timing:

* every frame crosses the host's PCI-X bus in MMRBC-sized bursts,
* the adapter adds a fixed internal traverse latency,
* received frames raise interrupts through a coalescing timer
  (the 5 µs delay the paper turns off to save 5 µs of latency), and
* TSO lets the host hand down a large virtual segment that the adapter
  re-segments at wire speed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import LinkError, TopologyError
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor
from repro.sim.resources import Store
from repro.telemetry.session import active_metrics
from repro.units import Gbps, us

__all__ = ["TenGigAdapter", "GigAdapter", "RX_RING_FRAMES"]

#: Receive descriptor ring depth (frames buffered on-board + in ring).
RX_RING_FRAMES = 1024


class TenGigAdapter:
    """Intel 82597EX-style server adapter bound to one host.

    Parameters
    ----------
    host:
        The owning :class:`~repro.hw.host.Host` (provides PCI-X bus,
        cost model, tuning config and the receive dispatch).
    address:
        Link-layer address used by switches for forwarding.
    """

    rate_bps = Gbps(10)

    def __init__(self, env: Environment, host, address: str,
                 name: str = "", own_bus: bool = False):
        self.env = env
        self.host = host
        self.address = address
        self.name = name or address
        self._egress = None
        if host.config.csa:
            # §3.5.3: the adapter hangs off the memory controller hub,
            # bypassing the PCI-X bus (and its MMRBC sensitivity).
            from repro.hw.csa import MchLink
            self.pcix = MchLink(env, name=f"{self.name}.mch",
                                trace=host.trace)
        else:
            self.pcix = host.new_pcix_bus() if own_bus else host.pcix
        cfg = host.config
        # Instrumentation: events ride the host's MAGNET ring; metric
        # series register into the ambient telemetry session (if any).
        self.trace = host.trace
        metrics = active_metrics()
        if metrics is not None:
            self._c_tx = metrics.counter("nic.tx.frames", nic=self.name)
            self._c_txdrop = metrics.counter("nic.tx.drops", nic=self.name)
            self._c_rx = metrics.counter("nic.rx.frames", nic=self.name)
            self._c_rxdrop = metrics.counter("nic.rx.drops", nic=self.name)
            self._c_irq = metrics.counter("nic.interrupts", nic=self.name)
            self._c_tso = metrics.counter("nic.tso.splits", nic=self.name)
            self._h_batch = metrics.histogram("irq.batch", nic=self.name)
        else:
            self._c_tx = self._c_txdrop = self._c_rx = None
            self._c_rxdrop = self._c_irq = self._c_tso = None
            self._h_batch = None
        self.txq = Store(env, capacity=cfg.txqueuelen, name=f"{self.name}.txq")
        self.tx_drops = CounterMonitor(env, name=f"{self.name}.txdrop")
        self.rx_drops = CounterMonitor(env, name=f"{self.name}.rxdrop")
        self.tx_frames = CounterMonitor(env, name=f"{self.name}.tx")
        self.rx_frames = CounterMonitor(env, name=f"{self.name}.rx")
        self.interrupts = CounterMonitor(env, name=f"{self.name}.irq")
        self._rx_pending: List[SkBuff] = []
        self._irq_timer_armed = False
        from repro.oskernel.interrupts import InterruptModerator
        self.moderator = InterruptModerator(
            base_delay_s=cfg.interrupt_coalescing_us * 1e-6,
            adaptive=cfg.adaptive_coalescing)
        env.process(self._tx_loop(), name=f"{self.name}.txloop")
        host.register_adapter(self)

    # -- wiring ---------------------------------------------------------------
    def set_egress(self, egress) -> None:
        """Attach the transmit wire (an EthernetLink or PosCircuit)."""
        self._egress = egress

    @property
    def egress(self):
        """The attached transmit wire."""
        return self._egress

    # -- transmit ----------------------------------------------------------------
    def send(self, skb: SkBuff) -> bool:
        """Queue a frame for transmission (non-blocking).

        Returns False (and counts a drop) when the device transmit queue
        (``txqueuelen``) is full — the local congestion signal the
        paper's WAN recipe avoids by raising txqueuelen to 10000.
        Stack-generated frames (ACKs, UDP, pktgen) use this path.
        """
        if self._egress is None:
            raise TopologyError(f"{self.name}: egress not connected")
        if self.txq.level >= self.txq.capacity:
            self.tx_drops.add()
            if self._c_txdrop is not None:
                self._c_txdrop.inc()
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "nic.tx.drop", skb.ident,
                           qlen=self.txq.level)
            return False
        self.txq.put(skb)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.tx.queue", skb.ident,
                       kind=skb.kind, qlen=self.txq.level)
        return True

    def enqueue(self, skb: SkBuff):
        """Blocking enqueue: the event fires once the qdisc accepts the
        frame.  TCP data uses this path — a full device queue applies
        backpressure (the qdisc requeues) rather than dropping, which is
        how ``dev_queue_xmit`` behaves for a socket-owned skb."""
        if self._egress is None:
            raise TopologyError(f"{self.name}: egress not connected")
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.tx.queue", skb.ident,
                       kind=skb.kind, qlen=self.txq.level)
        return self.txq.put(skb)

    def _tx_loop(self):
        cfg = self.host.config
        while True:
            skb = yield self.txq.get()
            # DMA the frame (or super-segment) across PCI-X.
            yield from self.pcix.dma(skb.frame_bytes, cfg.mmrbc)
            yield self.env._fast_timeout(self.host.costs.nic_traverse_s)
            frames = self._wire_frames(skb)
            trace = self.trace
            if len(frames) > 1:
                if self._c_tso is not None:
                    self._c_tso.inc()
                if trace.enabled:
                    trace.post(self.env.now, "nic.tso.split", skb.ident,
                               frames=len(frames), payload=skb.payload)
            for frame in frames:
                self._egress.transmit(frame)
                self.tx_frames.add()
                if self._c_tx is not None:
                    self._c_tx.inc()
                if trace.enabled:
                    trace.post(self.env.now, "nic.tx.wire", frame.ident,
                               nbytes=frame.frame_bytes)

    def _wire_frames(self, skb: SkBuff) -> List[SkBuff]:
        """Re-segment a TSO super-segment into wire frames; ordinary
        frames pass through untouched."""
        cfg = self.host.config
        max_payload = cfg.mtu - skb.headers
        if skb.payload <= max_payload or skb.kind != "data":
            return [skb]
        frames: List[SkBuff] = []
        offset = 0
        while offset < skb.payload:
            chunk = min(max_payload, skb.payload - offset)
            frames.append(SkBuff(
                payload=chunk, headers=skb.headers, kind=skb.kind,
                seq=skb.seq + offset, end_seq=skb.seq + offset + chunk,
                ack=skb.ack, conn=skb.conn,
                meta=dict(skb.meta, tso_parent=skb.ident)))
            offset += chunk
        return frames

    # -- receive -------------------------------------------------------------------
    def receive_frame(self, skb: SkBuff) -> None:
        """Wire-side delivery (called by the attached link)."""
        if len(self._rx_pending) >= RX_RING_FRAMES:
            self.rx_drops.add()
            if self._c_rxdrop is not None:
                self._c_rxdrop.inc()
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "nic.rx.drop", skb.ident,
                           ring=len(self._rx_pending))
            return
        self.rx_frames.add()
        if self._c_rx is not None:
            self._c_rx.inc()
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.rx.frame", skb.ident,
                       nbytes=skb.frame_bytes)
        self.env.process(self._rx_dma(skb), name=f"{self.name}.rxdma")

    def _rx_dma(self, skb: SkBuff):
        # DMA into host memory, then post toward the interrupt unit.
        yield from self.pcix.dma(skb.frame_bytes, self.host.config.mmrbc)
        yield self.env._fast_timeout(self.host.costs.nic_traverse_s
                               + self.host.costs.rx_fixed_pad_s)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.rx.dma", skb.ident,
                       nbytes=skb.frame_bytes)
        self._rx_pending.append(skb)
        self.moderator.note_arrival(self.env.now)
        self._arm_interrupt()

    def _arm_interrupt(self) -> None:
        coalesce = self.moderator.arming_delay_s()
        if coalesce <= 0:
            self._fire_interrupt()
            return
        if not self._irq_timer_armed:
            self._irq_timer_armed = True
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "irq.coalesce.arm", None,
                           delay_us=coalesce * 1e6)
            self.env.schedule_call(coalesce, self._on_irq_timer)

    def _on_irq_timer(self) -> None:
        self._irq_timer_armed = False
        self._fire_interrupt()

    def _fire_interrupt(self) -> None:
        if not self._rx_pending:
            return
        batch, self._rx_pending = self._rx_pending, []
        self.interrupts.add()
        if self._c_irq is not None:
            self._c_irq.inc()
            self._h_batch.observe(len(batch))
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "irq.coalesce.fire", None,
                       batch=len(batch))
        self.host.deliver_rx(self, batch)


class GigAdapter(TenGigAdapter):
    """Commodity GbE NIC for the multi-flow aggregation clients."""

    rate_bps = Gbps(1)
