"""Network adapters: the Intel PRO/10GbE LR and a GbE client NIC.

The 10GbE adapter (Figure 1 of the paper) couples a DMA engine on the
PCI-X side with the MAC/PCS/SerDes/optics chain on the wire side and
offloads TCP/IP checksums and (optionally) TCP segmentation.  The model
reproduces the externally visible timing:

* every frame crosses the host's PCI-X bus in MMRBC-sized bursts,
* the adapter adds a fixed internal traverse latency,
* received frames raise interrupts through a coalescing timer
  (the 5 µs delay the paper turns off to save 5 µs of latency), and
* TSO lets the host hand down a large virtual segment that the adapter
  re-segments at wire speed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.chaos.hooks import register_target as register_chaos_target
from repro.errors import LinkError, TopologyError
from repro.net.train import BacklogView, SegmentTrain, train_batching_enabled
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment, Event
from repro.sim.monitor import CounterMonitor
from repro.sim.resources import Store
from repro.telemetry.session import active_metrics
from repro.units import Gbps, us

__all__ = ["TenGigAdapter", "GigAdapter", "RX_RING_FRAMES"]

#: Receive descriptor ring depth (frames buffered on-board + in ring).
RX_RING_FRAMES = 1024


class TenGigAdapter:
    """Intel 82597EX-style server adapter bound to one host.

    Parameters
    ----------
    host:
        The owning :class:`~repro.hw.host.Host` (provides PCI-X bus,
        cost model, tuning config and the receive dispatch).
    address:
        Link-layer address used by switches for forwarding.
    """

    rate_bps = Gbps(10)

    def __init__(self, env: Environment, host, address: str,
                 name: str = "", own_bus: bool = False):
        self.env = env
        self.host = host
        self.address = address
        self.name = name or address
        self._egress = None
        if host.config.csa:
            # §3.5.3: the adapter hangs off the memory controller hub,
            # bypassing the PCI-X bus (and its MMRBC sensitivity).
            from repro.hw.csa import MchLink
            self.pcix = MchLink(env, name=f"{self.name}.mch",
                                trace=host.trace)
        else:
            self.pcix = host.new_pcix_bus() if own_bus else host.pcix
        cfg = host.config
        # Instrumentation: events ride the host's MAGNET ring; metric
        # series register into the ambient telemetry session (if any).
        self.trace = host.trace
        metrics = active_metrics()
        if metrics is not None:
            self._c_tx = metrics.counter("nic.tx.frames", nic=self.name)
            self._c_txdrop = metrics.counter("nic.tx.drops", nic=self.name)
            self._c_rx = metrics.counter("nic.rx.frames", nic=self.name)
            self._c_rxdrop = metrics.counter("nic.rx.drops", nic=self.name)
            self._c_irq = metrics.counter("nic.interrupts", nic=self.name)
            self._c_tso = metrics.counter("nic.tso.splits", nic=self.name)
            self._c_train = metrics.counter("nic.tx_train_frames",
                                            nic=self.name)
            self._h_batch = metrics.histogram("irq.batch", nic=self.name)
            self._h_train = metrics.histogram("nic.train", nic=self.name)
        else:
            self._c_tx = self._c_txdrop = self._c_rx = None
            self._c_rxdrop = self._c_irq = self._c_tso = None
            self._c_train = self._h_batch = self._h_train = None
        self._batched = train_batching_enabled()
        if self._batched:
            # Train-batched transmit engine: a plain backlog deque
            # drained by a callback chain (see _tx_service).
            self._backlog: Deque[SkBuff] = deque()
            self._space_waiters: Deque[Tuple[Event, SkBuff]] = deque()
            self._tx_busy = False
            self._tx_kick_pending = False
            self._train: Optional[SegmentTrain] = None
            self.txq = BacklogView(self._backlog, cfg.txqueuelen)
        else:
            self.txq = Store(env, capacity=cfg.txqueuelen,
                             name=f"{self.name}.txq")
        self.tx_drops = CounterMonitor(env, name=f"{self.name}.txdrop")
        self.rx_drops = CounterMonitor(env, name=f"{self.name}.rxdrop")
        self.tx_frames = CounterMonitor(env, name=f"{self.name}.tx")
        self.rx_frames = CounterMonitor(env, name=f"{self.name}.rx")
        self.interrupts = CounterMonitor(env, name=f"{self.name}.irq")
        self.tx_trains = CounterMonitor(env, name=f"{self.name}.trains")
        self.tx_train_frames = CounterMonitor(env,
                                              name=f"{self.name}.trainfr")
        self._rx_pending: List[SkBuff] = []
        self._irq_timer_armed = False
        from repro.oskernel.interrupts import InterruptModerator
        self.moderator = InterruptModerator(
            base_delay_s=cfg.interrupt_coalescing_us * 1e-6,
            adaptive=cfg.adaptive_coalescing)
        if not self._batched:
            env.process(self._tx_loop(), name=f"{self.name}.txloop")
        register_chaos_target("nic", self.name, self)
        host.register_adapter(self)

    # -- wiring ---------------------------------------------------------------
    def set_egress(self, egress) -> None:
        """Attach the transmit wire (an EthernetLink or PosCircuit)."""
        self._egress = egress

    @property
    def egress(self):
        """The attached transmit wire."""
        return self._egress

    # -- transmit ----------------------------------------------------------------
    def send(self, skb: SkBuff) -> bool:
        """Queue a frame for transmission (non-blocking).

        Returns False (and counts a drop) when the device transmit queue
        (``txqueuelen``) is full — the local congestion signal the
        paper's WAN recipe avoids by raising txqueuelen to 10000.
        Stack-generated frames (ACKs, UDP, pktgen) use this path.
        """
        if self._egress is None:
            raise TopologyError(f"{self.name}: egress not connected")
        if self.txq.level >= self.txq.capacity:
            self.tx_drops.add()
            if self._c_txdrop is not None:
                self._c_txdrop.inc()
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "nic.tx.drop", skb.ident,
                           qlen=self.txq.level)
            return False
        if self._batched:
            self._backlog.append(skb)
            self._tx_kick()
        else:
            self.txq.put(skb)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.tx.queue", skb.ident,
                       kind=skb.kind, qlen=self.txq.level)
        return True

    def enqueue(self, skb: SkBuff):
        """Blocking enqueue: the event fires once the qdisc accepts the
        frame.  TCP data uses this path — a full device queue applies
        backpressure (the qdisc requeues) rather than dropping, which is
        how ``dev_queue_xmit`` behaves for a socket-owned skb."""
        if self._egress is None:
            raise TopologyError(f"{self.name}: egress not connected")
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.tx.queue", skb.ident,
                       kind=skb.kind, qlen=self.txq.level)
        if not self._batched:
            return self.txq.put(skb)
        ev = Event(self.env)
        if len(self._backlog) < self.txq.capacity:
            self._backlog.append(skb)
            # Succeed before kicking so the enqueuer wakes ahead of the
            # engine's first service step, matching the Store's
            # putter-before-getter settle order.
            ev.succeed()
            self._tx_kick()
        else:
            self._space_waiters.append((ev, skb))
        return ev

    # -- transmit engine (train-batched path) ------------------------------------
    def _tx_kick(self) -> None:
        """Arrange for the engine to start servicing the backlog.

        The start is deferred one zero-delay event — the same hop the
        legacy transmit loop's ``Store.get`` wakeup takes — so queue
        levels and same-instant orderings match the legacy path.
        """
        if self._tx_busy or self._tx_kick_pending or not self._backlog:
            return
        self._tx_kick_pending = True
        self.env.schedule_call(0.0, self._tx_begin)

    def _tx_begin(self) -> None:
        self._tx_kick_pending = False
        if self._tx_busy or not self._backlog:
            return
        self._tx_busy = True
        self._train = SegmentTrain(self.env._now)
        self._tx_service()

    def _tx_service(self) -> None:
        """DMA the backlog head; chain the wire stage off its completion."""
        skb = self._backlog.popleft()
        if self._space_waiters:
            ev, waiting = self._space_waiters.popleft()
            self._backlog.append(waiting)
            ev.succeed()
        env = self.env
        mmrbc = self.host.config.mmrbc
        _, end = self.pcix.charge_transfer(skb.frame_bytes, mmrbc)
        # Replicate the legacy chain's float arithmetic exactly: the DMA
        # timeout fires at now + (end - now), the traverse timeout at
        # that instant plus the traverse cost.
        dma_fire = env._now + (end - env._now)
        env.schedule_call_at(dma_fire + self.host.costs.nic_traverse_s,
                             self._tx_dma_done, skb, mmrbc)

    def _tx_dma_done(self, skb: SkBuff, mmrbc: int) -> None:
        self.pcix.account(skb.frame_bytes, mmrbc)
        frames = self._wire_frames(skb)
        trace = self.trace
        if len(frames) > 1:
            if self._c_tso is not None:
                self._c_tso.inc()
            if trace.enabled:
                trace.post(self.env.now, "nic.tso.split", skb.ident,
                           frames=len(frames), payload=skb.payload)
        for frame in frames:
            self._egress.transmit(frame)
            self.tx_frames.add()
            if self._c_tx is not None:
                self._c_tx.inc()
            if trace.enabled:
                trace.post(self.env.now, "nic.tx.wire", frame.ident,
                           nbytes=frame.frame_bytes)
        self._train.add(len(frames))
        if self._backlog:
            self._tx_service()
        else:
            self._tx_busy = False
            self._close_train()

    def _close_train(self) -> None:
        train = self._train
        self._train = None
        if train is None or train.frames == 0:
            return
        train.close(self.env._now)
        self.tx_trains.add()
        self.tx_train_frames.add(train.frames)
        if self._c_train is not None:
            self._c_train.inc(train.frames)
            self._h_train.observe(train.frames)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.tx.train", None,
                       frames=train.frames, wire_frames=train.wire_frames)

    def mean_train_size(self) -> float:
        """Average frames per closed transmit train (0 when none)."""
        if self.tx_trains.events == 0:
            return 0.0
        return self.tx_train_frames.total / self.tx_trains.events

    def _tx_loop(self):
        cfg = self.host.config
        while True:
            skb = yield self.txq.get()
            # DMA the frame (or super-segment) across PCI-X.
            yield from self.pcix.dma(skb.frame_bytes, cfg.mmrbc)
            yield self.env._fast_timeout(self.host.costs.nic_traverse_s)
            frames = self._wire_frames(skb)
            trace = self.trace
            if len(frames) > 1:
                if self._c_tso is not None:
                    self._c_tso.inc()
                if trace.enabled:
                    trace.post(self.env.now, "nic.tso.split", skb.ident,
                               frames=len(frames), payload=skb.payload)
            for frame in frames:
                self._egress.transmit(frame)
                self.tx_frames.add()
                if self._c_tx is not None:
                    self._c_tx.inc()
                if trace.enabled:
                    trace.post(self.env.now, "nic.tx.wire", frame.ident,
                               nbytes=frame.frame_bytes)

    def _wire_frames(self, skb: SkBuff) -> List[SkBuff]:
        """Re-segment a TSO super-segment into wire frames; ordinary
        frames pass through untouched."""
        cfg = self.host.config
        max_payload = cfg.mtu - skb.headers
        if skb.payload <= max_payload or skb.kind != "data":
            return [skb]
        frames: List[SkBuff] = []
        offset = 0
        while offset < skb.payload:
            chunk = min(max_payload, skb.payload - offset)
            frames.append(SkBuff(
                payload=chunk, headers=skb.headers, kind=skb.kind,
                seq=skb.seq + offset, end_seq=skb.seq + offset + chunk,
                ack=skb.ack, conn=skb.conn,
                meta=dict(skb.meta, tso_parent=skb.ident)))
            offset += chunk
        return frames

    # -- receive -------------------------------------------------------------------
    def receive_frame(self, skb: SkBuff) -> None:
        """Wire-side delivery (called by the attached link)."""
        if len(self._rx_pending) >= RX_RING_FRAMES:
            self.rx_drops.add()
            if self._c_rxdrop is not None:
                self._c_rxdrop.inc()
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "nic.rx.drop", skb.ident,
                           ring=len(self._rx_pending))
            return
        self.rx_frames.add()
        if self._c_rx is not None:
            self._c_rx.inc()
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.rx.frame", skb.ident,
                       nbytes=skb.frame_bytes)
        if self._batched:
            # Deferred one zero-delay event (the hop the legacy process
            # spawn takes) so same-instant DMA charges keep their order.
            self.env.schedule_call(0.0, self._rx_charge, skb)
        else:
            self.env.process(self._rx_dma(skb), name=f"{self.name}.rxdma")

    def _rx_charge(self, skb: SkBuff) -> None:
        env = self.env
        mmrbc = self.host.config.mmrbc
        _, end = self.pcix.charge_transfer(skb.frame_bytes, mmrbc)
        costs = self.host.costs
        # Same float chain as the legacy _rx_dma process: DMA fire, then
        # one timeout of (traverse + pad).
        dma_fire = env._now + (end - env._now)
        env.schedule_call_at(
            dma_fire + (costs.nic_traverse_s + costs.rx_fixed_pad_s),
            self._rx_posted, skb, mmrbc)

    def _rx_posted(self, skb: SkBuff, mmrbc: int) -> None:
        self.pcix.account(skb.frame_bytes, mmrbc)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.rx.dma", skb.ident,
                       nbytes=skb.frame_bytes)
        self._rx_pending.append(skb)
        self.moderator.note_arrival(self.env.now)
        self._arm_interrupt()

    def _rx_dma(self, skb: SkBuff):
        # DMA into host memory, then post toward the interrupt unit.
        yield from self.pcix.dma(skb.frame_bytes, self.host.config.mmrbc)
        yield self.env._fast_timeout(self.host.costs.nic_traverse_s
                               + self.host.costs.rx_fixed_pad_s)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "nic.rx.dma", skb.ident,
                       nbytes=skb.frame_bytes)
        self._rx_pending.append(skb)
        self.moderator.note_arrival(self.env.now)
        self._arm_interrupt()

    def _arm_interrupt(self) -> None:
        coalesce = self.moderator.arming_delay_s()
        if coalesce <= 0:
            self._fire_interrupt()
            return
        if not self._irq_timer_armed:
            self._irq_timer_armed = True
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "irq.coalesce.arm", None,
                           delay_us=coalesce * 1e6)
            self.env.schedule_call(coalesce, self._on_irq_timer)

    def _on_irq_timer(self) -> None:
        self._irq_timer_armed = False
        self._fire_interrupt()

    def _fire_interrupt(self) -> None:
        if not self._rx_pending:
            return
        batch, self._rx_pending = self._rx_pending, []
        self.interrupts.add()
        if self._c_irq is not None:
            self._c_irq.inc()
            self._h_batch.observe(len(batch))
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "irq.coalesce.fire", None,
                       batch=len(batch))
        self.host.deliver_rx(self, batch)


class GigAdapter(TenGigAdapter):
    """Commodity GbE NIC for the multi-flow aggregation clients."""

    rate_bps = Gbps(1)
