"""Host: one complete end system (CPU + memory + PCI-X + adapters + kernel).

A :class:`Host` assembles the hardware models around a
:class:`~repro.hw.calibration.CostModel` and provides the two services
protocol endpoints need:

* ``cpu_work`` — serialized CPU occupancy, and
* packet demultiplexing — adapters call :meth:`deliver_rx` from interrupt
  context; the host charges the interrupt cost and dispatches each frame
  to the protocol handler registered for its connection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.config import TuningConfig
from repro.errors import TopologyError
from repro.net.train import train_batching_enabled
from repro.hw.calibration import Calibration, CostModel, DEFAULT_CALIBRATION
from repro.hw.cpu import CpuComplex
from repro.hw.pcix import PciXBus
from repro.hw.presets import HostSpec
from repro.oskernel.allocator import BuddyAllocator
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_metrics, register_trace

__all__ = ["Host"]

RxHandler = Callable[[SkBuff, int], None]


class Host:
    """One end system.

    Parameters
    ----------
    spec:
        Hardware platform (:data:`~repro.hw.presets.PE2650` etc.).
    config:
        Tuning state (:class:`~repro.config.TuningConfig`).
    """

    def __init__(self, env: Environment, spec: HostSpec,
                 config: TuningConfig, name: str = "",
                 calibration: Calibration = DEFAULT_CALIBRATION):
        self.env = env
        self.spec = spec
        self.config = config
        self.name = name or spec.name
        self.costs = CostModel(spec, config, calibration)
        self.cpu = CpuComplex(env, spec, name=f"{self.name}.cpu")
        # One trace ring per host, shared by its whole stack (NIC, bus,
        # allocator, TCP endpoints) — the simulated MAGNET ring.
        self.trace = TraceBuffer(enabled=False)
        register_trace(self.name, self.trace)
        self.pcix = PciXBus(env, spec.pcix_mhz,
                            burst_overhead_s=spec.pcix_burst_overhead_ns * 1e-9,
                            name=f"{self.name}.pcix", trace=self.trace)
        self._extra_buses: List[PciXBus] = []
        ghz = spec.cpu_ghz
        cal = self.costs.cal
        self.allocator = BuddyAllocator(
            base_cost_s=cal.alloc_base_usghz * 1e-6 / ghz,
            order_penalty_s=cal.alloc_order_usghz * 1e-6 / ghz,
            trace=self.trace, clock=env)
        metrics = active_metrics()
        self._c_rx_dispatch = (
            metrics.counter("host.rx.dispatch", host=self.name)
            if metrics is not None else None)
        self.adapters: List[Any] = []
        self._handlers: Dict[Any, RxHandler] = {}
        self._default_handler: Optional[RxHandler] = None
        self._batched = train_batching_enabled()

    # -- construction ---------------------------------------------------------
    def new_pcix_bus(self) -> PciXBus:
        """An independent PCI-X segment (the paper's dual-adapter test
        put each adapter on its own bus)."""
        bus = PciXBus(self.env, self.spec.pcix_mhz,
                      burst_overhead_s=self.spec.pcix_burst_overhead_ns * 1e-9,
                      name=f"{self.name}.pcix{len(self._extra_buses) + 1}",
                      trace=self.trace)
        self._extra_buses.append(bus)
        return bus

    def register_adapter(self, adapter: Any) -> None:
        """Called by adapters as they bind to this host."""
        self.adapters.append(adapter)

    @property
    def nic(self) -> Any:
        """The first (usually only) adapter."""
        if not self.adapters:
            raise TopologyError(f"{self.name}: no adapter installed")
        return self.adapters[0]

    # -- protocol plumbing --------------------------------------------------------
    def register_handler(self, conn: Any, handler: RxHandler) -> None:
        """Dispatch frames whose ``skb.conn == conn`` to ``handler``."""
        self._handlers[conn] = handler

    def set_default_handler(self, handler: RxHandler) -> None:
        """Fallback for frames with no registered connection."""
        self._default_handler = handler

    def cpu_work(self, cost_s: float):
        """Process helper: occupy this host's CPU for ``cost_s``."""
        return self.cpu.run(cost_s)

    # -- receive dispatch -----------------------------------------------------------
    def deliver_rx(self, adapter: Any, batch: List[SkBuff]) -> None:
        """Interrupt-context delivery of a batch of frames."""
        if self._batched:
            # One zero-delay hop (the legacy process-spawn hop), then an
            # arithmetic CPU charge chained into the dispatch loop.
            self.env.schedule_call(0.0, self._rx_charge, batch)
            return
        self.env.process(self._rx_dispatch(batch),
                         name=f"{self.name}.rxirq")

    def _rx_charge(self, batch: List[SkBuff]) -> None:
        env = self.env
        end = self.cpu.charge(self.costs.rx_irq_s())
        if end <= env._now:
            self._dispatch_batch(batch)
        else:
            env.schedule_call(end - env._now, self._dispatch_batch, batch)

    def _rx_dispatch(self, batch: List[SkBuff]):
        # One interrupt services the whole batch; per-frame protocol
        # costs are charged by the handlers themselves.
        yield from self.cpu.run(self.costs.rx_irq_s())
        self._dispatch_batch(batch)

    def _dispatch_batch(self, batch: List[SkBuff]) -> None:
        n = len(batch)
        counter = self._c_rx_dispatch
        if counter is not None:
            counter.inc(n)
        for skb in batch:
            self.trace.post(self.env.now, "host.rx.dispatch", skb.ident,
                            conn=skb.conn, batch=n)
            handler = self._handlers.get(skb.conn, self._default_handler)
            if handler is None:
                raise TopologyError(
                    f"{self.name}: no handler for connection {skb.conn!r}")
            handler(skb, n)

    # -- reporting -------------------------------------------------------------
    def load(self) -> float:
        """Current-window CPU load (see :meth:`CpuComplex.load`)."""
        return self.cpu.load()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} ({self.spec.name}, {self.config.describe()})>"
