"""Cost model: where every nanosecond of the simulated data path goes.

This module is the single home of the calibration constants that turn a
:class:`~repro.hw.presets.HostSpec` + :class:`~repro.config.TuningConfig`
into concrete per-packet / per-byte / per-interrupt CPU costs.

Calibration method
------------------

Constants are expressed in *scaled units* so they transfer across hosts:

* per-packet kernel costs in **µs · GHz** (divide by the CPU clock),
* per-byte costs as a **FSB term** (ns·MHz per byte, divide by FSB
  clock) plus a **STREAM term** (fraction of one full copy at the
  host's STREAM rate).

The numbers below were solved from the paper's PE2650 measurements
(Figs. 3-5: 2.47 Gb/s @1500, 4.11 @8160, 3.9 @9000 after full tuning;
2.7/3.6 Gb/s stock/burst-tuned @9000), the E7505 out-of-box 4.64 Gb/s,
the 19 µs / 14 µs end-to-end latencies (Figs. 6-7) and the 5.5 Gb/s
packet-generator figure (§3.5.2).  The governing identities (PE2650,
uniprocessor, MSS-sized segments) are::

    rx_per_segment(s) = (PKT + order*ALLOC_ORDER)/cpu_ghz + s*per_byte
    per_byte          = RX_BYTE_FSB/fsb_mhz + RX_BYTE_STREAM*8/stream
    PKT  = irq + tcp_rx + ack_gen/2 + wake + alloc_base  = 5.65 µs·GHz
    ALLOC_ORDER = 2.95 µs·GHz        per_byte(400 MHz) = 1.464 ns/B

which pin the tuned peaks at 2.47 / 4.11 / 3.90 / ~4.4 Gb/s for MTUs
1500 / 8160 / 9000 / 16000 and the E7505 at ~4.4 Gb/s out of the box.
The SMP tax (1.18, see :mod:`repro.oskernel.kernelcfg`) reproduces the
stock-vs-UP steps, and the 960 ns PCI-X burst overhead puts the MMRBC=512
bus ceiling at ~2.8 Gb/s for 9018-byte frames (stock Fig. 3 peak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TuningConfig
from repro.errors import ConfigError
from repro.hw.memory import MemorySubsystem
from repro.hw.presets import HostSpec
from repro.oskernel.kernelcfg import KernelConfig
from repro.units import us

__all__ = ["CostModel", "Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Raw calibration constants (see module docstring for derivations)."""

    # --- receive path, per packet (µs * GHz) ---
    rx_irq_usghz: float = 1.50          # interrupt handler, per interrupt
    rx_tcp_usghz: float = 0.90          # TCP/IP receive processing
    rx_ack_gen_usghz: float = 1.50      # building + sending one ACK
    rx_wake_usghz: float = 2.00         # scheduler wake of the reader, per batch
    # --- receive path, per byte ---
    rx_byte_fsb_ns_mhz: float = 487.0   # FSB-limited data movement
    rx_byte_stream_copies: float = 0.264  # extra copies at STREAM rate
    # --- transmit path, per packet (µs * GHz) ---
    tx_syscall_usghz: float = 0.80      # write() entry, per application write
    tx_tcp_usghz: float = 1.80          # TCP/IP transmit processing
    tx_ack_rx_usghz: float = 0.90       # processing one incoming ACK
    tx_desc_usghz: float = 0.50         # DMA descriptor setup / doorbell
    # --- transmit path, per byte: one user->kernel copy at STREAM rate ---
    tx_byte_stream_copies: float = 1.0
    # --- TCP options ---
    timestamp_usghz: float = 0.35       # per packet, each side, when enabled
    # --- allocator (µs * GHz) ---
    alloc_base_usghz: float = 0.50
    alloc_order_usghz: float = 2.95
    # --- pktgen (§3.5.2) ---
    pktgen_loop_usghz: float = 4.95     # kernel loop per pre-formed packet
    # --- fixed, clock-independent path elements (seconds) ---
    nic_traverse_s: float = us(2.0)     # MAC+PCS+SerDes+optics, each adapter
    rx_fixed_pad_s: float = us(0.5)     # bus posting + board fixed remainder
    # --- receiver-application drain delay (seconds): time from "segment
    # processed" to "buffer space returned" (process scheduling).
    drain_latency_s: float = us(3.0)
    # --- §3.5.3 / §5 offload projections ---
    #: header-splitting leaves only this fraction of the FSB per-byte
    #: term on the CPU (header touch; payload goes straight to user).
    header_split_byte_fraction: float = 0.30
    #: OS-bypass per-packet cost, each side (µs * GHz): doorbell + CQ.
    os_bypass_pkt_usghz: float = 0.40
    #: OS-bypass residual per-byte CPU cost (seconds/byte).
    os_bypass_byte_s: float = 0.02e-9

    def __post_init__(self) -> None:
        for field_name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"calibration {field_name} negative: {value}")


DEFAULT_CALIBRATION = Calibration()


class CostModel:
    """Concrete costs for one (host spec, tuning config) pair.

    All returned values are **seconds**.  Methods are grouped by path.
    """

    def __init__(self, spec: HostSpec, config: TuningConfig,
                 calibration: Calibration = DEFAULT_CALIBRATION):
        self.spec = spec
        self.config = config
        self.cal = calibration
        self.kernel = KernelConfig.from_tuning(config)
        self.memory = MemorySubsystem(spec)
        self._ghz = spec.cpu_ghz
        # Per-byte receive cost (seconds per byte): FSB term + STREAM term.
        self._rx_byte_s = (
            calibration.rx_byte_fsb_ns_mhz / spec.fsb_mhz * 1e-9
            + calibration.rx_byte_stream_copies * 8.0 / spec.stream_copy_bps
        )
        self._tx_byte_s = (
            calibration.tx_byte_stream_copies * 8.0 / spec.stream_copy_bps
        )
        if config.header_splitting:
            # aLAST engine (§3.5.3): payload bypasses the CPU on receive;
            # only the header touch remains.
            self._rx_byte_s = (
                calibration.rx_byte_fsb_ns_mhz / spec.fsb_mhz * 1e-9
                * calibration.header_split_byte_fraction)
        if config.os_bypass:
            # §5 projection: direct data placement on both sides.
            self._rx_byte_s = calibration.os_bypass_byte_s
            self._tx_byte_s = calibration.os_bypass_byte_s
        # Every cost method is a pure function of the (spec, config,
        # calibration) triple frozen at construction (the per-byte terms
        # above already bake that assumption in), so the hot per-segment
        # costs are memoized: a steady flow re-prices the same two or
        # three payload sizes millions of times.
        self._tx_seg_cache: dict = {}
        self._rx_seg_cache: dict = {}
        self._alloc_cache: dict = {}
        self._frame_bytes_cache: dict = {}
        self._pkt_cache: dict = {}

    # -- helpers -------------------------------------------------------------
    def _pkt(self, usghz: float) -> float:
        """Scale a per-packet cost by CPU clock and the SMP tax."""
        return usghz * 1e-6 / self._ghz * self.kernel.per_packet_tax

    # -- transmit path ---------------------------------------------------------
    def tx_syscall_s(self) -> float:
        """One ``write()`` entry (charged per application write).

        OS-bypass posts work requests from user space — no syscall."""
        t = self._pkt_cache.get("tx_syscall")
        if t is None:
            t = (0.0 if self.config.os_bypass
                 else self._pkt(self.cal.tx_syscall_usghz))
            self._pkt_cache["tx_syscall"] = t
        return t

    def tx_segment_s(self, payload: int) -> float:
        """CPU time to build and hand one data segment to the NIC:
        TCP/IP processing + skb allocation + user->kernel copy +
        descriptor setup (+ timestamp option cost)."""
        t = self._tx_seg_cache.get(payload)
        if t is None:
            t = self._tx_segment_uncached(payload)
            self._tx_seg_cache[payload] = t
        return t

    def _tx_segment_uncached(self, payload: int) -> float:
        cal = self.cal
        if self.config.os_bypass:
            return (self._pkt(cal.os_bypass_pkt_usghz)
                    + payload * self._tx_byte_s)
        per_pkt = cal.tx_tcp_usghz + cal.tx_desc_usghz
        if self.config.tcp_timestamps:
            per_pkt += cal.timestamp_usghz
        t = self._pkt(per_pkt)
        t += self.alloc_cost_s(self.frame_bytes(payload))
        t += payload * self._tx_byte_s * self.kernel.per_packet_tax
        if not self.config.checksum_offload:
            t += self.memory.copy_engine().checksum_time(payload)
        return t

    def tx_ack_rx_s(self) -> float:
        """Processing one incoming ACK on the sender."""
        t = self._pkt_cache.get("tx_ack_rx")
        if t is None:
            if self.config.os_bypass:
                t = self._pkt(self.cal.os_bypass_pkt_usghz * 0.25)
            else:
                per = self.cal.tx_ack_rx_usghz
                if self.config.tcp_timestamps:
                    per += self.cal.timestamp_usghz * 0.5
                t = self._pkt(per)
            self._pkt_cache["tx_ack_rx"] = t
        return t

    # -- receive path ------------------------------------------------------------
    def rx_irq_s(self) -> float:
        """Interrupt servicing (one interrupt, any batch size).

        OS-bypass completes into user-polled queues — no interrupt."""
        t = self._pkt_cache.get("rx_irq")
        if t is None:
            t = (0.0 if self.config.os_bypass
                 else self._pkt(self.cal.rx_irq_usghz) * self.kernel.irq_tax)
            self._pkt_cache["rx_irq"] = t
        return t

    def rx_segment_s(self, payload: int, batch: int = 1) -> float:
        """Stack processing of one received data segment: protocol work,
        skb allocation (driver replenishes the ring), per-byte data
        movement; ``batch`` frames per poll discounts the protocol part
        under NAPI."""
        key = (payload, batch)
        t = self._rx_seg_cache.get(key)
        if t is None:
            t = self._rx_segment_uncached(payload, batch)
            self._rx_seg_cache[key] = t
        return t

    def _rx_segment_uncached(self, payload: int, batch: int) -> float:
        cal = self.cal
        if self.config.os_bypass:
            return (self._pkt(cal.os_bypass_pkt_usghz)
                    + payload * self._rx_byte_s)
        per_pkt = cal.rx_tcp_usghz
        if self.config.tcp_timestamps:
            per_pkt += cal.timestamp_usghz
        factor = self.kernel.rx_batch_cost_factor(batch)
        t = self._pkt(per_pkt) * factor
        if self.config.header_splitting:
            # only a small header skb is allocated; the payload lands
            # directly in the user buffer
            t += self.alloc_cost_s(128)
        else:
            t += self.alloc_cost_s(self.frame_bytes(payload))
        t += payload * self._rx_byte_s * self.kernel.per_packet_tax
        if not self.config.checksum_offload:
            t += self.memory.copy_engine().checksum_time(payload)
        return t

    def rx_ack_gen_s(self) -> float:
        """Building and transmitting one ACK on the receiver."""
        t = self._pkt_cache.get("rx_ack_gen")
        if t is None:
            t = self._pkt(self.cal.os_bypass_pkt_usghz * 0.25
                          if self.config.os_bypass
                          else self.cal.rx_ack_gen_usghz)
            self._pkt_cache["rx_ack_gen"] = t
        return t

    def rx_wake_s(self) -> float:
        """Scheduler wakeup of the blocked reader (per delivery batch).

        OS-bypass delivers into user memory — nobody to wake."""
        t = self._pkt_cache.get("rx_wake")
        if t is None:
            t = (0.0 if self.config.os_bypass
                 else self._pkt(self.cal.rx_wake_usghz))
            self._pkt_cache["rx_wake"] = t
        return t

    # -- shared ---------------------------------------------------------------
    def alloc_cost_s(self, frame_bytes: int) -> float:
        """skb allocation cost for a frame of ``frame_bytes``."""
        t = self._alloc_cache.get(frame_bytes)
        if t is None:
            from repro.oskernel.allocator import block_order, block_size_for
            order = block_order(block_size_for(frame_bytes))
            usghz = (self.cal.alloc_base_usghz
                     + order * self.cal.alloc_order_usghz)
            t = self._pkt(usghz)
            self._alloc_cache[frame_bytes] = t
        return t

    def frame_bytes(self, payload: int) -> int:
        """In-memory frame size for a data segment of ``payload`` bytes."""
        n = self._frame_bytes_cache.get(payload)
        if n is None:
            from repro.oskernel.skbuff import ETH_HEADER, ip_tcp_header_bytes
            n = (payload + ip_tcp_header_bytes(self.config.tcp_timestamps)
                 + ETH_HEADER)
            self._frame_bytes_cache[payload] = n
        return n

    def pktgen_loop_s(self) -> float:
        """Kernel packet-generator per-packet loop cost (single copy,
        bypasses the whole stack — §3.5.2)."""
        return self.cal.pktgen_loop_usghz * 1e-6 / self._ghz

    # -- fixed path ---------------------------------------------------------------
    @property
    def nic_traverse_s(self) -> float:
        """One adapter's internal MAC/PHY/optics latency."""
        return self.cal.nic_traverse_s

    @property
    def rx_fixed_pad_s(self) -> float:
        """Fixed receive-side posting latency (board + bus)."""
        return self.cal.rx_fixed_pad_s

    @property
    def drain_latency_s(self) -> float:
        """Delay before the reader returns receive-buffer space.

        With direct data placement there is nothing to drain."""
        if self.config.os_bypass:
            return 0.0
        return self.cal.drain_latency_s

    def rx_truesize(self, skb) -> int:
        """Socket-buffer bytes charged for one received segment.

        Header splitting and OS-bypass place the payload outside kernel
        memory, so only a small header buffer is charged."""
        if self.config.os_bypass or self.config.header_splitting:
            return 256
        return skb.truesize

    # -- diagnostics ----------------------------------------------------------
    def rx_capacity_bps(self, mss: int) -> float:
        """Receiver CPU capacity for MSS-sized segments: the analytic
        ceiling the DES approaches with ample windows."""
        per_seg = (self.rx_irq_s()
                   + self.rx_segment_s(mss)
                   + 0.5 * self.rx_ack_gen_s()
                   + self.rx_wake_s())
        return mss * 8.0 / per_seg

    def tx_capacity_bps(self, mss: int) -> float:
        """Sender CPU capacity for MSS-sized segments."""
        per_seg = (self.tx_syscall_s()
                   + self.tx_segment_s(mss)
                   + 0.5 * self.tx_ack_rx_s())
        return mss * 8.0 / per_seg
