"""Communication Streaming Architecture: the adapter on the memory hub.

§3.5.3: "An additional possibility ... is the placement of network
adapters on the Memory Controller Hub (MCH), typically found on the
Northbridge.  Intel's Communication Streaming Architecture (CSA) is
such an implementation for Gigabit Ethernet.  Placing the adapter on
the MCH allows for the bypass of the I/O bus."

:class:`MchLink` is a drop-in replacement for
:class:`~repro.hw.pcix.PciXBus` in the adapter's DMA path: a dedicated
hub interface with no burst-size sensitivity and a small fixed
per-transfer cost.  It removes both the MMRBC bottleneck and the
PCI-X-as-error-source concern the paper raises.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.sim.engine import Environment
from repro.sim.timeline import FifoTimeline
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_metrics
from repro.units import Gbps, ns

__all__ = ["MchLink"]

#: Dedicated hub-interface bandwidth (a CSA-era MCH port scaled to the
#: 10GbE generation: wide enough never to bind before the wire).
MCH_LINK_BPS = Gbps(16)

#: Fixed per-transfer cost (doorbell + hub arbitration).
MCH_TRANSFER_OVERHEAD_S = ns(120)


class MchLink:
    """A memory-controller-hub attachment point for one adapter."""

    def __init__(self, env: Environment, link_bps: float = MCH_LINK_BPS,
                 overhead_s: float = MCH_TRANSFER_OVERHEAD_S,
                 name: str = "mch",
                 trace: Optional[TraceBuffer] = None):
        if link_bps <= 0:
            raise ConfigError("MCH link bandwidth must be positive")
        if overhead_s < 0:
            raise ConfigError("MCH overhead cannot be negative")
        self.env = env
        self.link_bps = link_bps
        self.overhead_s = overhead_s
        self.bus = FifoTimeline(env, capacity=1, name=name)
        self.name = name
        self.trace = trace
        self.bytes_moved = 0
        metrics = active_metrics()
        if metrics is not None:
            self._c_dma = metrics.counter("mch.dma.transfers", bus=name)
            self._c_bytes = metrics.counter("mch.dma.bytes", bus=name)
        else:
            self._c_dma = self._c_bytes = None

    @property
    def peak_bps(self) -> float:
        """Raw hub-interface bandwidth."""
        return self.link_bps

    def transfer_time(self, nbytes: int, mmrbc: int = 0) -> float:
        """Hub-occupancy seconds for one transfer.

        ``mmrbc`` is accepted (and ignored) for interface compatibility
        with :class:`PciXBus` — there is no burst-size register here.
        """
        if nbytes <= 0:
            raise ConfigError(f"transfer size must be positive, got {nbytes}")
        return nbytes * 8.0 / self.link_bps + self.overhead_s

    def effective_bps(self, nbytes: int, mmrbc: int = 0) -> float:
        """Effective bandwidth for back-to-back transfers."""
        return nbytes * 8.0 / self.transfer_time(nbytes, mmrbc)

    def charge_transfer(self, nbytes: int, mmrbc: int = 0):
        """Commit one FIFO hub hold arithmetically; return (start, end)."""
        return self.bus.charge(self.transfer_time(nbytes, mmrbc))

    def account(self, nbytes: int, mmrbc: int = 0) -> None:
        """Record a completed transfer (counters + trace)."""
        self.bytes_moved += nbytes
        if self._c_dma is not None:
            self._c_dma.inc()
            self._c_bytes.inc(nbytes)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self.env.now, "mch.dma", None, bus=self.name,
                       nbytes=nbytes)

    def dma(self, nbytes: int, mmrbc: int = 0):
        """Process: occupy the hub for one transfer."""
        _, end = self.charge_transfer(nbytes, mmrbc)
        yield self.env._fast_timeout(end - self.env._now)
        self.account(nbytes, mmrbc)

    def utilization(self) -> float:
        """Busy fraction since t=0."""
        return self.bus.utilization()
