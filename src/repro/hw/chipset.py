"""Chipset models: the north bridges of the paper's testbed.

The chipset sets the theoretical CPU/memory/PCI-X bandwidths quoted in
§3.1 of the paper and the memory-bus efficiency that turns a theoretical
figure into a STREAM-like measured one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.units import Gbps

__all__ = ["Chipset", "CHIPSETS"]


@dataclass(frozen=True)
class Chipset:
    """A north-bridge part.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"ServerWorks GC-LE"``.
    cpu_bw_bps:
        Theoretical CPU (front-side bus) bandwidth.
    mem_bw_bps:
        Theoretical memory bandwidth.
    pcix_bw_bps:
        Theoretical PCI-X bandwidth of the slot hosting the adapter.
    mem_efficiency:
        Fraction of theoretical memory bandwidth STREAM copy achieves.
    """

    name: str
    cpu_bw_bps: float
    mem_bw_bps: float
    pcix_bw_bps: float
    mem_efficiency: float

    def __post_init__(self) -> None:
        if min(self.cpu_bw_bps, self.mem_bw_bps, self.pcix_bw_bps) <= 0:
            raise ConfigError(f"chipset {self.name}: bandwidths must be positive")
        if not 0 < self.mem_efficiency <= 1:
            raise ConfigError(
                f"chipset {self.name}: mem_efficiency must be in (0, 1]")

    @property
    def stream_copy_bps(self) -> float:
        """Expected STREAM copy bandwidth (measured-equivalent)."""
        return self.mem_bw_bps * self.mem_efficiency


#: The chipsets named in §3.1, with the paper's theoretical numbers.
#: ``mem_efficiency`` is set so the derived STREAM figures match §3.5.2:
#: PE4600 (GC-HE) reports 12.8 Gb/s; the PE2650 (GC-LE) and the Intel
#: E7505 systems are "within a few percent of each other" and ~50% below
#: the GC-HE figure.
CHIPSETS: Dict[str, Chipset] = {
    "GC-LE": Chipset(
        name="ServerWorks GC-LE",
        cpu_bw_bps=Gbps(25.6),
        mem_bw_bps=Gbps(25.6),
        pcix_bw_bps=Gbps(8.5),     # 133 MHz x 64 bit
        mem_efficiency=0.336,      # -> 8.6 Gb/s STREAM copy
    ),
    "GC-HE": Chipset(
        name="ServerWorks GC-HE",
        cpu_bw_bps=Gbps(25.6),
        mem_bw_bps=Gbps(51.2),
        pcix_bw_bps=Gbps(6.4),     # 100 MHz x 64 bit
        mem_efficiency=0.25,       # -> 12.8 Gb/s STREAM copy (paper)
    ),
    "E7505": Chipset(
        name="Intel E7505",
        cpu_bw_bps=Gbps(34.0),
        mem_bw_bps=Gbps(25.6),
        pcix_bw_bps=Gbps(6.4),     # 100 MHz x 64 bit
        mem_efficiency=0.348,      # -> 8.9 Gb/s, within a few % of GC-LE
    ),
    # The 1 GHz quad Itanium-II system of §3.4 (anecdotal, 7.2 Gb/s).
    "I2-NB": Chipset(
        name="Itanium-II north bridge",
        cpu_bw_bps=Gbps(51.2),
        mem_bw_bps=Gbps(51.2),
        pcix_bw_bps=Gbps(8.5),
        mem_efficiency=0.42,       # -> 21.5 Gb/s
    ),
}
