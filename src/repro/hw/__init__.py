"""Hardware substrate: hosts, CPUs, memory, chipsets, PCI-X and NICs.

Models the machines of the paper's testbed — Dell PowerEdge 2650/4600,
the Intel E7505 evaluation systems, the quad Itanium-II box — and the
Intel PRO/10GbE LR adapter (82597EX controller) they host.
"""

from repro.hw.presets import HostSpec, PE2650, PE4600, INTEL_E7505, ITANIUM2, WAN_HOST, GBE_HOST
from repro.hw.pcix import PciXBus
from repro.hw.memory import MemorySubsystem
from repro.hw.chipset import Chipset, CHIPSETS
from repro.hw.cpu import CpuComplex
from repro.hw.nic import TenGigAdapter, GigAdapter
from repro.hw.host import Host
from repro.hw.calibration import CostModel

__all__ = [
    "HostSpec",
    "PE2650",
    "PE4600",
    "INTEL_E7505",
    "ITANIUM2",
    "WAN_HOST",
    "GBE_HOST",
    "PciXBus",
    "MemorySubsystem",
    "Chipset",
    "CHIPSETS",
    "CpuComplex",
    "TenGigAdapter",
    "GigAdapter",
    "Host",
    "CostModel",
]
