"""CPU complex: the serialized network-processing path of one host.

The P4 Xeon SMP machines of the paper pin every interrupt to a single
CPU, so the network receive path offers no CPU-level parallelism
regardless of socket count (§3.3) — which is why the uniprocessor kernel
*wins*.  The model therefore exposes one FCFS processing resource; SMP's
cost is carried as multipliers in :class:`~repro.oskernel.kernelcfg.KernelConfig`,
and the second socket only shows up in load reporting.
"""

from __future__ import annotations

from repro.hw.presets import HostSpec
from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["CpuComplex"]


class CpuComplex:
    """The packet-processing CPU of a host."""

    def __init__(self, env: Environment, spec: HostSpec, name: str = "cpu"):
        self.env = env
        self.spec = spec
        self.resource = Resource(env, capacity=spec.parallel_rx_cpus,
                                 name=name)
        self._window_start = 0.0
        self._window_busy_base = 0.0

    def run(self, cost_s: float):
        """Process: occupy the CPU for ``cost_s`` seconds.

        Usage: ``yield from host.cpu.run(cost)``.
        """
        if cost_s <= 0:
            return
        req = self.resource.request()
        yield req
        yield self.env._fast_timeout(cost_s)
        self.resource.release(req)

    # -- load reporting ---------------------------------------------------------
    def load(self) -> float:
        """Instantaneous-window load: busy fraction of the processing CPU
        since the last :meth:`reset_load_window` (what sampling
        ``/proc/loadavg`` during a steady run reports)."""
        res = self.resource
        busy = res.busy_time
        if res._busy_since is not None:  # include in-progress holding
            busy += (self.env.now - res._busy_since) * res.in_use
        span = self.env.now - self._window_start
        if span <= 0:
            return 0.0
        return (busy - self._window_busy_base) / span

    def reset_load_window(self) -> None:
        """Start a fresh load-measurement window at the current time."""
        res = self.resource
        busy = res.busy_time
        if res._busy_since is not None:
            busy += (self.env.now - res._busy_since) * res.in_use
        self._window_busy_base = busy
        self._window_start = self.env.now
