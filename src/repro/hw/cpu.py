"""CPU complex: the serialized network-processing path of one host.

The P4 Xeon SMP machines of the paper pin every interrupt to a single
CPU, so the network receive path offers no CPU-level parallelism
regardless of socket count (§3.3) — which is why the uniprocessor kernel
*wins*.  The model therefore exposes one FCFS processing resource; SMP's
cost is carried as multipliers in :class:`~repro.oskernel.kernelcfg.KernelConfig`,
and the second socket only shows up in load reporting.
"""

from __future__ import annotations

from repro.chaos.hooks import register_target as register_chaos_target
from repro.hw.presets import HostSpec
from repro.sim.engine import Environment
from repro.sim.timeline import FifoTimeline

__all__ = ["CpuComplex"]


class CpuComplex:
    """The packet-processing CPU of a host."""

    def __init__(self, env: Environment, spec: HostSpec, name: str = "cpu"):
        self.env = env
        self.spec = spec
        self.timeline = FifoTimeline(env, capacity=spec.parallel_rx_cpus,
                                     name=name)
        self._window_start = 0.0
        self._window_busy_base = 0.0
        register_chaos_target("cpu", name, self)

    def run(self, cost_s: float):
        """Process: occupy the CPU for ``cost_s`` seconds.

        Usage: ``yield from host.cpu.run(cost)``.
        """
        if cost_s <= 0:
            return
        _, end = self.timeline.charge(cost_s)
        yield self.env._fast_timeout(end - self.env._now)

    def charge(self, cost_s: float) -> float:
        """Commit ``cost_s`` of FIFO CPU time arithmetically; return the
        absolute completion instant (``now`` for free work).  Used by
        callback-chained (train-batched) paths instead of :meth:`run`."""
        if cost_s <= 0:
            return self.env._now
        return self.timeline.charge(cost_s)[1]

    # -- load reporting ---------------------------------------------------------
    def load(self) -> float:
        """Instantaneous-window load: busy fraction of the processing CPU
        since the last :meth:`reset_load_window` (what sampling
        ``/proc/loadavg`` during a steady run reports)."""
        span = self.env.now - self._window_start
        if span <= 0:
            return 0.0
        load = (self.timeline.busy_elapsed() - self._window_busy_base) / span
        # busy_elapsed() is a committed-minus-future difference; clamp the
        # float noise so a saturated window reads exactly capacity.
        return min(load, float(self.timeline.capacity))

    def reset_load_window(self) -> None:
        """Start a fresh load-measurement window at the current time."""
        self._window_busy_base = self.timeline.busy_elapsed()
        self._window_start = self.env.now
