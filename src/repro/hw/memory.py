"""Memory subsystem: STREAM-style bandwidth and the front-side bus.

The paper rules memory bandwidth out as the primary bottleneck (PE4600's
GC-HE has ~50% more STREAM bandwidth yet no more network throughput) and
points instead at the *front-side bus* — "the CPU's ability to move, but
not process, data".  The model therefore separates:

* ``stream_copy_bps`` — bulk copy bandwidth (memcpy, checksum), and
* ``fsb_touch_bps``  — the FSB-limited rate at which the kernel's
  per-byte bookkeeping (descriptor walks, skb touches, cache fills
  during protocol processing) proceeds; it scales with FSB clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.presets import HostSpec
from repro.oskernel.copyengine import CopyEngine

__all__ = ["MemorySubsystem", "FSB_TOUCH_BITS_PER_HZ"]

#: Effective per-byte FSB-limited stack touch rate: bits/s per Hz of FSB
#: clock.  Calibrated (with the copy term) against the PE2650's tuned
#: peaks and the E7505's out-of-box 4.64 Gb/s — see hw/calibration.py.
FSB_TOUCH_BITS_PER_HZ = 37.5


@dataclass(frozen=True)
class MemorySubsystem:
    """Bandwidth view of one host's memory hierarchy."""

    spec: HostSpec

    @property
    def theoretical_bps(self) -> float:
        """Chipset theoretical memory bandwidth."""
        return self.spec.chipset_model.mem_bw_bps

    @property
    def stream_copy_bps(self) -> float:
        """STREAM copy figure this platform measures."""
        return self.spec.stream_copy_bps

    @property
    def fsb_touch_bps(self) -> float:
        """FSB-limited stack data-touch bandwidth."""
        return self.spec.fsb_mhz * 1e6 * FSB_TOUCH_BITS_PER_HZ

    def copy_engine(self) -> CopyEngine:
        """A :class:`CopyEngine` priced for this memory system."""
        return CopyEngine(stream_copy_bps=self.stream_copy_bps)

    def stream_benchmark(self) -> float:
        """What running STREAM on this host reports (bit/s).

        Kept as a method so the tools package has a 'measurement' to
        perform; the simulated measurement is exact.
        """
        return self.stream_copy_bps

    def fsb_touch_time(self, nbytes: int) -> float:
        """Seconds of FSB-limited stack touching for ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"negative size {nbytes}")
        return nbytes * 8.0 / self.fsb_touch_bps
