"""PCI-X bus model with MMRBC-dependent burst efficiency.

The adapter reaches host memory through DMA bursts of at most MMRBC
(maximum memory read byte count) bytes.  Each burst pays a fixed
arbitration/setup overhead on top of its data time, so the *effective*
bus bandwidth rises steeply with the burst size — this is the paper's
first big optimization (512 -> 4096 bytes, +33% peak throughput at
9000-byte MTU).

The bus is a shared FCFS resource: transmit DMA (memory reads) and
receive DMA (memory writes) of one host contend on it, as do two
adapters installed on the *same* segment.  The paper's dual-adapter test
used independent buses, which :class:`~repro.hw.host.Host` models by
instantiating one :class:`PciXBus` per adapter.
"""

from __future__ import annotations

from typing import Optional

from repro.config import VALID_MMRBC
from repro.errors import ConfigError
from repro.sim.engine import Environment
from repro.sim.timeline import FifoTimeline
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_metrics
from repro.units import ns

__all__ = ["PciXBus", "BURST_OVERHEAD_S"]

#: Fixed per-burst overhead: arbitration, address phase, attribute phase,
#: target initial latency and split-completion turnaround.  Calibrated so
#: a 133 MHz bus moves 9018-byte frames at ~2.8 Gb/s with 512-byte bursts
#: and ~7.1 Gb/s with 4096-byte bursts, bracketing the paper's stock and
#: optimized 9000-MTU results.
BURST_OVERHEAD_S = ns(960)


class PciXBus:
    """One PCI-X segment (64-bit wide) shared by its devices."""

    def __init__(self, env: Environment, clock_mhz: int,
                 burst_overhead_s: float = BURST_OVERHEAD_S,
                 name: str = "pcix",
                 trace: Optional[TraceBuffer] = None):
        if clock_mhz not in (33, 66, 100, 133):
            raise ConfigError(f"PCI-X clock must be 33/66/100/133 MHz, "
                              f"got {clock_mhz}")
        if burst_overhead_s < 0:
            raise ConfigError("burst overhead cannot be negative")
        self.env = env
        self.clock_mhz = clock_mhz
        self.burst_overhead_s = burst_overhead_s
        self.bus = FifoTimeline(env, capacity=1, name=name)
        self.name = name
        self.trace = trace
        self.bytes_moved = 0
        metrics = active_metrics()
        if metrics is not None:
            self._c_dma = metrics.counter("pcix.dma.transfers", bus=name)
            self._c_bytes = metrics.counter("pcix.dma.bytes", bus=name)
        else:
            self._c_dma = self._c_bytes = None

    @property
    def peak_bps(self) -> float:
        """Raw bandwidth: clock x 64 bit."""
        return self.clock_mhz * 1e6 * 64

    # -- timing ---------------------------------------------------------------
    def transfer_time(self, nbytes: int, mmrbc: int) -> float:
        """Bus-occupancy seconds to DMA ``nbytes`` with ``mmrbc`` bursts."""
        if mmrbc not in VALID_MMRBC:
            raise ConfigError(f"invalid MMRBC {mmrbc}")
        if nbytes <= 0:
            raise ConfigError(f"transfer size must be positive, got {nbytes}")
        bursts = -(-nbytes // mmrbc)  # ceil division
        return nbytes * 8.0 / self.peak_bps + bursts * self.burst_overhead_s

    def effective_bps(self, nbytes: int, mmrbc: int) -> float:
        """Effective bandwidth for back-to-back ``nbytes`` transfers."""
        return nbytes * 8.0 / self.transfer_time(nbytes, mmrbc)

    # -- DES protocol ------------------------------------------------------------
    def charge_transfer(self, nbytes: int, mmrbc: int):
        """Commit one FIFO DMA hold arithmetically; return (start, end).

        Grant and completion instants equal the event-based FCFS
        resource's exactly (see :class:`FifoTimeline`); competing
        transmit and receive DMA charged later but before ``end`` queue
        behind this one, exactly like bus arbitration.  The caller
        accounts the transfer via :meth:`account` when it completes.
        """
        return self.bus.charge(self.transfer_time(nbytes, mmrbc))

    def account(self, nbytes: int, mmrbc: int) -> None:
        """Record a completed transfer (counters + trace)."""
        self.bytes_moved += nbytes
        if self._c_dma is not None:
            self._c_dma.inc()
            self._c_bytes.inc(nbytes)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self.env.now, "pcix.dma", None, bus=self.name,
                       nbytes=nbytes, bursts=-(-nbytes // mmrbc), mmrbc=mmrbc)

    def dma(self, nbytes: int, mmrbc: int):
        """Process: occupy the bus for one DMA transfer.

        Usage: ``yield from bus.dma(frame_bytes, config.mmrbc)``.
        """
        _, end = self.charge_transfer(nbytes, mmrbc)
        yield self.env._fast_timeout(end - self.env._now)
        self.account(nbytes, mmrbc)

    def utilization(self) -> float:
        """Busy fraction of the bus since t=0."""
        return self.bus.utilization()
