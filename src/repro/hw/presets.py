"""Host specifications for every machine in the paper's testbed (§3.1, §4).

A :class:`HostSpec` is pure description — clock rates, bus widths,
chipset — from which :class:`~repro.hw.calibration.CostModel` derives the
per-packet and per-byte costs used by the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.chipset import CHIPSETS, Chipset

__all__ = ["HostSpec", "PE2650", "PE4600", "INTEL_E7505", "ITANIUM2",
           "WAN_HOST", "GBE_HOST"]


@dataclass(frozen=True)
class HostSpec:
    """One host platform.

    Attributes
    ----------
    name:
        Platform label used in reports.
    cpu_ghz:
        Core clock of one CPU.
    n_cpus:
        Socket count (affects load reporting, not receive-path
        parallelism: the P4 Xeon SMP of the era pinned each interrupt to
        one CPU — paper §3.3).
    fsb_mhz:
        Front-side bus clock; the paper identifies this as the likely
        differentiator between the PE2650 and the Intel E7505 systems.
    chipset:
        Key into :data:`repro.hw.chipset.CHIPSETS`.
    pcix_mhz:
        Clock of the PCI-X segment hosting the adapter (64-bit wide).
    memory_gb:
        Installed RAM (only reported, never binding at these workloads).
    parallel_rx_cpus:
        CPUs the platform can bring to bear on network processing.  The
        P4 Xeon systems pin each interrupt to one CPU (paper §3.3), so
        this is 1 for them regardless of socket count; the Itanium-II's
        SAPIC distributes interrupts, letting multiple aggregated flows
        be processed in parallel (how the quad reached 7.2 Gb/s, §3.4).
    """

    name: str
    cpu_ghz: float
    n_cpus: int
    fsb_mhz: int
    chipset: str
    pcix_mhz: int
    memory_gb: int = 1
    parallel_rx_cpus: int = 1
    #: Per-burst PCI-X overhead in nanoseconds.  The ServerWorks bridges
    #: of the Dell boxes pay ~960 ns per burst (calibrated against the
    #: stock Fig. 3 ceiling); the Itanium-II's zx1-class chipset has a
    #: substantially better PCI-X implementation.
    pcix_burst_overhead_ns: float = 960.0

    def __post_init__(self) -> None:
        if self.pcix_burst_overhead_ns < 0:
            raise ConfigError(
                f"{self.name}: pcix_burst_overhead_ns cannot be negative")
        if not 1 <= self.parallel_rx_cpus <= self.n_cpus:
            raise ConfigError(
                f"{self.name}: parallel_rx_cpus must be in [1, n_cpus]")
        if self.cpu_ghz <= 0:
            raise ConfigError(f"{self.name}: cpu_ghz must be positive")
        if self.n_cpus < 1:
            raise ConfigError(f"{self.name}: n_cpus must be >= 1")
        if self.fsb_mhz <= 0:
            raise ConfigError(f"{self.name}: fsb_mhz must be positive")
        if self.chipset not in CHIPSETS:
            raise ConfigError(
                f"{self.name}: unknown chipset {self.chipset!r};"
                f" known: {sorted(CHIPSETS)}")
        if self.pcix_mhz not in (33, 66, 100, 133):
            raise ConfigError(
                f"{self.name}: pcix_mhz must be 33/66/100/133, got {self.pcix_mhz}")

    @property
    def chipset_model(self) -> Chipset:
        """The resolved :class:`Chipset`."""
        return CHIPSETS[self.chipset]

    @property
    def pcix_peak_bps(self) -> float:
        """Raw PCI-X bandwidth: clock x 64 bit."""
        return self.pcix_mhz * 1e6 * 64

    @property
    def stream_copy_bps(self) -> float:
        """Expected STREAM copy bandwidth for this platform."""
        return self.chipset_model.stream_copy_bps


#: Dell PowerEdge 2650: dual 2.2 GHz Xeon, 400 MHz FSB, GC-LE,
#: dedicated 133 MHz PCI-X.  The workhorse of the LAN/SAN study.
PE2650 = HostSpec(name="PE2650", cpu_ghz=2.2, n_cpus=2, fsb_mhz=400,
                  chipset="GC-LE", pcix_mhz=133, memory_gb=1)

#: Dell PowerEdge 4600: dual 2.4 GHz Xeon, 400 MHz FSB, GC-HE,
#: dedicated 100 MHz PCI-X.  Higher memory bandwidth, same network perf.
PE4600 = HostSpec(name="PE4600", cpu_ghz=2.4, n_cpus=2, fsb_mhz=400,
                  chipset="GC-HE", pcix_mhz=100, memory_gb=1)

#: Intel-provided evaluation systems: dual 2.66 GHz Xeon, 533 MHz FSB,
#: E7505, 100 MHz PCI-X, 2 GB.  4.64 Gb/s essentially out of the box.
INTEL_E7505 = HostSpec(name="IntelE7505", cpu_ghz=2.66, n_cpus=2,
                       fsb_mhz=533, chipset="E7505", pcix_mhz=100,
                       memory_gb=2)

#: 1 GHz quad-processor Itanium-II (§3.4): 7.2 Gb/s with aggregated flows.
ITANIUM2 = HostSpec(name="Itanium2", cpu_ghz=1.0, n_cpus=4, fsb_mhz=400,
                    chipset="I2-NB", pcix_mhz=133, memory_gb=4,
                    parallel_rx_cpus=4, pcix_burst_overhead_ns=450.0)

#: §4 WAN endpoints: dual 2.4 GHz Xeon, 2 GB, dedicated 133 MHz PCI-X.
WAN_HOST = HostSpec(name="WanXeon24", cpu_ghz=2.4, n_cpus=2, fsb_mhz=400,
                    chipset="GC-LE", pcix_mhz=133, memory_gb=2)

#: Commodity GbE client used in the multi-flow aggregation tests.
GBE_HOST = HostSpec(name="GbEClient", cpu_ghz=2.0, n_cpus=1, fsb_mhz=400,
                    chipset="GC-LE", pcix_mhz=66, memory_gb=1)
