"""Linux kernel packet generator (§3.5.2).

"The packet generator bypasses the TCP/IP and UDP/IP stacks entirely.
It is a kernel-level loop that transmits pre-formed dummy UDP packets
directly to the adapter (that is, it is single-copy).  We observe a
maximum bandwidth of 5.5 Gb/s (8160-byte packets at approximately
84,000 packets/sec) on the PE2650s."

The model: a kernel loop that pays a fixed per-packet cost and then
*synchronously* kicks the descriptor/DMA (the 2.4 pktgen spins on the
transmit ring), so the loop and the DMA do not pipeline — exactly why
pktgen lands at 5.5 Gb/s rather than at the PCI-X ceiling, and why the
paper's "TCP is ~75% of pktgen" arithmetic works out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.hw.host import Host
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment

__all__ = ["PktgenResult", "pktgen_run"]

#: UDP/IP headers on a pktgen frame.
PKTGEN_HEADERS = 28


@dataclass(frozen=True)
class PktgenResult:
    """Outcome of one pktgen run."""

    packet_bytes: int
    packets: int
    elapsed_s: float
    rate_bps: float
    packets_per_sec: float

    @property
    def rate_gbps(self) -> float:
        """Generator rate in Gb/s."""
        return self.rate_bps / 1e9


def pktgen_run(env: Environment, host: Host, dst_address: str,
               packet_bytes: int = 8160, packets: int = 4096,
               extra_cpu_load: float = 0.0) -> PktgenResult:
    """Blast ``packets`` pre-formed frames at the adapter and measure.

    ``packet_bytes`` is the IP-packet size (payload + UDP/IP headers).
    ``extra_cpu_load`` (0..1) occupies the CPU with competing work — the
    paper notes the 5.5 Gb/s rate "is maintained when additional load is
    placed on the CPU", demonstrating the CPU is not the bottleneck;
    pktgen runs in-kernel and is not preempted by user load.
    """
    if packet_bytes <= PKTGEN_HEADERS:
        raise MeasurementError("packet too small for UDP/IP headers")
    if packets < 1:
        raise MeasurementError("need at least one packet")
    if not 0.0 <= extra_cpu_load < 1.0:
        raise MeasurementError("extra_cpu_load must be in [0, 1)")
    nic = host.nic
    loop_cost = host.costs.pktgen_loop_s()
    times = {}

    def loop():
        times["start"] = env.now
        payload = packet_bytes - PKTGEN_HEADERS
        for i in range(packets):
            # kernel loop cost (pktgen holds the CPU; competing load
            # only stretches it when it preempts, which in-kernel
            # pktgen largely avoids — modelled as a mild inflation).
            yield env.timeout(loop_cost * (1.0 + 0.1 * extra_cpu_load))
            skb = SkBuff(payload=payload, headers=PKTGEN_HEADERS,
                         kind="raw", conn="pktgen",
                         meta={"dst": dst_address})
            # synchronous descriptor kick: wait for the DMA to finish
            yield from nic.pcix.dma(skb.frame_bytes, host.config.mmrbc)
            nic.egress.transmit(skb)
        times["end"] = env.now

    done = env.process(loop(), name="pktgen")
    env.run(until=done)
    elapsed = times["end"] - times["start"]
    if elapsed <= 0:
        raise MeasurementError("pktgen run too short to time")
    total_bits = packets * packet_bytes * 8.0
    return PktgenResult(packet_bytes=packet_bytes, packets=packets,
                        elapsed_s=elapsed, rate_bps=total_bits / elapsed,
                        packets_per_sec=packets / elapsed)
