"""Reno congestion control (RFC 2581) with Linux packet counting.

The sender-side state variable of §4: slow start, additive increase /
multiplicative decrease, fast retransmit on three duplicate ACKs, and
timeout recovery.  Linux counts the congestion window in *packets*, and
keeps it MSS-aligned by construction — the sender half of the window
quantisation the paper analyses (Fig. 8).
"""

from __future__ import annotations

from repro.errors import ProtocolError

__all__ = ["RenoCongestion", "INITIAL_CWND", "DUPACK_THRESHOLD"]

#: RFC 2581 initial window (segments).
INITIAL_CWND = 2

#: Fast retransmit after this many duplicate ACKs.
DUPACK_THRESHOLD = 3


class RenoCongestion:
    """AIMD congestion window, counted in segments.

    Attributes
    ----------
    cwnd:
        Congestion window in segments (float internally; use
        :attr:`cwnd_segments` for the usable integer value).
    ssthresh:
        Slow-start threshold in segments.
    """

    def __init__(self, mss: int, initial_cwnd: int = INITIAL_CWND,
                 ssthresh: float = float("inf"),
                 max_cwnd_segments: float = float("inf")):
        if mss <= 0:
            raise ProtocolError("MSS must be positive")
        if initial_cwnd < 1:
            raise ProtocolError("initial cwnd must be >= 1 segment")
        self.mss = mss
        self.cwnd = float(initial_cwnd)
        self.ssthresh = ssthresh
        self.max_cwnd_segments = max_cwnd_segments
        self.dupacks = 0
        self.in_recovery = False
        self.recover_seq = 0
        # statistics
        self.fast_retransmits = 0
        self.timeouts = 0

    # -- usable window ----------------------------------------------------------
    @property
    def cwnd_segments(self) -> int:
        """Whole segments the window permits (MSS alignment: the usable
        window is ``floor(cwnd)`` full segments)."""
        return max(1, int(self.cwnd))

    @property
    def cwnd_bytes(self) -> int:
        """MSS-aligned congestion window in bytes."""
        return self.cwnd_segments * self.mss

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd < ssthresh."""
        return self.cwnd < self.ssthresh

    # -- events -------------------------------------------------------------------
    def on_ack(self, newly_acked_segments: int = 1) -> None:
        """A cumulative ACK advanced snd_una by that many segments.

        During recovery the window is frozen at ssthresh; the sender
        calls :meth:`exit_recovery` once the ACK covers the recovery
        point (NewReno semantics).
        """
        if newly_acked_segments < 0:
            raise ProtocolError("cannot ack a negative segment count")
        self.dupacks = 0
        if self.in_recovery:
            return
        for _ in range(newly_acked_segments):
            if self.in_slow_start:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / max(self.cwnd, 1.0)
        if self.cwnd > self.max_cwnd_segments:
            self.cwnd = float(self.max_cwnd_segments)

    def on_dupack(self) -> bool:
        """A duplicate ACK arrived; returns True when fast retransmit
        should fire (third dupack, not already recovering)."""
        self.dupacks += 1
        if self.dupacks == DUPACK_THRESHOLD and not self.in_recovery:
            self._enter_recovery()
            return True
        return False

    def _enter_recovery(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.in_recovery = True
        self.fast_retransmits += 1

    def exit_recovery(self) -> None:
        """The cumulative ACK covered the recovery point."""
        self.in_recovery = False
        self.dupacks = 0

    def on_timeout(self) -> None:
        """Retransmission timer fired: collapse to one segment."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.timeouts += 1

    # -- analytics ---------------------------------------------------------------
    def recovery_time_s(self, rtt_s: float, target_segments: float) -> float:
        """Time for additive increase to grow back to ``target_segments``
        from the current window: one segment per RTT (Table 1 model)."""
        if rtt_s <= 0:
            raise ProtocolError("RTT must be positive")
        deficit = max(0.0, target_segments - self.cwnd)
        return deficit * rtt_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        phase = ("recovery" if self.in_recovery
                 else "slow-start" if self.in_slow_start
                 else "avoidance")
        return f"<Reno cwnd={self.cwnd:.1f} ssthresh={self.ssthresh} {phase}>"
