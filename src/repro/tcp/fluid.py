"""Fluid AIMD models of TCP flows over bottlenecks (WAN and fabric runs).

Packet-level simulation of an hour-long, 54-MB-window transatlantic flow
is wasteful; the §4 dynamics (slow start, congestion avoidance, queue
build-up at the OC-48, drop-tail loss, AIMD recovery) are faithfully
captured by the classic fluid model iterated per RTT:

* sending rate = W / RTT_eff, RTT_eff = base RTT + queue/C,
* queue integrates (rate - C), loss when the queue exceeds its capacity,
* W: x2 per RTT in slow start, +1 per RTT in avoidance, halved on loss,
* W capped by the socket-buffer window (the paper's tuning instrument:
  "we turn to the flow-control window to implicitly cap the
  congestion-window size to the bandwidth-delay product").

Three granularities share that arithmetic:

* :func:`simulate_fluid`          — one flow, one bottleneck (the §4 WAN runs),
* :func:`simulate_fluid_multiflow`— N flows sharing one bottleneck (the
  LSR multi-stream category),
* :class:`FluidFabric`            — N flows over a *fabric* of links
  (fat-tree / torus), steppable from outside so a discrete-event run
  can advance it tick by tick and exchange traffic with it — the
  background half of the hybrid fluid+DES mode
  (:mod:`repro.net.hybrid`).

Arrays are preallocated and the loops are scalar-light, per the
HPC-Python guidance; a 10,000-RTT run costs milliseconds and a
4096-flow fabric tick costs microseconds per flow-hop.

All invalid-parameter failures raise
:class:`~repro.errors.ProtocolError` (never a bare ``ValueError``), so
callers can guard fluid runs with the package-wide exception hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ProtocolError

__all__ = ["FluidParams", "FluidResult", "simulate_fluid",
           "MultiFlowResult", "simulate_fluid_multiflow", "FluidFabric"]


@dataclass(frozen=True)
class FluidParams:
    """Inputs to the fluid model."""

    bottleneck_bps: float       # payload rate of the bottleneck circuit
    base_rtt_s: float           # propagation + fixed processing
    mss: int                    # segment payload bytes
    max_window_bytes: float     # socket-buffer cap on the window
    queue_packets: int = 1024   # bottleneck drop-tail queue
    initial_window_segments: float = 2.0
    ssthresh_segments: float = float("inf")

    def __post_init__(self) -> None:
        if self.bottleneck_bps <= 0 or self.base_rtt_s <= 0:
            raise ProtocolError("bottleneck rate and RTT must be positive")
        if self.mss <= 0:
            raise ProtocolError("MSS must be positive")
        if self.max_window_bytes <= 0:
            raise ProtocolError("window cap must be positive")
        if self.queue_packets < 1:
            raise ProtocolError("queue must hold at least one packet")

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the path."""
        return self.bottleneck_bps * self.base_rtt_s / 8.0

    @property
    def bdp_segments(self) -> float:
        """BDP in segments."""
        return self.bdp_bytes / self.mss

    @property
    def capacity_pps(self) -> float:
        """Bottleneck service rate in segments/s."""
        return self.bottleneck_bps / (8.0 * self.mss)


@dataclass(frozen=True)
class FluidResult:
    """Time series and aggregates of one fluid run."""

    time_s: np.ndarray
    window_segments: np.ndarray
    queue_packets: np.ndarray
    throughput_bps: np.ndarray
    losses: int
    mean_throughput_bps: float

    @property
    def mean_throughput_gbps(self) -> float:
        """Average goodput in Gb/s."""
        return self.mean_throughput_bps / 1e9

    def bytes_transferred(self) -> float:
        """Total payload moved during the run."""
        if len(self.time_s) < 2:
            return 0.0
        dt = np.diff(self.time_s)
        return float(np.dot(self.throughput_bps[:-1], dt) / 8.0)


def simulate_fluid(params: FluidParams, duration_s: float,
                   warmup_s: float = 0.0,
                   force_loss_at_s: Optional[float] = None) -> FluidResult:
    """Iterate the fluid model for ``duration_s``.

    ``force_loss_at_s`` injects one loss event at the given time — the
    Table 1 experiment (recovery from a single packet loss).
    ``warmup_s`` excludes the slow-start ramp from the mean throughput.
    """
    if duration_s <= 0:
        raise ProtocolError("duration must be positive")
    cap_w = params.max_window_bytes / params.mss
    c_pps = params.capacity_pps
    q_cap = float(params.queue_packets)

    # time steps of base_rtt / 4 keep queue dynamics smooth
    max_steps = int(duration_s / (params.base_rtt_s / 4.0)) + 2
    t = np.zeros(max_steps)
    w = np.zeros(max_steps)
    q = np.zeros(max_steps)
    thr = np.zeros(max_steps)

    w_now = min(params.initial_window_segments, cap_w)
    q_now = 0.0
    ssthresh = params.ssthresh_segments
    losses = 0
    forced_pending = force_loss_at_s is not None
    now = 0.0
    i = 0
    while now < duration_s and i < max_steps:
        rtt_eff = params.base_rtt_s + q_now / c_pps
        dt = rtt_eff / 4.0
        rate_pps = min(w_now / rtt_eff, 4.0 * c_pps)
        # queue integrates the excess arrival
        q_now = max(0.0, q_now + (rate_pps - c_pps) * dt)
        served_pps = min(rate_pps, c_pps) if q_now <= 0 else c_pps
        t[i] = now
        w[i] = w_now
        q[i] = min(q_now, q_cap)
        thr[i] = served_pps * params.mss * 8.0

        lost = q_now > q_cap
        if forced_pending and now >= force_loss_at_s:
            lost = True
            forced_pending = False
        if lost:
            losses += 1
            ssthresh = max(w_now / 2.0, 2.0)
            w_now = ssthresh
            q_now = min(q_now, q_cap)
        else:
            # growth per dt, scaled from per-RTT increments
            frac = dt / rtt_eff
            if w_now < ssthresh:
                w_now += w_now * frac          # slow start: x2 per RTT
            else:
                w_now += 1.0 * frac            # avoidance: +1 per RTT
            w_now = min(w_now, cap_w)
        now += dt
        i += 1

    t, w, q, thr = t[:i], w[:i], q[:i], thr[:i]
    mask = t >= warmup_s
    mean = float(thr[mask].mean()) if mask.any() else float(thr.mean())
    return FluidResult(time_s=t, window_segments=w, queue_packets=q,
                       throughput_bps=thr, losses=losses,
                       mean_throughput_bps=mean)


@dataclass(frozen=True)
class MultiFlowResult:
    """Aggregates of an N-flow fluid run.

    Attributes
    ----------
    n_flows:
        Number of simulated flows (>= 1).
    time_s:
        Sample instants, shape ``(steps,)``; spacing adapts to the
        effective RTT like :class:`FluidResult`'s.
    windows_segments:
        Per-flow congestion windows in segments, shape
        ``(steps, n_flows)``; 0.0 for a flow that has not started yet
        (the ``stagger_s`` ramp).
    aggregate_throughput_bps:
        Aggregate served payload rate at each sample, shape
        ``(steps,)``.
    losses:
        Total drop-tail loss events over the run (each event halves
        exactly one flow — the one with the largest window).
    mean_aggregate_bps:
        Mean of ``aggregate_throughput_bps`` over the post-``warmup_s``
        samples (all samples when the warmup excludes everything).
    fairness:
        Jain's fairness index over the flows' post-warmup mean windows:
        1.0 for a perfectly even split, ``1/n_flows`` when one flow
        holds everything.
    """

    n_flows: int
    time_s: np.ndarray
    windows_segments: np.ndarray        # shape (steps, n_flows)
    aggregate_throughput_bps: np.ndarray
    losses: int
    mean_aggregate_bps: float
    fairness: float                      # Jain's index over mean windows

    @property
    def mean_aggregate_gbps(self) -> float:
        """Average aggregate goodput in Gb/s."""
        return self.mean_aggregate_bps / 1e9


def simulate_fluid_multiflow(params: FluidParams, n_flows: int,
                             duration_s: float,
                             warmup_s: float = 0.0,
                             stagger_s: float = 0.5) -> MultiFlowResult:
    """N parallel AIMD flows sharing the bottleneck (fluid model).

    The Internet2 LSR had single- and multi-stream categories (the
    paper's record "smashed both"); multi-stream transfers were the
    practical workaround for Table 1's recovery times — each flow only
    needs 1/N of the window, so a loss halves 1/N of the aggregate and
    regrows N times faster.

    ``max_window_bytes`` in ``params`` is the *per-flow* cap.
    ``stagger_s`` desynchronises slow-start (flow *i* starts at
    ``i * stagger_s``); a drop-tail loss hits the flow with the largest
    window (the one overdriving the queue).
    """
    if n_flows < 1:
        raise ProtocolError("need at least one flow")
    if duration_s <= 0:
        raise ProtocolError("duration must be positive")
    cap_w = params.max_window_bytes / params.mss
    c_pps = params.capacity_pps
    q_cap = float(params.queue_packets)

    dt_base = params.base_rtt_s / 4.0
    max_steps = int(duration_s / dt_base) + 2
    t = np.zeros(max_steps)
    w = np.zeros((max_steps, n_flows))
    agg = np.zeros(max_steps)

    w_now = np.full(n_flows, float(params.initial_window_segments))
    started = np.zeros(n_flows, dtype=bool)
    ssthresh = np.full(n_flows, params.ssthresh_segments)
    q_now = 0.0
    losses = 0
    now = 0.0
    i = 0
    while now < duration_s and i < max_steps:
        started |= now >= stagger_s * np.arange(n_flows)
        active = started
        rtt_eff = params.base_rtt_s + q_now / c_pps
        dt = rtt_eff / 4.0
        rates = np.where(active, w_now / rtt_eff, 0.0)
        total_rate = min(float(rates.sum()), 4.0 * c_pps)
        q_now = max(0.0, q_now + (total_rate - c_pps) * dt)
        served = min(total_rate, c_pps) if q_now <= 0 else c_pps
        t[i] = now
        w[i] = np.where(active, w_now, 0.0)
        agg[i] = served * params.mss * 8.0

        if q_now > q_cap:
            losses += 1
            victim = int(np.argmax(np.where(active, w_now, -1.0)))
            ssthresh[victim] = max(w_now[victim] / 2.0, 2.0)
            w_now[victim] = ssthresh[victim]
            q_now = min(q_now, q_cap)
        else:
            frac = dt / rtt_eff
            in_ss = w_now < ssthresh
            grow = np.where(in_ss, w_now * frac, frac)
            w_now = np.where(active, np.minimum(w_now + grow, cap_w),
                             w_now)
        now += dt
        i += 1

    t, w, agg = t[:i], w[:i], agg[:i]
    mask = t >= warmup_s
    mean_agg = float(agg[mask].mean()) if mask.any() else float(agg.mean())
    mean_w = w[mask].mean(axis=0) if mask.any() else w.mean(axis=0)
    denom = n_flows * float((mean_w ** 2).sum())
    fairness = float(mean_w.sum() ** 2 / denom) if denom > 0 else 1.0
    return MultiFlowResult(n_flows=n_flows, time_s=t,
                           windows_segments=w,
                           aggregate_throughput_bps=agg,
                           losses=losses,
                           mean_aggregate_bps=mean_agg,
                           fairness=fairness)


class FluidFabric:
    """Steppable, vectorised N-flow fluid model over a fabric of links.

    Where :func:`simulate_fluid_multiflow` runs to completion against a
    single bottleneck, a :class:`FluidFabric` holds *per-link* NumPy
    state (queue occupancy, capacity, drop-tail limit) for an arbitrary
    directed fabric and advances it one :meth:`step` at a time, so a
    discrete-event simulation can interleave with it on a coarse tick
    (the hybrid fluid+DES mode of :mod:`repro.net.hybrid`):

    * the DES injects its measured foreground rates via
      :meth:`set_cross_traffic` — fluid flows then compete for the
      *remaining* capacity of every link;
    * after each step the DES reads :attr:`link_utilization` (fluid
      share of each link) and :attr:`link_drop_prob` (fluid-induced
      overflow probability) and applies them to its own queues — the
      conservative half of the handoff.

    Flow dynamics are the module's AIMD arithmetic, vectorised over
    flows with ``np.add.reduceat`` route sums: rate = W/RTT_eff with
    RTT_eff = base RTT + sum of queueing delays along the route; losses
    are modelled by per-flow *loss pressure* (expected dropped packets
    integrated along the route) — a flow halves when its pressure
    reaches one packet, which desynchronises the flows the way per-flow
    drop-tail hits do.

    Parameters
    ----------
    link_capacity_pps:
        Per-link service rate in packets/s, shape ``(L,)``.
    link_queue_packets:
        Per-link drop-tail queue limit in packets, shape ``(L,)``.
    routes:
        One link-index sequence per flow (each non-empty; indices into
        the link arrays) — e.g. from
        :meth:`repro.net.fabric.FabricTopology.route`.
    base_rtt_s:
        Propagation+processing RTT per flow: scalar or shape ``(n,)``.
    mss:
        Segment payload bytes (shared by all flows).
    max_window_segments:
        Socket-buffer window cap per flow: scalar or shape ``(n,)``.
    start_times:
        Optional per-flow start instants (seconds, relative to the
        fabric's clock); flows are idle before their start.
    """

    def __init__(self, link_capacity_pps: Sequence[float],
                 link_queue_packets: Sequence[float],
                 routes: Sequence[Sequence[int]],
                 base_rtt_s,
                 mss: int,
                 max_window_segments,
                 start_times: Optional[Sequence[float]] = None,
                 initial_window_segments: float = 2.0):
        cap = np.asarray(link_capacity_pps, dtype=float)
        qcap = np.asarray(link_queue_packets, dtype=float)
        if cap.ndim != 1 or cap.size == 0:
            raise ProtocolError("need at least one link")
        if np.any(cap <= 0):
            raise ProtocolError("link capacities must be positive")
        if qcap.shape != cap.shape or np.any(qcap < 1):
            raise ProtocolError("every link queue must hold at least one packet")
        if not routes:
            raise ProtocolError("need at least one flow")
        if mss <= 0:
            raise ProtocolError("MSS must be positive")
        n = len(routes)
        L = cap.size
        lens = np.array([len(r) for r in routes], dtype=np.intp)
        if np.any(lens == 0):
            raise ProtocolError("every flow needs a non-empty route")
        link_of = np.concatenate([np.asarray(r, dtype=np.intp)
                                  for r in routes])
        if link_of.min() < 0 or link_of.max() >= L:
            raise ProtocolError("route refers to an unknown link index")
        self.n_flows = n
        self.n_links = L
        self.mss = int(mss)
        self._cap = cap
        self._qcap = qcap
        self._link_of = link_of
        self._flow_of = np.repeat(np.arange(n, dtype=np.intp), lens)
        # reduceat offsets: start of each flow's slice in link_of
        self._offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
        base = np.broadcast_to(np.asarray(base_rtt_s, dtype=float), (n,)).copy()
        if np.any(base <= 0):
            raise ProtocolError("base RTT must be positive")
        wmax = np.broadcast_to(np.asarray(max_window_segments, dtype=float),
                               (n,)).copy()
        if np.any(wmax <= 0):
            raise ProtocolError("window cap must be positive")
        if initial_window_segments <= 0:
            raise ProtocolError("initial window must be positive")
        self._base_rtt = base
        self._wmax = wmax
        self._start = (np.zeros(n) if start_times is None
                       else np.asarray(start_times, dtype=float).copy())
        if self._start.shape != (n,) or np.any(self._start < 0):
            raise ProtocolError("start times must be one non-negative value "
                                "per flow")
        self._w = np.minimum(np.full(n, float(initial_window_segments)), wmax)
        self._ssthresh = np.full(n, np.inf)
        self._pressure = np.zeros(n)
        self._q = np.zeros(L)
        self._cross = np.zeros(L)
        self.now = 0.0
        self.losses = 0
        self.delivered_bits = np.zeros(n)
        # per-step diagnostics consumed by the DES coupler
        self.link_arrival_pps = np.zeros(L)
        self.link_utilization = np.zeros(L)
        self.link_drop_prob = np.zeros(L)

    # -- DES handoff --------------------------------------------------------
    def set_cross_traffic(self, pps: Sequence[float]) -> None:
        """Install the DES foreground rate (packets/s) per link.

        Fluid flows see ``capacity - cross`` as the service rate of each
        link until the next call — the conservative sharing rule: the
        packet-level traffic is real, the fluid traffic yields.
        """
        cross = np.asarray(pps, dtype=float)
        if cross.shape != (self.n_links,):
            raise ProtocolError(
                f"cross traffic needs one rate per link "
                f"({self.n_links}), got shape {cross.shape}")
        np.clip(cross, 0.0, None, out=self._cross)

    @property
    def queue_packets(self) -> np.ndarray:
        """Current fluid queue occupancy per link (packets)."""
        return self._q

    @property
    def windows_segments(self) -> np.ndarray:
        """Current per-flow congestion windows (segments)."""
        return self._w

    def aggregate_delivered_bits(self) -> float:
        """Total payload bits delivered by all fluid flows so far."""
        return float(self.delivered_bits.sum())

    # -- dynamics -----------------------------------------------------------
    def step(self, dt: float) -> None:
        """Advance the fluid state by ``dt`` seconds.

        Internally substeps at ~half the smallest base RTT so window
        growth and queue integration stay smooth however coarse the
        coupling tick is.
        """
        if dt <= 0:
            raise ProtocolError("step duration must be positive")
        substeps = max(1, int(np.ceil(dt / (self._base_rtt.min() / 2.0))))
        sub = dt / substeps
        cap = self._cap
        qcap = self._qcap
        link_of = self._link_of
        flow_of = self._flow_of
        offsets = self._offsets
        free = np.maximum(cap - self._cross, 0.02 * cap)
        arr_acc = np.zeros(self.n_links)
        drop_acc = np.zeros(self.n_links)
        for _ in range(substeps):
            active = self._start <= self.now
            qdelay = self._q / cap
            rtt = self._base_rtt + np.add.reduceat(qdelay[link_of], offsets)
            rates = np.where(active, self._w / rtt, 0.0)
            arrivals = np.bincount(link_of, weights=rates[flow_of],
                                   minlength=self.n_links)
            self._q += (arrivals - free) * sub
            np.clip(self._q, 0.0, None, out=self._q)
            excess = self._q - qcap
            np.clip(excess, 0.0, None, out=excess)
            np.minimum(self._q, qcap, out=self._q)
            # per-link drop fraction over this substep
            arriving_pkts = arrivals * sub
            p = np.where(excess > 0.0,
                         excess / np.maximum(arriving_pkts, 1e-12), 0.0)
            np.clip(p, 0.0, 0.95, out=p)
            # expected losses per flow along its route
            psum = np.add.reduceat(p[link_of], offsets)
            self._pressure += rates * sub * psum
            halve = active & (self._pressure >= 1.0)
            if halve.any():
                self.losses += int(halve.sum())
                self._ssthresh = np.where(
                    halve, np.maximum(self._w / 2.0, 2.0), self._ssthresh)
                self._w = np.where(halve, self._ssthresh, self._w)
                self._pressure = np.where(halve, 0.0, self._pressure)
            frac = sub / rtt
            grow = np.where(self._w < self._ssthresh, self._w * frac, frac)
            self._w = np.where(active & ~halve,
                               np.minimum(self._w + grow, self._wmax),
                               self._w)
            goodput = rates * np.maximum(1.0 - psum, 0.0)
            self.delivered_bits += goodput * self.mss * 8.0 * sub
            arr_acc += arrivals
            drop_acc += p
            self.now += sub
        self.link_arrival_pps = arr_acc / substeps
        served = np.minimum(self.link_arrival_pps, free)
        self.link_utilization = np.clip(served / cap, 0.0, 0.95)
        self.link_drop_prob = np.clip(drop_acc / substeps, 0.0, 0.95)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FluidFabric flows={self.n_flows} links={self.n_links} "
                f"now={self.now:.6f}>")
