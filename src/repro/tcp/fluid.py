"""Fluid AIMD model of a single TCP flow over a bottleneck (for WAN runs).

Packet-level simulation of an hour-long, 54-MB-window transatlantic flow
is wasteful; the §4 dynamics (slow start, congestion avoidance, queue
build-up at the OC-48, drop-tail loss, AIMD recovery) are faithfully
captured by the classic fluid model iterated per RTT:

* sending rate = W / RTT_eff, RTT_eff = base RTT + queue/C,
* queue integrates (rate - C), loss when the queue exceeds its capacity,
* W: x2 per RTT in slow start, +1 per RTT in avoidance, halved on loss,
* W capped by the socket-buffer window (the paper's tuning instrument:
  "we turn to the flow-control window to implicitly cap the
  congestion-window size to the bandwidth-delay product").

Arrays are preallocated and the loop is scalar-light, per the
HPC-Python guidance; a 10,000-RTT run costs milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ProtocolError

__all__ = ["FluidParams", "FluidResult", "simulate_fluid",
           "MultiFlowResult", "simulate_fluid_multiflow"]


@dataclass(frozen=True)
class FluidParams:
    """Inputs to the fluid model."""

    bottleneck_bps: float       # payload rate of the bottleneck circuit
    base_rtt_s: float           # propagation + fixed processing
    mss: int                    # segment payload bytes
    max_window_bytes: float     # socket-buffer cap on the window
    queue_packets: int = 1024   # bottleneck drop-tail queue
    initial_window_segments: float = 2.0
    ssthresh_segments: float = float("inf")

    def __post_init__(self) -> None:
        if self.bottleneck_bps <= 0 or self.base_rtt_s <= 0:
            raise ProtocolError("bottleneck rate and RTT must be positive")
        if self.mss <= 0:
            raise ProtocolError("MSS must be positive")
        if self.max_window_bytes <= 0:
            raise ProtocolError("window cap must be positive")
        if self.queue_packets < 1:
            raise ProtocolError("queue must hold at least one packet")

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the path."""
        return self.bottleneck_bps * self.base_rtt_s / 8.0

    @property
    def bdp_segments(self) -> float:
        """BDP in segments."""
        return self.bdp_bytes / self.mss

    @property
    def capacity_pps(self) -> float:
        """Bottleneck service rate in segments/s."""
        return self.bottleneck_bps / (8.0 * self.mss)


@dataclass(frozen=True)
class FluidResult:
    """Time series and aggregates of one fluid run."""

    time_s: np.ndarray
    window_segments: np.ndarray
    queue_packets: np.ndarray
    throughput_bps: np.ndarray
    losses: int
    mean_throughput_bps: float

    @property
    def mean_throughput_gbps(self) -> float:
        """Average goodput in Gb/s."""
        return self.mean_throughput_bps / 1e9

    def bytes_transferred(self) -> float:
        """Total payload moved during the run."""
        if len(self.time_s) < 2:
            return 0.0
        dt = np.diff(self.time_s)
        return float(np.dot(self.throughput_bps[:-1], dt) / 8.0)


def simulate_fluid(params: FluidParams, duration_s: float,
                   warmup_s: float = 0.0,
                   force_loss_at_s: Optional[float] = None) -> FluidResult:
    """Iterate the fluid model for ``duration_s``.

    ``force_loss_at_s`` injects one loss event at the given time — the
    Table 1 experiment (recovery from a single packet loss).
    ``warmup_s`` excludes the slow-start ramp from the mean throughput.
    """
    if duration_s <= 0:
        raise ProtocolError("duration must be positive")
    cap_w = params.max_window_bytes / params.mss
    c_pps = params.capacity_pps
    q_cap = float(params.queue_packets)

    # time steps of base_rtt / 4 keep queue dynamics smooth
    max_steps = int(duration_s / (params.base_rtt_s / 4.0)) + 2
    t = np.zeros(max_steps)
    w = np.zeros(max_steps)
    q = np.zeros(max_steps)
    thr = np.zeros(max_steps)

    w_now = min(params.initial_window_segments, cap_w)
    q_now = 0.0
    ssthresh = params.ssthresh_segments
    losses = 0
    forced_pending = force_loss_at_s is not None
    now = 0.0
    i = 0
    while now < duration_s and i < max_steps:
        rtt_eff = params.base_rtt_s + q_now / c_pps
        dt = rtt_eff / 4.0
        rate_pps = min(w_now / rtt_eff, 4.0 * c_pps)
        # queue integrates the excess arrival
        q_now = max(0.0, q_now + (rate_pps - c_pps) * dt)
        served_pps = min(rate_pps, c_pps) if q_now <= 0 else c_pps
        t[i] = now
        w[i] = w_now
        q[i] = min(q_now, q_cap)
        thr[i] = served_pps * params.mss * 8.0

        lost = q_now > q_cap
        if forced_pending and now >= force_loss_at_s:
            lost = True
            forced_pending = False
        if lost:
            losses += 1
            ssthresh = max(w_now / 2.0, 2.0)
            w_now = ssthresh
            q_now = min(q_now, q_cap)
        else:
            # growth per dt, scaled from per-RTT increments
            frac = dt / rtt_eff
            if w_now < ssthresh:
                w_now += w_now * frac          # slow start: x2 per RTT
            else:
                w_now += 1.0 * frac            # avoidance: +1 per RTT
            w_now = min(w_now, cap_w)
        now += dt
        i += 1

    t, w, q, thr = t[:i], w[:i], q[:i], thr[:i]
    mask = t >= warmup_s
    mean = float(thr[mask].mean()) if mask.any() else float(thr.mean())
    return FluidResult(time_s=t, window_segments=w, queue_packets=q,
                       throughput_bps=thr, losses=losses,
                       mean_throughput_bps=mean)


@dataclass(frozen=True)
class MultiFlowResult:
    """Aggregates of an N-flow fluid run."""

    n_flows: int
    time_s: np.ndarray
    windows_segments: np.ndarray        # shape (steps, n_flows)
    aggregate_throughput_bps: np.ndarray
    losses: int
    mean_aggregate_bps: float
    fairness: float                      # Jain's index over mean windows

    @property
    def mean_aggregate_gbps(self) -> float:
        """Average aggregate goodput in Gb/s."""
        return self.mean_aggregate_bps / 1e9


def simulate_fluid_multiflow(params: FluidParams, n_flows: int,
                             duration_s: float,
                             warmup_s: float = 0.0,
                             stagger_s: float = 0.5) -> MultiFlowResult:
    """N parallel AIMD flows sharing the bottleneck (fluid model).

    The Internet2 LSR had single- and multi-stream categories (the
    paper's record "smashed both"); multi-stream transfers were the
    practical workaround for Table 1's recovery times — each flow only
    needs 1/N of the window, so a loss halves 1/N of the aggregate and
    regrows N times faster.

    ``max_window_bytes`` in ``params`` is the *per-flow* cap.
    ``stagger_s`` desynchronises slow-start (flow *i* starts at
    ``i * stagger_s``); a drop-tail loss hits the flow with the largest
    window (the one overdriving the queue).
    """
    if n_flows < 1:
        raise ProtocolError("need at least one flow")
    if duration_s <= 0:
        raise ProtocolError("duration must be positive")
    cap_w = params.max_window_bytes / params.mss
    c_pps = params.capacity_pps
    q_cap = float(params.queue_packets)

    dt_base = params.base_rtt_s / 4.0
    max_steps = int(duration_s / dt_base) + 2
    t = np.zeros(max_steps)
    w = np.zeros((max_steps, n_flows))
    agg = np.zeros(max_steps)

    w_now = np.full(n_flows, float(params.initial_window_segments))
    started = np.zeros(n_flows, dtype=bool)
    ssthresh = np.full(n_flows, params.ssthresh_segments)
    q_now = 0.0
    losses = 0
    now = 0.0
    i = 0
    while now < duration_s and i < max_steps:
        started |= now >= stagger_s * np.arange(n_flows)
        active = started
        rtt_eff = params.base_rtt_s + q_now / c_pps
        dt = rtt_eff / 4.0
        rates = np.where(active, w_now / rtt_eff, 0.0)
        total_rate = min(float(rates.sum()), 4.0 * c_pps)
        q_now = max(0.0, q_now + (total_rate - c_pps) * dt)
        served = min(total_rate, c_pps) if q_now <= 0 else c_pps
        t[i] = now
        w[i] = np.where(active, w_now, 0.0)
        agg[i] = served * params.mss * 8.0

        if q_now > q_cap:
            losses += 1
            victim = int(np.argmax(np.where(active, w_now, -1.0)))
            ssthresh[victim] = max(w_now[victim] / 2.0, 2.0)
            w_now[victim] = ssthresh[victim]
            q_now = min(q_now, q_cap)
        else:
            frac = dt / rtt_eff
            in_ss = w_now < ssthresh
            grow = np.where(in_ss, w_now * frac, frac)
            w_now = np.where(active, np.minimum(w_now + grow, cap_w),
                             w_now)
        now += dt
        i += 1

    t, w, agg = t[:i], w[:i], agg[:i]
    mask = t >= warmup_s
    mean_agg = float(agg[mask].mean()) if mask.any() else float(agg.mean())
    mean_w = w[mask].mean(axis=0) if mask.any() else w.mean(axis=0)
    denom = n_flows * float((mean_w ** 2).sum())
    fairness = float(mean_w.sum() ** 2 / denom) if denom > 0 else 1.0
    return MultiFlowResult(n_flows=n_flows, time_s=t,
                           windows_segments=w,
                           aggregate_throughput_bps=agg,
                           losses=losses,
                           mean_aggregate_bps=mean_agg,
                           fairness=fairness)
