"""Closed-form models: Table 1, Figure 8 and the §3.5.1 worked example.

These are the paper's own back-of-envelope models, implemented exactly:

* ``bandwidth_delay_product`` — the ideal window.
* ``recovery_time_s`` — Table 1: after a single loss halves a
  BDP-sized congestion window, additive increase recovers one MSS-sized
  segment per RTT, so recovery takes ``(BDP / 2MSS) * RTT``.
* ``mss_aligned_window`` / ``window_efficiency`` — Figure 8: the best
  MSS-aligned window inside an ideal window, and the fraction retained.
* ``sender_receiver_mismatch`` — the worked example with sender MSS
  8960, receiver MSS 8948 and 33000 bytes of socket memory.
* ``predict_throughput_bps`` — the fluid bottleneck model used for fast
  full-resolution curves (cross-validated against the DES in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import TuningConfig
from repro.errors import ProtocolError
from repro.hw.calibration import Calibration, CostModel, DEFAULT_CALIBRATION
from repro.hw.pcix import BURST_OVERHEAD_S
from repro.hw.presets import HostSpec
from repro.oskernel.skbuff import ETH_HEADER, ETH_OVERHEAD_WIRE
from repro.tcp.mss import mss_for_mtu
from repro.tcp.window import sws_aligned, window_from_space
from repro.units import Gbps

__all__ = [
    "bandwidth_delay_product",
    "recovery_time_s",
    "mss_aligned_window",
    "window_efficiency",
    "sender_receiver_mismatch",
    "MismatchResult",
    "predict_throughput_bps",
]


def bandwidth_delay_product(rate_bps: float, rtt_s: float) -> float:
    """Ideal window in bytes for a path of ``rate_bps`` and ``rtt_s``."""
    if rate_bps <= 0 or rtt_s <= 0:
        raise ProtocolError("rate and RTT must be positive")
    return rate_bps * rtt_s / 8.0


def recovery_time_s(rate_bps: float, rtt_s: float, mss: int) -> float:
    """Table 1: time to regrow the congestion window after one loss.

    Assumes the window equalled the BDP when the packet was lost; AIMD
    halves it and then adds one segment per RTT.
    """
    if mss <= 0:
        raise ProtocolError("MSS must be positive")
    window_segments = bandwidth_delay_product(rate_bps, rtt_s) / mss
    return (window_segments / 2.0) * rtt_s


def mss_aligned_window(ideal_window: int, mss: int) -> int:
    """Figure 8: the best window achievable when it must be MSS-aligned."""
    return sws_aligned(ideal_window, mss)


def window_efficiency(ideal_window: int, mss: int) -> float:
    """Fraction of the ideal window usable under MSS alignment."""
    if ideal_window <= 0:
        raise ProtocolError("ideal window must be positive")
    return mss_aligned_window(ideal_window, mss) / ideal_window


@dataclass(frozen=True)
class MismatchResult:
    """Outcome of the §3.5.1 sender/receiver MSS mismatch example."""

    available_memory: int
    receiver_mss: int
    sender_mss: int
    advertised_window: int
    usable_window: int

    @property
    def advertised_loss(self) -> float:
        """Fraction of socket memory not advertised."""
        return 1.0 - self.advertised_window / self.available_memory

    @property
    def usable_loss(self) -> float:
        """Fraction of socket memory the sender can actually use."""
        return 1.0 - self.usable_window / self.available_memory


def sender_receiver_mismatch(available_memory: int = 33000,
                             receiver_mss: int = 8948,
                             sender_mss: int = 8960) -> MismatchResult:
    """The paper's worked example: 33000 bytes of receive memory
    advertises ``floor(33000/8948)*8948 = 26844`` (19% lost), of which
    the sender's 8960-aligned congestion window can use only
    ``floor(26844/8960)*8960 = 17920`` — nearly 50% below the memory."""
    advertised = sws_aligned(available_memory, receiver_mss)
    usable = sws_aligned(advertised, sender_mss)
    return MismatchResult(available_memory=available_memory,
                          receiver_mss=receiver_mss,
                          sender_mss=sender_mss,
                          advertised_window=advertised,
                          usable_window=usable)


# ---------------------------------------------------------------------------
# Fast fluid throughput model (full-resolution curves; DES cross-checks)
# ---------------------------------------------------------------------------

def _segment_sizes(payload: int, mss: int):
    """Per-write segment sizes (writes are flushed, never coalesced)."""
    full, rest = divmod(payload, mss)
    sizes = [mss] * full
    if rest:
        sizes.append(rest)
    return sizes


def predict_throughput_bps(spec: HostSpec, config: TuningConfig,
                           payload: int,
                           base_rtt_s: float = 45e-6,
                           wire_bps: float = Gbps(10),
                           calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Steady-state goodput of one NTTCP-style flow (fluid model).

    Takes the minimum of the competing capacities — receiver CPU, both
    hosts' PCI-X, sender CPU, the wire — and applies the window
    limitation ``W_bytes / RTT_eff`` where the usable window follows the
    truesize/SWS arithmetic of §3.5.1.  It reproduces curve *shapes*
    cheaply; absolute accuracy is the DES's job.
    """
    if payload <= 0:
        raise ProtocolError("payload must be positive")
    costs = CostModel(spec, config, calibration)
    mss = mss_for_mtu(config.mtu, config.tcp_timestamps)
    sizes = _segment_sizes(payload, mss)
    n_seg = len(sizes)
    total_payload = payload

    # per-write costs along each resource
    def frame(s: int) -> int:
        return costs.frame_bytes(s)

    rx_cpu = sum(costs.rx_irq_s() + costs.rx_segment_s(s)
                 + 0.5 * costs.rx_ack_gen_s() + costs.rx_wake_s()
                 for s in sizes)
    tx_cpu = costs.tx_syscall_s() + sum(costs.tx_segment_s(s) for s in sizes)
    pci = sum(frame(s) * 8.0 / (spec.pcix_mhz * 1e6 * 64)
              + -(-frame(s) // config.mmrbc) * BURST_OVERHEAD_S
              for s in sizes)
    wire = sum((frame(s) + ETH_OVERHEAD_WIRE) * 8.0 / wire_bps for s in sizes)
    capacity = total_payload * 8.0 / max(rx_cpu, tx_cpu, pci, wire)

    # window limitation: usable bytes in flight
    from repro.oskernel.allocator import block_size_for
    truesize = block_size_for(frame(sizes[0]))
    usable_space = window_from_space(config.tcp_rmem)
    advertised = sws_aligned(usable_space, mss + (config.mtu - mss - 40))
    if advertised <= 0:
        return 0.0
    # bytes in flight quantized to whole write-sized segments
    seg = sizes[0]
    in_flight = max(1, advertised // seg) * seg
    # sndbuf truesize limit
    wmem_segments = max(1, config.tcp_wmem // truesize)
    in_flight = min(in_flight, wmem_segments * seg)
    service = max(rx_cpu, pci) / n_seg
    rtt_eff = base_rtt_s + (in_flight / seg) * service * 0.5
    window_limit = in_flight * 8.0 / rtt_eff

    return min(capacity, window_limit)
