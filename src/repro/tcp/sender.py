"""TCP sender endpoint (discrete-event).

Implements the transmit half of the paper's stack: write() syscalls that
block on ``tcp_wmem`` (charged in truesize, like Linux), segmentation at
the effective MSS (writes are flushed, not coalesced — the NTTCP/ttcp
pattern), a packet-counted Reno congestion window, byte-counted receive
window enforcement, RTT estimation, fast retransmit and RTO recovery.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.errors import ProtocolError
from repro.net.train import train_batching_enabled
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment, Event
from repro.tcp.congestion import RenoCongestion
from repro.tcp.mss import MtuProfile
from repro.telemetry.session import active_metrics
from repro.units import ms

__all__ = ["TcpSender", "MIN_RTO_S"]

#: Linux 2.4 minimum retransmission timeout (HZ/5).
MIN_RTO_S = ms(200)

#: Largest virtual segment handed to the adapter under TSO (64 KB).
TSO_MAX_PAYLOAD = 65536 - 256


class TcpSender:
    """One direction's transmit state machine.

    Driven by application processes calling :meth:`write` and by the
    owning :class:`~repro.tcp.connection.TcpConnection` feeding ACKs into
    :meth:`on_ack_frame`.
    """

    def __init__(self, env: Environment, host, nic, conn,
                 dst_address: str, profile: MtuProfile,
                 initial_rwnd: int):
        self.env = env
        self.host = host
        self.nic = nic
        self.conn = conn
        self.dst_address = dst_address
        self.profile = profile
        self.mss = profile.effective_mss
        self.headers = profile.mtu - profile.effective_mss  # IP+TCP+opts
        self.wmem = host.config.tcp_wmem
        self.tso = host.config.tso
        self.cwnd = RenoCongestion(self.mss)
        self.rwnd_bytes = initial_rwnd
        # sequence state
        self.snd_una = 0
        self.snd_nxt = 0          # highest sequence handed to the NIC
        self.queued_seq = 0       # highest sequence accepted from the app
        self.sendq: Deque[SkBuff] = deque()
        self.inflight: "OrderedDict[int, SkBuff]" = OrderedDict()
        self.wmem_used = 0
        self._writer_waits: Deque[Event] = deque()
        self._pump_wait: Optional[Event] = None
        self._batched = train_batching_enabled()
        self._train_seq = 0       # id of the current back-to-back burst
        self.recover_point = 0  # NewReno: highest seq sent when loss seen
        # RTT estimation / RTO
        self.srtt_s: Optional[float] = None
        self.rttvar_s = 0.0
        self.rto_s = MIN_RTO_S * 5
        self._rto_armed = False
        self._rto_deadline = 0.0
        self._rto_timer_at: Optional[float] = None
        # statistics
        self.segments_sent = 0
        self.retransmitted = 0
        self.acks_received = 0
        self.first_send_time: Optional[float] = None
        self.last_ack_time: Optional[float] = None
        self.closed = False
        # instrumentation
        self._conn_label = getattr(conn, "name", None) or str(conn)
        self._last_cwnd = (0, 0.0)
        # Metric labels use the host only: connection ids are assigned
        # by a process-global counter, so per-conn labels would differ
        # between serial and forked-worker runs and break the
        # serial == parallel merged-metrics guarantee.  Per-connection
        # series live in the trace/timeline instead.
        metrics = active_metrics()
        if metrics is not None:
            label = dict(host=host.name)
            self._c_seg = metrics.counter("tcp.tx.segments", **label)
            self._c_rtx = metrics.counter("tcp.tx.retransmits", **label)
            self._c_blk = metrics.counter("tcp.tx.blocks", **label)
            self._c_rto = metrics.counter("tcp.rto.fires", **label)
            self._c_frtx = metrics.counter("tcp.fastrtx", **label)
            self._g_cwnd = metrics.gauge("tcp.cwnd.segments", **label)
            self._g_wmem = metrics.gauge("tcp.wmem.used", **label)
        else:
            self._c_seg = self._c_rtx = self._c_blk = None
            self._c_rto = self._c_frtx = None
            self._g_cwnd = self._g_wmem = None
        env.process(self._pump(), name=f"{host.name}.tcp.pump")

    # -- application interface --------------------------------------------------
    def write(self, nbytes: int):
        """Process: queue ``nbytes`` of application data (blocking on
        wmem).  Segments never span write boundaries."""
        if nbytes <= 0:
            raise ProtocolError(f"write of {nbytes} bytes")
        yield from self.host.cpu_work(self.host.costs.tx_syscall_s())
        trace = self.host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.tx.write", self._conn_label,
                       nbytes=nbytes)
            trace.post(self.env.now, "copy.tx", self._conn_label,
                       nbytes=nbytes)
        max_seg = TSO_MAX_PAYLOAD if self.tso else self.mss
        offset = 0
        while offset < nbytes:
            size = min(max_seg, nbytes - offset)
            skb = SkBuff(payload=size, headers=self.headers,
                         kind="data", seq=self.queued_seq,
                         end_seq=self.queued_seq + size, conn=self.conn,
                         meta={"dst": self.dst_address})
            while self.wmem_used + skb.truesize > self.wmem:
                if self._c_blk is not None:
                    self._c_blk.inc()
                if trace.enabled:
                    trace.post(self.env.now, "tcp.tx.block",
                               self._conn_label, wmem_used=self.wmem_used)
                ev = self.env.event()
                self._writer_waits.append(ev)
                yield ev
            self.wmem_used += skb.truesize
            if self._g_wmem is not None:
                self._g_wmem.set_max(self.wmem_used)
            if trace.enabled:
                trace.post(self.env.now, "skbuff.wmem.charge", skb.ident,
                           truesize=skb.truesize, wmem_used=self.wmem_used)
            self.queued_seq += size
            self.sendq.append(skb)
            offset += size
            self._kick_pump()

    @property
    def bytes_in_flight(self) -> int:
        """Unacknowledged bytes on the wire."""
        return self.snd_nxt - self.snd_una

    @property
    def all_acked(self) -> bool:
        """True when everything written has been acknowledged."""
        return not self.sendq and self.snd_una == self.queued_seq

    # -- transmit pump -----------------------------------------------------------
    def _can_send(self) -> bool:
        if not self.sendq:
            return False
        if len(self.inflight) >= self.cwnd.cwnd_segments:
            return False
        head = self.sendq[0]
        return self.bytes_in_flight + head.payload <= self.rwnd_bytes

    def _kick_pump(self) -> None:
        if self._pump_wait is not None and not self._pump_wait.triggered:
            ev, self._pump_wait = self._pump_wait, None
            ev.succeed()

    def _pump(self):
        env = self.env
        costs = self.host.costs
        while True:
            if not self._can_send():
                while not self._can_send():
                    ev = env.event()
                    self._pump_wait = ev
                    yield ev
                # Every blocked->sending transition opens a new burst;
                # segments pumped back-to-back share the train id.
                self._train_seq += 1
            skb = self.sendq.popleft()
            skb.meta["train"] = self._train_seq
            self.inflight[skb.seq] = skb
            self.snd_nxt = max(self.snd_nxt, skb.end_seq)
            yield from self.host.cpu_work(costs.tx_segment_s(skb.payload))
            skb.sent_at = env.now
            if self.first_send_time is None:
                self.first_send_time = env.now
            self.segments_sent += 1
            if self._c_seg is not None:
                self._c_seg.inc()
            yield self.nic.enqueue(skb)
            trace = self.host.trace
            if trace.enabled:
                trace.post(env.now, "tcp.tx.segment", skb.ident,
                           seq=skb.seq, len=skb.payload,
                           conn=self._conn_label)
            self._note_cwnd()
            self._arm_rto()

    def _note_cwnd(self) -> None:
        """Record congestion-window changes (trace point + gauge)."""
        state = (self.cwnd.cwnd_segments, self.cwnd.ssthresh)
        if state == self._last_cwnd:
            return
        self._last_cwnd = state
        if self._g_cwnd is not None:
            self._g_cwnd.set_max(state[0])
        trace = self.host.trace
        if trace.enabled:
            ssthresh = state[1]
            trace.post(self.env.now, "tcp.cwnd.update", self._conn_label,
                       conn=self._conn_label, cwnd=state[0],
                       ssthresh=(-1 if ssthresh == float("inf")
                                 else ssthresh),
                       phase=("recovery" if self.cwnd.in_recovery
                              else "slow-start" if self.cwnd.in_slow_start
                              else "avoidance"))

    # -- ACK path ---------------------------------------------------------------
    def on_ack_frame(self, skb: SkBuff, batch: int = 1) -> None:
        """An ACK arrived at this host (called from interrupt dispatch)."""
        if self._batched:
            # One zero-delay hop (the legacy process-spawn init event),
            # then an arithmetic CPU charge chained into the ACK logic.
            self.env.schedule_call(0.0, self._ack_charge, skb)
            return
        self.env.process(self._process_ack(skb),
                         name=f"{self.host.name}.tcp.ack")

    def _process_ack(self, skb: SkBuff):
        yield from self.host.cpu_work(self.host.costs.tx_ack_rx_s())
        self._ack_done(skb)

    def _ack_charge(self, skb: SkBuff) -> None:
        env = self.env
        end = self.host.cpu.charge(self.host.costs.tx_ack_rx_s())
        if end <= env._now:
            self._ack_done(skb)
        else:
            env.schedule_call(end - env._now, self._ack_done, skb)

    def _ack_done(self, skb: SkBuff) -> None:
        self.acks_received += 1
        new_window = skb.meta.get("win", self.rwnd_bytes)
        window_changed = new_window != self.rwnd_bytes
        self.rwnd_bytes = new_window
        sack_blocks = skb.meta.get("sack")
        if sack_blocks:
            self._mark_sacked(sack_blocks)
        ack = skb.ack
        if ack > self.snd_una:
            self._advance_una(ack)
        elif (ack == self.snd_una and self.inflight
              and not window_changed and skb.payload == 0):
            if self.cwnd.on_dupack():
                self.recover_point = self.snd_nxt
                if self._c_frtx is not None:
                    self._c_frtx.inc()
                trace = self.host.trace
                if trace.enabled:
                    trace.post(self.env.now, "tcp.fastrtx",
                               self._conn_label, una=self.snd_una)
                self._retransmit_head()
        self._note_cwnd()
        self._kick_pump()

    def _advance_una(self, ack: int) -> None:
        self.snd_una = ack
        self.last_ack_time = self.env.now
        acked_segments = 0
        freed = 0
        while self.inflight:
            seq, head = next(iter(self.inflight.items()))
            if head.end_seq > ack:
                break
            self.inflight.popitem(last=False)
            acked_segments += 1
            freed += head.truesize
            if not head.meta.get("retransmit") and head.sent_at > 0:
                self._update_rtt(self.env.now - head.sent_at)
        self.cwnd.on_ack(acked_segments)
        if self.cwnd.in_recovery:
            if ack >= self.recover_point:
                self.cwnd.exit_recovery()
            elif self.inflight:
                # NewReno partial ACK: the next hole is also lost
                self._retransmit_head()
        if freed:
            self.wmem_used -= freed
            while self._writer_waits:
                self._writer_waits.popleft().succeed()
        if self.inflight or self.sendq:
            self._arm_rto(force=True)
        else:
            self._rto_armed = False

    # -- loss recovery ------------------------------------------------------------
    def _mark_sacked(self, blocks) -> None:
        """RFC 2018 scoreboard: segments covered by a SACK block are
        not retransmitted."""
        for skb in self.inflight.values():
            if skb.meta.get("sacked"):
                continue
            for start, end in blocks:
                if start <= skb.seq and skb.end_seq <= end:
                    skb.meta["sacked"] = True
                    break

    def _retransmit_head(self) -> None:
        head = None
        for skb in self.inflight.values():
            if not skb.meta.get("sacked"):
                head = skb
                break
        if head is None:
            return
        clone = head.copy_for_retransmit()
        clone.meta["dst"] = self.dst_address
        self.retransmitted += 1
        self.env.process(self._send_retransmit(clone),
                         name=f"{self.host.name}.tcp.rexmit")

    def _send_retransmit(self, skb: SkBuff):
        yield from self.host.cpu_work(self.host.costs.tx_segment_s(skb.payload))
        skb.sent_at = self.env.now
        if self._c_rtx is not None:
            self._c_rtx.inc()
        yield self.nic.enqueue(skb)
        trace = self.host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.tx.retransmit", skb.ident,
                       seq=skb.seq, len=skb.payload, conn=self._conn_label)

    def _update_rtt(self, sample_s: float) -> None:
        if self.srtt_s is None:
            self.srtt_s = sample_s
            self.rttvar_s = sample_s / 2.0
        else:
            delta = sample_s - self.srtt_s
            self.srtt_s += delta / 8.0
            self.rttvar_s += (abs(delta) - self.rttvar_s) / 4.0
        self.rto_s = max(MIN_RTO_S, self.srtt_s + 4.0 * self.rttvar_s)

    def _arm_rto(self, force: bool = False) -> None:
        if self._rto_armed and not force:
            return
        self._rto_armed = True
        self._rto_deadline = self.env._now + self.rto_s
        self._ensure_rto_timer()

    def _ensure_rto_timer(self) -> None:
        # Lazy timer: re-arming on every ACK only moves ``_rto_deadline``
        # forward; one outstanding event at or before the deadline
        # relays itself there instead of pushing a fresh 200 ms-out
        # event per ACK that a busy flow would immediately orphan.
        if (self._rto_timer_at is not None
                and self._rto_timer_at <= self._rto_deadline):
            return
        self._rto_timer_at = self._rto_deadline
        self.env.schedule_call_at(self._rto_deadline, self._on_rto_timer,
                                  self._rto_deadline)

    def _on_rto_timer(self, timer_at: float) -> None:
        if timer_at == self._rto_timer_at:
            self._rto_timer_at = None
        if not self._rto_armed or self.closed:
            return
        if self.env._now < self._rto_deadline:
            # stale early timer: relay to the live deadline
            self._ensure_rto_timer()
            return
        if not self.inflight:
            self._rto_armed = False
            return
        self.cwnd.on_timeout()
        if self._c_rto is not None:
            self._c_rto.inc()
        trace = self.host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.rto.fire", self._conn_label,
                       una=self.snd_una, rto_s=self.rto_s)
        self.recover_point = self.snd_nxt
        self.rto_s = min(self.rto_s * 2.0, 60.0)
        self._note_cwnd()
        self._retransmit_head()
        self._arm_rto(force=True)
