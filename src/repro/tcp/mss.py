"""MSS arithmetic, including the receiver-estimate quirk of §3.5.1.

Loosely speaking, MSS = MTU - packet headers (paper footnote 4).  Two
subtleties the paper leans on:

* TCP timestamps consume 12 option bytes from every segment, so the
  *effective* sender MSS is ``mtu - 40 - 12`` with timestamps on; and
* "the sender's MSS is not necessarily equal to the receiver's MSS":
  the receiver *estimates* the peer MSS (for window alignment) from the
  advertised value ``mtu - 40`` without accounting for options —
  "apparently a result of how the receiver estimates the sender's MSS
  and might well be an implementation bug".  The worked example in
  §3.5.1 uses sender MSS 8960 vs receiver MSS 8948.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.oskernel.skbuff import IP_HEADER, TCP_HEADER, TCP_TIMESTAMP_OPT

__all__ = ["mss_for_mtu", "advertised_mss", "MtuProfile"]


def advertised_mss(mtu: int) -> int:
    """The MSS a host advertises in its SYN: MTU minus bare IP+TCP."""
    mss = mtu - IP_HEADER - TCP_HEADER
    if mss <= 0:
        raise ProtocolError(f"MTU {mtu} leaves no room for payload")
    return mss


def mss_for_mtu(mtu: int, timestamps: bool) -> int:
    """The payload bytes a data segment actually carries."""
    mss = advertised_mss(mtu) - (TCP_TIMESTAMP_OPT if timestamps else 0)
    if mss <= 0:
        raise ProtocolError(f"MTU {mtu} leaves no room for payload")
    return mss


@dataclass(frozen=True)
class MtuProfile:
    """The MSS view of one connection end.

    Attributes
    ----------
    mtu:
        Interface MTU.
    timestamps:
        Whether the timestamp option is in use.
    mismatch_quirk:
        When True (the Linux-2.4 behaviour the paper observed), the
        window-alignment MSS is the peer's *advertised* value (no option
        adjustment), producing the 8960-vs-8948 mismatch of §3.5.1.
    """

    mtu: int
    timestamps: bool
    mismatch_quirk: bool = True

    @property
    def effective_mss(self) -> int:
        """Payload bytes per full segment sent by this end."""
        return mss_for_mtu(self.mtu, self.timestamps)

    @property
    def advertised(self) -> int:
        """MSS value this end advertises."""
        return advertised_mss(self.mtu)

    def alignment_mss(self, peer_advertised: int) -> int:
        """The MSS this end uses for MSS-aligning its windows.

        With the quirk, that is the peer's advertised MSS (too large by
        the option bytes); without it, the true effective segment size.
        """
        if self.mismatch_quirk:
            return min(peer_advertised, self.advertised)
        return min(peer_advertised - (TCP_TIMESTAMP_OPT if self.timestamps else 0),
                   self.effective_mss)
