"""TCP window arithmetic: SWS avoidance, scaling, truesize accounting.

This module implements the mechanisms §3.5.1 of the paper analyses:

* Linux keeps the advertised window **MSS-aligned** (SWS avoidance,
  RFC 813): ``advertised = (available // MSS) * MSS`` — footnote 6.
* The advertisable space is a *fraction* of the socket buffer
  (``tcp_adv_win_scale``: win = space - space/4), the rest absorbing
  sk_buff overhead.
* Socket memory is charged in **truesize** (power-of-two blocks), so a
  9000-byte MTU burns 16 KB of window budget per 9 KB segment — the
  hidden cost behind the stock-configuration dips of Fig. 3.
* With window scaling, the advertised value loses precision: the wire
  field is ``win >> wscale`` — "the accuracy of the window diminishes as
  the scaling factor increases".
* The advertised right edge never retreats (a TCP MUST).
"""

from __future__ import annotations

from repro.errors import ProtocolError

__all__ = ["sws_aligned", "window_from_space", "window_scale_for",
           "wire_window", "ReceiveWindow", "ADV_WIN_SCALE",
           "MAX_UNSCALED_WINDOW", "MAX_WSCALE"]

#: Linux tcp_adv_win_scale default: win = space - space/2**2 = 3/4 space.
ADV_WIN_SCALE = 2

#: The 16-bit window field.
MAX_UNSCALED_WINDOW = 65535

#: RFC 1323 cap.
MAX_WSCALE = 14


def sws_aligned(available: int, mss: int) -> int:
    """MSS-aligned advertised window (SWS avoidance, paper footnote 6)."""
    if mss <= 0:
        raise ProtocolError(f"MSS must be positive, got {mss}")
    if available < 0:
        return 0
    return (available // mss) * mss


def window_from_space(space: int, adv_win_scale: int = ADV_WIN_SCALE) -> int:
    """Usable window from free socket-buffer space (Linux
    ``tcp_win_from_space``): reserve 1/2**scale for overhead."""
    if space <= 0:
        return 0
    return space - (space >> adv_win_scale)


def window_scale_for(rmem: int) -> int:
    """The window-scale shift a host negotiates for an ``rmem``-byte
    receive buffer.

    Follows ``tcp_select_initial_window``: the shift makes the *usable*
    window (after the adv_win_scale reservation) representable in the
    16-bit field, so a 64 KB buffer (48 KB usable) negotiates shift 0.
    """
    space = window_from_space(rmem)
    wscale = 0
    while space > MAX_UNSCALED_WINDOW and wscale < MAX_WSCALE:
        space >>= 1
        wscale += 1
    return wscale


def wire_window(window: int, wscale: int) -> int:
    """The window value after the wire round-trip: ``(w >> s) << s``.

    Scaling truncates low bits, the precision loss §3.5.1 warns about.
    """
    if wscale < 0 or wscale > MAX_WSCALE:
        raise ProtocolError(f"window scale {wscale} out of range")
    return (min(window, MAX_UNSCALED_WINDOW << wscale) >> wscale) << wscale


class ReceiveWindow:
    """The receive-side window state machine.

    Tracks socket-buffer occupancy in truesize bytes and produces the
    MSS-aligned, scaled, never-retreating advertised window.

    Parameters
    ----------
    rmem:
        Receive socket buffer (``tcp_rmem`` max).
    align_mss:
        The MSS used for SWS alignment (see
        :meth:`repro.tcp.mss.MtuProfile.alignment_mss`).
    window_scaling:
        Whether RFC 1323 scaling was negotiated.
    """

    def __init__(self, rmem: int, align_mss: int,
                 window_scaling: bool = True,
                 adv_win_scale: int = ADV_WIN_SCALE):
        if rmem <= 0:
            raise ProtocolError("rmem must be positive")
        if align_mss <= 0:
            raise ProtocolError("alignment MSS must be positive")
        self.rmem = rmem
        self.align_mss = align_mss
        self.adv_win_scale = adv_win_scale
        self.wscale = window_scale_for(rmem) if window_scaling else 0
        self.queued_truesize = 0
        self.rcv_nxt = 0
        self._adv_right = 0  # highest advertised right edge
        self.advertise()     # initial window

    # -- occupancy -------------------------------------------------------------
    def charge(self, truesize: int) -> None:
        """A segment entered the socket buffer."""
        if truesize < 0:
            raise ProtocolError("negative truesize")
        self.queued_truesize += truesize

    def uncharge(self, truesize: int) -> None:
        """A segment was consumed by the application."""
        self.queued_truesize -= truesize
        if self.queued_truesize < 0:
            raise ProtocolError("receive-buffer accounting underflow")

    @property
    def free_space(self) -> int:
        """Uncommitted socket-buffer bytes (truesize basis)."""
        return max(0, self.rmem - self.queued_truesize)

    # -- advertisement -------------------------------------------------------------
    def advertise(self) -> int:
        """Compute the window to advertise *now* (and remember the edge).

        Applies, in order: the adv_win_scale reservation, the 16-bit /
        wscale representability cap, MSS alignment, never-retreat, and
        wire precision truncation.
        """
        usable = window_from_space(self.free_space, self.adv_win_scale)
        usable = min(usable, MAX_UNSCALED_WINDOW << self.wscale)
        aligned = sws_aligned(usable, self.align_mss)
        right = self.rcv_nxt + aligned
        if right < self._adv_right:
            # cannot shrink: keep the promised edge
            right = self._adv_right
        window = right - self.rcv_nxt
        window = wire_window(window, self.wscale)
        self._adv_right = self.rcv_nxt + window
        return window

    @property
    def current(self) -> int:
        """The last advertised window (right edge minus rcv_nxt)."""
        return max(0, self._adv_right - self.rcv_nxt)

    def would_update(self, threshold_mss: int = 1) -> bool:
        """True when a fresh advertisement would open the window by at
        least ``threshold_mss`` segments — the condition for sending a
        window-update ACK."""
        usable = window_from_space(self.free_space, self.adv_win_scale)
        usable = min(usable, MAX_UNSCALED_WINDOW << self.wscale)
        aligned = sws_aligned(usable, self.align_mss)
        new_right = self.rcv_nxt + wire_window(aligned, self.wscale)
        return new_right - self._adv_right >= threshold_mss * self.align_mss
