"""FAST TCP: the delay-based successor the paper's authors built.

The Caltech co-authors of this paper (Jin, Wei, Low, with Newman and
Ravot) followed the 2003 record with FAST TCP — a congestion controller
that uses queueing *delay* rather than loss as its congestion signal,
precisely to escape the Table 1 problem: Reno needs hours to recover a
transatlantic window, while FAST holds the window at

    w  <-  min(2w, (1 - gamma) * w + gamma * (baseRTT/RTT * w + alpha))

targeting ``alpha`` packets queued at the bottleneck, with no
multiplicative decrease in steady state.

:func:`simulate_fluid_fast` mirrors :func:`~repro.tcp.fluid.simulate_fluid`
so the two controllers can be compared on the identical path — the
"what would have fixed Table 1" experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError
from repro.tcp.fluid import FluidParams, FluidResult

__all__ = ["FastParams", "simulate_fluid_fast"]


@dataclass(frozen=True)
class FastParams:
    """FAST controller constants.

    Attributes
    ----------
    alpha_packets:
        Target number of this flow's packets queued at the bottleneck
        (FAST's fairness/throughput knob).
    gamma:
        Update smoothing (0 < gamma <= 1).
    """

    alpha_packets: float = 200.0
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha_packets <= 0:
            raise ProtocolError("alpha must be positive")
        if not 0 < self.gamma <= 1:
            raise ProtocolError("gamma must be in (0, 1]")


def simulate_fluid_fast(params: FluidParams, duration_s: float,
                        fast: FastParams = FastParams(),
                        warmup_s: float = 0.0,
                        force_loss_at_s: float = None) -> FluidResult:
    """One FAST TCP flow over the fluid bottleneck.

    Same inputs/outputs as the Reno fluid model.  On (rare) loss FAST
    still halves, but its delay law immediately re-converges rather
    than crawling back one segment per RTT.
    """
    if duration_s <= 0:
        raise ProtocolError("duration must be positive")
    cap_w = params.max_window_bytes / params.mss
    c_pps = params.capacity_pps
    q_cap = float(params.queue_packets)
    base_rtt = params.base_rtt_s

    max_steps = int(duration_s / (base_rtt / 4.0)) + 2
    t = np.zeros(max_steps)
    w = np.zeros(max_steps)
    q = np.zeros(max_steps)
    thr = np.zeros(max_steps)

    w_now = min(params.initial_window_segments, cap_w)
    q_now = 0.0
    losses = 0
    forced_pending = force_loss_at_s is not None
    now = 0.0
    i = 0
    while now < duration_s and i < max_steps:
        rtt_eff = base_rtt + q_now / c_pps
        dt = rtt_eff / 4.0
        rate_pps = min(w_now / rtt_eff, 4.0 * c_pps)
        q_now = max(0.0, q_now + (rate_pps - c_pps) * dt)
        served = min(rate_pps, c_pps) if q_now <= 0 else c_pps
        t[i] = now
        w[i] = w_now
        q[i] = min(q_now, q_cap)
        thr[i] = served * params.mss * 8.0

        lost = q_now > q_cap
        if forced_pending and now >= force_loss_at_s:
            lost = True
            forced_pending = False
        if lost:
            losses += 1
            w_now = max(w_now / 2.0, 2.0)
            q_now = min(q_now, q_cap)
        else:
            # the FAST window law, applied at per-RTT cadence scaled to dt
            target = (base_rtt / rtt_eff) * w_now + fast.alpha_packets
            w_next = min(2.0 * w_now,
                         (1.0 - fast.gamma) * w_now + fast.gamma * target)
            frac = dt / rtt_eff
            w_now = w_now + (w_next - w_now) * frac
            w_now = min(w_now, cap_w)
        now += dt
        i += 1

    t, w, q, thr = t[:i], w[:i], q[:i], thr[:i]
    mask = t >= warmup_s
    mean = float(thr[mask].mean()) if mask.any() else float(thr.mean())
    return FluidResult(time_s=t, window_segments=w, queue_packets=q,
                       throughput_bps=thr, losses=losses,
                       mean_throughput_bps=mean)
