"""TCP connection: a sender and receiver pair wired over a topology.

:class:`TcpConnection` performs the (instantaneous) option negotiation —
MSS advertisement including the §3.5.1 receiver-estimate quirk, window
scaling — registers both endpoints with their hosts' receive dispatch,
and exposes the measurement surface the tools use.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import ProtocolError
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.tcp.mss import MtuProfile
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender

__all__ = ["TcpConnection"]

_conn_ids = itertools.count(1)


class TcpConnection:
    """One established, unidirectional-data TCP connection.

    Data flows ``src_host -> dst_host``; ACKs flow back.  (The paper's
    bulk tests are unidirectional; bidirectional traffic is modelled as
    two connections.)

    Parameters
    ----------
    src_host, dst_host:
        :class:`~repro.hw.host.Host` endpoints (must each have a NIC
        wired into a common topology).
    src_nic, dst_nic:
        Specific adapters (default: each host's first adapter) — the
        dual-adapter bottleneck test targets specific NICs.
    mss_mismatch_quirk:
        Reproduce the receiver's too-large MSS estimate (§3.5.1).
    """

    def __init__(self, env: Environment, src_host, dst_host,
                 src_nic=None, dst_nic=None,
                 mss_mismatch_quirk: bool = True,
                 name: str = ""):
        self.env = env
        self.src_host = src_host
        self.dst_host = dst_host
        src_nic = src_nic or src_host.nic
        dst_nic = dst_nic or dst_host.nic
        self.conn_id = next(_conn_ids)
        self.name = name or f"conn{self.conn_id}"

        sender_profile = MtuProfile(mtu=src_host.config.mtu,
                                    timestamps=src_host.config.tcp_timestamps,
                                    mismatch_quirk=mss_mismatch_quirk)
        receiver_profile = MtuProfile(mtu=dst_host.config.mtu,
                                      timestamps=dst_host.config.tcp_timestamps,
                                      mismatch_quirk=mss_mismatch_quirk)
        # Negotiation: each side advertises mtu-40; the connection MSS is
        # the minimum of the two views.
        path_mtu = min(src_host.config.mtu, dst_host.config.mtu)
        effective_profile = MtuProfile(mtu=path_mtu,
                                       timestamps=src_host.config.tcp_timestamps,
                                       mismatch_quirk=mss_mismatch_quirk)

        self.receiver = TcpReceiver(
            env, dst_host, dst_nic, conn=self.conn_id,
            src_address=src_nic.address, profile=receiver_profile,
            peer_advertised_mss=effective_profile.advertised)
        self.sender = TcpSender(
            env, src_host, src_nic, conn=self.conn_id,
            dst_address=dst_nic.address, profile=effective_profile,
            initial_rwnd=self.receiver.window.current)
        dst_host.register_handler(self.conn_id, self._at_receiver)
        src_host.register_handler(self.conn_id, self._at_sender)

    # -- dispatch -----------------------------------------------------------------
    def _at_receiver(self, skb: SkBuff, batch: int) -> None:
        if skb.kind == "data":
            self.receiver.on_data_frame(skb, batch)
        elif skb.kind == "syn":
            self.env.process(self._answer_syn(skb),
                             name=f"{self.name}.synack")
        else:
            raise ProtocolError(
                f"{self.name}: unexpected {skb.kind!r} frame at receiver")

    def _at_sender(self, skb: SkBuff, batch: int) -> None:
        if skb.kind == "ack":
            self.sender.on_ack_frame(skb, batch)
        elif skb.kind == "synack":
            ev = self._handshake_done
            if ev is not None and not ev.triggered:
                ev.succeed(self.env.now)
        else:
            raise ProtocolError(
                f"{self.name}: unexpected {skb.kind!r} frame at sender")

    # -- connection establishment ---------------------------------------------------
    _handshake_done = None

    def handshake(self):
        """Process: simulate the three-way handshake over the wire and
        return the connect latency in seconds (SYN out, SYN/ACK back —
        1 RTT as the application observes it; the final ACK piggybacks
        on the first data segment).

        Option negotiation itself (MSS, wscale) is still performed at
        construction; this models the *timing*, which matters on the
        180 ms WAN path (§4) far more than in the LAN.
        """
        env = self.env
        src, dst = self.src_host, self.dst_host
        start = env.now
        self._handshake_done = env.event()
        yield from src.cpu_work(src.costs.tx_syscall_s()
                                + src.costs.tx_segment_s(0))
        syn = SkBuff(payload=0, headers=60, kind="syn", conn=self.conn_id,
                     meta={"dst": self.dst_host.nic.address})
        self.sender.nic.send(syn)
        yield self._handshake_done
        return env.now - start

    def _answer_syn(self, skb: SkBuff):
        dst = self.dst_host
        yield from dst.cpu_work(dst.costs.rx_segment_s(0)
                                + dst.costs.rx_ack_gen_s())
        synack = SkBuff(payload=0, headers=60, kind="synack",
                        conn=self.conn_id,
                        meta={"dst": self.src_host.nic.address,
                              "win": self.receiver.window.current})
        self.receiver.nic.send(synack)

    # -- application-facing API -----------------------------------------------------
    def write(self, nbytes: int):
        """Process: send ``nbytes`` (blocks on socket buffer)."""
        return self.sender.write(nbytes)

    def send_stream(self, write_size: int, count: int):
        """Process: ``count`` back-to-back writes of ``write_size`` bytes
        (the NTTCP pattern), returning when the last write is queued."""
        if write_size <= 0 or count <= 0:
            raise ProtocolError("write_size and count must be positive")
        for _ in range(count):
            yield from self.write(write_size)

    def wait_all_acked(self, poll_s: float = 1e-4):
        """Process: resolve when every written byte is acknowledged."""
        while not self.sender.all_acked:
            yield self.env._fast_timeout(poll_s)

    def wait_delivered(self, total_bytes: int, poll_s: float = 1e-4):
        """Process: resolve when the receiving app has consumed
        ``total_bytes``."""
        while self.receiver.bytes_delivered < total_bytes:
            yield self.env._fast_timeout(poll_s)

    # -- measurement -------------------------------------------------------------
    @property
    def mss(self) -> int:
        """Effective segment payload size."""
        return self.sender.mss

    def goodput_bps(self) -> float:
        """Application-level throughput at the receiver."""
        return self.receiver.goodput_bps()

    def retransmission_rate(self) -> float:
        """Retransmitted fraction of all data segments sent."""
        total = self.sender.segments_sent + self.sender.retransmitted
        if total == 0:
            return 0.0
        return self.sender.retransmitted / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpConnection {self.name} {self.src_host.name}->"
                f"{self.dst_host.name} mss={self.mss}>")
