"""UDP: unreliable datagram endpoints.

Used by the multi-flow aggregation experiments as an open-loop traffic
source (and as the substrate the packet generator's frames notionally
belong to).  No windows, no ACKs — datagrams that overflow a queue are
simply lost, which makes UDP the cleanest probe of raw path capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MeasurementError, ProtocolError
from repro.hw.host import Host
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment

__all__ = ["UdpSender", "UdpSink", "UDP_HEADERS"]

#: IP + UDP header bytes.
UDP_HEADERS = 28


class UdpSink:
    """Counts datagrams delivered to a host for one flow."""

    def __init__(self, env: Environment, host: Host, conn):
        self.env = env
        self.host = host
        self.conn = conn
        self.bytes_received = 0
        self.datagrams = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        host.register_handler(conn, self._on_frame)

    def _on_frame(self, skb: SkBuff, batch: int) -> None:
        self.env.process(self._process(skb, batch),
                         name=f"{self.host.name}.udp.rx")

    def _process(self, skb: SkBuff, batch: int):
        host = self.host
        yield from host.cpu_work(host.costs.rx_segment_s(skb.payload, batch))
        if self.first_time is None:
            self.first_time = self.env.now
        self.last_time = self.env.now
        self.bytes_received += skb.payload
        self.datagrams += 1

    def goodput_bps(self) -> float:
        """Received-payload rate over the observation span."""
        if (self.first_time is None or self.last_time is None
                or self.last_time <= self.first_time):
            raise MeasurementError("UDP sink saw too little traffic")
        return self.bytes_received * 8.0 / (self.last_time - self.first_time)


class UdpSender:
    """Open-loop datagram source at a fixed offered rate."""

    def __init__(self, env: Environment, host: Host, dst_address: str,
                 conn, datagram_bytes: int, offered_bps: float):
        if datagram_bytes <= 0:
            raise ProtocolError("datagram size must be positive")
        if offered_bps <= 0:
            raise ProtocolError("offered rate must be positive")
        max_payload = host.config.mtu - UDP_HEADERS
        if datagram_bytes > max_payload:
            raise ProtocolError(
                f"datagram of {datagram_bytes} exceeds MTU payload "
                f"{max_payload} (no IP fragmentation modelled)")
        self.env = env
        self.host = host
        self.dst_address = dst_address
        self.conn = conn
        self.datagram_bytes = datagram_bytes
        self.interval_s = datagram_bytes * 8.0 / offered_bps
        self.sent = 0
        self.local_drops = 0
        self._stop = False

    def start(self, count: Optional[int] = None):
        """Begin sending; returns the driving process."""
        return self.env.process(self._run(count),
                                name=f"{self.host.name}.udp.tx")

    def stop(self) -> None:
        """Cease after the current datagram."""
        self._stop = True

    def _run(self, count: Optional[int]):
        host = self.host
        nic = host.nic
        sent = 0
        next_time = self.env.now
        while not self._stop and (count is None or sent < count):
            # absolute-time pacing: CPU processing overlaps the interval
            next_time += self.interval_s
            gap = next_time - self.env.now
            if gap > 0:
                yield self.env.timeout(gap)
            yield from host.cpu_work(
                host.costs.tx_segment_s(self.datagram_bytes))
            skb = SkBuff(payload=self.datagram_bytes, headers=UDP_HEADERS,
                         kind="udp", conn=self.conn,
                         meta={"dst": self.dst_address})
            if not nic.send(skb):
                self.local_drops += 1
            else:
                self.sent += 1
            sent += 1
