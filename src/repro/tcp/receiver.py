"""TCP receiver endpoint (discrete-event).

Implements the receive half the paper dissects in §3.5.1: truesize-
charged socket buffering, the MSS-aligned advertised window with the
adv_win_scale reservation, delayed ACKs (every second segment, with the
Linux delayed-ACK timer as backstop), duplicate ACKs for out-of-order
arrivals, and window-update ACKs when the reader drains enough space.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ProtocolError
from repro.net.train import train_batching_enabled
from repro.oskernel.skbuff import SkBuff, ip_tcp_header_bytes
from repro.sim.engine import Environment
from repro.sim.resources import Store
from repro.tcp.mss import MtuProfile
from repro.tcp.window import ReceiveWindow
from repro.telemetry.session import active_metrics
from repro.units import ms

__all__ = ["TcpReceiver", "DELACK_TIMEOUT_S"]

#: Linux 2.4 delayed-ACK timer (TCP_DELACK_MIN, HZ/25).
DELACK_TIMEOUT_S = ms(40)


class TcpReceiver:
    """One direction's receive state machine."""

    def __init__(self, env: Environment, host, nic, conn,
                 src_address: str, profile: MtuProfile,
                 peer_advertised_mss: int):
        self.env = env
        self.host = host
        self.nic = nic
        self.conn = conn
        self.src_address = src_address
        self.profile = profile
        self.align_mss = profile.alignment_mss(peer_advertised_mss)
        self.window = ReceiveWindow(
            rmem=host.config.tcp_rmem,
            align_mss=self.align_mss,
            window_scaling=host.config.window_scaling)
        self.rcv_nxt = 0
        self._ooo: Dict[int, SkBuff] = {}
        self._batched = train_batching_enabled()
        if self._batched:
            self._rx_backlog: Deque[Tuple[SkBuff, int]] = deque()
            self._rx_busy = False
        else:
            self._rxq = Store(env, name=f"{host.name}.tcp.rxq")
            env.process(self._rx_loop(), name=f"{host.name}.tcp.rxloop")
        self._unacked_segments = 0
        self._delack_generation = 0
        self._delack_armed = False
        # statistics
        self.segments_received = 0
        self.duplicates = 0
        self.bytes_delivered = 0
        self.acks_sent = 0
        self.window_updates = 0
        self.first_data_time: Optional[float] = None
        self.last_delivery_time: Optional[float] = None
        # instrumentation
        self._conn_label = getattr(conn, "name", None) or str(conn)
        # Host-only labels — see the matching note in TcpSender: conn
        # ids are not stable across serial vs forked-worker execution.
        metrics = active_metrics()
        if metrics is not None:
            label = dict(host=host.name)
            self._c_seg = metrics.counter("tcp.rx.segments", **label)
            self._c_dup = metrics.counter("tcp.rx.dups", **label)
            self._c_ooo = metrics.counter("tcp.rx.ooo", **label)
            self._c_ack = metrics.counter("tcp.rx.acks", **label)
            self._c_bytes = metrics.counter("tcp.rx.bytes", **label)
            self._c_delack = metrics.counter("tcp.delack.fires", **label)
            self._g_rmem = metrics.gauge("tcp.rmem.used", **label)
        else:
            self._c_seg = self._c_dup = self._c_ooo = None
            self._c_ack = self._c_bytes = self._c_delack = None
            self._g_rmem = None

    # -- frame entry ---------------------------------------------------------
    def on_data_frame(self, skb: SkBuff, batch: int = 1) -> None:
        """A data segment arrived (called from interrupt dispatch).

        Segments enter a per-connection queue drained by one processing
        loop — in-order TCP processing even on hosts whose CPU complex
        services several flows in parallel (Itanium-II)."""
        if not self._batched:
            self._rxq.put((skb, batch))
            return
        if self._rx_busy:
            self._rx_backlog.append((skb, batch))
        else:
            # One zero-delay hop: the legacy loop's Store.get wakeup.
            self._rx_busy = True
            self.env.schedule_call(0.0, self._rx_begin, skb, batch)

    def _rx_loop(self):
        while True:
            skb, batch = yield self._rxq.get()
            yield from self._process_data(skb, batch)

    # -- train-batched processing chain -------------------------------------------
    def _rx_begin(self, skb: SkBuff, batch: int) -> None:
        host = self.host
        env = self.env
        end = host.cpu.charge(host.costs.rx_segment_s(skb.payload, batch))
        if end <= env._now:
            self._rx_process(skb, batch)
        else:
            env.schedule_call(end - env._now, self._rx_process, skb, batch)

    def _rx_done(self) -> None:
        if self._rx_backlog:
            skb, batch = self._rx_backlog.popleft()
            # The legacy loop re-arms Store.get here: one zero-delay hop
            # per segment even when the queue is non-empty.
            self.env.schedule_call(0.0, self._rx_begin, skb, batch)
        else:
            self._rx_busy = False

    def _rx_process(self, skb: SkBuff, batch: int) -> None:
        """Post-CPU segment processing (batched twin of
        :meth:`_process_data` after its ``cpu_work``)."""
        host = self.host
        self.segments_received += 1
        if self._c_seg is not None:
            self._c_seg.inc()
        if self.first_data_time is None:
            self.first_data_time = self.env.now
        trace = host.trace
        out_of_order = False
        if skb.end_seq <= self.rcv_nxt:
            # pure duplicate (a spurious retransmission): drop, re-ack
            self.duplicates += 1
            if self._c_dup is not None:
                self._c_dup.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.dup", skb.ident,
                           seq=skb.seq, conn=self._conn_label)
            self._ack_begin(self._rx_done)
            return
        charged = host.costs.rx_truesize(skb)
        skb.meta["charged"] = charged
        if skb.seq == self.rcv_nxt:
            self.window.charge(charged)
            self._note_rmem(trace, skb, charged)
            self._schedule_drain(skb)
            self._advance(skb)
        elif skb.seq > self.rcv_nxt:
            if skb.seq not in self._ooo:
                self.window.charge(charged)
                self._note_rmem(trace, skb, charged)
                self._ooo[skb.seq] = skb
            if self._c_ooo is not None:
                self._c_ooo.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.ooo", skb.ident,
                           seq=skb.seq, expected=self.rcv_nxt,
                           conn=self._conn_label)
            out_of_order = True
        else:
            # partial overlap: treat as duplicate of the old part
            self.duplicates += 1
            if self._c_dup is not None:
                self._c_dup.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.dup", skb.ident,
                           seq=skb.seq, conn=self._conn_label)
            out_of_order = True
        self._unacked_segments += 1
        quickack = self.window.current < 4 * self.align_mss
        if out_of_order or quickack or self._unacked_segments >= 2:
            self._ack_begin(self._rx_done)
        else:
            self._arm_delack()
            self._rx_done()

    def _process_data(self, skb: SkBuff, batch: int):
        host = self.host
        yield from host.cpu_work(host.costs.rx_segment_s(skb.payload, batch))
        self.segments_received += 1
        if self._c_seg is not None:
            self._c_seg.inc()
        if self.first_data_time is None:
            self.first_data_time = self.env.now
        trace = host.trace
        out_of_order = False
        if skb.end_seq <= self.rcv_nxt:
            # pure duplicate (a spurious retransmission): drop, re-ack
            self.duplicates += 1
            if self._c_dup is not None:
                self._c_dup.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.dup", skb.ident,
                           seq=skb.seq, conn=self._conn_label)
            yield from self._send_ack()
            return
        charged = host.costs.rx_truesize(skb)
        skb.meta["charged"] = charged
        if skb.seq == self.rcv_nxt:
            self.window.charge(charged)
            self._note_rmem(trace, skb, charged)
            self._schedule_drain(skb)
            self._advance(skb)
        elif skb.seq > self.rcv_nxt:
            if skb.seq not in self._ooo:
                self.window.charge(charged)
                self._note_rmem(trace, skb, charged)
                self._ooo[skb.seq] = skb
            if self._c_ooo is not None:
                self._c_ooo.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.ooo", skb.ident,
                           seq=skb.seq, expected=self.rcv_nxt,
                           conn=self._conn_label)
            out_of_order = True
        else:
            # partial overlap: treat as duplicate of the old part
            self.duplicates += 1
            if self._c_dup is not None:
                self._c_dup.inc()
            if trace.enabled:
                trace.post(self.env.now, "tcp.rx.dup", skb.ident,
                           seq=skb.seq, conn=self._conn_label)
            out_of_order = True
        self._unacked_segments += 1
        # Linux quickacks while the window is constrained (fewer than
        # four segments advertisable): a window-limited sender must not
        # also wait on the delayed-ACK clock.
        quickack = self.window.current < 4 * self.align_mss
        if out_of_order or quickack or self._unacked_segments >= 2:
            yield from self._send_ack()
        else:
            self._arm_delack()

    def _note_rmem(self, trace, skb: SkBuff, charged: int) -> None:
        if self._g_rmem is not None:
            self._g_rmem.set_max(self.window.queued_truesize)
        if trace.enabled:
            trace.post(self.env.now, "skbuff.rmem.charge", skb.ident,
                       truesize=charged,
                       rmem_used=self.window.queued_truesize)

    def _advance(self, skb: SkBuff) -> None:
        self.rcv_nxt = skb.end_seq
        # pull any now-contiguous out-of-order segments
        while self.rcv_nxt in self._ooo:
            nxt = self._ooo.pop(self.rcv_nxt)
            self._schedule_drain(nxt)
            self.rcv_nxt = nxt.end_seq
        self.window.rcv_nxt = self.rcv_nxt

    # -- application drain ---------------------------------------------------------
    def _schedule_drain(self, skb: SkBuff) -> None:
        self.env.schedule_call(self.host.costs.drain_latency_s,
                               self._start_drain, skb)

    def _start_drain(self, skb: SkBuff) -> None:
        if self._batched:
            # One zero-delay hop (the legacy process-spawn init event).
            self.env.schedule_call(0.0, self._drain_charge, skb)
            return
        self.env.process(self._drain(skb), name=f"{self.host.name}.tcp.drain")

    def _drain_charge(self, skb: SkBuff) -> None:
        host = self.host
        env = self.env
        end = host.cpu.charge(host.costs.rx_wake_s())
        if end <= env._now:
            self._drain_done(skb)
        else:
            env.schedule_call(end - env._now, self._drain_done, skb)

    def _drain_done(self, skb: SkBuff) -> None:
        host = self.host
        self.window.uncharge(skb.meta.get("charged", skb.truesize))
        self.bytes_delivered += skb.payload
        if self._c_bytes is not None:
            self._c_bytes.inc(skb.payload)
        self.last_delivery_time = self.env.now
        trace = host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.rx.deliver", skb.ident,
                       seq=skb.seq, len=skb.payload,
                       nbytes=skb.payload, conn=self._conn_label)
            trace.post(self.env.now, "copy.rx", skb.ident,
                       nbytes=skb.payload)
        if self.window.would_update(2):
            self.window_updates += 1
            self._ack_begin(None)

    def _drain(self, skb: SkBuff):
        host = self.host
        yield from host.cpu_work(host.costs.rx_wake_s())
        self.window.uncharge(skb.meta.get("charged", skb.truesize))
        self.bytes_delivered += skb.payload
        if self._c_bytes is not None:
            self._c_bytes.inc(skb.payload)
        self.last_delivery_time = self.env.now
        trace = host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.rx.deliver", skb.ident,
                       seq=skb.seq, len=skb.payload,
                       nbytes=skb.payload, conn=self._conn_label)
            trace.post(self.env.now, "copy.rx", skb.ident,
                       nbytes=skb.payload)
        # Window-update ACKs only when the window reopens substantially
        # (2 MSS, like tcp_new_space checks) — finer updates would turn
        # every drained segment into an ACK.
        if self.window.would_update(2):
            self.window_updates += 1
            yield from self._send_ack()

    # -- ACK generation ---------------------------------------------------------
    def _sack_blocks(self, limit: int = 4):
        """RFC 2018 blocks from the out-of-order queue (merged,
        most-recent-first capped at ``limit`` like real option space)."""
        if not self._ooo:
            return []
        edges = sorted((skb.seq, skb.end_seq) for skb in self._ooo.values())
        blocks = [list(edges[0])]
        for start, end in edges[1:]:
            if start <= blocks[-1][1]:
                blocks[-1][1] = max(blocks[-1][1], end)
            else:
                blocks.append([start, end])
        return [tuple(b) for b in blocks[-limit:]]

    def _ack_begin(self, then: Optional[Callable[[], None]]) -> None:
        """Batched twin of :meth:`_send_ack`: state resets at call time,
        the ACK itself is emitted when the generation CPU charge
        completes, then ``then()`` continues the caller's chain."""
        host = self.host
        self._unacked_segments = 0
        self._delack_generation += 1
        self._delack_armed = False
        env = self.env
        end = host.cpu.charge(host.costs.rx_ack_gen_s())
        if end <= env._now:
            self._ack_emit(then)
        else:
            env.schedule_call(end - env._now, self._ack_emit, then)

    def _ack_emit(self, then: Optional[Callable[[], None]]) -> None:
        host = self.host
        win = self.window.advertise()
        meta = {"dst": self.src_address, "win": win}
        if host.config.sack and self._ooo:
            meta["sack"] = self._sack_blocks()
        ack = SkBuff(payload=0,
                     headers=ip_tcp_header_bytes(host.config.tcp_timestamps),
                     kind="ack", ack=self.rcv_nxt, conn=self.conn,
                     meta=meta)
        self.acks_sent += 1
        if self._c_ack is not None:
            self._c_ack.inc()
        self.nic.send(ack)
        trace = host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.rx.ack", ack.ident,
                       ack=self.rcv_nxt, win=win, conn=self._conn_label)
        if then is not None:
            then()

    def _send_ack(self):
        host = self.host
        self._unacked_segments = 0
        self._delack_generation += 1
        self._delack_armed = False
        yield from host.cpu_work(host.costs.rx_ack_gen_s())
        win = self.window.advertise()
        meta = {"dst": self.src_address, "win": win}
        if host.config.sack and self._ooo:
            meta["sack"] = self._sack_blocks()
        ack = SkBuff(payload=0,
                     headers=ip_tcp_header_bytes(host.config.tcp_timestamps),
                     kind="ack", ack=self.rcv_nxt, conn=self.conn,
                     meta=meta)
        self.acks_sent += 1
        if self._c_ack is not None:
            self._c_ack.inc()
        self.nic.send(ack)
        trace = host.trace
        if trace.enabled:
            trace.post(self.env.now, "tcp.rx.ack", ack.ident,
                       ack=self.rcv_nxt, win=win, conn=self._conn_label)

    def _arm_delack(self) -> None:
        if self._delack_armed:
            return
        self._delack_armed = True
        generation = self._delack_generation
        self.env.schedule_call(DELACK_TIMEOUT_S, self._on_delack, generation)

    def _on_delack(self, generation: int) -> None:
        if generation != self._delack_generation:
            return
        self._delack_armed = False
        if self._unacked_segments > 0:
            if self._c_delack is not None:
                self._c_delack.inc()
            trace = self.host.trace
            if trace.enabled:
                trace.post(self.env.now, "tcp.delack.fire",
                           self._conn_label,
                           unacked=self._unacked_segments)
            if self._batched:
                # One zero-delay hop (the legacy process-spawn init
                # event) before the ACK chain's state resets.
                self.env.schedule_call(0.0, self._ack_begin, None)
            else:
                self.env.process(self._send_ack(),
                                 name=f"{self.host.name}.tcp.delack")

    # -- reporting -------------------------------------------------------------
    def goodput_bps(self) -> float:
        """Delivered-payload rate between first arrival and last drain."""
        if (self.first_data_time is None or self.last_delivery_time is None
                or self.last_delivery_time <= self.first_data_time):
            raise ProtocolError("no completed deliveries to report")
        span = self.last_delivery_time - self.first_data_time
        return self.bytes_delivered * 8.0 / span
