"""Linux-2.4-style TCP/IP stack over the simulated data path.

The package splits into pure protocol arithmetic (:mod:`repro.tcp.mss`,
:mod:`repro.tcp.window`, :mod:`repro.tcp.congestion`,
:mod:`repro.tcp.analytic`) and the discrete-event endpoints
(:mod:`repro.tcp.sender`, :mod:`repro.tcp.receiver`,
:mod:`repro.tcp.connection`), plus the stack-bypass tools the paper uses
for bottleneck analysis (:mod:`repro.tcp.pktgen`, :mod:`repro.tcp.udp`)
and a vectorised fluid model for long WAN runs (:mod:`repro.tcp.fluid`).
"""

from repro.tcp.mss import mss_for_mtu, advertised_mss, MtuProfile
from repro.tcp.window import (
    sws_aligned,
    window_from_space,
    window_scale_for,
    ReceiveWindow,
)
from repro.tcp.congestion import RenoCongestion
from repro.tcp.connection import TcpConnection
from repro.tcp.analytic import (
    bandwidth_delay_product,
    recovery_time_s,
    mss_aligned_window,
    window_efficiency,
    sender_receiver_mismatch,
    predict_throughput_bps,
)

__all__ = [
    "mss_for_mtu",
    "advertised_mss",
    "MtuProfile",
    "sws_aligned",
    "window_from_space",
    "window_scale_for",
    "ReceiveWindow",
    "RenoCongestion",
    "TcpConnection",
    "bandwidth_delay_product",
    "recovery_time_s",
    "mss_aligned_window",
    "window_efficiency",
    "sender_receiver_mismatch",
    "predict_throughput_bps",
]
