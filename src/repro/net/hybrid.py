"""Hybrid fluid+DES fabric simulation: O(1000)-flow runs made tractable.

The paper's testbeds top out at a handful of flows because every segment
of every flow costs discrete events.  Cluster/grid fabrics need
thousands of concurrent flows — far past what the packet DES can touch
— but almost all of those flows are *background*: their aggregate
pressure on the shared queues matters, their per-packet timing does
not.  This module splits the work accordingly:

* a small set of **foreground** flows runs at packet granularity in the
  DES (:class:`FabricFlow` over :class:`DesLink` chains built from a
  :class:`~repro.net.fabric.FabricTopology`), with AIMD window dynamics,
  drop-tail queues, FIFO serialization and per-hop propagation;
* the **background** population advances in a vectorised
  :class:`~repro.tcp.fluid.FluidFabric`, stepped on a coarse tick;
* a :class:`FluidCoupler` runs the conservative handoff each tick:
  measured foreground packet rates become fluid cross traffic
  (background yields capacity the foreground actually uses), and fluid
  link utilization/overflow probability shapes the DES queues through
  :class:`~repro.net.coupling.QueueCoupling` (foreground feels the
  congestion the background creates).

With an empty background set, hybrid mode builds exactly the pure-DES
simulation — bit-identical events, bit-identical results.  For small
fabrics the hybrid aggregate goodput stays within a few percent of the
all-DES run (gated by ``scripts/bench_compare.py --fabric-only``); for
O(1000)-flow fabrics the hybrid run completes in seconds where the
all-DES run is intractable.

Knobs
-----
``REPRO_HYBRID``
    Unset/``1`` (default): experiment runners may choose hybrid mode
    for large flow counts.  ``0``/``off``: force all-DES everywhere.
``REPRO_HYBRID_TICK``
    Coupling tick in seconds (default: four times the largest base
    RTT, clamped to [10 us, 1 ms]).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError, TopologyError
from repro.net.coupling import QueueCoupling
from repro.net.fabric import FabricTopology
from repro.sim.engine import Environment
from repro.tcp.fluid import FluidFabric

__all__ = ["DesLink", "FabricFlow", "FluidCoupler", "FabricSimulation",
           "FabricResult", "hybrid_enabled", "hybrid_tick_override",
           "incast_pairs", "alltoall_pairs", "bisection_pairs",
           "HYBRID_ENV", "HYBRID_TICK_ENV"]

#: environment variable gating hybrid mode (unset/1 = allowed)
HYBRID_ENV = "REPRO_HYBRID"
#: environment variable overriding the coupling tick (seconds)
HYBRID_TICK_ENV = "REPRO_HYBRID_TICK"

#: Ethernet + IP + TCP (+options) framing bytes per fabric segment
HEADER_BYTES = 66


def hybrid_enabled() -> bool:
    """True when ``REPRO_HYBRID`` permits hybrid mode (the default)."""
    from repro.core.knobs import env_value  # lazy: core imports net
    return env_value(HYBRID_ENV)


def hybrid_tick_override() -> Optional[float]:
    """The ``REPRO_HYBRID_TICK`` coupling tick, if set and valid."""
    from repro.core.knobs import env_raw  # lazy: core imports net
    value = env_raw(HYBRID_TICK_ENV)
    if not value:
        return None
    try:
        tick = float(value)
    except ValueError:
        raise ProtocolError(
            f"{HYBRID_TICK_ENV} must be a float (seconds), got {value!r}"
        ) from None
    if tick <= 0:
        raise ProtocolError(f"{HYBRID_TICK_ENV} must be positive, got {tick}")
    return tick


class FabricPacket:
    """One foreground segment in flight across the fabric."""

    __slots__ = ("flow", "seq", "hop", "payload", "size_bits")

    def __init__(self, flow: "FabricFlow", seq: int, payload: int,
                 size_bits: float):
        self.flow = flow
        self.seq = seq
        self.hop = 0
        self.payload = payload
        self.size_bits = size_bits


class DesLink:
    """Packet-level realization of one directed fabric link.

    A drop-tail output queue feeding a FIFO serializer (arithmetic
    ``free_at`` accounting, one completion + one delivery event per
    packet) and a fixed propagation delay.  When a
    :class:`~repro.net.coupling.QueueCoupling` is attached the link is
    *shared* with the fluid background: admission runs the coupled drop
    coin flip, the serializer runs at the foreground's share of the
    line rate, and every serviced packet is reported back for the
    fluid's cross-traffic accounting.
    """

    __slots__ = ("env", "name", "index", "rate_bps", "delay_s", "capacity",
                 "coupling", "drops", "serviced", "_free_at", "_level")

    def __init__(self, env: Environment, index: int, name: str,
                 rate_bps: float, delay_s: float, queue_packets: int):
        self.env = env
        self.index = index
        self.name = name
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.capacity = queue_packets
        self.coupling: Optional[QueueCoupling] = None
        self.drops = 0
        self.serviced = 0
        self._free_at = 0.0
        self._level = 0

    @property
    def level(self) -> int:
        """Packets queued or in serialization."""
        return self._level

    def send(self, pkt: FabricPacket,
             arrive: Callable[[FabricPacket], None]) -> None:
        """Queue one packet for this link; drop-tail + coupled drops.

        Drops are signalled to the owning flow asynchronously (a
        zero-delay event) so a sender pumping into a full queue cannot
        recurse through its own loss handler.
        """
        env = self.env
        coupling = self.coupling
        if self._level >= self.capacity or \
                (coupling is not None and not coupling.admit()):
            self.drops += 1
            env.schedule_call(0.0, pkt.flow.on_drop, pkt)
            return
        self._level += 1
        rate = self.rate_bps
        if coupling is not None:
            rate *= coupling.service_scale()
        now = env._now
        free = self._free_at
        start = free if free > now else now
        end = start + pkt.size_bits / rate
        self._free_at = end
        env.schedule_call_at(end, self._serviced_cb, pkt)
        env.schedule_call_at(end + self.delay_s, arrive, pkt)

    def _serviced_cb(self, pkt: FabricPacket) -> None:
        self._level -= 1
        self.serviced += 1
        if self.coupling is not None:
            self.coupling.record_service(pkt.payload + HEADER_BYTES)


class FabricFlow:
    """A foreground TCP flow at packet granularity (reduced Reno).

    Window dynamics: slow start (+1 segment per ACK) until ``ssthresh``,
    then congestion avoidance (+1/cwnd per ACK); one window halving per
    loss *event* (NewReno-style recovery window keyed on sequence
    numbers), with loss detection one estimated RTT after the drop (the
    fast-retransmit signal).  ACKs return over a fixed reverse delay —
    the fabric workloads of interest congest the forward direction.
    """

    __slots__ = ("env", "flow_id", "route", "mss", "size_bits", "wmax",
                 "ack_delay_s", "loss_detect_s", "cwnd", "ssthresh",
                 "inflight", "next_seq", "recover_seq", "delivered_bytes",
                 "drops", "loss_events", "_last_hop")

    def __init__(self, env: Environment, flow_id: int,
                 route: Sequence[DesLink], mss: int,
                 max_window_segments: float, ack_delay_s: float,
                 loss_detect_s: float, start_s: float = 0.0):
        if not route:
            raise TopologyError(f"flow {flow_id}: empty route")
        self.env = env
        self.flow_id = flow_id
        self.route = tuple(route)
        self.mss = mss
        self.size_bits = (mss + HEADER_BYTES) * 8.0
        self.wmax = max(2.0, float(max_window_segments))
        self.ack_delay_s = ack_delay_s
        self.loss_detect_s = loss_detect_s
        self.cwnd = 2.0
        self.ssthresh = float("inf")
        self.inflight = 0
        self.next_seq = 0
        self.recover_seq = -1
        self.delivered_bytes = 0
        self.drops = 0
        self.loss_events = 0
        self._last_hop = len(self.route) - 1
        env.schedule_call(start_s, self._pump)

    def _pump(self) -> None:
        while self.inflight < int(self.cwnd):
            pkt = FabricPacket(self, self.next_seq, self.mss, self.size_bits)
            self.next_seq += 1
            self.inflight += 1
            self.route[0].send(pkt, self._arrive)

    def _arrive(self, pkt: FabricPacket) -> None:
        hop = pkt.hop
        if hop == self._last_hop:
            self.delivered_bytes += pkt.payload
            self.env.schedule_call(self.ack_delay_s, self._acked, pkt.seq)
            return
        pkt.hop = hop + 1
        self.route[pkt.hop].send(pkt, self._arrive)

    def _acked(self, seq: int) -> None:
        self.inflight -= 1
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            cwnd += 1.0
        else:
            cwnd += 1.0 / cwnd
        self.cwnd = cwnd if cwnd < self.wmax else self.wmax
        self._pump()

    def on_drop(self, pkt: FabricPacket) -> None:
        """A link dropped one of our packets; detection is delayed by
        one RTT estimate.  Deliberately does not pump: a sender facing
        a full queue pauses until ACK clocking or loss detection."""
        self.inflight -= 1
        self.drops += 1
        self.env.schedule_call(self.loss_detect_s, self._loss, pkt.seq)

    def _loss(self, seq: int) -> None:
        if seq >= self.recover_seq:
            self.loss_events += 1
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self.recover_seq = self.next_seq
        self._pump()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FabricFlow #{self.flow_id} cwnd={self.cwnd:.1f} "
                f"inflight={self.inflight}>")


class FluidCoupler:
    """The periodic DES<->fluid handoff (one instance per hybrid run).

    Every ``tick_s`` the coupler (1) drains the foreground service
    counters of all shared links into the fluid model's cross-traffic
    vector, (2) steps the fluid fabric by one tick, and (3) writes the
    resulting per-link utilization and overflow probability back into
    the DES queue couplings.  Conservative in both directions: fluid
    flows only see capacity the foreground did not use; foreground
    packets face the drop probability the fluid queues actually
    exhibit.
    """

    def __init__(self, env: Environment, fluid: FluidFabric,
                 shared_links: Dict[int, DesLink], tick_s: float):
        if tick_s <= 0:
            raise ProtocolError("coupling tick must be positive")
        self.env = env
        self.fluid = fluid
        self.shared_links = shared_links
        self.tick_s = tick_s
        self.ticks = 0
        self._cross = np.zeros(fluid.n_links)
        self._handle = env.every(tick_s, self._tick)

    def _tick(self) -> None:
        dt = self.tick_s
        cross = self._cross
        for idx, link in self.shared_links.items():
            cross[idx] = link.coupling.take_foreground_pps(dt)
        fluid = self.fluid
        fluid.set_cross_traffic(cross)
        fluid.step(dt)
        util = fluid.link_utilization
        prob = fluid.link_drop_prob
        for idx, link in self.shared_links.items():
            link.coupling.set_background(util[idx], prob[idx])
        self.ticks += 1

    def cancel(self) -> None:
        """Stop ticking (used when a run ends before its horizon)."""
        self._handle.cancel()


@dataclass(frozen=True)
class FabricResult:
    """Outcome of one :class:`FabricSimulation` run.

    Goodputs are payload bits/s over the post-warmup measurement
    window.  ``aggregate`` = foreground + background; in ``des`` mode
    every flow is foreground and ``background_goodput_bps`` is 0.
    """

    mode: str                           # "des" | "hybrid"
    topology: str
    n_flows: int
    n_foreground: int
    n_background: int
    duration_s: float
    measure_s: float
    aggregate_goodput_bps: float
    foreground_goodput_bps: float
    background_goodput_bps: float
    per_flow_foreground_bps: Tuple[float, ...]
    foreground_drops: int
    coupled_drops: int
    fluid_losses: int
    coupler_ticks: int
    events_scheduled: int
    wall_s: float

    @property
    def aggregate_goodput_gbps(self) -> float:
        """Aggregate goodput in Gb/s."""
        return self.aggregate_goodput_bps / 1e9


class FabricSimulation:
    """One fabric workload: topology + flow pairs + execution mode.

    ``pairs`` lists ``(src_host, dst_host)`` per flow; flow *i* routes
    with ``flow_id=i`` (deterministic ECMP), so the same pair list maps
    onto identical paths in every mode — the property the hybrid-vs-DES
    validation relies on.  The first ``n_foreground`` pairs are the
    foreground set; in ``des`` mode every flow runs in the DES, in
    ``hybrid`` mode the rest advance in the fluid model.  ``auto``
    resolves to hybrid when allowed by ``REPRO_HYBRID`` and there is a
    background population, else to ``des``.
    """

    def __init__(self, topo: FabricTopology,
                 pairs: Sequence[Tuple[str, str]],
                 n_foreground: int = 8,
                 mode: str = "auto",
                 mss: int = 8948,
                 max_window_bytes: float = 256 * 1024,
                 stagger_s: float = 20e-6,
                 tick_s: Optional[float] = None,
                 seed: int = 1,
                 scheduler: Optional[str] = None):
        if not pairs:
            raise ProtocolError("need at least one flow pair")
        if n_foreground < 1:
            raise ProtocolError("need at least one foreground flow")
        if mode not in ("auto", "des", "hybrid"):
            raise ProtocolError(
                f"unknown mode {mode!r}; expected auto|des|hybrid")
        self.topo = topo
        self.pairs = list(pairs)
        self.n_flows = len(self.pairs)
        self.n_foreground = min(n_foreground, self.n_flows)
        if mode == "auto":
            mode = ("hybrid" if hybrid_enabled()
                    and self.n_flows > self.n_foreground else "des")
        self.mode = mode
        self.mss = mss
        self.max_window_bytes = max_window_bytes
        self.stagger_s = stagger_s
        self.seed = seed
        self.scheduler = scheduler
        self._tick_s = tick_s
        # deterministic per-flow routes, shared by both modes
        self.routes: List[List[int]] = [
            topo.route(src, dst, flow_id=i)
            for i, (src, dst) in enumerate(self.pairs)]

    # -- derived timing -----------------------------------------------------
    def _flow_timing(self, route: Sequence[int]) -> Tuple[float, float]:
        """(ack delay, RTT estimate) for a route, from the topology."""
        links = self.topo.links
        fwd_delay = sum(links[i].delay_s for i in route)
        ser = sum((self.mss + HEADER_BYTES) * 8.0 / links[i].rate_bps
                  for i in route)
        ack_delay = fwd_delay  # symmetric reverse path, negligible ack size
        return ack_delay, fwd_delay + ser + ack_delay

    def coupling_tick(self) -> float:
        """The coupling tick: env override, constructor, or derived."""
        override = hybrid_tick_override()
        if override is not None:
            return override
        if self._tick_s is not None:
            return self._tick_s
        rtts = [self._flow_timing(r)[1] for r in self.routes]
        return min(max(4.0 * max(rtts), 10e-6), 1e-3)

    # -- execution ----------------------------------------------------------
    def run(self, duration_s: float = 0.2,
            warmup_fraction: float = 0.3) -> FabricResult:
        """Run the workload and measure post-warmup goodput."""
        if duration_s <= 0:
            raise ProtocolError("duration must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ProtocolError("warmup fraction must be in [0, 1)")
        # wall_s is operator-facing reporting; it never enters the
        # cached/compared result rows
        wall_start = perf_counter()  # reprolint: disable=RPR002
        env = Environment(scheduler=self.scheduler)
        links = self.topo.links
        wmax_segments = max(2.0, self.max_window_bytes / self.mss)

        n_des = (self.n_flows if self.mode == "des" else self.n_foreground)
        des_links: Dict[int, DesLink] = {}

        def des_link(idx: int) -> DesLink:
            link = des_links.get(idx)
            if link is None:
                spec = links[idx]
                link = DesLink(env, idx, f"{spec.src}->{spec.dst}",
                               spec.rate_bps, spec.delay_s,
                               spec.queue_packets)
                des_links[idx] = link
            return link

        flows: List[FabricFlow] = []
        for i in range(n_des):
            route = [des_link(idx) for idx in self.routes[i]]
            ack_delay, rtt = self._flow_timing(self.routes[i])
            flows.append(FabricFlow(
                env, i, route, self.mss, wmax_segments,
                ack_delay_s=ack_delay, loss_detect_s=rtt,
                start_s=i * self.stagger_s))

        fluid: Optional[FluidFabric] = None
        coupler: Optional[FluidCoupler] = None
        n_background = self.n_flows - n_des
        if self.mode == "hybrid" and n_background > 0:
            cap_pps = [spec.rate_bps / ((self.mss + HEADER_BYTES) * 8.0)
                       for spec in links]
            bg_routes = self.routes[n_des:]
            bg_rtts = [self._flow_timing(r)[1] for r in bg_routes]
            fluid = FluidFabric(
                link_capacity_pps=cap_pps,
                link_queue_packets=[spec.queue_packets for spec in links],
                routes=bg_routes,
                base_rtt_s=bg_rtts,
                mss=self.mss,
                max_window_segments=wmax_segments,
                start_times=[(n_des + j) * self.stagger_s
                             for j in range(n_background)])
            for idx, link in des_links.items():
                link.coupling = QueueCoupling(link.name, seed=self.seed)
            coupler = FluidCoupler(env, fluid, des_links,
                                   tick_s=self.coupling_tick())

        # post-warmup measurement window
        warmup_s = duration_s * warmup_fraction
        snapshot = {"fg": [0] * n_des, "bg": 0.0, "at": 0.0}

        def take_snapshot() -> None:
            snapshot["fg"] = [f.delivered_bytes for f in flows]
            snapshot["bg"] = (fluid.aggregate_delivered_bits()
                              if fluid is not None else 0.0)
            snapshot["at"] = env.now

        if warmup_s > 0:
            env.schedule_call(warmup_s, take_snapshot)
        env.run(until=duration_s)
        if coupler is not None:
            coupler.cancel()
        if fluid is not None and fluid.now < duration_s - 1e-12:
            fluid.step(duration_s - fluid.now)

        measure_s = duration_s - snapshot["at"]
        per_flow = tuple(
            (f.delivered_bytes - base) * 8.0 / measure_s
            for f, base in zip(flows, snapshot["fg"]))
        fg_bps = sum(per_flow)
        bg_bps = ((fluid.aggregate_delivered_bits() - snapshot["bg"])
                  / measure_s if fluid is not None else 0.0)
        return FabricResult(
            mode=self.mode,
            topology=self.topo.name,
            n_flows=self.n_flows,
            n_foreground=n_des if self.mode == "des" else self.n_foreground,
            n_background=n_background if self.mode == "hybrid" else 0,
            duration_s=duration_s,
            measure_s=measure_s,
            aggregate_goodput_bps=fg_bps + bg_bps,
            foreground_goodput_bps=fg_bps,
            background_goodput_bps=bg_bps,
            per_flow_foreground_bps=per_flow,
            foreground_drops=sum(f.drops for f in flows),
            coupled_drops=sum(
                link.coupling.coupled_drops
                for link in des_links.values()
                if link.coupling is not None),
            fluid_losses=fluid.losses if fluid is not None else 0,
            coupler_ticks=coupler.ticks if coupler is not None else 0,
            events_scheduled=env.events_scheduled,
            wall_s=perf_counter() - wall_start)  # reprolint: disable=RPR002


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------

def incast_pairs(topo: FabricTopology, n_flows: int) -> List[Tuple[str, str]]:
    """``n_flows`` senders converging on one server (the first host).

    Senders cycle over the remaining hosts, so flow counts beyond the
    host count stack multiple flows per sender — the classic incast
    pattern congesting the server's edge downlink.
    """
    hosts = topo.hosts
    if len(hosts) < 2:
        raise TopologyError("incast needs at least two hosts")
    if n_flows < 1:
        raise ProtocolError("need at least one flow")
    server = hosts[0]
    senders = hosts[1:]
    return [(senders[i % len(senders)], server) for i in range(n_flows)]


def alltoall_pairs(topo: FabricTopology,
                   n_flows: int) -> List[Tuple[str, str]]:
    """``n_flows`` flows cycling over every ordered host pair.

    Pairs are enumerated stride-first — every host sends once (to its
    ``+1`` neighbour in host order), then once at stride 2, and so on —
    so even a small flow count exercises many sources and sinks at once
    (the MPI collective pattern), instead of one host fanning out.
    """
    hosts = topo.hosts
    n_hosts = len(hosts)
    if n_hosts < 2:
        raise TopologyError("all-to-all needs at least two hosts")
    if n_flows < 1:
        raise ProtocolError("need at least one flow")
    pairs: List[Tuple[str, str]] = []
    for i in range(n_flows):
        src = i % n_hosts
        stride = 1 + (i // n_hosts) % (n_hosts - 1)
        pairs.append((hosts[src], hosts[(src + stride) % n_hosts]))
    return pairs


def bisection_pairs(topo: FabricTopology,
                    n_flows: int) -> List[Tuple[str, str]]:
    """``n_flows`` flows crossing the fabric's host-order bisection.

    Hosts are split in half in builder order (for the torus that is the
    x-dimension cut; for the fat-tree, the first half of the pods) and
    paired with their mirror in the other half, alternating direction —
    the bisection-bandwidth workload.
    """
    hosts = topo.hosts
    if len(hosts) < 2:
        raise TopologyError("bisection needs at least two hosts")
    if n_flows < 1:
        raise ProtocolError("need at least one flow")
    half = len(hosts) // 2
    lo, hi = hosts[:half], hosts[half:2 * half]
    pairs: List[Tuple[str, str]] = []
    for i in range(n_flows):
        j = i % half
        if (i // half) % 2 == 0:
            pairs.append((lo[j], hi[j]))
        else:
            pairs.append((hi[j], lo[j]))
    return pairs
