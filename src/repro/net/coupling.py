"""Shared-queue coupling between DES queues and the fluid background.

In hybrid fluid+DES mode a queue (a fabric link's output queue, a
:class:`~repro.net.switch.SwitchPort`, a WAN
:class:`~repro.net.wanpath.Router`) is *shared*: packet-level foreground
traffic flows through it in the DES while an aggregate of fluid
background flows loads the same buffer from the side.  A
:class:`QueueCoupling` object carries the two halves of that handoff:

* **fluid -> DES**: :attr:`background_utilization` scales the queue's
  effective service rate (the fluid share of the line), and
  :attr:`background_drop_prob` early-drops foreground packets with the
  overflow probability the fluid queue is experiencing — so foreground
  TCP sees the congestion the background creates;
* **DES -> fluid**: the queue reports every serviced foreground packet
  via :meth:`record_service`; the coupler drains the counters each tick
  with :meth:`take_foreground_pps` and injects them into the fluid
  model as cross traffic — so the background yields the capacity the
  foreground actually uses.

Coupled drops use a dedicated, seeded :class:`random.Random` stream per
queue, so hybrid runs are bit-reproducible for a given seed and
independent of every other RNG in the simulation.
"""

from __future__ import annotations

import zlib
from random import Random

__all__ = ["QueueCoupling"]


class QueueCoupling:
    """Coupling state for one shared queue (see module docstring)."""

    __slots__ = ("name", "background_utilization", "background_drop_prob",
                 "foreground_packets", "foreground_bytes", "coupled_drops",
                 "_rng", "_ema_alpha")

    def __init__(self, name: str, seed: int = 0, ema_alpha: float = 0.5):
        self.name = name
        #: fluid share of the line rate, [0, 0.95]; smoothed via EMA so
        #: the tick-to-tick handoff cannot oscillate
        self.background_utilization = 0.0
        #: probability a foreground packet is dropped by background
        #: queue pressure, [0, 0.95]
        self.background_drop_prob = 0.0
        #: foreground packets serviced since the last coupler drain
        self.foreground_packets = 0
        #: foreground payload bytes serviced since the last drain
        self.foreground_bytes = 0
        #: foreground packets lost to background pressure (lifetime)
        self.coupled_drops = 0
        self._rng = Random(zlib.crc32(name.encode()) ^ seed)
        self._ema_alpha = float(ema_alpha)

    # -- fluid -> DES -------------------------------------------------------
    def set_background(self, utilization: float, drop_prob: float) -> None:
        """Install the fluid link state for the next tick (EMA-smoothed)."""
        a = self._ema_alpha
        self.background_utilization += a * (
            min(max(utilization, 0.0), 0.95) - self.background_utilization)
        self.background_drop_prob += a * (
            min(max(drop_prob, 0.0), 0.95) - self.background_drop_prob)

    def admit(self) -> bool:
        """Coin flip for one foreground packet against the background
        drop probability; False means the packet is lost to coupling."""
        p = self.background_drop_prob
        if p > 0.0 and self._rng.random() < p:
            self.coupled_drops += 1
            return False
        return True

    def service_scale(self) -> float:
        """Fraction of the line rate left to the foreground."""
        return 1.0 - self.background_utilization

    # -- DES -> fluid -------------------------------------------------------
    def record_service(self, nbytes: int) -> None:
        """Account one serviced foreground packet of ``nbytes``."""
        self.foreground_packets += 1
        self.foreground_bytes += nbytes

    def take_foreground_pps(self, dt: float) -> float:
        """Mean foreground packet rate since the last call; resets."""
        pps = self.foreground_packets / dt if dt > 0 else 0.0
        self.foreground_packets = 0
        self.foreground_bytes = 0
        return pps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QueueCoupling {self.name!r} "
                f"bg={self.background_utilization:.3f} "
                f"p={self.background_drop_prob:.3f}>")
