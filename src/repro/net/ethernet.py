"""Point-to-point Ethernet links (full duplex, fibre).

10GbE operates only over fibre and only in full duplex (paper §1), so a
"cable" is two independent unidirectional :class:`EthernetLink` objects.
Each link serializes frames FIFO at line rate, then delivers them after
the propagation delay.  Delivery targets implement ``receive_frame(skb)``.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.chaos.hooks import register_target as register_chaos_target
from repro.errors import LinkError
from repro.net.train import train_batching_enabled
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor
from repro.sim.resources import Resource
from repro.sim.timeline import FifoTimeline
from repro.units import Gbps, transfer_time

__all__ = ["EthernetLink", "FrameSink", "wire_time"]

#: Propagation speed in fibre (~2/3 c).
FIBRE_M_PER_S = 2.0e8

#: Default patch-cable length for back-to-back setups (metres).
DEFAULT_CABLE_M = 10.0


def wire_time(skb: SkBuff, rate_bps: float) -> float:
    """Serialization time of a frame including preamble and IFG."""
    return transfer_time(skb.wire_bytes, rate_bps)


class FrameSink(Protocol):
    """Anything that can accept a delivered frame."""

    def receive_frame(self, skb: SkBuff) -> None:  # pragma: no cover
        """Accept one delivered frame."""
        ...


class EthernetLink:
    """One direction of a fibre link.

    Parameters
    ----------
    rate_bps:
        Line rate (10 Gb/s for 10GbE, 1 Gb/s for GbE clients).
    length_m:
        Fibre length; sets propagation delay.
    mtu:
        Frames whose IP-layer size exceeds this are rejected — a
        misconfigured jumbo sender fails loudly instead of silently.
    """

    def __init__(self, env: Environment, rate_bps: float = Gbps(10),
                 length_m: float = DEFAULT_CABLE_M,
                 mtu: int = 16000, name: str = "link"):
        if rate_bps <= 0:
            raise LinkError(f"{name}: rate must be positive")
        if length_m < 0:
            raise LinkError(f"{name}: length cannot be negative")
        self.env = env
        self.rate_bps = rate_bps
        self.propagation_s = length_m / FIBRE_M_PER_S
        self.mtu = mtu
        self.name = name
        self._sink: Optional[FrameSink] = None
        self._batched = train_batching_enabled()
        self._tx = Resource(env, capacity=1, name=f"{name}.tx")
        self._txline = FifoTimeline(env, capacity=1, name=f"{name}.txline")
        self.frames = CounterMonitor(env, name=f"{name}.frames")
        self.bytes = CounterMonitor(env, name=f"{name}.bytes")
        register_chaos_target("link", name, self)

    def connect(self, sink: FrameSink) -> None:
        """Attach the receiving end."""
        self._sink = sink

    @property
    def sink(self) -> Optional[FrameSink]:
        """The attached receiver (None while unconnected)."""
        return self._sink

    def transmit(self, skb: SkBuff) -> None:
        """Begin transmitting ``skb`` (returns immediately; the frame is
        serialized FIFO and delivered after propagation)."""
        if self._batched:
            self.charge_frame(skb)
            return
        self._check(skb)
        self.env.process(self._send(skb), name=f"{self.name}.tx#{skb.ident}")

    def charge_frame(self, skb: SkBuff) -> float:
        """Train-batched transmit: commit the FIFO serialization hold
        arithmetically and schedule the delivery; returns the absolute
        serialization-end instant so queue drains can chain off it.  The
        frame hits the sink at exactly the same time the event-based
        path delivers it."""
        self._check(skb)
        env = self.env
        _, end = self._txline.charge(wire_time(skb, self.rate_bps))
        # ``end`` equals the legacy wire-timeout fire instant bit-exactly
        # (each hold is one start+hold addition, like the engine's
        # now+delay); the delivery target replicates its +propagation.
        env.schedule_call_at(end + self.propagation_s,
                             self._deliver, skb, end)
        return end

    def _deliver(self, skb: SkBuff, serialized_at: float) -> None:
        self.frames.add(time=serialized_at)
        self.bytes.add(skb.wire_bytes, time=serialized_at)
        self._sink.receive_frame(skb)

    def send(self, skb: SkBuff):
        """Blocking variant: a process generator that completes when the
        frame has finished serializing (``yield from link.send(skb)``).
        Switch ports and routers use this so their queues, not the
        link's internal arbiter, absorb backlog — which is where
        drop-tail must happen."""
        self._check(skb)
        return self._send(skb)

    def _check(self, skb: SkBuff) -> None:
        if self._sink is None:
            raise LinkError(f"{self.name}: transmit on unconnected link")
        ip_size = skb.payload + skb.headers
        if ip_size > self.mtu:
            raise LinkError(
                f"{self.name}: frame of {ip_size} bytes exceeds MTU {self.mtu}")

    def _send(self, skb: SkBuff):
        req = self._tx.request()
        yield req
        yield self.env._fast_timeout(wire_time(skb, self.rate_bps))
        self._tx.release(req)
        self.frames.add()
        self.bytes.add(skb.wire_bytes)
        sink = self._sink
        self.env.schedule_call(self.propagation_s, sink.receive_frame, skb)

    def utilization(self) -> float:
        """Busy fraction of the serializer since t=0."""
        # Exactly one of the two accountings is in use per mode.
        return self._tx.utilization() + self._txline.utilization()
