"""Fault injection taps: deterministic loss, duplication, reordering.

The LAN testbeds are lossless, so TCP's recovery machinery would go
untested without these.  A tap wraps a link's sink and perturbs the
frame stream according to a deterministic plan — deterministic so every
failing case replays exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.errors import TopologyError
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment

__all__ = ["LossTap", "DuplicateTap", "ReorderTap"]


class _Tap:
    """Base: splice into a connected link."""

    def __init__(self, env: Environment, link, kinds: Iterable[str] = ("data",)):
        if link.sink is None:
            raise TopologyError("tap must attach after the link is connected")
        self.env = env
        self.inner = link.sink
        self.kinds = set(kinds)
        self._count = 0
        link.connect(self)

    def _matches(self, skb: SkBuff) -> bool:
        return skb.kind in self.kinds

    def receive_frame(self, skb: SkBuff) -> None:  # pragma: no cover
        raise NotImplementedError


class LossTap(_Tap):
    """Drops the frames whose (per-kind) arrival index is in ``drops``.

    Indices count only matching frames, starting at 0.  Retransmissions
    count like any other frame, so a dropped index can be retried
    successfully.
    """

    def __init__(self, env: Environment, link, drops: Iterable[int],
                 kinds: Iterable[str] = ("data",)):
        super().__init__(env, link, kinds)
        self.drops: Set[int] = set(drops)
        self.dropped: List[int] = []

    def receive_frame(self, skb: SkBuff) -> None:
        """Drop the frame when its index is planned; else pass through."""
        if self._matches(skb):
            index = self._count
            self._count += 1
            if index in self.drops:
                self.dropped.append(skb.ident)
                return
        self.inner.receive_frame(skb)


class DuplicateTap(_Tap):
    """Delivers the frames at the given indices twice (stale copies)."""

    def __init__(self, env: Environment, link, duplicates: Iterable[int],
                 kinds: Iterable[str] = ("data",)):
        super().__init__(env, link, kinds)
        self.duplicates: Set[int] = set(duplicates)
        self.duplicated: List[int] = []

    def receive_frame(self, skb: SkBuff) -> None:
        """Pass through; deliver a stale copy when planned."""
        deliver_twice = False
        if self._matches(skb):
            if self._count in self.duplicates:
                deliver_twice = True
                self.duplicated.append(skb.ident)
            self._count += 1
        self.inner.receive_frame(skb)
        if deliver_twice:
            clone = skb.copy_for_retransmit()
            clone.meta.update(skb.meta)
            self.inner.receive_frame(clone)


class ReorderTap(_Tap):
    """Holds the frames at the given indices for ``delay_s``, letting
    later frames overtake them."""

    def __init__(self, env: Environment, link, holds: Iterable[int],
                 delay_s: float = 50e-6,
                 kinds: Iterable[str] = ("data",)):
        if delay_s < 0:
            raise TopologyError("hold delay cannot be negative")
        super().__init__(env, link, kinds)
        self.holds: Set[int] = set(holds)
        self.delay_s = delay_s
        self.held: List[int] = []

    def receive_frame(self, skb: SkBuff) -> None:
        """Hold planned frames for ``delay_s``; pass others through."""
        if self._matches(skb):
            index = self._count
            self._count += 1
            if index in self.holds:
                self.held.append(skb.ident)
                self.env.schedule_call(self.delay_s,
                                       self.inner.receive_frame, skb)
                return
        self.inner.receive_frame(skb)
