"""Deprecated alias for :mod:`repro.chaos.taps`.

The deterministic fault taps (:class:`~repro.chaos.taps.LossTap`,
:class:`~repro.chaos.taps.DuplicateTap`,
:class:`~repro.chaos.taps.ReorderTap`) moved into the chaos subsystem,
which also adds declarative :class:`~repro.chaos.plan.FaultPlan`
injection and recovery scoring (see ``docs/RESILIENCE.md``).  This shim
keeps old imports working with a :class:`DeprecationWarning`; new code
should import from :mod:`repro.chaos` instead.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["LossTap", "DuplicateTap", "ReorderTap"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        warnings.warn(
            f"repro.net.faults.{name} has moved to repro.chaos.taps; "
            f"import it from repro.chaos instead",
            DeprecationWarning, stacklevel=2)
        from repro.chaos import taps
        return getattr(taps, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
