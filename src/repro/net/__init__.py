"""Network fabric: Ethernet links, switches, WAN circuits and generated
cluster/grid fabrics (fat-tree, torus) with the hybrid fluid+DES mode."""

from repro.net.coupling import QueueCoupling
from repro.net.ethernet import EthernetLink, wire_time
from repro.net.fabric import (FabricLinkSpec, FabricTopology, build_fat_tree,
                              build_torus3d)
from repro.net.switch import Switch, SwitchPort, FASTIRON_1500
from repro.net.train import SegmentTrain, train_batching_enabled
from repro.net.wanpath import PosCircuit, Router, WanPath

# Topology builders are re-exported lazily: topology.py imports the
# adapter classes from repro.hw, which themselves import repro.net.train,
# so an eager import here would be circular.
_TOPOLOGY_EXPORTS = ("BackToBack", "ThroughSwitch", "MultiFlow",
                     "build_wan_path")
# The hybrid mode is lazy too — it pulls in NumPy via repro.tcp.fluid,
# which plain Ethernet/switch users should not pay for.
_HYBRID_EXPORTS = ("FabricSimulation", "FabricResult", "FluidCoupler",
                   "hybrid_enabled", "incast_pairs", "alltoall_pairs",
                   "bisection_pairs")

__all__ = [
    "EthernetLink",
    "wire_time",
    "QueueCoupling",
    "FabricLinkSpec",
    "FabricTopology",
    "build_fat_tree",
    "build_torus3d",
    "Switch",
    "SwitchPort",
    "FASTIRON_1500",
    "SegmentTrain",
    "train_batching_enabled",
    "PosCircuit",
    "Router",
    "WanPath",
    "BackToBack",
    "ThroughSwitch",
    "MultiFlow",
    "build_wan_path",
    "FabricSimulation",
    "FabricResult",
    "FluidCoupler",
    "hybrid_enabled",
    "incast_pairs",
    "alltoall_pairs",
    "bisection_pairs",
]


def __getattr__(name):
    if name in _TOPOLOGY_EXPORTS:
        from repro.net import topology
        return getattr(topology, name)
    if name in _HYBRID_EXPORTS:
        from repro.net import hybrid
        return getattr(hybrid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
