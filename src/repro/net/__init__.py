"""Network fabric: Ethernet links, switches and WAN circuits."""

from repro.net.ethernet import EthernetLink, wire_time
from repro.net.switch import Switch, SwitchPort, FASTIRON_1500
from repro.net.train import SegmentTrain, train_batching_enabled
from repro.net.wanpath import PosCircuit, Router, WanPath

# Topology builders are re-exported lazily: topology.py imports the
# adapter classes from repro.hw, which themselves import repro.net.train,
# so an eager import here would be circular.
_TOPOLOGY_EXPORTS = ("BackToBack", "ThroughSwitch", "MultiFlow",
                     "build_wan_path")

__all__ = [
    "EthernetLink",
    "wire_time",
    "Switch",
    "SwitchPort",
    "FASTIRON_1500",
    "SegmentTrain",
    "train_batching_enabled",
    "PosCircuit",
    "Router",
    "WanPath",
    "BackToBack",
    "ThroughSwitch",
    "MultiFlow",
    "build_wan_path",
]


def __getattr__(name):
    if name in _TOPOLOGY_EXPORTS:
        from repro.net import topology
        return getattr(topology, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
