"""Network fabric: Ethernet links, switches and WAN circuits."""

from repro.net.ethernet import EthernetLink, wire_time
from repro.net.switch import Switch, SwitchPort, FASTIRON_1500
from repro.net.wanpath import PosCircuit, Router, WanPath
from repro.net.topology import (
    BackToBack,
    ThroughSwitch,
    MultiFlow,
    build_wan_path,
)

__all__ = [
    "EthernetLink",
    "wire_time",
    "Switch",
    "SwitchPort",
    "FASTIRON_1500",
    "PosCircuit",
    "Router",
    "WanPath",
    "BackToBack",
    "ThroughSwitch",
    "MultiFlow",
    "build_wan_path",
]
