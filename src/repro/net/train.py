"""Segment trains: burst-batched frame handling for the data path.

The paper's whole argument is that per-packet fixed costs dominate
10GbE hosts, and that the cure is amortization (interrupt coalescing,
jumbo frames).  The simulator has the same disease: in the legacy path
every segment of a multi-gigabit flow costs a queue put/get pair, a
process wakeup, and a request/grant/release cascade per resource it
crosses.  Train batching applies the same amortization idea to the
simulator itself:

* the TCP sender stamps each burst of back-to-back segments (one pump
  wakeup) with a train id, so the burst travels as one logical unit;
* the NIC transmit engine drains a whole backlog with one callback
  chain — one scheduled event per frame boundary instead of the
  put/get/DMA-request/traverse/process cascade — computing every
  per-frame DMA and wire timestamp arithmetically on
  :class:`~repro.sim.timeline.FifoTimeline` servers;
* switch ports and WAN routers forward a queued train the same way,
  splitting it only where drop-tail (or a fault tap) actually removes a
  frame.

Batching changes *when Python runs*, never *when things happen*: every
grant, serialization and delivery instant equals the legacy event
cascade's, so byte counts, ACK clocking, cwnd evolution and reported
throughput/latency are bit-identical with batching on or off (the
property-based tests assert this).  The ``REPRO_TRAIN`` environment
variable selects the path: unset/``1`` = batched, ``0`` = legacy.
Components read the knob when they are constructed.
"""

from __future__ import annotations

from typing import Deque, Optional

__all__ = ["BacklogView", "SegmentTrain", "TRAIN_ENV",
           "train_batching_enabled"]

#: environment variable selecting the batched (default) or legacy path
TRAIN_ENV = "REPRO_TRAIN"


def train_batching_enabled() -> bool:
    """True when the train-batched data path is selected (the default)."""
    from repro.core.knobs import env_value  # lazy: core imports net
    return env_value(TRAIN_ENV)


class BacklogView:
    """``level``/``capacity`` façade over a batched engine's backlog.

    The legacy queues are :class:`~repro.sim.resources.Store` objects
    whose ``level`` excludes the item the drain loop holds in service;
    batched engines keep that item out of their backlog deque, so
    ``len(backlog)`` reports the same occupancy.  Netstat-style tools,
    traces and drop-tail checks read this instead of the Store.
    """

    __slots__ = ("_backlog", "capacity")

    def __init__(self, backlog: Deque, capacity: int):
        self._backlog = backlog
        self.capacity = capacity

    @property
    def level(self) -> int:
        return len(self._backlog)


class SegmentTrain:
    """One burst of back-to-back frames handled as a unit.

    The NIC transmit engine opens a train when its backlog goes from
    empty to busy and closes it when the backlog drains; every frame
    DMA'd without an intervening idle gap belongs to the same train.
    The sender cooperates by stamping segments of one pump burst with a
    shared train id (``skb.meta["train"]``), which keeps train
    boundaries meaningful even when the NIC interleaves stack-generated
    frames.
    """

    __slots__ = ("opened_at", "frames", "wire_frames", "closed_at")

    def __init__(self, opened_at: float):
        self.opened_at = opened_at
        self.frames = 0        # skbs handed to the DMA engine
        self.wire_frames = 0   # frames on the wire (TSO splits included)
        self.closed_at: Optional[float] = None

    def add(self, wire_frames: int = 1) -> None:
        """Account one DMA'd skb that produced ``wire_frames`` frames."""
        self.frames += 1
        self.wire_frames += wire_frames

    def close(self, at_time: float) -> None:
        """Mark the train complete (backlog drained)."""
        self.closed_at = at_time

    def __len__(self) -> int:
        return self.frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.closed_at is None else "closed"
        return (f"<SegmentTrain {state} frames={self.frames} "
                f"wire={self.wire_frames}>")
