"""WAN substrate: POS circuits and routers for the §4 record run.

The paper's path: Sunnyvale --(Level3 OC-192 POS)--> StarLight Chicago
--(transatlantic LHCnet OC-48 POS)--> CERN Geneva, crossing a Cisco GSR
12406, a Juniper T640 (TeraGrid), a Cisco 7609 and a Cisco 7606, with a
measured RTT of 180 ms.  The OC-48 segment (2.5 Gb/s) is the bottleneck;
packet loss "is due exclusively to congestion", i.e. to drop-tail queue
overflow at the bottleneck router.

Circuit lengths below are *route* kilometres chosen to reproduce the
measured 180 ms RTT over fibre at 2e8 m/s (great-circle distance is
shorter than real routing).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.chaos.hooks import register_target as register_chaos_target
from repro.errors import LinkError, TopologyError
from repro.net.ethernet import FrameSink
from repro.net.train import BacklogView, train_batching_enabled
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor
from repro.sim.resources import Resource, Store
from repro.sim.timeline import FifoTimeline
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_metrics, register_trace
from repro.units import Gbps, us

__all__ = ["PosCircuit", "Router", "WanPath",
           "OC192_BPS", "OC48_BPS", "SONET_PAYLOAD_FRACTION", "POS_OVERHEAD"]

#: SONET line rates.
OC192_BPS = Gbps(9.953)
OC48_BPS = Gbps(2.488)

#: Fraction of the SONET line rate available to the PPP payload
#: (section + line + path overhead): OC-48 carries ~2.396 Gb/s of POS
#: payload, which is what makes the paper's 2.38 Gb/s "roughly 99%
#: payload efficiency".
SONET_PAYLOAD_FRACTION = 0.963

#: PPP/HDLC framing bytes per packet on a POS circuit.
POS_OVERHEAD = 9


class PosCircuit:
    """One direction of a packet-over-SONET circuit."""

    def __init__(self, env: Environment, line_bps: float, length_km: float,
                 name: str = "pos",
                 trace: Optional[TraceBuffer] = None):
        if line_bps <= 0:
            raise LinkError(f"{name}: line rate must be positive")
        if length_km < 0:
            raise LinkError(f"{name}: length cannot be negative")
        self.env = env
        self.line_bps = line_bps
        self.payload_bps = line_bps * SONET_PAYLOAD_FRACTION
        self.propagation_s = length_km * 1000.0 / 2.0e8
        self.name = name
        self._sink: Optional[FrameSink] = None
        self._batched = train_batching_enabled()
        self._tx = Resource(env, capacity=1, name=f"{name}.tx")
        self._txline = FifoTimeline(env, capacity=1, name=f"{name}.txline")
        self.frames = CounterMonitor(env, name=f"{name}.frames")
        self.trace = trace
        metrics = active_metrics()
        self._c_tx = (metrics.counter("pos.tx.frames", circuit=name)
                      if metrics is not None else None)
        register_chaos_target("link", name, self)

    def connect(self, sink: FrameSink) -> None:
        """Attach the far end."""
        self._sink = sink

    @property
    def sink(self) -> Optional[FrameSink]:
        """The attached receiver (None while unconnected) — the same
        tap-compatible accessor :class:`~repro.net.ethernet.
        EthernetLink` exposes, so fault taps can splice into WAN
        circuits too."""
        return self._sink

    def serialization_time(self, skb: SkBuff) -> float:
        """Seconds to clock one packet onto the circuit."""
        return (skb.payload + skb.headers + POS_OVERHEAD) * 8.0 / self.payload_bps

    def transmit(self, skb: SkBuff) -> None:
        """Serialize FIFO, deliver after propagation (fire-and-forget)."""
        if self._sink is None:
            raise LinkError(f"{self.name}: transmit on unconnected circuit")
        if self._batched:
            self.charge_frame(skb)
            return
        self.env.process(self._send(skb), name=f"{self.name}#{skb.ident}")

    def charge_frame(self, skb: SkBuff) -> float:
        """Train-batched transmit: commit the FIFO serialization hold
        arithmetically; returns the serialization-end instant (equal to
        the legacy wire-timeout fire time bit-exactly)."""
        if self._sink is None:
            raise LinkError(f"{self.name}: transmit on unconnected circuit")
        env = self.env
        _, end = self._txline.charge(self.serialization_time(skb))
        env.schedule_call_at(end + self.propagation_s,
                             self._deliver, skb, end)
        return end

    def _deliver(self, skb: SkBuff, serialized_at: float) -> None:
        self.frames.add(time=serialized_at)
        if self._c_tx is not None:
            self._c_tx.inc()
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(serialized_at, "pos.tx", skb.ident,
                       circuit=self.name, nbytes=skb.frame_bytes)
        self._sink.receive_frame(skb)

    def send(self, skb: SkBuff):
        """Blocking variant (see :meth:`EthernetLink.send`)."""
        if self._sink is None:
            raise LinkError(f"{self.name}: transmit on unconnected circuit")
        return self._send(skb)

    def _send(self, skb: SkBuff):
        req = self._tx.request()
        yield req
        yield self.env._fast_timeout(self.serialization_time(skb))
        self._tx.release(req)
        self.frames.add()
        if self._c_tx is not None:
            self._c_tx.inc()
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self.env.now, "pos.tx", skb.ident,
                       circuit=self.name, nbytes=skb.frame_bytes)
        self.env.schedule_call(self.propagation_s,
                               self._sink.receive_frame, skb)

    def utilization(self) -> float:
        """Busy fraction of the circuit."""
        # Exactly one of the two accountings is in use per mode.
        return self._tx.utilization() + self._txline.utilization()


class Router:
    """A drop-tail output-queued router hop.

    Frames arriving via :meth:`receive_frame` are queued for the
    ``egress`` circuit; when the queue is full the frame is dropped —
    the congestion signal TCP reacts to in §4.
    """

    def __init__(self, env: Environment, egress, name: str = "router",
                 queue_frames: int = 1024,
                 forwarding_latency_s: float = us(20.0),
                 trace: Optional[TraceBuffer] = None):
        if queue_frames < 1:
            raise TopologyError(f"{name}: queue must hold at least one frame")
        self.env = env
        self.egress = egress
        self.name = name
        self._batched = train_batching_enabled()
        #: hybrid-mode shared-queue coupling (None outside hybrid runs)
        self.coupling = None
        if self._batched:
            self._backlog: Deque[SkBuff] = deque()
            self._busy = False
            self.queue = BacklogView(self._backlog, queue_frames)
        else:
            self.queue = Store(env, capacity=queue_frames, name=f"{name}.q")
        self.forwarding_latency_s = forwarding_latency_s
        self.drops = CounterMonitor(env, name=f"{name}.drops")
        self.forwarded = CounterMonitor(env, name=f"{name}.fwd")
        self.trace = trace
        metrics = active_metrics()
        if metrics is not None:
            self._c_fwd = metrics.counter("wan.forwarded", router=name)
            self._c_drop = metrics.counter("wan.drops", router=name)
        else:
            self._c_fwd = self._c_drop = None
        register_chaos_target("router", name, self)
        if not self._batched:
            env.process(self._drain(), name=f"{name}.drain")

    def receive_frame(self, skb: SkBuff) -> None:
        """Lookup/processing latency, then queue or drop.

        The forwarding latency is pipelined (it delays each frame but
        does not occupy the egress), so it never caps throughput."""
        self.env.schedule_call(self.forwarding_latency_s,
                               self._enqueue, skb)

    def couple(self, coupling) -> None:
        """Attach a hybrid-mode :class:`~repro.net.coupling.QueueCoupling`:
        background pressure early-drops frames at admission, forwarded
        frames are reported back as fluid cross traffic."""
        self.coupling = coupling

    def _enqueue(self, skb: SkBuff) -> None:
        trace = self.trace
        coupling = self.coupling
        if self.queue.level >= self.queue.capacity or \
                (coupling is not None and not coupling.admit()):
            self.drops.add()
            if self._c_drop is not None:
                self._c_drop.inc()
            if trace is not None and trace.enabled:
                trace.post(self.env.now, "wan.drop", skb.ident,
                           router=self.name, qlen=self.queue.level)
            return
        if trace is not None and trace.enabled:
            trace.post(self.env.now, "wan.enqueue", skb.ident,
                       router=self.name, qlen=self.queue.level)
        if not self._batched:
            self.queue.put(skb)
            return
        if self._busy:
            self._backlog.append(skb)
        else:
            # One zero-delay hop: the legacy drain's Store.get wakeup.
            self._busy = True
            self.env.schedule_call(0.0, self._service, skb)

    # -- train-batched drain ------------------------------------------------------
    def _service(self, skb: SkBuff) -> None:
        end = self.egress.charge_frame(skb)
        self.env.schedule_call_at(end, self._serialized, skb)

    def _serialized(self, skb: SkBuff) -> None:
        self.forwarded.add()
        if self._c_fwd is not None:
            self._c_fwd.inc()
        if self.coupling is not None:
            self.coupling.record_service(skb.wire_bytes)
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.post(self.env.now, "wan.forward", skb.ident,
                       router=self.name)
        if self._backlog:
            self._service(self._backlog.popleft())
        else:
            self._busy = False

    def _drain(self):
        while True:
            skb = yield self.queue.get()
            # block on the egress serializer: backlog lives in *this*
            # queue, where drop-tail applies
            yield from self.egress.send(skb)
            self.forwarded.add()
            if self._c_fwd is not None:
                self._c_fwd.inc()
            if self.coupling is not None:
                self.coupling.record_service(skb.wire_bytes)
            trace = self.trace
            if trace is not None and trace.enabled:
                trace.post(self.env.now, "wan.forward", skb.ident,
                           router=self.name)

    @property
    def occupancy(self) -> int:
        """Frames currently queued."""
        return self.queue.level


class WanPath:
    """One direction of the Sunnyvale—Geneva path.

    ``head`` is the :class:`FrameSink` a host NIC should transmit into;
    the final circuit is connected to the receiving host by the caller
    via :meth:`connect`.
    """

    def __init__(self, env: Environment, name: str = "wan",
                 bottleneck_queue_frames: int = 1024,
                 oc192_km: float = 5000.0, oc48_km: float = 13000.0):
        self.env = env
        self.name = name
        self.trace = TraceBuffer(enabled=False)
        register_trace(name, self.trace)
        # Sunnyvale -> Chicago: OC-192, entered through the GSR 12406.
        self.oc192 = PosCircuit(env, OC192_BPS, oc192_km, name=f"{name}.oc192",
                                trace=self.trace)
        # Chicago -> Geneva: OC-48, the bottleneck, entered through the
        # TeraGrid T640 whose output queue is where congestion loss lives.
        self.oc48 = PosCircuit(env, OC48_BPS, oc48_km, name=f"{name}.oc48",
                               trace=self.trace)
        self.ingress_router = Router(env, self.oc192, name=f"{name}.gsr12406",
                                     queue_frames=4096, trace=self.trace)
        self.bottleneck_router = Router(env, self.oc48, name=f"{name}.t640",
                                        queue_frames=bottleneck_queue_frames,
                                        trace=self.trace)
        self.oc192.connect(self.bottleneck_router)

    @property
    def head(self) -> FrameSink:
        """Where the sending host's NIC should deliver frames."""
        return self.ingress_router

    def connect(self, sink: FrameSink) -> None:
        """Attach the receiving host's NIC at Geneva."""
        self.oc48.connect(sink)

    @property
    def propagation_s(self) -> float:
        """One-way propagation of the whole path."""
        return self.oc192.propagation_s + self.oc48.propagation_s

    @property
    def bottleneck_bps(self) -> float:
        """Payload rate of the slowest circuit."""
        return min(self.oc192.payload_bps, self.oc48.payload_bps)

    @property
    def drops(self) -> int:
        """Congestion drops along the path."""
        return int(self.ingress_router.drops.total
                   + self.bottleneck_router.drops.total)
