"""Topology builders for the paper's test environments (Fig. 2 and §4).

* :class:`BackToBack`   — Fig. 2(a): two hosts on a crossover fibre.
* :class:`ThroughSwitch`— Fig. 2(b): two hosts through the FastIron 1500.
* :class:`MultiFlow`    — Fig. 2(c): many clients aggregated through the
  switch into one (or two) server adapters.
* :func:`build_wan_path`— §4: Sunnyvale and Geneva hosts joined by the
  OC-192/OC-48 path in both directions.

Generated cluster/grid fabrics (k-ary fat-tree, 3-D torus) with
deterministic ECMP routing live in :mod:`repro.net.fabric` and are
re-exported here: :func:`build_fat_tree`, :func:`build_torus3d`,
:class:`FabricTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import TuningConfig
from repro.errors import TopologyError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.host import Host
from repro.hw.nic import GigAdapter, TenGigAdapter
from repro.hw.presets import GBE_HOST, HostSpec, PE2650, WAN_HOST
from repro.net.ethernet import DEFAULT_CABLE_M, EthernetLink
from repro.net.fabric import (FabricLinkSpec, FabricTopology, build_fat_tree,
                              build_torus3d)
from repro.net.switch import FASTIRON_1500, Switch, SwitchModel
from repro.net.wanpath import WanPath
from repro.sim.engine import Environment
from repro.units import Gbps

__all__ = ["BackToBack", "ThroughSwitch", "MultiFlow", "WanTestbed",
           "build_wan_path", "FabricLinkSpec", "FabricTopology",
           "build_fat_tree", "build_torus3d"]


def _duplex(env: Environment, a, b, rate_bps: float, length_m: float,
            mtu: int, name: str) -> Tuple[EthernetLink, EthernetLink]:
    """Two unidirectional links forming a full-duplex cable a<->b."""
    ab = EthernetLink(env, rate_bps=rate_bps, length_m=length_m,
                      mtu=mtu, name=f"{name}.fwd")
    ba = EthernetLink(env, rate_bps=rate_bps, length_m=length_m,
                      mtu=mtu, name=f"{name}.rev")
    a.set_egress(ab)
    ab.connect(b)
    b.set_egress(ba)
    ba.connect(a)
    return ab, ba


@dataclass
class BackToBack:
    """Fig. 2(a): direct single flow between two hosts.

    Build with :meth:`create`; hosts are ``.a`` (sender side in the
    paper's tests) and ``.b``.
    """

    env: Environment
    a: Host
    b: Host
    links: Tuple[EthernetLink, EthernetLink]

    @classmethod
    def create(cls, env: Environment, config: TuningConfig,
               spec: HostSpec = PE2650,
               spec_b: Optional[HostSpec] = None,
               config_b: Optional[TuningConfig] = None,
               cable_m: float = DEFAULT_CABLE_M,
               rate_bps: float = Gbps(10),
               calibration: Calibration = DEFAULT_CALIBRATION) -> "BackToBack":
        """Two hosts joined by a crossover fibre.

        ``rate_bps`` selects the adapter generation: 10 Gb/s (default)
        or 1 Gb/s for a GbE reference pair (the §3.5.4 baseline).
        """
        a = Host(env, spec, config, name="hostA", calibration=calibration)
        b = Host(env, spec_b or spec, config_b or config, name="hostB",
                 calibration=calibration)
        adapter_cls = GigAdapter if rate_bps == Gbps(1) else TenGigAdapter
        nic_a = adapter_cls(env, a, address="hostA.eth0")
        nic_b = adapter_cls(env, b, address="hostB.eth0")
        mtu = max(a.config.mtu, b.config.mtu)
        links = _duplex(env, nic_a, nic_b, rate_bps, cable_m, mtu, "xover")
        return cls(env=env, a=a, b=b, links=links)


@dataclass
class ThroughSwitch:
    """Fig. 2(b): indirect single flow through the FastIron 1500."""

    env: Environment
    a: Host
    b: Host
    switch: Switch

    @classmethod
    def create(cls, env: Environment, config: TuningConfig,
               spec: HostSpec = PE2650,
               model: SwitchModel = FASTIRON_1500,
               cable_m: float = DEFAULT_CABLE_M,
               calibration: Calibration = DEFAULT_CALIBRATION) -> "ThroughSwitch":
        """Two hosts, each cabled to a 10GbE switch port."""
        a = Host(env, spec, config, name="hostA", calibration=calibration)
        b = Host(env, spec, config, name="hostB", calibration=calibration)
        nic_a = TenGigAdapter(env, a, address="hostA.eth0")
        nic_b = TenGigAdapter(env, b, address="hostB.eth0")
        switch = Switch(env, model=model, name="fastiron")
        mtu = config.mtu
        # host -> switch directions
        up_a = EthernetLink(env, Gbps(10), cable_m, mtu, name="a2sw")
        up_b = EthernetLink(env, Gbps(10), cable_m, mtu, name="b2sw")
        nic_a.set_egress(up_a)
        up_a.connect(switch)
        nic_b.set_egress(up_b)
        up_b.connect(switch)
        # switch -> host directions
        down_a = EthernetLink(env, Gbps(10), cable_m, mtu, name="sw2a")
        down_b = EthernetLink(env, Gbps(10), cable_m, mtu, name="sw2b")
        down_a.connect(nic_a)
        down_b.connect(nic_b)
        switch.add_port("pA", down_a)
        switch.add_port("pB", down_b)
        switch.learn("hostA.eth0", "pA")
        switch.learn("hostB.eth0", "pB")
        return cls(env=env, a=a, b=b, switch=switch)


@dataclass
class MultiFlow:
    """Fig. 2(c): N client hosts aggregated through the switch into a
    server with one or two 10GbE adapters.

    ``client_rate_bps`` selects GbE clients (the paper's aggregation of
    GbE streams) or 10GbE clients (the Itanium-II anecdote).
    """

    env: Environment
    server: Host
    clients: List[Host]
    switch: Switch
    server_adapters: List[TenGigAdapter]

    @classmethod
    def create(cls, env: Environment, config: TuningConfig,
               n_clients: int,
               server_spec: HostSpec = PE2650,
               client_spec: HostSpec = GBE_HOST,
               client_rate_bps: float = Gbps(1),
               n_server_adapters: int = 1,
               independent_buses: bool = True,
               client_config: Optional[TuningConfig] = None,
               calibration: Calibration = DEFAULT_CALIBRATION) -> "MultiFlow":
        """Build the aggregation testbed."""
        if n_clients < 1:
            raise TopologyError("need at least one client")
        if n_server_adapters not in (1, 2):
            raise TopologyError("server hosts one or two adapters")
        server = Host(env, server_spec, config, name="server",
                      calibration=calibration)
        switch = Switch(env, name="fastiron")
        mtu = config.mtu
        adapters: List[TenGigAdapter] = []
        for i in range(n_server_adapters):
            nic = TenGigAdapter(env, server, address=f"server.eth{i}",
                                own_bus=independent_buses and i > 0)
            up = EthernetLink(env, Gbps(10), DEFAULT_CABLE_M, mtu,
                              name=f"srv{i}2sw")
            nic.set_egress(up)
            up.connect(switch)
            down = EthernetLink(env, Gbps(10), DEFAULT_CABLE_M, mtu,
                                name=f"sw2srv{i}")
            down.connect(nic)
            switch.add_port(f"srv{i}", down)
            switch.learn(f"server.eth{i}", f"srv{i}")
            adapters.append(nic)
        ccfg = client_config or config
        clients: List[Host] = []
        adapter_cls = GigAdapter if client_rate_bps == Gbps(1) else TenGigAdapter
        for i in range(n_clients):
            c = Host(env, client_spec, ccfg, name=f"client{i}",
                     calibration=calibration)
            nic = adapter_cls(env, c, address=f"client{i}.eth0")
            up = EthernetLink(env, client_rate_bps, DEFAULT_CABLE_M, mtu,
                              name=f"c{i}2sw")
            nic.set_egress(up)
            up.connect(switch)
            down = EthernetLink(env, client_rate_bps, DEFAULT_CABLE_M, mtu,
                                name=f"sw2c{i}")
            down.connect(nic)
            switch.add_port(f"c{i}", down)
            switch.learn(f"client{i}.eth0", f"c{i}")
            clients.append(c)
        return cls(env=env, server=server, clients=clients, switch=switch,
                   server_adapters=adapters)


@dataclass
class WanTestbed:
    """§4: Sunnyvale and Geneva hosts joined by the OC-192/OC-48 path."""

    env: Environment
    sunnyvale: Host
    geneva: Host
    forward: WanPath
    reverse: WanPath

    @property
    def rtt_s(self) -> float:
        """Propagation-only round-trip time of the path."""
        return self.forward.propagation_s + self.reverse.propagation_s


def build_wan_path(env: Environment, config: TuningConfig,
                   spec: HostSpec = WAN_HOST,
                   bottleneck_queue_frames: int = 1024,
                   calibration: Calibration = DEFAULT_CALIBRATION) -> WanTestbed:
    """The Internet2 Land Speed Record setup.

    Both hosts run ``config`` (the paper tunes both ends identically).
    Forward = Sunnyvale -> Geneva (data), reverse carries the ACKs.
    """
    sunnyvale = Host(env, spec, config, name="sunnyvale",
                     calibration=calibration)
    geneva = Host(env, spec, config, name="geneva", calibration=calibration)
    nic_s = TenGigAdapter(env, sunnyvale, address="sunnyvale.eth1")
    nic_g = TenGigAdapter(env, geneva, address="geneva.eth1")
    forward = WanPath(env, name="wan.fwd",
                      bottleneck_queue_frames=bottleneck_queue_frames)
    reverse = WanPath(env, name="wan.rev",
                      bottleneck_queue_frames=bottleneck_queue_frames)
    # Hosts hand frames to the local ingress router through a short
    # 10GbE access link.
    acc_s = EthernetLink(env, Gbps(10), 50.0, config.mtu, name="acc.svl")
    nic_s.set_egress(acc_s)
    acc_s.connect(forward.head)
    forward.connect(nic_g)
    acc_g = EthernetLink(env, Gbps(10), 50.0, config.mtu, name="acc.gva")
    nic_g.set_egress(acc_g)
    acc_g.connect(reverse.head)
    reverse.connect(nic_s)
    return WanTestbed(env=env, sunnyvale=sunnyvale, geneva=geneva,
                      forward=forward, reverse=reverse)
